"""Unit tests for affine forms over LIVs."""

from fractions import Fraction

import pytest

from repro.ir import LIV, AffineForm

k = LIV("k")
j = LIV("j")


class TestConstruction:
    def test_constant(self):
        f = AffineForm(5)
        assert f.is_constant
        assert f.const == 5
        assert f.evaluate({}) == 5

    def test_variable(self):
        f = AffineForm.variable(k)
        assert not f.is_constant
        assert f.coeff(k) == 1
        assert f.evaluate({k: 7}) == 7

    def test_zero_coeffs_dropped(self):
        f = AffineForm(1, {k: 0})
        assert f.is_constant
        assert f.livs() == frozenset()

    def test_fraction_const(self):
        f = AffineForm(Fraction(1, 2))
        assert f.const == Fraction(1, 2)
        assert not f.is_integral()

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            AffineForm("x")  # type: ignore[arg-type]


class TestArithmetic:
    def test_add(self):
        f = AffineForm(1, {k: 2}) + AffineForm(3, {k: -2, j: 1})
        assert f.const == 4
        assert f.coeff(k) == 0
        assert f.coeff(j) == 1

    def test_add_scalar(self):
        f = AffineForm(1, {k: 2}) + 10
        assert f.const == 11
        assert (10 + AffineForm(1)).const == 11

    def test_sub(self):
        f = AffineForm(5, {k: 3}) - AffineForm(2, {k: 3})
        assert f == AffineForm(3)

    def test_rsub(self):
        f = 10 - AffineForm(1, {k: 1})
        assert f.const == 9
        assert f.coeff(k) == -1

    def test_neg(self):
        f = -AffineForm(1, {k: 2})
        assert f.const == -1
        assert f.coeff(k) == -2

    def test_scalar_mul(self):
        f = AffineForm(1, {k: 2}) * 3
        assert f.const == 3
        assert f.coeff(k) == 6
        assert (3 * AffineForm(1, {k: 2})) == f

    def test_div(self):
        f = AffineForm(2, {k: 4}) / 2
        assert f.const == 1
        assert f.coeff(k) == 2

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            AffineForm(1) / 0


class TestEvaluationSubstitution:
    def test_evaluate_multi(self):
        f = AffineForm(1, {k: 2, j: -1})
        assert f.evaluate({k: 3, j: 4}) == 1 + 6 - 4

    def test_evaluate_unbound_raises(self):
        with pytest.raises(KeyError):
            AffineForm(0, {k: 1}).evaluate({})

    def test_substitute_affine(self):
        f = AffineForm(0, {k: 2})
        g = f.substitute({k: AffineForm(1, {j: 1})})  # k -> j + 1
        assert g.const == 2
        assert g.coeff(j) == 2
        assert g.coeff(k) == 0

    def test_substitute_partial(self):
        f = AffineForm(0, {k: 1, j: 1})
        g = f.substitute({k: 5})
        assert g.const == 5
        assert g.coeff(j) == 1

    def test_shift_liv(self):
        f = AffineForm(0, {k: 3})
        g = f.shift_liv(k, 2)  # k -> k + 2
        assert g.const == 6
        assert g.coeff(k) == 3


class TestVectorView:
    def test_roundtrip(self):
        f = AffineForm(7, {k: 2, j: 5})
        vec = f.coefficient_vector([k, j])
        assert vec == (7, 2, 5)
        g = AffineForm.from_coefficient_vector(vec, [k, j])
        assert g == f

    def test_rounded(self):
        f = AffineForm(Fraction(5, 2), {k: Fraction(1, 3)})
        r = f.rounded()
        assert r.is_integral()
        assert r.const == 2
        assert r.coeff(k) == 0


class TestEqualityHash:
    def test_eq_scalar(self):
        assert AffineForm(3) == 3
        assert AffineForm(3, {k: 1}) != 3

    def test_hashable(self):
        s = {AffineForm(1, {k: 2}), AffineForm(1, {k: 2}), AffineForm(2)}
        assert len(s) == 2

    def test_liv_depth_distinguishes(self):
        k0 = LIV("k", 0)
        k1 = LIV("k", 1)
        assert AffineForm.variable(k0) != AffineForm.variable(k1)

    def test_repr_readable(self):
        assert repr(AffineForm(3, {k: 2})) == "3 + 2*k"
        assert repr(AffineForm(0)) == "0"
