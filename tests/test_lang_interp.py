"""Unit tests for the numpy reference interpreter."""

import numpy as np
import pytest

from repro.lang import parse
from repro.lang import programs
from repro.machine import InterpreterError, run_program


class TestBasics:
    def test_fill(self):
        st = run_program(parse("real A(5)\nA = 3"))
        assert np.allclose(st["A"], 3)

    def test_section_assign(self):
        st = run_program(parse("real A(6)\nA = 1\nA(2:4) = 9"))
        assert list(st["A"]) == [1, 9, 9, 9, 1, 1]

    def test_strided_section(self):
        st = run_program(parse("real A(10)\nA = 0\nA(1:9:2) = 1"))
        assert list(st["A"]) == [1, 0, 1, 0, 1, 0, 1, 0, 1, 0]

    def test_elementwise(self):
        st = run_program(
            parse("real A(4), B(4), C(4)\nB = 2\nC = 3\nA = B * C + 1")
        )
        assert np.allclose(st["A"], 7)

    def test_offset_example1(self):
        p = programs.example1(n=6)
        a = np.arange(6, dtype=float)
        b = np.arange(10, 16, dtype=float)
        st = run_program(p, init={"A": a.copy(), "B": b})
        expect = a.copy()
        expect[0:5] = a[0:5] + b[1:6]
        assert np.allclose(st["A"], expect)

    def test_transpose(self):
        c = np.arange(16, dtype=float).reshape(4, 4)
        st = run_program(programs.example3(n=4), init={"B": np.zeros((4, 4)), "C": c})
        assert np.allclose(st["B"], c.T)

    def test_spread_figure4(self):
        p = parse(
            "real t(3), B(3,4)\nB = B + spread(t, dim=2, ncopies=4)"
        )
        t = np.array([1.0, 2.0, 3.0])
        st = run_program(p, init={"t": t, "B": np.zeros((3, 4))})
        assert np.allclose(st["B"], np.repeat(t[:, None], 4, axis=1))

    def test_reduce_dim(self):
        p = parse("real A(3,4), r(3)\nr = sum(A, dim=2)")
        a = np.arange(12, dtype=float).reshape(3, 4)
        st = run_program(p, init={"A": a, "r": np.zeros(3)})
        assert np.allclose(st["r"], a.sum(axis=1))

    def test_do_loop_semantics(self):
        p = parse("real A(5)\ndo k = 1, 5\nA(k) = 2 * k\nenddo")
        st = run_program(p)
        assert list(st["A"]) == [2, 4, 6, 8, 10]

    def test_negative_step_loop(self):
        p = parse("real A(5)\nA = 0\ndo k = 5, 1, -2\nA(k) = k\nenddo")
        st = run_program(p)
        assert list(st["A"]) == [1, 0, 3, 0, 5]

    def test_gather(self):
        p = parse(
            "readonly real T(4)\ninteger idx(3)\nreal y(3)\n"
            "y = gather(T, idx(1:3))"
        )
        st = run_program(
            p, init={"T": np.array([10.0, 20, 30, 40]), "idx": np.array([3.0, 1, 4])}
        )
        assert list(st["y"]) == [30, 10, 40]

    def test_if_default_true(self):
        p = parse("real A(2)\nif (anything) then\nA = 1\nelse\nA = 2\nendif")
        assert np.allclose(run_program(p)["A"], 1)

    def test_if_false_literal(self):
        p = parse("real A(2)\nif (false) then\nA = 1\nelse\nA = 2\nendif")
        assert np.allclose(run_program(p)["A"], 2)


class TestErrors:
    def test_bad_init_shape(self):
        with pytest.raises(InterpreterError):
            run_program(parse("real A(5)"), init={"A": np.zeros(4)})

    def test_index_out_of_bounds_dynamic(self):
        p = parse("real A(5)\ndo k = 1, 6\nA(k) = 1\nenddo")
        with pytest.raises(InterpreterError):
            run_program(p)

    def test_gather_out_of_bounds(self):
        p = parse(
            "readonly real T(2)\ninteger idx(1)\nreal y(1)\ny = gather(T, idx(1:1))"
        )
        with pytest.raises(InterpreterError):
            run_program(p, init={"idx": np.array([5.0])})


class TestPaperPrograms:
    def test_figure1_semantics(self):
        n = 8
        p = programs.figure1(n=n)
        a0 = np.random.default_rng(1).random((n, n))
        v0 = np.random.default_rng(2).random(2 * n)
        st = run_program(p, init={"A": a0.copy(), "V": v0})
        a = a0.copy()
        for k in range(1, n + 1):
            a[k - 1, :] += v0[k - 1 : k - 1 + n]
        assert np.allclose(st["A"], a)

    def test_example5_semantics(self):
        p = programs.example5(iters=4, m=3)
        a0 = np.random.default_rng(3).random(12)
        st = run_program(p, init={"A": a0, "B": np.zeros(12), "V": np.zeros(3)})
        a, b, v = a0.copy(), np.zeros(12), np.zeros(3)
        for k in range(1, 5):
            v = v + a[0 : 3 * k : k]
            b[0 : 3 * k : k] = v
        assert np.allclose(st["B"], b)

    def test_figure4_semantics(self):
        p = programs.figure4(nt=4, nk=3)
        t0 = np.random.default_rng(4).random(4)
        st = run_program(p, init={"t": t0.copy(), "B": np.zeros((4, 3))})
        t, b = t0.copy(), np.zeros((4, 3))
        for _ in range(3):
            t = np.cos(t)
            b = b + np.repeat(t[:, None], 3, axis=1)
        assert np.allclose(st["B"], b)
        assert np.allclose(st["t"], t)
