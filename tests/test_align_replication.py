"""Unit tests for Section 5: replication labeling by min-cut."""

from fractions import Fraction

import pytest

from repro.adg import build_adg, NodeKind
from repro.align import (
    align_program,
    label_replication,
    read_only_arrays,
    solve_axis_stride,
    value_carrier_nodes,
)
from repro.lang import parse
from repro.lang import programs


class TestSources:
    def test_read_only_detection(self):
        p = programs.figure1()
        assert read_only_arrays(p) == {"V"}

    def test_explicit_readonly(self):
        p = parse("readonly real T(8)\nreal A(8)\nA = T")
        assert read_only_arrays(p) == {"T"}

    def test_carrier_nodes_stop_at_computation(self):
        adg = build_adg(programs.figure1())
        carriers = value_carrier_nodes(adg, "V")
        labels = {adg.nodes[nid].label for nid in carriers}
        assert any(l.startswith("merge(V") for l in labels)
        assert any(l.startswith("loopback(V") for l in labels)
        assert not any(l.startswith("section") for l in labels)


class TestFigure4:
    def setup_method(self):
        self.program = programs.figure4()
        self.adg = build_adg(self.program)
        self.skel = solve_axis_stride(self.adg).skeletons

    def test_spread_input_forced_r(self):
        rep = label_replication(self.adg, self.skel, self.program)
        for n in self.adg.nodes:
            if n.kind is NodeKind.SPREAD:
                inp = n.inputs()[0]
                out = n.outputs()[0]
                assert rep.labels[(inp.key, 1)] == "R"
                assert rep.labels[(out.key, 1)] == "N"

    def test_t_cycle_replicated(self):
        rep = label_replication(self.adg, self.skel, self.program)
        for n in self.adg.nodes:
            if n.label.startswith("merge(t") or n.label == "cos":
                for p in n.ports:
                    assert rep.labels[(p.key, 1)] == "R", n.label

    def test_cut_value_is_entry_broadcast(self):
        rep = label_replication(self.adg, self.skel, self.program)
        assert rep.cut_value[1] == 100  # one broadcast of t at loop entry
        assert rep.cut_value[0] == 0

    def test_body_axes_always_n(self):
        rep = label_replication(self.adg, self.skel, self.program)
        for p in self.adg.ports():
            sk = self.skel[p.key]
            for tau in range(sk.template_rank):
                if sk.axes[tau].is_body:
                    assert rep.labels[(p.key, tau)] == "N"

    def test_minimal_labels_only_forced(self):
        rep = label_replication(
            self.adg, self.skel, self.program, minimal=True
        )
        r_ports = {key for key, v in rep.labels.items() if v == "R"}
        spread_inputs = {
            (n.inputs()[0].key, 1)
            for n in self.adg.nodes
            if n.kind is NodeKind.SPREAD
        }
        assert r_ports == spread_inputs

    def test_maxflow_methods_agree(self):
        a = label_replication(self.adg, self.skel, self.program, method="dinic")
        b = label_replication(
            self.adg, self.skel, self.program, method="edmonds-karp"
        )
        assert a.cut_value == b.cut_value


class TestEndToEnd:
    def test_figure4_cost_ratio(self):
        """Paper: 1 broadcast at entry vs one per iteration (200x)."""
        with_rep = align_program(programs.figure4())
        without = align_program(programs.figure4(), replication=False)
        assert with_rep.total_cost == 100
        assert without.total_cost == 20000
        assert without.total_cost / with_rep.total_cost == 200

    def test_rule3_replicates_mobile_readonly(self):
        """Figure 1 + Section 5 rule 3: replicating V removes the row
        movement; the body-axis column shift remains."""
        plan = align_program(programs.figure1())
        norep = align_program(programs.figure1(), replication=False)
        assert plan.total_cost < norep.total_cost
        # V's merge ports replicated on axis 0
        found = False
        for p in plan.adg.ports():
            if "merge(V" in p.uid:
                assert plan.alignments[p.key].axes[0].is_replicated
                found = True
        assert found

    def test_lookup_table_hint(self):
        plan = align_program(programs.lookup_table(n=32, m=16))
        src = plan.source_alignments()["tab"]
        # table replicated or at least analysis completes with zero cost
        assert plan.total_cost >= 0

    def test_cut_optimality_vs_exhaustive(self):
        """Theorem 1: the cut cost matches brute-force optimal labeling."""
        from itertools import product

        program = programs.figure4(nt=6, nk=4)
        adg = build_adg(program)
        skel = solve_axis_stride(adg).skeletons
        rep = label_replication(adg, skel, program)
        axis = 1
        labeler_cost = rep.cut_value[axis]

        # Brute force over node labels subject to the same constraints.
        from repro.align.replication import ReplicationLabeler, _current_axis_spread
        from repro.ir import weighted_moments

        lab = ReplicationLabeler(adg, skel, program)
        free_nodes = []
        forced = {}
        for n in adg.nodes:
            if _current_axis_spread(n, skel, axis):
                continue  # handled per-port
            body = any(
                axis < skel[p.key].template_rank and skel[p.key].axes[axis].is_body
                for p in n.ports
            )
            if body or n.kind.name in ("SOURCE", "SINK"):
                forced[n.nid] = "N"
            else:
                free_nodes.append(n.nid)

        def vertex_label(nid, assign):
            return forced.get(nid) or assign.get(nid, "N")

        def edge_label(port, assign):
            n = port.node
            if _current_axis_spread(n, skel, axis):
                return "R" if not port.is_output else "N"
            return vertex_label(n.nid, assign)

        best = None
        for combo in product("NR", repeat=len(free_nodes)):
            assign = dict(zip(free_nodes, combo))
            cost = Fraction(0)
            for e in adg.edges:
                lu = edge_label(e.tail, assign)
                lv = edge_label(e.head, assign)
                if lu == "N" and lv == "R":
                    cost += weighted_moments(e.space, e.weight).m0
            best = cost if best is None else min(best, cost)
        assert labeler_cost == best
