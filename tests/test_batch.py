"""The batched planning engine, and the memoization-hygiene audit.

Covers :mod:`repro.batch` (ordering, serial/process determinism,
failure diagnostics, cache counters, report rendering) and the cache
rules the engine relies on: no ``lru_cache`` on bound methods anywhere
in the package (they pin ``self`` forever), bounded module-level
caches, and no growth of memory-resident plan objects across repeated
batch runs.
"""

from __future__ import annotations

import functools
import gc
import importlib
import inspect
import json
import pkgutil
import weakref

import pytest

import repro
from repro import cachestats
from repro.batch import BatchReport, PlanRequest, plan_many, plan_one
from repro.lang.generate import GeneratorConfig, generate_corpus, generate_scenario


class TestGenerate:
    def test_corpus_is_deterministic_and_prefix_stable(self):
        a = generate_corpus(10, seed=5)
        b = generate_corpus(10, seed=5)
        assert [s.source for s in a] == [s.source for s in b]
        # Growing the corpus keeps the prefix.
        c = generate_corpus(20, seed=5)
        assert [s.source for s in c[:10]] == [s.source for s in a]

    def test_families_cycle(self):
        corpus = generate_corpus(14, seed=0)
        assert len({s.family for s in corpus}) == 7

    def test_family_restriction(self):
        cfg = GeneratorConfig(families=("twod", "wavefront"))
        corpus = generate_corpus(6, seed=0, config=cfg)
        assert {s.family for s in corpus} == {"twod", "wavefront"}

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError):
            generate_scenario(0, family="nope")


class TestPlanOne:
    def test_success_record(self):
        sc = generate_scenario(1, family="wavefront")
        r = plan_one(PlanRequest(sc.name, sc.source), nprocs=4, verify=True)
        assert r.ok and r.error is None
        assert r.total_cost is not None and r.distribution is not None
        assert r.verified is True
        assert r.seconds > 0
        assert r.alignments  # every declared array rendered

    def test_failure_is_diagnosed_not_raised(self):
        r = plan_one(PlanRequest("broken", "real A(0)"), nprocs=4)
        assert not r.ok
        assert r.error and "ValueError" in r.error

    def test_no_distribution_when_nprocs_none(self):
        sc = generate_scenario(2, family="shift1d")
        r = plan_one(PlanRequest(sc.name, sc.source), nprocs=None)
        assert r.ok and r.distribution is None


class TestPlanMany:
    CORPUS = generate_corpus(8, seed=3)

    def test_serial_and_process_agree_in_order_and_content(self):
        serial = plan_many(self.CORPUS, nprocs=4, serial=True)
        procs = plan_many(self.CORPUS, nprocs=4, jobs=2)
        assert serial.mode == "serial" and len(serial.results) == 8
        assert [r.name for r in serial.results] == [s.name for s in self.CORPUS]
        assert [r.name for r in procs.results] == [r.name for r in serial.results]
        assert [r.total_cost for r in procs.results] == [
            r.total_cost for r in serial.results
        ]
        assert [r.distribution for r in procs.results] == [
            r.distribution for r in serial.results
        ]

    def test_failures_do_not_poison_the_batch(self):
        corpus = [self.CORPUS[0], "syntactic junk (", self.CORPUS[1]]
        report = plan_many(corpus, nprocs=4, serial=True)
        assert [r.ok for r in report.results] == [True, False, True]
        assert report.failures[0].error
        assert "FAILED" in report.render()

    def test_cache_counters_surface_in_report(self):
        report = plan_many(self.CORPUS, nprocs=4, serial=True)
        totals = report.cache_totals()
        assert totals.get("affine.evaluate", (0, 0))[0] > 0
        assert totals.get("distrib.move_records", (0, 0))[0] > 0
        rates = report.cache_hit_rates()
        assert 0.0 <= min(rates.values()) and max(rates.values()) <= 1.0
        rendered = report.render()
        assert "cache affine.evaluate" in rendered
        assert report.throughput > 0

    def test_report_json_round_trips(self):
        report = plan_many(self.CORPUS[:3], nprocs=4, serial=True, verify=True)
        blob = json.loads(json.dumps(report.to_json()))
        assert blob["programs"] == 3 and blob["ok"] == 3
        assert len(blob["results"]) == 3
        assert blob["results"][0]["verified"] is True

    def test_program_and_source_inputs(self):
        from repro.lang import programs

        report = plan_many(
            [programs.example1(), "real A(4)\nA(1:4) = A(1:4) + 1.0"],
            nprocs=None,
            serial=True,
        )
        assert all(r.ok for r in report.results)
        assert report.results[0].name == "example1"


class TestCacheStatsDelta:
    """Snapshot arithmetic: unions, clamping, and explicit reset reporting."""

    def test_plain_increments(self):
        before = {"a": (1, 2), "b": (0, 0)}
        after = {"a": (4, 2), "b": (0, 0), "c": (5, 1)}
        assert cachestats.delta(before, after) == {"a": (3, 0), "c": (5, 1)}

    def test_before_only_counters_are_not_dropped(self):
        # A name alive in `before` but missing from `after` is a reset
        # (registry wiped), not a no-op: it must be reported, clamped to
        # the post-reset counts (zero), never silently vanish.
        before = {"gone": (7, 3), "still": (1, 1)}
        after = {"still": (2, 1)}
        resets: set[str] = set()
        out = cachestats.delta(before, after, resets=resets)
        assert out == {"still": (1, 0)}
        assert resets == {"gone"}

    def test_backwards_counters_clamp_and_report_the_reset(self):
        # Counter went 10/10 -> 3/1: reset() fired between snapshots.
        # The delta is clamped to the counts since the reset — never a
        # negative number — and the name lands in `resets`.
        before = {"x": (10, 10)}
        after = {"x": (3, 1)}
        resets: set[str] = set()
        out = cachestats.delta(before, after, resets=resets)
        assert out == {"x": (3, 1)}
        assert resets == {"x"}
        assert all(h >= 0 and m >= 0 for h, m in out.values())

    def test_reset_to_exact_zero_is_reported_but_contributes_nothing(self):
        resets: set[str] = set()
        out = cachestats.delta({"x": (5, 5)}, {"x": (0, 0)}, resets=resets)
        assert out == {}
        assert resets == {"x"}

    def test_resets_param_is_optional(self):
        out = cachestats.delta({"x": (10, 0)}, {"x": (2, 0)})
        assert out == {"x": (2, 0)}

    def test_live_reset_between_snapshots(self):
        cachestats.record_hit("test.delta.live")
        before = cachestats.snapshot()
        cachestats.record_hit("test.delta.live")
        cachestats.reset()
        cachestats.record_miss("test.delta.live")
        resets: set[str] = set()
        out = cachestats.delta(before, resets=resets)
        assert out["test.delta.live"] == (0, 1)
        assert "test.delta.live" in resets

    def test_plan_result_carries_reset_names(self):
        scenario = generate_corpus(1, seed=0)[0]
        result = plan_one(PlanRequest.of(scenario, 0), nprocs=4)
        assert result.ok
        assert result.cache_resets == ()
        report = plan_many([scenario], nprocs=4, serial=True)
        assert report.cache_reset_names() == ()
        blob = report.to_json()
        assert blob["cache_resets"] == []
        assert "WARNING: counters reset" not in report.render()


class TestCacheHygiene:
    def test_no_lru_cache_on_bound_methods_anywhere(self):
        """functools caches on methods leak every ``self`` they see.

        Audits every class in every repro module: no class attribute may
        be an ``lru_cache``/``cache`` wrapper whose wrapped function
        takes ``self`` (module-level cached functions are fine).
        """
        offenders = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            mod = importlib.import_module(info.name)
            for _, cls in inspect.getmembers(mod, inspect.isclass):
                if cls.__module__ != mod.__name__:
                    continue
                for attr, val in vars(cls).items():
                    if isinstance(val, functools._lru_cache_wrapper):
                        sig = inspect.signature(val.__wrapped__)
                        if "self" in sig.parameters:
                            offenders.append(f"{cls.__module__}.{cls.__name__}.{attr}")
        assert not offenders, offenders

    def test_polynomial_module_cache_is_not_a_method(self):
        from repro.ir.polynomial import _bernoulli

        assert isinstance(_bernoulli, functools._lru_cache_wrapper)
        assert "self" not in inspect.signature(_bernoulli.__wrapped__).parameters

    def test_repeated_batch_runs_do_not_grow_plan_objects(self):
        """Module caches must never keep whole plans (or their ADGs) alive."""
        from repro.adg.graph import ADG
        from repro.align.pipeline import AlignmentPlan

        corpus = generate_corpus(6, seed=11)
        plan_many(corpus, nprocs=4, serial=True)  # warm every cache
        gc.collect()
        baseline = sum(
            isinstance(o, (AlignmentPlan, ADG)) for o in gc.get_objects()
        )
        for _ in range(3):
            plan_many(corpus, nprocs=4, serial=True)
        gc.collect()
        after = sum(isinstance(o, (AlignmentPlan, ADG)) for o in gc.get_objects())
        assert after <= baseline, (baseline, after)

    def test_plan_is_collectable_after_use(self):
        from repro.align import align_program

        sc = generate_scenario(4, family="twod")
        plan = align_program(sc.parse())
        ref = weakref.ref(plan)
        del plan
        gc.collect()
        assert ref() is None

    def test_module_caches_stay_bounded(self):
        corpus = generate_corpus(10, seed=13)
        plan_many(corpus, nprocs=4, serial=True)
        sizes = cachestats.cache_sizes()
        assert sizes  # the registry saw the batch
        from repro.align.cost import _MOMENTS, _SPANS
        from repro.distrib.costmodel import _POSITIONS

        for cache in (_MOMENTS, _SPANS, _POSITIONS):
            assert len(cache) <= cache.maxsize

    def test_clear_caches_empties_everything(self):
        plan_many(generate_corpus(2, seed=17), nprocs=4, serial=True)
        cachestats.clear_caches()
        assert all(n == 0 for n in cachestats.cache_sizes().values())
