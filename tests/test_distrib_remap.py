"""Unit tests for phase splitting and redistribution planning."""

import pytest

from repro.align import align_program
from repro.distrib import (
    build_profile,
    plan_distribution,
    plan_phase_sequence,
    plan_program_phases,
    rank_plans,
    remap_cost,
    split_phases,
    union_window,
)
from repro.lang import programs
from repro.lang.parser import parse
from repro.machine import Block, Cyclic, Distribution

TWO_PHASE = """
real U(32), W(32)
W(2:31) = U(1:30) + U(3:32)
U(2:31) = W(2:31)
"""


def _phase_profiles(src, name="p", **kw):
    prog = parse(src, name=name)
    out = []
    for sub in split_phases(prog):
        plan = align_program(sub, **kw)
        out.append((sub.name, build_profile(plan.adg, plan.alignments)))
    return out


class TestSplitPhases:
    def test_one_phase_per_top_level_statement(self):
        prog = parse(TWO_PHASE, name="p")
        phases = split_phases(prog)
        assert len(phases) == 2
        assert [p.name for p in phases] == ["p[0]", "p[1]"]
        assert all(p.decls == prog.decls for p in phases)
        assert sum(len(p.body) for p in phases) == len(prog.body)

    def test_loop_is_single_phase(self):
        phases = split_phases(programs.stencil_sweep(n=16, iters=2))
        assert len(phases) == 1  # the whole do-loop is one statement


class TestUnionWindow:
    def test_union_covers_all(self):
        profiles = [p for _, p in _phase_profiles(TWO_PHASE)]
        win = union_window(profiles)
        for p in profiles:
            for (lo, hi), (ulo, uhi) in zip(p.window, win):
                assert ulo <= lo and hi <= uhi

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            union_window([])


class TestRemapCost:
    WINDOW = ((0, 31),)

    def test_same_distribution_is_free(self):
        d = Distribution((Block(4, 8),))
        assert remap_cost(self.WINDOW, d, d).hops == 0
        assert remap_cost(self.WINDOW, d, d).moved == 0

    def test_block_to_cyclic_moves_most_cells(self):
        blk = Distribution((Block(4, 8),))
        cyc = Distribution((Cyclic(4),))
        rc = remap_cost(self.WINDOW, blk, cyc)
        assert rc.moved > 16  # most of the 32 cells change owner
        assert rc.hops >= rc.moved // 2

    def test_symmetric(self):
        blk = Distribution((Block(4, 8),))
        cyc = Distribution((Cyclic(4),))
        assert remap_cost(self.WINDOW, blk, cyc) == remap_cost(
            self.WINDOW, cyc, blk
        )

    def test_two_dimensional_window(self):
        a = Distribution((Block(2, 4), Cyclic(2)))
        b = Distribution((Block(2, 4), Cyclic(2, base=-1)))
        rc = remap_cost(((0, 7), (0, 3)), a, b)
        assert rc.moved == 8 * 4  # every cell flips parity on axis 1


class TestPhaseChainDP:
    def test_single_phase_matches_planner(self):
        profiles = _phase_profiles(TWO_PHASE)[:1]
        seq = plan_phase_sequence(profiles, 4)
        assert len(seq.phases) == 1
        assert seq.remap_cost == 0
        # Same hop cost as the standalone planner (the phase window is
        # its own union, so candidates coincide).
        standalone = plan_distribution(profiles[0][1], 4)
        assert seq.phases[0].plan.cost.hops == standalone.cost.hops

    def test_dp_no_worse_than_any_fixed_selection(self):
        profiles = _phase_profiles(TWO_PHASE)
        win = union_window([p for _, p in profiles])
        k = 3
        seq = plan_phase_sequence(profiles, 4, k=k)
        cands = [rank_plans(p, 4, k=k, window=win) for _, p in profiles]
        for pick in (0, -1):
            sel = [c[pick] if len(c) > abs(pick) else c[0] for c in cands]
            total = sum(p.cost.hops for p in sel)
            for a, b in zip(sel, sel[1:]):
                total += remap_cost(
                    win, a.to_distribution(), b.to_distribution()
                ).hops
            assert seq.total_hops <= total

    def test_totals_add_up(self):
        seq = plan_phase_sequence(_phase_profiles(TWO_PHASE), 4)
        assert seq.total_hops == seq.phase_cost + seq.remap_cost

    def test_render_mentions_phases_and_remaps(self):
        seq = plan_phase_sequence(_phase_profiles(TWO_PHASE), 4)
        text = seq.render()
        assert "phased distribution plan" in text
        assert "DISTRIBUTE" in text
        assert "remap" in text

    def test_program_driver(self):
        seq = plan_program_phases(
            parse(TWO_PHASE, name="p"), 4, align_kw=dict(replication=False)
        )
        assert len(seq.phases) == 2
        assert seq.phases[0].name == "p[0]"
