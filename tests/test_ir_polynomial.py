"""Unit tests for polynomials and Faulhaber power sums."""

from fractions import Fraction

import pytest

from repro.ir import LIV, AffineForm, Polynomial, sum_powers

k = LIV("k")
j = LIV("j")


class TestSumPowers:
    @pytest.mark.parametrize("n", [0, 1, 2, 5, 17])
    @pytest.mark.parametrize("p", [0, 1, 2, 3, 4, 7])
    def test_matches_bruteforce(self, n, p):
        assert sum_powers(n, p) == sum(Fraction(t) ** p for t in range(n))

    def test_negative_n(self):
        assert sum_powers(-3, 2) == 0


class TestArithmetic:
    def test_from_affine(self):
        p = Polynomial.from_affine(AffineForm(2, {k: 3}))
        assert p.evaluate({k: 4}) == 14
        assert p.degree() == 1

    def test_mul_degree(self):
        p = Polynomial.from_affine(AffineForm(0, {k: 1}))
        q = p * p
        assert q.degree() == 2
        assert q.evaluate({k: 5}) == 25

    def test_cross_variable_product(self):
        p = Polynomial.variable(k) * Polynomial.variable(j)
        assert p.evaluate({k: 3, j: 4}) == 12
        assert p.degree() == 2

    def test_add_sub(self):
        p = Polynomial.variable(k) + 3
        q = p - Polynomial.variable(k)
        assert q == 3

    def test_pow(self):
        p = (Polynomial.variable(k) + 1) ** 3
        assert p.evaluate({k: 2}) == 27

    def test_pow_negative_raises(self):
        with pytest.raises(ValueError):
            Polynomial.variable(k) ** -1

    def test_as_affine_roundtrip(self):
        f = AffineForm(5, {k: -2})
        assert Polynomial.from_affine(f).as_affine() == f

    def test_as_affine_degree2_raises(self):
        with pytest.raises(ValueError):
            (Polynomial.variable(k) ** 2).as_affine()


class TestSubstitution:
    def test_substitute_affine(self):
        p = Polynomial.variable(k) ** 2
        q = p.substitute({k: AffineForm(1, {j: 1})})  # (j+1)^2
        assert q.evaluate({j: 3}) == 16

    def test_substitute_polynomial(self):
        p = Polynomial.variable(k) + 1
        q = p.substitute({k: Polynomial.variable(j) ** 2})
        assert q.evaluate({j: 3}) == 10


class TestSumOver:
    @pytest.mark.parametrize(
        "lo,hi,step",
        [(1, 10, 1), (2, 20, 3), (5, 5, 1), (10, 1, -2), (1, 0, 1)],
    )
    def test_degree2_sum(self, lo, hi, step):
        p = Polynomial.variable(k) ** 2 + Polynomial.variable(k) * 2 + 1
        expect = sum(v * v + 2 * v + 1 for v in _triplet(lo, hi, step))
        got = p.sum_over(k, lo, hi, step)
        assert got.is_constant
        assert got.const == expect

    def test_sum_keeps_other_vars(self):
        p = Polynomial.variable(k) * Polynomial.variable(j)
        s = p.sum_over(k, 1, 4)  # 10 * j
        assert s.evaluate({j: 3}) == 30
        assert k not in s.livs()

    def test_zero_step_raises(self):
        with pytest.raises(ValueError):
            Polynomial.variable(k).sum_over(k, 1, 5, 0)


def _triplet(lo, hi, step):
    vals = []
    v = lo
    if step > 0:
        while v <= hi:
            vals.append(v)
            v += step
    else:
        while v >= hi:
            vals.append(v)
            v += step
    return vals
