"""Unit tests for Section 3: axis and mobile stride alignment."""

from fractions import Fraction

import pytest

from repro.adg import build_adg
from repro.adg.nodes import SubscriptSpec
from repro.align import canonical_skeletons, solve_axis_stride
from repro.align.axis_stride import (
    _div_affine,
    section_backward,
    section_forward,
    spread_backward,
    spread_forward,
    transpose_transform,
)
from repro.ir import LIV, AffineForm
from repro.lang import parse
from repro.lang import programs

k = LIV("k", 0)


class TestLabelTransforms:
    def test_canonical_count(self):
        assert len(canonical_skeletons(1, 2)) == 2
        assert len(canonical_skeletons(2, 2)) == 2
        assert len(canonical_skeletons(2, 3)) == 6

    def test_transpose_involution(self):
        for lab in canonical_skeletons(2, 2):
            assert transpose_transform(transpose_transform(lab)) == lab

    def test_section_forward_stride(self):
        lab = canonical_skeletons(1, 1)[0]
        subs = (SubscriptSpec("slice", lo=AffineForm(2), step=AffineForm(2)),)
        out = section_forward(lab, subs)
        assert out.axes[0].stride == AffineForm(2)

    def test_section_forward_mobile_step(self):
        lab = canonical_skeletons(1, 1)[0]
        subs = (SubscriptSpec("slice", lo=AffineForm(1), step=AffineForm.variable(k)),)
        out = section_forward(lab, subs)
        assert out.axes[0].stride == AffineForm.variable(k)

    def test_section_forward_index_drops(self):
        lab = canonical_skeletons(2, 2)[0]
        subs = (
            SubscriptSpec("index", index=AffineForm.variable(k)),
            SubscriptSpec("full"),
        )
        out = section_forward(lab, subs)
        assert out.rank == 1
        assert not out.axes[0].is_body

    def test_section_backward_inverts_forward(self):
        lab = canonical_skeletons(1, 1)[0]
        subs = (SubscriptSpec("slice", lo=AffineForm(3), step=AffineForm(4)),)
        sec = section_forward(lab, subs)
        back = section_backward(sec, subs, 1)
        assert back == lab

    def test_div_affine(self):
        assert _div_affine(AffineForm(0, {k: 2}), AffineForm.variable(k)) == AffineForm(2)
        assert _div_affine(AffineForm(4), AffineForm(2)) == AffineForm(2)
        assert _div_affine(AffineForm(1, {k: 2}), AffineForm.variable(k)) is None
        assert _div_affine(AffineForm(1), AffineForm(0)) is None

    def test_spread_roundtrip(self):
        lab = canonical_skeletons(1, 2)[0]
        outs = spread_forward(lab, dim=2)
        assert len(outs) == 1
        assert spread_backward(outs[0], dim=2) == lab


class TestPaperExamples:
    def test_example2_stride_alignment(self):
        """Example 2: A at [2i], B at [i] avoids communication."""
        adg = build_adg(programs.example2())
        res = solve_axis_stride(adg)
        assert res.cost == 0
        strides = {}
        for p in adg.ports():
            if p.node.kind.name == "SOURCE":
                strides[p.node.label] = res.of(p).axes[0].stride
        assert strides["source(A)"] == AffineForm(2)
        assert strides["source(B)"] == AffineForm(1)

    def test_example3_axis_alignment(self):
        """Example 3: C axis-swapped relative to B kills the transpose."""
        adg = build_adg(programs.example3())
        res = solve_axis_stride(adg)
        assert res.cost == 0
        sigs = {}
        for p in adg.ports():
            if p.node.kind.name == "SOURCE":
                sigs[p.node.label] = res.of(p).axis_signature()
        assert sigs["source(B)"] != sigs["source(C)"]

    def test_example5_mobile_stride(self):
        """Example 5: V gets the mobile stride [k*i]; cost halves."""
        adg = build_adg(programs.example5())
        res = solve_axis_stride(adg)
        # one general communication per iteration boundary: 49 * 20
        assert res.cost == 980
        mobile = AffineForm(0, {k: 1})
        found = False
        for p in adg.ports():
            if "merge(V" in p.uid:
                assert res.of(p).axes[0].stride == mobile
                found = True
        assert found

    def test_figure1_no_stride_cost(self):
        adg = build_adg(programs.figure1())
        assert solve_axis_stride(adg).cost == 0

    def test_all_ports_labeled(self):
        adg = build_adg(programs.figure1())
        res = solve_axis_stride(adg)
        for p in adg.ports():
            lab = res.of(p)
            assert lab.rank == p.rank

    def test_integral_strides_only(self):
        for name, fn in programs.ALL_PAPER_FRAGMENTS.items():
            adg = build_adg(fn())
            res = solve_axis_stride(adg)
            for p in adg.ports():
                for ax in res.of(p).axes:
                    if ax.is_body:
                        assert ax.stride.is_integral(), (name, p.uid)

    def test_gather_table_free(self):
        adg = build_adg(programs.lookup_table(n=16, m=8))
        res = solve_axis_stride(adg)
        assert res.cost == 0
