"""Unit tests for ADG construction."""

import pytest

from repro.adg import NodeKind, build_adg, summary, to_dot
from repro.adg.nodes import TransformerPayload
from repro.ir import IterationSpace
from repro.lang import parse
from repro.lang import programs


def kinds_count(adg):
    from collections import Counter

    return Counter(n.kind for n in adg.nodes)


class TestStraightLine:
    def test_example1_structure(self):
        adg = build_adg(programs.example1())
        c = kinds_count(adg)
        assert c[NodeKind.SOURCE] == 2
        assert c[NodeKind.SINK] == 2
        assert c[NodeKind.SECTION] == 2  # A(1:N-1) read and B(2:N)
        assert c[NodeKind.SECTION_ASSIGN] == 1
        assert c[NodeKind.ELEMENTWISE] == 1

    def test_every_edge_same_space(self):
        for fn in programs.ALL_PAPER_FRAGMENTS.values():
            adg = build_adg(fn())
            for e in adg.edges:
                assert e.tail.space.livs == e.head.space.livs or e.space is not None

    def test_validate_passes(self):
        for fn in programs.ALL_PAPER_FRAGMENTS.values():
            build_adg(fn()).validate()

    def test_ranks_match_on_edges(self):
        adg = build_adg(programs.figure1())
        for e in adg.edges:
            assert e.tail.rank == e.head.rank

    def test_template_rank(self):
        assert build_adg(programs.example1()).template_rank == 1
        assert build_adg(programs.figure1()).template_rank == 2
        assert build_adg(programs.figure4()).template_rank == 2

    def test_copy_aliases_no_node(self):
        adg = build_adg(parse("real A(5), B(5)\nA = B"))
        # whole-array copy introduces no computation node
        c = kinds_count(adg)
        assert c[NodeKind.ELEMENTWISE] == 0

    def test_scalar_fill_makes_generator(self):
        adg = build_adg(parse("real A(5)\nA = 0"))
        c = kinds_count(adg)
        assert c[NodeKind.ELEMENTWISE] == 1  # the fill node


class TestLoops:
    def test_figure1_loop_structure(self):
        adg = build_adg(programs.figure1())
        c = kinds_count(adg)
        # A and V each get entry + loopback; A (defined) also gets exit.
        assert c[NodeKind.TRANSFORMER] == 5
        assert c[NodeKind.MERGE] == 2
        assert c[NodeKind.BRANCH] == 1  # A's loop-exit branch

    def test_transformer_payloads(self):
        adg = build_adg(programs.figure1())
        kinds = sorted(
            n.payload.kind
            for n in adg.nodes
            if n.kind is NodeKind.TRANSFORMER
            and isinstance(n.payload, TransformerPayload)
        )
        assert kinds == ["entry", "entry", "exit", "loop_back", "loop_back"]

    def test_entry_edge_is_outer_space(self):
        adg = build_adg(programs.figure1())
        for n in adg.nodes:
            if n.kind is NodeKind.TRANSFORMER and n.payload.kind == "entry":
                (inp,) = n.inputs()
                for e in adg.in_edges(inp):
                    assert e.space.depth == 0

    def test_loopback_recv_space_starts_second_iteration(self):
        adg = build_adg(programs.figure1())
        for n in adg.nodes:
            if n.kind is NodeKind.TRANSFORMER and n.payload.kind == "loop_back":
                (out,) = n.outputs()
                for e in adg.out_edges(out):
                    trip = e.space.triplets[0]
                    assert trip.lo == 2
                    assert trip.hi == 100

    def test_readonly_send_space_ends_early(self):
        adg = build_adg(programs.figure1())
        for n in adg.nodes:
            if n.label.startswith("loopback(V"):
                (inp,) = n.inputs()
                for e in adg.in_edges(inp):
                    assert e.space.triplets[0].hi == 99

    def test_zero_trip_loop_skipped(self):
        adg = build_adg(parse("real A(5)\ndo k = 5, 1\nA(k) = 0\nenddo"))
        assert kinds_count(adg)[NodeKind.TRANSFORMER] == 0

    def test_single_trip_loop_no_loopback_edges(self):
        adg = build_adg(parse("real A(5)\ndo k = 3, 3\nA(k) = 1\nenddo"))
        for n in adg.nodes:
            if n.kind is NodeKind.TRANSFORMER and n.payload.kind == "loop_back":
                assert not adg.in_edges(n.inputs()[0])
                assert not adg.out_edges(n.outputs()[0])

    def test_nested_loops(self):
        adg = build_adg(programs.doubly_nested(n=4))
        depths = {e.space.depth for e in adg.edges}
        assert 2 in depths  # innermost edges
        adg.validate()


class TestBranches:
    def test_if_makes_phi(self):
        adg = build_adg(programs.conditional_update(n=10))
        labels = [n.label for n in adg.nodes if n.kind is NodeKind.MERGE]
        assert any(l.startswith("phi(") for l in labels)

    def test_control_weights_scaled(self):
        adg = build_adg(
            parse(
                "real A(5), B(5)\nif (c) then\nA = B\nelse\nA = B + 1\nendif",
            )
        )
        cws = sorted({e.control_weight for e in adg.edges})
        assert 0.5 in cws

    def test_branch_node_for_alternate_uses(self):
        adg = build_adg(
            parse(
                "real A(5), B(5), C(5)\n"
                "if (c) then\nA = B + 1\nelse\nC = B + 2\nendif"
            )
        )
        c = kinds_count(adg)
        assert c[NodeKind.BRANCH] >= 1  # B feeds alternate uses


class TestWeightsAndRender:
    def test_edge_weight_is_size(self):
        adg = build_adg(programs.figure1())
        for e in adg.edges:
            if e.tail.node.label == "source(A)":
                assert e.weight == 10000

    def test_variable_size_weight(self):
        adg = build_adg(programs.triangular_sections(iters=10, m=4))
        polys = {str(e.weight) for e in adg.edges}
        assert any("k" in s for s in polys)  # growing sections

    def test_dot_render(self):
        adg = build_adg(programs.figure1())
        dot = to_dot(adg)
        assert dot.startswith("digraph")
        assert "loop_back" in dot

    def test_summary_lists_everything(self):
        adg = build_adg(programs.example1())
        s = summary(adg)
        assert "SECTION_ASSIGN" in s
        assert f"{len(adg.edges)}" in s.splitlines()[0]

    def test_stats(self):
        st = build_adg(programs.example1()).stats()
        assert st["nodes"] == len(build_adg(programs.example1()).nodes)
        assert "kind_SECTION" in st
