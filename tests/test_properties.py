"""Property-based tests (hypothesis) on the core data structures."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import (
    LIV,
    AffineForm,
    Polynomial,
    Triplet,
    sigma0,
    sigma1,
    sigma2,
    sum_powers,
)
from repro.align.span import split_at_crossing
from repro.solvers import LPModel

k = LIV("k")
j = LIV("j")

small_ints = st.integers(min_value=-50, max_value=50)
coeffs = st.integers(min_value=-10, max_value=10)


def affine_forms(livs=(k, j)):
    return st.builds(
        lambda c, cs: AffineForm(c, dict(zip(livs, cs))),
        coeffs,
        st.lists(coeffs, min_size=len(livs), max_size=len(livs)),
    )


def triplets():
    return st.builds(
        lambda lo, n, s: Triplet(lo, lo + (n - 1) * s, s),
        st.integers(-20, 20),
        st.integers(1, 40),
        st.sampled_from([-3, -2, -1, 1, 2, 3]),
    )


class TestAffineAlgebra:
    @given(affine_forms(), affine_forms(), st.integers(-5, 5), st.integers(-5, 5))
    def test_evaluation_is_linear(self, f, g, kv, jv):
        env = {k: kv, j: jv}
        assert (f + g).evaluate(env) == f.evaluate(env) + g.evaluate(env)
        assert (f - g).evaluate(env) == f.evaluate(env) - g.evaluate(env)
        assert (f * 3).evaluate(env) == 3 * f.evaluate(env)

    @given(affine_forms(), st.integers(-5, 5), st.integers(-5, 5), st.integers(-4, 4))
    def test_substitution_commutes_with_evaluation(self, f, kv, jv, delta):
        g = f.shift_liv(k, delta)
        assert g.evaluate({k: kv, j: jv}) == f.evaluate({k: kv + delta, j: jv})

    @given(affine_forms())
    def test_vector_roundtrip(self, f):
        vec = f.coefficient_vector([k, j])
        assert AffineForm.from_coefficient_vector(vec, [k, j]) == f

    @given(affine_forms(), affine_forms())
    def test_addition_commutes(self, f, g):
        assert f + g == g + f


class TestPolynomialAlgebra:
    @given(affine_forms(), affine_forms(), st.integers(-4, 4), st.integers(-4, 4))
    def test_product_evaluates_pointwise(self, f, g, kv, jv):
        p = Polynomial.from_affine(f) * Polynomial.from_affine(g)
        env = {k: kv, j: jv}
        assert p.evaluate(env) == f.evaluate(env) * g.evaluate(env)

    @given(triplets(), st.integers(0, 3))
    @settings(max_examples=40)
    def test_sum_over_matches_enumeration(self, t, deg):
        p = Polynomial.variable(k) ** deg
        s = p.sum_over(k, t.lo, t.hi, t.step)
        assert s.const == sum(Fraction(v) ** deg for v in t)

    @given(st.integers(0, 60), st.integers(0, 6))
    def test_faulhaber(self, n, p):
        assert sum_powers(n, p) == sum(Fraction(t) ** p for t in range(n))


class TestTripletProperties:
    @given(triplets())
    def test_sigmas_match_enumeration(self, t):
        assert sigma0(t) == len(list(t))
        assert sigma1(t) == sum(t)
        assert sigma2(t) == sum(v * v for v in t)

    @given(triplets(), st.integers(1, 8))
    def test_split_partitions(self, t, m):
        parts = t.split(m)
        assert [v for p in parts for v in p] == list(t)

    @given(triplets(), st.fractions(min_value=-100, max_value=100))
    @settings(max_examples=60)
    def test_split_at_crossing_covers(self, t, cross):
        parts = split_at_crossing(t, cross)
        assert [v for p in parts for v in p] == list(t.normalized())
        # each side is sign-pure wrt (v - cross)
        for p in parts:
            signs = {(v > cross) - (v < cross) for v in p}
            assert len(signs - {0}) <= 1


class TestLPProperties:
    @given(
        st.lists(
            st.tuples(st.integers(1, 9), st.integers(-20, 20)),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_weighted_median_objective(self, points):
        """min sum w|x-a| solved by LP equals brute force over candidates."""
        m = LPModel()
        x = m.var("x")
        obj = None
        for i, (w, a) in enumerate(points):
            t = m.var(f"t{i}", lower=0)
            m.add_abs_bound(t, x - a)
            obj = t * w if obj is None else obj + t * w
        m.minimize(obj)
        s = m.solve("scipy")
        best = min(
            sum(w * abs(c - a) for w, a in points)
            for c in {a for _, a in points}
        )
        assert s.objective == __import__("pytest").approx(best, abs=1e-6)
