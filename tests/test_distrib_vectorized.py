"""Unit tests for the vectorized front-pricing kernels.

The exhaustive scalar/simulator equalities live in
``tests/test_differential.py``; this file covers the machinery itself —
padding of ragged records, tensor caching and its counters, the
empty/single/degenerate fronts, contract-violation parity with the
scalar path, and the ``vectorize=False`` fallback plumbing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import cachestats
from repro.align import align_program
from repro.distrib import (
    axis_front_hops,
    build_profile,
    compile_front,
    evaluate_front,
    front_costs,
    naive_costs,
    plan_distribution,
)
from repro.distrib.costmodel import CostVector
from repro.distrib.enumerate import axis_candidates
from repro.distrib.vectorized import (
    _MODE_BLOCK,
    _MODE_IDENTITY,
    _MODE_WRAP,
    _axis_dist_params,
    _pad_rows,
)
from repro.lang import programs
from repro.machine import Block, BlockCyclic, Cyclic, Distribution, Identity
from repro.machine.distribution import AxisDistribution
from repro.topology import parse_topology


def _profile(prog, **kw):
    plan = align_program(prog, **kw)
    return build_profile(plan.adg, plan.alignments)


@pytest.fixture(scope="module")
def profile():
    return _profile(programs.figure1(n=12), replication=False)


class TestPadRows:
    def test_ragged_rows_pad_with_first_coordinate(self):
        rows = [np.array([5, 6, 7]), np.array([9]), np.array([2, 3])]
        src, weight = _pad_rows(rows, [10, 20, 30])
        assert src.shape == weight.shape == (3, 3)
        # Padded slots repeat the row's own first cell (always
        # in-window) and carry zero weight.
        assert src.tolist() == [[5, 6, 7], [9, 9, 9], [2, 3, 2]]
        assert weight.tolist() == [[10, 10, 10], [20, 0, 0], [30, 30, 0]]

    def test_empty_row_contributes_nothing(self):
        src, weight = _pad_rows([np.array([], dtype=np.int64), np.array([4])], [7, 8])
        assert weight[0].tolist() == [0]
        assert weight[1].tolist() == [8]

    def test_all_empty(self):
        src, weight = _pad_rows([], [])
        assert src.shape == (0, 0) and weight.shape == (0, 0)


class TestAxisDistParams:
    def test_modes(self):
        assert _axis_dist_params(Block(4, 3, 1)) == (_MODE_BLOCK, 4, 3, 1)
        assert _axis_dist_params(Cyclic(4, 2)) == (_MODE_WRAP, 4, 1, 2)
        assert _axis_dist_params(BlockCyclic(4, 2, 0)) == (_MODE_WRAP, 4, 2, 0)
        assert _axis_dist_params(Identity()) == (_MODE_IDENTITY, 1, 1, 0)

    def test_unknown_scheme_rejected_with_fallback_hint(self):
        class Weird(AxisDistribution):
            def owner(self, cell):  # pragma: no cover - never called
                return 0

        with pytest.raises(TypeError, match="vectorize=False"):
            _axis_dist_params(Weird())


class TestCompileFront:
    def test_cached_once_per_profile(self, profile):
        h0, m0 = cachestats._cell("distrib.front_tensors")
        first = compile_front(profile)
        second = compile_front(profile)
        assert first is second
        h1, m1 = cachestats._cell("distrib.front_tensors")
        # At most one compilation for this profile; the second call hit.
        assert h1 > h0

    def test_tensor_shapes_cover_every_record(self, profile):
        tensors = compile_front(profile)
        assert tensors.template_rank == profile.template_rank
        n_group_rows = sum(g.weight.shape[0] for g in tensors.groups)
        assert n_group_rows == len(profile.records)
        for front in tensors.axes:
            if front is None:
                continue
            assert front.src.shape == front.dst.shape == front.weight.shape
            assert front.lo <= front.hi

    def test_weights_zero_exactly_on_padding(self, profile):
        # Reconstruct total moved elements from the group tensors: the
        # sum of weights must equal count * len for every record.
        tensors = compile_front(profile)
        want = sum(r.count * r.src[0].size for r in profile.records if r.axes)
        got = sum(int(g.weight.sum()) for g in tensors.groups if g.axes)
        assert got == want


class TestFrontEdgeCases:
    def test_empty_front_prices_to_empty_matrix(self, profile):
        out = evaluate_front(profile, [])
        assert out.shape == (0, 3)
        assert front_costs(profile, [], None) == []

    def test_single_candidate_equals_scalar(self, profile):
        ident = Distribution.identity(profile.template_rank)
        out = evaluate_front(profile, [ident])
        cv = profile.evaluate(ident)
        assert out.shape == (1, 3)
        assert tuple(int(x) for x in out[0]) == (cv.hops, cv.moved, cv.broadcast)

    def test_communication_free_profile(self):
        # A single self-assignment has no realignment communication at
        # all: no groups, yet the front must still price correctly.
        from repro.lang import parse

        prof = _profile(parse("real A(8)\nA(1:8) = A(1:8) * 2.0"))
        ident = Distribution.identity(prof.template_rank)
        out = evaluate_front(prof, [ident, ident])
        for row in out:
            cv = prof.evaluate(ident)
            assert tuple(int(x) for x in row) == (cv.hops, cv.moved, cv.broadcast)

    def test_rank_mismatch_rejected_like_scalar(self, profile):
        bad = Distribution.identity(profile.template_rank + 1)
        with pytest.raises(ValueError, match="rank"):
            evaluate_front(profile, [bad])

    def test_contract_violation_raises_like_scalar(self, profile):
        # A base above the window's low cell violates the ownership
        # contract; the batch checker must refuse exactly like
        # validate_cells does on the scalar path.
        lo, hi = profile.window[0]
        axes = [
            Block(2, (hi - lo + 1), lo + 1) if t == 0 else Identity()
            for t in range(profile.template_rank)
        ]
        bad = Distribution(tuple(axes))
        with pytest.raises(ValueError, match="below distribution base"):
            evaluate_front(profile, [bad])
        with pytest.raises(ValueError):
            profile.evaluate(bad)

    def test_axis_front_hops_matches_scalar_per_candidate(self, profile):
        for t, (lo, hi) in enumerate(profile.window):
            cands = axis_candidates(lo, hi - lo + 1, 4)
            hops = axis_front_hops(profile, t, cands)
            assert hops.shape == (len(cands),)
            for i, c in enumerate(cands):
                assert int(hops[i]) == profile.axis_hops(
                    t, c.to_axis_distribution()
                ), (t, i)

    def test_axis_front_hops_with_metric(self, profile):
        topo = parse_topology("ring:4")
        metric = topo.axis_metric(4, 0)
        lo, hi = profile.window[0]
        cands = axis_candidates(lo, hi - lo + 1, 4)
        hops = axis_front_hops(profile, 0, cands, metric)
        for i, c in enumerate(cands):
            assert int(hops[i]) == profile.axis_hops(
                0, c.to_axis_distribution(), metric
            )

    def test_axis_front_hops_empty_candidates(self, profile):
        assert axis_front_hops(profile, 0, []).shape == (0,)

    def test_evaluate_front_method_on_profile(self, profile):
        ident = Distribution.identity(profile.template_rank)
        out = profile.evaluate_front([ident])
        cv = profile.evaluate(ident)
        assert tuple(int(x) for x in out[0]) == (cv.hops, cv.moved, cv.broadcast)


class TestCountersAndFallback:
    def test_front_price_counter_tracks_both_paths(self, profile):
        cell = cachestats._cell("distrib.front_price")
        v0, s0 = cell
        plan_distribution(profile, 4, vectorize=True)
        v1, s1 = cell
        assert v1 > v0  # fast-path candidate pricings
        plan_distribution(profile, 4, vectorize=False)
        v2, s2 = cell
        assert s2 > s1  # scalar-fallback candidate pricings
        assert v2 == v1

    def test_naive_costs_fallback_equality(self, profile):
        topo = parse_topology("torus:2x2")
        fast = naive_costs(profile, 4, topo, vectorize=True)
        slow = naive_costs(profile, 4, topo, vectorize=False)
        assert fast == slow
        assert all(isinstance(c, CostVector) for c in fast.values())

    def test_front_costs_are_costvectors_summable(self, profile):
        ident = Distribution.identity(profile.template_rank)
        costs = front_costs(profile, [ident, ident], None)
        total = sum(costs)  # exercises CostVector.__radd__
        assert total == costs[0] + costs[1]
