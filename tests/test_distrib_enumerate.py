"""Unit tests for distribution-candidate enumeration."""

import pytest

from repro.align import align_program
from repro.distrib import (
    axis_candidates,
    balanced_factorization,
    build_profile,
    covering_block,
    grid_factorizations,
    naive_costs,
    naive_distributions,
    space_size,
)
from repro.distrib.plan import BLOCK, BLOCK_CYCLIC, CYCLIC
from repro.lang import programs
from repro.machine import Block, Cyclic, Identity


class TestGridFactorizations:
    def test_rank_one(self):
        assert grid_factorizations(6, 1) == [(6,)]

    def test_rank_two(self):
        assert grid_factorizations(4, 2) == [(1, 4), (2, 2), (4, 1)]

    def test_products_and_completeness(self):
        grids = grid_factorizations(12, 3)
        assert all(g[0] * g[1] * g[2] == 12 for g in grids)
        assert len(grids) == len(set(grids))
        # d(12)=6 divisors; ordered factorizations into 3 parts: 18
        assert len(grids) == 18

    def test_bad_input(self):
        with pytest.raises(ValueError):
            grid_factorizations(0, 1)
        with pytest.raises(ValueError):
            grid_factorizations(4, 0)

    def test_balanced(self):
        assert balanced_factorization(16, 2) == (4, 4)
        assert balanced_factorization(8, 3) == (2, 2, 2)
        assert balanced_factorization(7, 2) in [(1, 7), (7, 1)]


class TestAxisCandidates:
    def test_covering_block(self):
        assert covering_block(100, 4) == 25
        assert covering_block(10, 3) == 4
        assert covering_block(1, 8) == 1

    def test_single_processor_collapses(self):
        cands = axis_candidates(0, 64, 1)
        assert len(cands) == 1
        assert cands[0].scheme == BLOCK and cands[0].block == 64

    def test_schemes_present(self):
        cands = axis_candidates(-3, 64, 4, block_sizes=(2, 4, 8))
        schemes = [c.scheme for c in cands]
        assert schemes.count(BLOCK) == 1
        assert schemes.count(CYCLIC) == 1
        assert schemes.count(BLOCK_CYCLIC) == 3
        assert all(c.base == -3 for c in cands)
        assert all(c.nprocs == 4 for c in cands)

    def test_block_cyclic_sizes_filtered(self):
        # covering block is 2, so no block-cyclic size fits strictly
        # between cyclic (1) and block (2)
        cands = axis_candidates(0, 8, 4, block_sizes=(2, 4, 8))
        assert [c.scheme for c in cands] == [BLOCK, CYCLIC]


class TestNaiveBaselines:
    def _profile(self):
        plan = align_program(programs.stencil_sweep(n=32, iters=2),
                             replication=False)
        return build_profile(plan.adg, plan.alignments)

    def test_kinds(self):
        dists = naive_distributions(self._profile(), 4)
        assert isinstance(dists["all-block"].axes[0], Block)
        assert isinstance(dists["all-cyclic"].axes[0], Cyclic)
        assert isinstance(dists["identity"].axes[0], Identity)

    def test_costs_keys(self):
        costs = naive_costs(self._profile(), 4)
        assert set(costs) == {"all-block", "all-cyclic", "identity"}
        # the stencil's small shifts favour block over cyclic
        assert costs["all-block"].hops < costs["all-cyclic"].hops

    def test_space_size_counts(self):
        profile = self._profile()
        lo, hi = profile.window[0]
        # rank 1: one factorization, so the space is one axis's candidates
        assert space_size(profile, 4) == len(axis_candidates(lo, hi - lo + 1, 4))
