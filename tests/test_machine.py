"""Unit tests for the machine simulator."""

import numpy as np
import pytest

from repro.align import align_program
from repro.align.position import Alignment, AxisAlignment, ReplicatedExtent
from repro.ir import LIV, AffineForm
from repro.lang import programs
from repro.machine import (
    Block,
    BlockCyclic,
    Cyclic,
    Distribution,
    Identity,
    MoveCount,
    ProcessorGrid,
    Template,
    count_move,
    format_table,
    measure_plan,
)

k = LIV("k", 0)


class TestDistributions:
    def test_block_mapping(self):
        b = Block(nprocs=4, block=8)
        cells = np.array([0, 7, 8, 31])
        assert list(b.map(cells)) == [0, 0, 1, 3]

    def test_cyclic_mapping(self):
        c = Cyclic(nprocs=4)
        assert list(c.map(np.array([0, 1, 4, 5]))) == [0, 1, 0, 1]

    def test_block_cyclic(self):
        bc = BlockCyclic(nprocs=2, block=3)
        assert list(bc.map(np.arange(12))) == [0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 1]

    def test_identity(self):
        i = Identity()
        assert list(i.map(np.array([3, 9]))) == [3, 9]

    def test_factory_block(self):
        t = Template.for_window((100,))
        d = Distribution.block(t, ProcessorGrid((4,)))
        assert isinstance(d.axes[0], Block)
        assert d.axes[0].block == 25

    def test_moved_mask_and_hops(self):
        d = Distribution((Cyclic(4),))
        src = [np.array([0, 1, 2, 3])]
        dst = [np.array([1, 2, 3, 4])]
        assert d.moved_mask(src, dst).all()
        assert d.hop_distance(src, dst).sum() == 1 + 1 + 1 + 3

    def test_block_rejects_out_of_coverage(self):
        b = Block(nprocs=4, block=8)  # covers [0, 32)
        with pytest.raises(ValueError, match="outside covered range"):
            b.map(np.array([0, 32]))
        with pytest.raises(ValueError, match="below distribution base"):
            b.map(np.array([-1, 3]))

    def test_cyclic_rejects_below_base(self):
        with pytest.raises(ValueError, match="below distribution base"):
            Cyclic(nprocs=4).map(np.array([-1]))
        with pytest.raises(ValueError, match="below distribution base"):
            Cyclic(nprocs=4, base=10).map(np.array([9]))

    def test_block_cyclic_rejects_below_base(self):
        with pytest.raises(ValueError, match="below distribution base"):
            BlockCyclic(nprocs=2, block=3).map(np.array([-5]))
        # but any cell at/above base is in contract (cyclic wraps forever)
        assert list(BlockCyclic(nprocs=2, block=3).map(np.array([10**6]))) == [1]

    def test_base_shifts_coverage(self):
        b = Block(nprocs=2, block=4, base=-8)  # covers [-8, 0)
        assert list(b.map(np.array([-8, -5, -4, -1]))) == [0, 0, 1, 1]

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            Block(nprocs=0, block=4)
        with pytest.raises(ValueError):
            Block(nprocs=4, block=0)
        with pytest.raises(ValueError):
            Cyclic(nprocs=0)
        with pytest.raises(ValueError):
            BlockCyclic(nprocs=2, block=-1)

    def test_identity_allows_any_cell(self):
        assert list(Identity().map(np.array([-7, 0, 7]))) == [-7, 0, 7]

    def test_processor_grid(self):
        g = ProcessorGrid((2, 3))
        assert g.num_processors == 6
        assert g.linearize((1, 2)) == 5
        with pytest.raises(ValueError):
            ProcessorGrid((0,))


class TestCountMove:
    def test_pure_shift(self):
        a = Alignment.canonical(1, 1)
        b = a.with_offset(0, AffineForm(3))
        mc = count_move(a, b, (10,), {}, Distribution.identity(1))
        assert mc.elements_moved == 10
        assert mc.hop_cost == 30
        assert not mc.general

    def test_no_move(self):
        a = Alignment.canonical(1, 1)
        mc = count_move(a, a, (10,), {}, Distribution.identity(1))
        assert mc.elements_moved == 0

    def test_stride_mismatch_general(self):
        a = Alignment.canonical(1, 1)
        b = Alignment((AxisAlignment(0, AffineForm(2), AffineForm(0)),))
        mc = count_move(a, b, (10,), {}, Distribution.identity(1))
        assert mc.general
        assert mc.elements_moved == 10

    def test_broadcast(self):
        a = Alignment.canonical(1, 2)
        b = a.with_replication(1, ReplicatedExtent())
        mc = count_move(a, b, (10,), {}, Distribution.identity(2))
        assert mc.broadcast_elements == 10

    def test_from_replicated_is_free(self):
        a = Alignment.canonical(1, 2).with_replication(1, ReplicatedExtent())
        b = Alignment.canonical(1, 2).with_offset(1, AffineForm(5))
        mc = count_move(a, b, (10,), {}, Distribution.identity(2))
        assert mc.elements_moved == 0
        assert mc.broadcast_elements == 0

    def test_block_absorbs_small_shift(self):
        a = Alignment.canonical(1, 1)
        b = a.with_offset(0, AffineForm(1))
        # cells span [1, 17]; blocks of 9 from base 1 cover [1, 19)
        d = Distribution((Block(nprocs=2, block=9, base=1),))
        mc = count_move(a, b, (16,), {}, d)
        # only the elements at each block boundary cross processors
        assert mc.elements_moved == 1
        assert mc.hop_cost == 1

    def test_mobile_alignment_env(self):
        ax0 = AxisAlignment(None, None, AffineForm(0, {k: 1}))
        ax1 = AxisAlignment(0, AffineForm(1), AffineForm(0))
        a = Alignment((ax0, ax1))
        b = Alignment((AxisAlignment(None, None, AffineForm(1, {k: 1})), ax1))
        mc = count_move(a, b, (10,), {k: 5}, Distribution.identity(2))
        assert mc.hop_cost == 10  # one row apart regardless of k


class TestMeasurePlan:
    def test_identity_matches_analytic(self):
        for prog, kwargs in [
            (programs.figure1(n=16), dict(replication=False)),
            (programs.example1(n=32), {}),
            (programs.stencil_sweep(n=24, iters=2), dict(replication=False)),
        ]:
            plan = align_program(prog, **kwargs)
            rep = measure_plan(plan, scheme="identity")
            assert rep.hop_cost == plan.total_cost, prog.name

    def test_broadcast_counted(self):
        plan = align_program(programs.figure4(nt=8, nk=6))
        rep = measure_plan(plan, scheme="identity")
        assert rep.broadcast_elements == 8  # one entry broadcast of t

    def test_block_distribution_reduces_moves(self):
        plan = align_program(programs.stencil_sweep(n=64, iters=2), replication=False)
        ident = measure_plan(plan, scheme="identity")
        block = measure_plan(plan, scheme="block", processors=(4,))
        assert block.elements_moved < ident.elements_moved

    def test_requires_processors(self):
        plan = align_program(programs.example1(n=8))
        with pytest.raises(ValueError):
            measure_plan(plan, scheme="block")

    def test_summary_string(self):
        plan = align_program(programs.example1(n=8))
        rep = measure_plan(plan)
        assert "moved=" in rep.summary()


class TestFormatTable:
    def test_renders(self):
        out = format_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "333" in out
