"""Integration tests: every quantitative claim in the paper, end to end.

Each test cites the paper location it reproduces; EXPERIMENTS.md points
back here.  The golden-snapshot class at the bottom pins every paper
example's full plan (costs, offsets, strides, schemes) to
``tests/golden/*.json`` so refactors cannot silently shift the numbers;
regenerate deliberately with ``pytest --update-golden``.
"""

from fractions import Fraction

import pytest

from repro.adg import build_adg
from repro.align import align_and_distribute, align_program, solve_axis_stride
from repro.align.offset_mobile import fixed_partitioning, unrolling
from repro.lang import programs
from repro.machine import measure_plan


class TestExample1:
    """Section 2.1 Example 1: offsets A at [i], B at [i-1] remove the
    nearest-neighbour shift."""

    def test_zero_cost_and_relative_offset(self):
        plan = align_program(programs.example1())
        assert plan.total_cost == 0
        src = plan.source_alignments()
        assert src["B"].axes[0].offset - src["A"].axes[0].offset == -1


class TestExample2:
    """Example 2: strides A at [2i], B at [i] avoid general comm."""

    def test_zero_cost_and_stride_ratio(self):
        plan = align_program(programs.example2())
        assert plan.total_cost == 0
        src = plan.source_alignments()
        sa = src["A"].axes[0].stride
        sb = src["B"].axes[0].stride
        assert sa == sb * 2


class TestExample3:
    """Example 3: C axis-reversed relative to B removes the transpose."""

    def test_zero_cost_and_swapped_axes(self):
        plan = align_program(programs.example3())
        assert plan.total_cost == 0
        src = plan.source_alignments()
        assert src["B"].axis_signature() != src["C"].axis_signature()


class TestExample4Figure1:
    """Example 4 / Figure 1: mobile offset V(i) at [k, i-k+1]."""

    def test_mobile_alignment_exact(self):
        from repro.ir import LIV, AffineForm

        k = LIV("k", 0)
        adg = build_adg(programs.figure1())
        skel = solve_axis_stride(adg).skeletons
        res = unrolling(adg, skel)
        for p in adg.ports():
            if "merge(V" in p.uid:
                assert res.offsets[(p.key, 0)] == AffineForm.variable(k)
                assert res.offsets[(p.key, 1)] == AffineForm(1, {k: -1})

    def test_mobile_vs_static_factor(self):
        static = align_program(programs.figure1(), replication=False, mobile=False)
        mobile = align_program(programs.figure1(), replication=False)
        assert mobile.total_cost == 39600
        assert static.total_cost / mobile.total_cost > 10


class TestExample5:
    """Example 5: mobile stride halves general communication (2 -> 1
    per iteration)."""

    def test_cost_is_one_comm_per_iteration(self):
        adg = build_adg(programs.example5())
        res = solve_axis_stride(adg)
        assert res.cost == 980  # 20 elements x 49 loop-back realignments


class TestFigure3ErrorBound:
    """Section 4.2: approximation within (1 + 2/m^2); at most one
    subrange per edge contains a zero crossing after refinement."""

    @pytest.mark.parametrize("m,bound", [(3, 1 + 2 / 9), (5, 1 + 2 / 25), (10, 1.02)])
    def test_bound_on_wavefront(self, m, bound):
        adg = build_adg(programs.figure1(n=40))
        skel = solve_axis_stride(adg).skeletons
        exact = unrolling(adg, skel)
        approx = fixed_partitioning(adg, skel, m=m)
        assert approx.cost <= exact.cost * bound + 1e-9

    def test_error_decreases_with_m(self):
        adg = build_adg(programs.skewed_wavefront(n=24))
        skel = solve_axis_stride(adg).skeletons
        costs = [fixed_partitioning(adg, skel, m=m).cost for m in (1, 2, 3, 5)]
        assert costs[-1] <= costs[0]
        assert costs[-2] <= costs[0]


class TestFigure4:
    """Figure 4: replicate t -> one broadcast at loop entry instead of
    one per iteration."""

    def test_cost_ratio_is_iteration_count(self):
        with_rep = align_program(programs.figure4())
        without = align_program(programs.figure4(), replication=False)
        assert with_rep.total_cost == 100
        assert without.total_cost == 200 * 100


class TestTheorem1:
    """Theorem 1: the min-cut labeling is optimal (see
    test_align_replication.TestEndToEnd.test_cut_optimality_vs_exhaustive
    for the brute-force cross-check)."""

    def test_cut_never_worse_than_all_n_or_all_r_baselines(self):
        from repro.align import label_replication
        from repro.ir import weighted_moments

        program = programs.figure4()
        adg = build_adg(program)
        skel = solve_axis_stride(adg).skeletons
        rep = label_replication(adg, skel, program)
        # all-N baseline: every forced-R edge broadcast per iteration
        minimal = label_replication(adg, skel, program, minimal=True)

        def broadcast_cost(labels):
            total = Fraction(0)
            for e in adg.edges:
                for axis in range(adg.template_rank):
                    lu = labels.get((e.tail.key, axis), "N")
                    lv = labels.get((e.head.key, axis), "N")
                    if lu == "N" and lv == "R":
                        total += weighted_moments(e.space, e.weight).m0
                        break
            return total

        assert broadcast_cost(rep.labels) <= broadcast_cost(minimal.labels)


class TestEquation1Validation:
    """Section 2.3: the cost model is operational — the machine simulator
    under the identity distribution reproduces equation 1 exactly."""

    @pytest.mark.parametrize(
        "prog,kwargs",
        [
            (programs.figure1(n=12), dict(replication=False)),
            (programs.example1(n=24), {}),
            (programs.example2(n=16), {}),
            (programs.stencil_sweep(n=16, iters=2), dict(replication=False)),
            (programs.skewed_wavefront(n=8), dict(replication=False)),
        ],
        ids=["figure1", "example1", "example2", "stencil", "wavefront"],
    )
    def test_hops_equal_analytic(self, prog, kwargs):
        plan = align_program(prog, **kwargs)
        rep = measure_plan(plan, scheme="identity")
        nongeneral = all(not t.count.general for t in rep.edges)
        if nongeneral:
            assert rep.hop_cost == plan.total_cost


def plan_snapshot(plan) -> dict:
    """A JSON-stable projection of everything the pipeline decided.

    Exact rationals are serialized as strings; alignments via their
    canonical repr (axis/stride/offset/replication all visible).
    """
    snap = {
        "program": plan.program.name,
        "total_cost": str(plan.total_cost),
        "axis_stride_cost": str(plan.axis_stride.cost),
        "replication_rounds": plan.replication_rounds,
        "alignments": {
            arr: repr(al) for arr, al in sorted(plan.source_alignments().items())
        },
    }
    if plan.distribution is not None:
        d = plan.distribution
        snap["distribution"] = {
            "directive": d.directive(),
            "grid": list(d.grid),
            "exact": d.exact,
            "axes": [
                {
                    "scheme": a.scheme,
                    "nprocs": a.nprocs,
                    "block": a.block,
                    "base": a.base,
                }
                for a in d.axes
            ],
            "cost": {
                "hops": d.cost.hops,
                "moved": d.cost.moved,
                "broadcast": d.cost.broadcast,
            },
        }
    return snap


class TestGoldenSnapshots:
    """Every paper example's full plan, pinned to tests/golden/*.json.

    A refactor that shifts any paper number — total cost, an offset, a
    stride, the chosen distribution — fails here even if the coarser
    claim-level assertions above still hold.
    """

    NPROCS = 4

    @pytest.mark.parametrize("name", sorted(programs.ALL_PAPER_FRAGMENTS))
    def test_plan_matches_golden(self, name, golden):
        prog = programs.ALL_PAPER_FRAGMENTS[name]()
        plan = align_and_distribute(prog, self.NPROCS)
        golden.check(name, plan_snapshot(plan))
