"""Tests for the ``python -m repro`` command-line driver."""

import subprocess
import sys

import pytest

from repro.__main__ import main

FIG1 = """real A(64,64), V(128)
do k = 1, 64
  A(k,1:64) = A(k,1:64) + V(k:k+63)
enddo
"""


@pytest.fixture
def prog_file(tmp_path):
    f = tmp_path / "fig1.dp"
    f.write_text(FIG1)
    return str(f)


class TestCLI:
    def test_basic_run(self, prog_file, capsys):
        assert main([prog_file]) == 0
        out = capsys.readouterr().out
        assert "total realignment cost" in out

    def test_algorithm_flag(self, prog_file, capsys):
        assert main([prog_file, "--algorithm", "unrolling", "--no-replication"]) == 0
        out = capsys.readouterr().out
        assert "total realignment cost" in out

    def test_static_flag_costs_more(self, prog_file, capsys):
        main([prog_file, "--no-replication"])
        mobile_out = capsys.readouterr().out
        main([prog_file, "--no-replication", "--static"])
        static_out = capsys.readouterr().out

        def cost(text):
            for line in text.splitlines():
                if "total realignment cost" in line:
                    return int(line.rsplit(" ", 1)[1])
            raise AssertionError(text)

        assert cost(static_out) > cost(mobile_out)

    def test_dot_output(self, prog_file, tmp_path, capsys):
        dot = tmp_path / "adg.dot"
        assert main([prog_file, "--dot", str(dot)]) == 0
        assert dot.read_text().startswith("digraph")

    def test_measure(self, prog_file, capsys):
        assert main([prog_file, "--no-replication", "--measure", "identity"]) == 0
        out = capsys.readouterr().out
        assert "machine (identity):" in out

    def test_measure_block_with_procs(self, prog_file, capsys):
        assert (
            main(
                [prog_file, "--no-replication", "--measure", "block", "--procs", "4,4"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "machine (block):" in out

    def test_distribute(self, prog_file, capsys):
        assert main([prog_file, "--no-replication", "--distribute", "4"]) == 0
        out = capsys.readouterr().out
        assert "distribution plan" in out
        assert "DISTRIBUTE T(" in out
        assert "naive" in out
        assert "machine (planned):" in out

    def test_distribute_phases(self, prog_file, capsys):
        assert (
            main(
                [prog_file, "--no-replication", "--distribute", "4", "--phases"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "phased distribution plan" in out

    def test_phases_requires_distribute(self, prog_file):
        with pytest.raises(SystemExit):
            main([prog_file, "--phases"])

    def test_replan_from(self, prog_file, tmp_path, capsys):
        edited = tmp_path / "fig1_edit.dp"
        edited.write_text(FIG1.replace("+ V", "- V"))
        assert (
            main([str(edited), "--replan-from", prog_file, "--distribute", "4"])
            == 0
        )
        out = capsys.readouterr().out
        assert "delta replan: strategy=carry_all" in out
        assert "reused (clean)" in out
        assert "distribution plan" in out

    def test_replan_from_rejects_batch_and_phases(self, prog_file, tmp_path):
        edited = tmp_path / "e.dp"
        edited.write_text(FIG1)
        with pytest.raises(SystemExit):
            main(["--batch", "4", "--replan-from", prog_file])
        with pytest.raises(SystemExit):
            main(
                [
                    str(edited),
                    "--replan-from",
                    prog_file,
                    "--distribute",
                    "4",
                    "--phases",
                ]
            )

    def test_subprocess_invocation(self, prog_file):
        res = subprocess.run(
            [sys.executable, "-m", "repro", prog_file, "--m", "3"],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert res.returncode == 0
        assert "total realignment cost" in res.stdout


class TestBatchCLI:
    def test_generated_corpus(self, tmp_path, capsys):
        out_json = tmp_path / "batch.json"
        assert (
            main(
                [
                    "--batch",
                    "6",
                    "--distribute",
                    "4",
                    "--serial",
                    "--batch-json",
                    str(out_json),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "batch: 6 programs" in out
        assert "cache affine.evaluate" in out
        import json

        blob = json.loads(out_json.read_text())
        assert blob["programs"] == 6 and blob["ok"] == 6

    def test_directory_corpus(self, tmp_path, capsys):
        d = tmp_path / "corpus"
        d.mkdir()
        (d / "a.dp").write_text(FIG1)
        (d / "b.dp").write_text("real A(8)\nA(1:8) = A(1:8) + 1.0\n")
        assert main(["--batch", str(d), "--serial"]) == 0
        out = capsys.readouterr().out
        assert "batch: 2 programs" in out

    def test_failures_set_exit_code(self, tmp_path, capsys):
        d = tmp_path / "corpus"
        d.mkdir()
        (d / "bad.dp").write_text("this is junk (\n")
        assert main(["--batch", str(d), "--serial"]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_file_required_without_batch(self):
        with pytest.raises(SystemExit):
            main([])

    def test_batch_rejects_single_program_flags(self, prog_file):
        for extra in (
            [prog_file],
            ["--measure", "identity"],
            ["--dot", "/tmp/x.dot"],
            ["--distribute", "4", "--phases"],
        ):
            with pytest.raises(SystemExit):
                main(["--batch", "2", *extra])

    def test_bad_batch_argument(self, capsys):
        assert main(["--batch", "/definitely/not/there"]) == 1

    def test_nonpositive_count_rejected(self, capsys):
        assert main(["--batch", "0"]) == 1
        assert main(["--batch", "-5"]) == 1
        assert "must be >= 1" in capsys.readouterr().err

    def test_non_utf8_file_is_diagnosed_not_crashed(self, tmp_path, capsys):
        d = tmp_path / "corpus"
        d.mkdir()
        (d / "good.dp").write_text("real A(8)\nA(1:8) = A(1:8) + 1.0\n")
        (d / "junk.bin").write_bytes(b"\xff\xfe\x00garbage\x80")
        assert main(["--batch", str(d), "--serial"]) == 1
        out = capsys.readouterr().out
        assert "1 ok, 1 failed" in out and "FAILED junk.bin" in out
