"""Unit tests for the DSL builder and the pretty-printer round-trip."""

import pytest

from repro.lang import (
    ProgramBuilder,
    cos,
    gather,
    parse,
    pretty,
    spread,
    sum_,
    transpose,
    typecheck,
)
from repro.lang import programs


class TestBuilder:
    def test_figure1_equivalent(self):
        b = ProgramBuilder("fig1")
        A = b.real("A", 100, 100)
        V = b.real("V", 200)
        with b.do("k", 1, 100) as k:
            b.assign(A[k, 1:100], A[k, 1:100] + V[k : k + 99])
        built = pretty(b.build())
        parsed = pretty(programs.figure1())
        assert built == parsed

    def test_operator_overloads(self):
        b = ProgramBuilder()
        A = b.real("A", 8)
        B = b.real("B", 8)
        b.assign(A, 2 * B - 1)
        b.assign(A, -B / 2)
        p = b.build()
        typecheck(p)
        assert "2 * B - 1" in pretty(p)

    def test_full_slice(self):
        b = ProgramBuilder()
        A = b.real("A", 4, 6)
        B = b.real("B", 6)
        b.assign(A[2, :], B)
        p = b.build()
        typecheck(p)
        assert "A(2,:)" in pretty(p)

    def test_intrinsics(self):
        b = ProgramBuilder()
        t = b.real("t", 4)
        B = b.real("B", 4, 6)
        r = b.real("r", 4)
        b.assign(t, cos(t))
        b.assign(B, spread(t, dim=2, ncopies=6))
        b.assign(r, sum_(B, dim=2))
        typecheck(b.build())

    def test_transpose(self):
        b = ProgramBuilder()
        B = b.real("B", 4, 4)
        C = b.real("C", 4, 4)
        b.assign(B, B + transpose(C))
        typecheck(b.build())

    def test_gather(self):
        b = ProgramBuilder()
        T = b.real("T", 16, readonly=True, replicate_hint=True)
        idx = b.integer("idx", 5)
        y = b.real("y", 5)
        b.assign(y[1:5], gather(T, idx[1:5]))
        typecheck(b.build())

    def test_if_blocks(self):
        b = ProgramBuilder()
        A = b.real("A", 8)
        with b.if_("converged", prob=0.25) as branch:
            b.assign(A, A + 1)
            with branch.otherwise():
                b.assign(A, A - 1)
        p = b.build()
        s = p.body[0]
        assert s.prob == 0.25
        assert len(s.then_body) == 1 and len(s.else_body) == 1

    def test_shadowing_rejected(self):
        b = ProgramBuilder()
        b.real("A", 4)
        with pytest.raises(ValueError):
            with b.do("k", 1, 2):
                with b.do("k", 1, 2):
                    pass

    def test_open_slice_rejected(self):
        b = ProgramBuilder()
        A = b.real("A", 8)
        with pytest.raises(ValueError):
            A[1:]  # missing hi

    def test_assign_to_expression_rejected(self):
        b = ProgramBuilder()
        A = b.real("A", 8)
        with pytest.raises(TypeError):
            b.assign(A + 1, A)


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(programs.ALL_PAPER_FRAGMENTS))
    def test_paper_fragments(self, name):
        p = programs.ALL_PAPER_FRAGMENTS[name]()
        text = pretty(p)
        assert pretty(parse(text)) == text

    @pytest.mark.parametrize(
        "gen",
        [
            programs.stencil_sweep,
            programs.skewed_wavefront,
            programs.triangular_sections,
            programs.doubly_nested,
            programs.conditional_update,
        ],
    )
    def test_generators(self, gen):
        p = gen()
        text = pretty(p)
        assert pretty(parse(text)) == text

    def test_negative_step_roundtrip(self):
        src = "real A(10)\ndo k = 10, 1, -2\n  A(k) = 1\nenddo\n"
        assert pretty(parse(src)) == src

    def test_attributes_roundtrip(self):
        src = "readonly replicated real T(256)\n"
        p = parse(src)
        assert pretty(p) == src
