"""Unit tests for the LP layer: from-scratch simplex vs HiGHS."""

import pytest

from repro.solvers import LPModel

BACKENDS = ["simplex", "scipy"]


@pytest.mark.parametrize("backend", BACKENDS)
class TestBasicLPs:
    def test_bounded_minimum(self, backend):
        m = LPModel()
        x = m.var("x")
        y = m.var("y", lower=0)
        m.add(x - y, ">=", 1)
        m.add(x + y, ">=", 3)
        m.minimize(x + 2 * y)
        s = m.solve(backend)
        assert s.status == "optimal"
        assert s.objective == pytest.approx(3.0)

    def test_equality_constraints(self, backend):
        m = LPModel()
        x = m.var("x", lower=0)
        y = m.var("y", lower=0)
        m.add(x + y, "==", 10)
        m.minimize(3 * x + y)
        s = m.solve(backend)
        assert s.objective == pytest.approx(10.0)
        assert s.values[y] == pytest.approx(10.0)

    def test_free_variable_negative_optimum(self, backend):
        m = LPModel()
        x = m.var("x")
        m.add(x, ">=", -7)
        m.minimize(x)
        s = m.solve(backend)
        assert s.objective == pytest.approx(-7.0)

    def test_upper_bounds(self, backend):
        m = LPModel()
        x = m.var("x", lower=0, upper=4)
        m.minimize(-1 * x)
        s = m.solve(backend)
        assert s.objective == pytest.approx(-4.0)

    def test_infeasible(self, backend):
        m = LPModel()
        x = m.var("x", lower=0)
        m.add(x, "<=", -1)
        m.minimize(x)
        assert m.solve(backend).status == "infeasible"

    def test_unbounded(self, backend):
        m = LPModel()
        x = m.var("x")
        m.minimize(x)
        s = m.solve(backend)
        assert s.status == "unbounded"

    def test_abs_bound_pair(self, backend):
        # minimize |x - 5| + |x - 9| -> 4 anywhere in [5, 9]
        m = LPModel()
        x = m.var("x")
        t1 = m.var("t1", lower=0)
        t2 = m.var("t2", lower=0)
        m.add_abs_bound(t1, x - 5)
        m.add_abs_bound(t2, x - 9)
        m.minimize(t1 + t2)
        s = m.solve(backend)
        assert s.objective == pytest.approx(4.0)
        assert 5 - 1e-6 <= s.values[x] <= 9 + 1e-6

    def test_weighted_median(self, backend):
        # minimize sum w_i |x - a_i|: optimum at weighted median (a=3)
        m = LPModel()
        x = m.var("x")
        total = None
        for w, a in [(1, 0), (5, 3), (1, 10)]:
            t = m.var(f"t{a}", lower=0)
            m.add_abs_bound(t, x - a)
            total = t * w if total is None else total + t * w
        m.minimize(total)
        s = m.solve(backend)
        assert s.values[x] == pytest.approx(3.0, abs=1e-6)


class TestBackendsAgree:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_instances(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        m = LPModel()
        n = 5
        xs = [m.var(f"x{i}", lower=0, upper=10) for i in range(n)]
        for _ in range(6):
            coeffs = rng.integers(-3, 4, size=n)
            expr = None
            for c, x in zip(coeffs, xs):
                term = x * int(c)
                expr = term if expr is None else expr + term
            m.add(expr, ">=", int(rng.integers(-10, 5)))
        obj = None
        for x in xs:
            c = int(rng.integers(1, 5))
            obj = x * c if obj is None else obj + x * c
        m.minimize(obj)
        s1 = m.solve("simplex")
        s2 = m.solve("scipy")
        assert s1.status == s2.status
        if s1.status == "optimal":
            assert s1.objective == pytest.approx(s2.objective, abs=1e-6)


class TestModelLayer:
    def test_constraint_const_folding(self):
        m = LPModel()
        x = m.var("x")
        con = m.add(x + 5, "<=", 8)
        assert con.rhs == 3.0

    def test_linexpr_ops(self):
        m = LPModel()
        x = m.var("x")
        y = m.var("y")
        e = 2 * x - (y - 1)
        assert e.coeffs[x] == 2.0
        assert e.coeffs[y] == -1.0
        assert e.const == 1.0

    def test_unknown_backend(self):
        m = LPModel()
        m.var("x")
        with pytest.raises(ValueError):
            m.solve("nonsense")

    def test_unconstrained_zero_objective(self):
        m = LPModel()
        m.var("x")
        m.minimize(LPModel().var("y") * 0 if False else m.var("t", lower=0))
        s = m.solve("simplex")
        assert s.status == "optimal"
        assert s.objective == pytest.approx(0.0)
