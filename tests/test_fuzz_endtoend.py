"""End-to-end fuzzing: random programs through the whole pipeline.

Programs come from the shared scenario generator
(:mod:`repro.lang.generate`) — 2-D arrays, multi-statement loop bodies,
reductions, wavefronts, strides and multi-phase programs, not just the
1-D single-loop fragments the original ad-hoc fuzzer produced.  Seeds
are deterministic: seed ``s`` always denotes the same program.

For each generated (well-formed) program:

* the type checker accepts it and the interpreter executes it;
* the ADG validates structurally;
* the pipeline produces a nonnegative cost with consistent alignments
  (every node constraint holds on the rounded offsets);
* the machine simulator under the identity distribution reproduces the
  analytic equation-1 cost whenever no edge is general communication —
  the strongest cross-module invariant in the library.
"""

import pytest

from repro.align import align_program
from repro.align.constraints import EqualShift, node_offset_relations
from repro.lang import parse, pretty, typecheck
from repro.lang.generate import random_program
from repro.machine import measure_plan, run_program


@pytest.mark.parametrize("seed", range(14))
def test_random_program_pipeline(seed):
    src = random_program(seed)
    prog = parse(src, name=f"fuzz{seed}")
    typecheck(prog)
    # Round-trip.
    assert pretty(parse(pretty(prog))) == pretty(prog)
    # Semantics run.
    run_program(prog)
    # Pipeline.
    plan = align_program(prog, replication=False)
    plan.adg.validate()
    assert plan.total_cost >= 0
    # Rounded offsets satisfy every EqualShift node constraint exactly.
    skel = plan.axis_stride.skeletons
    for node in plan.adg.nodes:
        for rel in node_offset_relations(node, dict(skel)):
            if isinstance(rel, EqualShift):
                p_off = plan.alignments[rel.p.key].axes[rel.axis].offset
                q_off = plan.alignments[rel.q.key].axes[rel.axis].offset
                assert q_off - p_off == rel.shift, (seed, node.label)
    # Machine validation (identity distribution == equation 1), when no
    # edge is general communication.  Program-forced replication (spread
    # inputs) can survive replication=False, so broadcasts count too.
    rep = measure_plan(plan, scheme="identity")
    if all(not t.count.general for t in rep.edges):
        assert rep.hop_cost + rep.broadcast_elements == plan.total_cost, seed


@pytest.mark.parametrize("seed", range(14, 21))
def test_random_program_static_vs_mobile(seed):
    """Mobility can only help (static is a restriction of mobile)."""
    prog = parse(random_program(seed), name=f"fuzz{seed}")
    mobile = align_program(prog, replication=False, algorithm="unrolling")
    static = align_program(
        prog, replication=False, mobile=False, algorithm="unrolling"
    )
    assert mobile.total_cost <= static.total_cost


def test_seeds_are_deterministic():
    """The same seed must yield byte-identical source, run to run."""
    assert random_program(3) == random_program(3)
    assert random_program(3) != random_program(4)
