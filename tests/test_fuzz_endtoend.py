"""End-to-end fuzzing: random programs through the whole pipeline.

For each randomly generated (but well-formed) program:

* the type checker accepts it and the interpreter executes it;
* the ADG validates structurally;
* the pipeline produces a nonnegative cost with consistent alignments
  (every node constraint holds on the rounded offsets);
* the machine simulator under the identity distribution reproduces the
  analytic equation-1 cost whenever no edge is general communication —
  the strongest cross-module invariant in the library.
"""

import numpy as np
import pytest

from repro.align import align_program
from repro.align.constraints import EqualShift, node_offset_relations
from repro.lang import parse, pretty, typecheck
from repro.machine import measure_plan, run_program


def random_program(seed: int) -> str:
    """A random well-formed program over 1-D arrays with one loop."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(16, 48))
    iters = int(rng.integers(2, 10))
    width = int(rng.integers(4, n // 2))
    names = ["A", "B", "C"]
    decls = "real " + ", ".join(f"{x}({n + iters + width})" for x in names)
    lines = [decls]

    def section(name):
        mode = rng.integers(0, 3)
        if mode == 0:
            lo = int(rng.integers(1, n - width))
            return f"{name}({lo}:{lo + width - 1})"
        if mode == 1:
            return f"{name}(k:k+{width - 1})"
        lo = int(rng.integers(1, 4))
        return f"{name}({lo}:{lo + width - 1})"

    body = []
    for _ in range(int(rng.integers(1, 4))):
        dst = names[rng.integers(0, len(names))]
        a, b = rng.choice(names, size=2)
        body.append(f"  {section(dst)} = {section(a)} + {section(b)}")
    lines.append(f"do k = 1, {iters}")
    lines.extend(body)
    lines.append("enddo")
    return "\n".join(lines)


@pytest.mark.parametrize("seed", range(12))
def test_random_program_pipeline(seed):
    src = random_program(seed)
    prog = parse(src, name=f"fuzz{seed}")
    typecheck(prog)
    # Round-trip.
    assert pretty(parse(pretty(prog))) == pretty(prog)
    # Semantics run.
    run_program(prog)
    # Pipeline.
    plan = align_program(prog, replication=False)
    plan.adg.validate()
    assert plan.total_cost >= 0
    # Rounded offsets satisfy every EqualShift node constraint exactly.
    skel = plan.axis_stride.skeletons
    for node in plan.adg.nodes:
        for rel in node_offset_relations(node, dict(skel)):
            if isinstance(rel, EqualShift):
                p_off = plan.alignments[id(rel.p)].axes[rel.axis].offset
                q_off = plan.alignments[id(rel.q)].axes[rel.axis].offset
                assert q_off - p_off == rel.shift, (seed, node.label)
    # Machine validation (identity distribution == equation 1), when no
    # edge is general communication.
    rep = measure_plan(plan, scheme="identity")
    if all(not t.count.general for t in rep.edges):
        assert rep.hop_cost == plan.total_cost, seed


@pytest.mark.parametrize("seed", range(12, 18))
def test_random_program_static_vs_mobile(seed):
    """Mobility can only help (static is a restriction of mobile)."""
    prog = parse(random_program(seed), name=f"fuzz{seed}")
    mobile = align_program(prog, replication=False, algorithm="unrolling")
    static = align_program(
        prog, replication=False, mobile=False, algorithm="unrolling"
    )
    assert mobile.total_cost <= static.total_cost
