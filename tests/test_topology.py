"""Unit and property tests for the pluggable topology subsystem.

Covers the registry + spec parser (round-trips, loud rejection of
malformed specs), the metric axioms on random cells for every topology,
the zero-hop contract of general communication, and the end-to-end
guarantees: the grid topology reproduces the default machine
bit-for-bit, while non-grid machines can — and provably do — change the
planner's chosen distribution.
"""

import random

import numpy as np
import pytest

from repro.align import align_program
from repro.distrib import build_profile, naive_costs, plan_distribution
from repro.lang import parse, programs
from repro.lang.generate import (
    TOPOLOGY_KINDS,
    generate_corpus,
    sample_topology,
    topology_corpus,
)
from repro.machine import Distribution, MoveCount, count_move, measure_traffic
from repro.machine.comm import _axis_positions  # noqa: F401 - import check
from repro.topology import (
    GridTopology,
    HammingAxis,
    HierarchicalTopology,
    HypercubeTopology,
    LinearAxis,
    RingAxis,
    RingTopology,
    TorusTopology,
    TwoLevelAxis,
    default_topology,
    distribution_metrics,
    parse_topology,
    register_topology,
    topology_kinds,
)

ALL_SPECS = [
    "grid",
    "grid:8",
    "grid:4x4",
    "torus:4x4",
    "torus:8",
    "ring:8",
    "hypercube:16",
    "hypercube:4x4",
    "hier:2x2/4x4",
    "hier:(torus:2x2)/(grid:4x4)@8",
    "hier:(hier:(grid:2)/(grid:2)@2)/(grid:4)@8",
]

MALFORMED = [
    "",
    "   ",
    "bogus:4",
    "grid:",
    "grid:0x4",
    "grid:-2",
    "grid:axb",
    "grid:4x",
    "torus:",
    "ring:4x4",
    "ring:",
    "hypercube:12",
    "hypercube:0",
    "hier:",
    "hier:4",
    "hier:2/2/2",
    "hier:(grid:2/(grid:2)",
    "hier:(grid:2))/(grid:2)",
    "hier:2/2@x",
    "hier:2x2/4",  # rank mismatch between levels
]


class TestRegistryAndParser:
    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_spec_round_trip(self, spec):
        t = parse_topology(spec)
        again = parse_topology(t.spec())
        assert again == t
        assert again.spec() == t.spec()

    @pytest.mark.parametrize("spec", MALFORMED)
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_topology(spec)

    def test_unknown_kind_lists_known_kinds(self):
        with pytest.raises(ValueError, match="known kinds"):
            parse_topology("moebius:4")
        assert set(TOPOLOGY_KINDS) <= set(topology_kinds())

    def test_register_rejects_duplicates_and_bad_names(self):
        with pytest.raises(ValueError, match="already registered"):
            register_topology("grid", lambda rest: GridTopology(()))
        with pytest.raises(ValueError):
            register_topology("x:y", lambda rest: GridTopology(()))

    def test_shorthand_hier_levels_are_grids(self):
        t = parse_topology("hier:2x2/4x4")
        assert isinstance(t, HierarchicalTopology)
        assert t.outer == GridTopology((2, 2))
        assert t.inner == GridTopology((4, 4))
        assert t.shape == (8, 8)
        assert t.inter_cost == 4  # the default

    def test_default_topology_is_unbounded_grid(self):
        t = default_topology()
        assert isinstance(t, GridTopology)
        assert t.shape == ()
        assert t.spec() == "grid"
        assert "unbounded" in t.describe()

    def test_describe_mentions_shape_and_processors(self):
        d = parse_topology("torus:4x4").describe()
        assert "torus" in d and "4x4" in d and "16 processors" in d


class TestMetricAxioms:
    """Identity, symmetry and the triangle inequality on random cells."""

    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_axioms_on_random_cells(self, spec):
        t = parse_topology(spec)
        rank = max(1, t.rank)
        rng = random.Random(hash(spec) & 0xFFFF)
        cells = [
            tuple(rng.randrange(0, 32) for _ in range(rank)) for _ in range(24)
        ]
        for a in cells:
            assert t.distance(a, a) == 0  # identity
        for a, b, c in zip(cells, cells[1:], cells[2:]):
            dab = t.distance(a, b)
            assert dab == t.distance(b, a)  # symmetry
            assert dab >= 0
            # triangle inequality
            assert t.distance(a, c) <= dab + t.distance(b, c)

    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_pairwise_hops_matches_scalar_distance(self, spec):
        t = parse_topology(spec)
        rank = max(1, t.rank)
        rng = np.random.default_rng(abs(hash(spec)) % (2**32))
        a = [rng.integers(0, 32, size=50) for _ in range(rank)]
        b = [rng.integers(0, 32, size=50) for _ in range(rank)]
        hops = t.pairwise_hops(a, b)
        for i in range(50):
            pa = tuple(int(x[i]) for x in a)
            pb = tuple(int(x[i]) for x in b)
            assert hops[i] == t.distance(pa, pb)

    def test_rank_mismatch_reports_both_ranks(self):
        with pytest.raises(ValueError, match="rank 2 vs rank 3"):
            parse_topology("grid").distance((1, 2), (1, 2, 3))
        with pytest.raises(ValueError, match="rank 1 vs rank 2"):
            parse_topology("torus:4x4").pairwise_hops(
                [np.arange(3)], [np.arange(3), np.arange(3)]
            )


class TestAxisMetrics:
    def test_linear_is_absolute_difference(self):
        m = LinearAxis()
        assert list(m.hops(np.array([0, 5, -3]), np.array([4, 5, 3]))) == [4, 0, 6]

    def test_ring_wraps_the_short_way(self):
        m = RingAxis(8)
        assert m.distance(0, 7) == 1
        assert m.distance(1, 5) == 4
        assert m.distance(-1, 0) == 1  # cells fold onto the ring

    def test_hamming_gray_adjacency(self):
        """Consecutive coordinates are 1 hop — Gray coding's point."""
        m = HammingAxis(16)
        for i in range(15):
            assert m.distance(i, i + 1) == 1
        assert m.distance(15, 0) == 1  # the Gray cycle closes
        # never exceeds the cube dimension
        assert max(m.distance(a, b) for a in range(16) for b in range(16)) == 4

    def test_hamming_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            HammingAxis(6)

    def test_two_level_charges_inter_node(self):
        m = TwoLevelAxis(
            node=4, inter_cost=10, outer=LinearAxis(), inner=LinearAxis()
        )
        assert m.distance(0, 3) == 3  # same node
        assert m.distance(3, 4) == 10 + 3  # next node, opposite slots
        assert m.distance(0, 4) == 10  # same slot, adjacent nodes

    def test_torus_bisection_doubles_grid(self):
        g = parse_topology("grid:4x4")
        t = parse_topology("torus:4x4")
        assert t.bisection_bandwidth() == 2 * g.bisection_bandwidth()
        assert parse_topology("hypercube:16").bisection_bandwidth() == 8
        assert parse_topology("ring:8").bisection_bandwidth() == 2

    def test_hypercube_supports_only_power_of_two_axes(self):
        h = parse_topology("hypercube:16")
        assert h.supports_grid((2, 8))
        assert h.supports_grid((4, 4))
        assert not h.supports_grid((3, 5))

    def test_hier_supports_grid_uses_per_axis_node_sizes(self):
        """Regression: realizability must consult the same per-axis
        node extent axis_metric prices with, not axis 0's."""
        t = parse_topology("hier:(hypercube:2x2)/(grid:1x3)@4")
        # axis 1 has 3-core nodes: 3 and 6 logical procs span 1 and 2
        # nodes — both realizable on the 2-node hypercube fabric.
        assert t.supports_grid((2, 6))
        assert t.supports_grid((1, 12))
        assert t.supports_grid((4, 3))
        # 12 procs on axis 1 = 4 nodes > the 2 the outer fabric has?
        # ceil(12/3)=4 is a power of two, so the hypercube folds it.
        # axis 0 has 1-core nodes: 3 procs = 3 nodes, not a power of 2.
        assert not t.supports_grid((3, 4))
        # every supported grid must also be priceable
        for grid in [(2, 6), (1, 12), (4, 3)]:
            for m in t.metrics(grid):
                assert m.hops(np.arange(4), np.arange(4)).sum() == 0

    def test_distribution_metrics_uses_scheme_processor_counts(self):
        from repro.machine import Block, Identity

        t = parse_topology("torus:8")
        dist = Distribution((Block(nprocs=4, block=2),))
        (m,) = distribution_metrics(t, dist)
        assert m == RingAxis(4)  # the logical axis, not the physical 8
        ident = Distribution((Identity(),))
        (mi,) = distribution_metrics(t, ident)
        assert mi == RingAxis(8)  # identity falls back to the machine axis


class TestGeneralMovesCarryNoHops:
    """Satellite: general communication has no routing distance, so its
    hop cost is zero on every topology and MoveCount.__add__ keeps all
    fields intact."""

    def _general_move(self):
        from repro.align.position import Alignment, AxisAlignment
        from repro.ir import AffineForm

        a = Alignment.canonical(1, 1)
        b = Alignment((AxisAlignment(0, AffineForm(2), AffineForm(0)),))
        return count_move(a, b, (10,), {}, Distribution.identity(1))

    def test_general_move_has_zero_hops(self):
        mc = self._general_move()
        assert mc.general
        assert mc.hop_cost == 0
        assert mc.elements_moved == 10
        assert mc.general_elements == 10

    def test_add_preserves_every_field(self):
        mc = self._general_move()
        shifted = MoveCount(
            elements=5, elements_moved=5, hop_cost=15, broadcast_elements=2
        )
        total = mc + shifted
        assert total.elements == 15
        assert total.elements_moved == 15
        assert total.hop_cost == 15  # only the non-general part
        assert total.broadcast_elements == 2
        assert total.general
        assert total.general_elements == 10

    def test_traffic_report_general_elements(self):
        plan = align_program(programs.example5(iters=10, m=6), replication=False)
        rep = measure_traffic(
            plan.adg,
            plan.alignments,
            Distribution.identity(plan.adg.template_rank),
        )
        assert rep.general_edges > 0
        assert all(
            t.count.hop_cost == 0 for t in rep.edges if t.count.general
        )
        # the equation-1 identity holds even with general edges
        assert (
            rep.hop_cost + rep.broadcast_elements + rep.general_elements
            == plan.total_cost
        )


class TestMetricRouting:
    """Satellite: align.metric routes through the topology default."""

    def test_grid_error_names_both_ranks(self):
        from fractions import Fraction

        from repro.align.metric import grid

        with pytest.raises(ValueError, match="rank 1 vs rank 2"):
            grid((Fraction(1),), (Fraction(1), Fraction(2)))

    def test_grid_still_exact_on_fractions(self):
        from fractions import Fraction

        from repro.align.metric import grid

        d = grid((Fraction(1, 2), Fraction(3)), (Fraction(2), Fraction(1)))
        assert d == Fraction(7, 2)


class TestPlannerIntegration:
    """The grid topology is bit-for-bit the default machine; non-grid
    machines provably change the chosen plan."""

    NPROCS = 4

    @pytest.fixture(scope="class")
    def profiles(self):
        out = {}
        for name, make, kw in [
            ("figure1", lambda: programs.figure1(n=16), dict(replication=False)),
            ("stencil", lambda: programs.stencil_sweep(n=48, iters=3),
             dict(replication=False)),
        ]:
            plan = align_program(make(), **kw)
            out[name] = (plan, build_profile(plan.adg, plan.alignments))
        return out

    @pytest.mark.parametrize("name", ["figure1", "stencil"])
    def test_grid_topology_identical_to_default(self, name, profiles):
        plan, profile = profiles[name]
        base = plan_distribution(profile, self.NPROCS)
        rank = profile.template_rank
        shape = (self.NPROCS,) if rank == 1 else (2, 2)
        grid = parse_topology("grid:" + "x".join(str(p) for p in shape))
        topo_plan = plan_distribution(profile, self.NPROCS, topology=grid)
        assert topo_plan.axes == base.axes
        assert topo_plan.cost == base.cost
        assert topo_plan.directive() == base.directive()
        # measured traffic agrees too, hop for hop
        dist = base.to_distribution()
        default_rep = measure_traffic(plan.adg, plan.alignments, dist)
        grid_rep = measure_traffic(
            plan.adg, plan.alignments, dist, topology=grid
        )
        assert default_rep.hop_cost == grid_rep.hop_cost
        assert default_rep.elements_moved == grid_rep.elements_moved

    @pytest.mark.parametrize("spec", ["torus:4", "ring:4", "hypercube:4",
                                      "hier:(grid:2)/(grid:2)@8"])
    def test_model_exact_on_every_topology(self, spec, profiles):
        plan, profile = profiles["stencil"]
        topo = parse_topology(spec)
        dplan = plan_distribution(profile, self.NPROCS, topology=topo)
        assert dplan.topology == topo.spec()
        measured = measure_traffic(
            plan.adg, plan.alignments, dplan.to_distribution(), topology=topo
        )
        assert dplan.cost.hops == measured.hop_cost
        assert dplan.cost.moved == measured.elements_moved

    def test_paper_example_changes_plan_on_hierarchical_machine(self, profiles):
        """Figure 1 on a clustered machine picks a different processor
        grid than on the open mesh: the (1, 4) factorization crosses a
        node boundary the (2, 2) one avoids."""
        _, profile = profiles["figure1"]
        base = plan_distribution(profile, self.NPROCS)
        hier = parse_topology("hier:(grid:1x2)/(grid:2x1)@8")
        clustered = plan_distribution(profile, self.NPROCS, topology=hier)
        assert base.exact and clustered.exact
        assert clustered.directive() != base.directive()
        assert base.grid == (1, 4)
        assert clustered.grid == (2, 2)

    def test_long_shift_program_changes_plan_on_hypercube(self):
        """A butterfly-style long shift: the open grid prefers
        CYCLIC(2), the hypercube routes the long jumps in Hamming
        distance and picks plain CYCLIC at half the hop cost."""
        plan = align_program(
            parse("real A(64), B(64)\nB(1:24) = A(1:24) + A(41:64)")
        )
        profile = build_profile(plan.adg, plan.alignments)
        base = plan_distribution(profile, 16)
        cube = plan_distribution(
            profile, 16, topology=parse_topology("hypercube:16")
        )
        assert base.exact and cube.exact
        assert cube.directive() != base.directive()
        assert cube.cost.hops < base.cost.hops

    def test_naive_costs_priced_on_topology(self, profiles):
        _, profile = profiles["stencil"]
        flat = naive_costs(profile, self.NPROCS)
        hier = naive_costs(
            profile,
            self.NPROCS,
            parse_topology("hier:(grid:2)/(grid:2)@8"),
        )
        assert hier["all-block"].hops > flat["all-block"].hops


class TestTopologySampling:
    def test_sample_is_deterministic_and_parseable(self):
        for seed in range(40):
            spec = sample_topology(seed, nprocs=8)
            assert spec == sample_topology(seed, nprocs=8)
            t = parse_topology(spec)
            if t.kind == "hypercube":
                assert t.nprocs == 8
            else:
                assert t.nprocs == 8

    def test_sample_hypercube_rounds_down_to_power_of_two(self):
        spec = sample_topology(3, nprocs=12, kind="hypercube")
        assert spec == "hypercube:8"

    def test_corpus_cycles_kinds_and_keeps_prefix(self):
        specs = topology_corpus(10, seed=1)
        assert [parse_topology(s).kind for s in specs[:5]] == list(
            TOPOLOGY_KINDS
        )
        assert topology_corpus(6, seed=1) == specs[:6]

    def test_sample_rejects_bad_arguments(self):
        with pytest.raises(KeyError):
            sample_topology(0, kind="moebius")
        with pytest.raises(ValueError):
            sample_topology(0, nprocs=0)


class TestBatchCarriesTopology:
    def test_report_and_results_record_topology(self):
        corpus = generate_corpus(6, seed=0)
        report = __import__("repro.batch", fromlist=["plan_many"]).plan_many(
            corpus, nprocs=4, serial=True, verify=True, topology="torus:4"
        )
        assert report.topology == "torus:4"
        assert not report.failures
        assert all(r.verified for r in report.results)
        assert report.to_json()["topology"] == "torus:4"
        assert "topology=torus:4" in report.render()

    def test_bad_spec_fails_fast(self):
        from repro.batch import plan_many

        with pytest.raises(ValueError, match="unknown topology kind"):
            plan_many(["real A(4)\nA = A"], serial=True, topology="bogus:1")


class TestGoldenTopologyPlans:
    """Per-topology chosen plans for two paper examples, pinned to
    tests/golden/topology_*.json (regenerate with --update-golden)."""

    SPECS_1D = ["grid:4", "torus:4", "ring:4", "hypercube:4",
                "hier:(grid:2)/(grid:2)@8"]
    SPECS_2D = ["grid:2x2", "torus:2x2", "hypercube:2x2",
                "hier:(grid:1x2)/(grid:2x1)@8"]

    @pytest.mark.parametrize(
        "name,make,kw,specs",
        [
            ("figure1", lambda: programs.figure1(n=16),
             dict(replication=False), SPECS_2D),
            ("stencil", lambda: programs.stencil_sweep(n=48, iters=3),
             dict(replication=False), SPECS_1D),
        ],
        ids=["figure1", "stencil"],
    )
    def test_plans_match_golden(self, name, make, kw, specs, golden):
        plan = align_program(make(), **kw)
        profile = build_profile(plan.adg, plan.alignments)
        snap = {}
        for spec in specs:
            topo = parse_topology(spec)
            d = plan_distribution(profile, topo.nprocs, topology=topo)
            snap[spec] = {
                "directive": d.directive(),
                "grid": list(d.grid),
                "hops": d.cost.hops,
                "moved": d.cost.moved,
                "exact": d.exact,
                "topology": d.topology,
            }
        golden.check(f"topology_{name}", snap)
