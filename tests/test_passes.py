"""The pass manager: dependency resolution, reuse, fixpoints, wrappers.

Covers the :mod:`repro.passes` core in isolation (toy FunctionPasses)
and end-to-end against the paper programs: requires/provides ordering,
missing-artifact diagnostics, fixpoint termination, the prefix-reuse
guarantee (object identity across a machine sweep), wrapper equivalence
with the staged pipeline, and pickling of context prefixes — the
property the batch engine's sweep mode is built on.
"""

import pickle

import pytest

from repro.align import DistributionOptionsError, align_and_distribute, align_program
from repro.align.pipeline import plan_context
from repro.lang import parse, programs
from repro.passes import (
    AlignOptions,
    FixpointPass,
    FunctionPass,
    MachineSpec,
    MissingArtifactError,
    Pipeline,
    PipelineError,
    PlanContext,
)


def _mk(name, requires, provides, fn=None):
    def default(ctx):
        for key in provides:
            ctx.put(key, f"{name}:{key}")

    return FunctionPass(name, requires, provides, fn or default)


class TestDependencyResolution:
    def test_passes_ordered_by_requires_provides(self):
        # Registered backwards; the pipeline must topo-sort a -> b -> c.
        c = _mk("c", ["B"], ["C"])
        b = _mk("b", ["A"], ["B"])
        a = _mk("a", [], ["A"])
        pipe = Pipeline([c, b, a])
        assert [p.name for p in pipe.passes] == ["a", "b", "c"]
        ctx = pipe.run(PlanContext())
        assert ctx.get("C") == "c:C"

    def test_goal_selects_minimal_subset(self):
        pipe = Pipeline(
            [_mk("a", [], ["A"]), _mk("b", ["A"], ["B"]), _mk("x", [], ["X"])]
        )
        assert [p.name for p in pipe.select("B")] == ["a", "b"]
        assert [p.name for p in pipe.select("X")] == ["x"]

    def test_duplicate_provider_rejected(self):
        with pytest.raises(PipelineError, match="provided by both"):
            Pipeline([_mk("a", [], ["A"]), _mk("a2", [], ["A"])])

    def test_dependency_cycle_rejected(self):
        with pytest.raises(PipelineError, match="cycle"):
            Pipeline([_mk("a", ["B"], ["A"]), _mk("b", ["A"], ["B"])])

    def test_unknown_goal_names_producible_artifacts(self):
        pipe = Pipeline([_mk("a", [], ["A"])])
        with pytest.raises(
            MissingArtifactError, match="producible goals: A"
        ) as ei:
            pipe.select("nope")
        # A goal is not an input: the error must not suggest supplying it.
        assert "supply it as a pipeline input" not in str(ei.value)


class TestMissingArtifacts:
    def test_error_names_key_pass_and_available(self):
        pipe = Pipeline([_mk("b", ["A"], ["B"])])
        ctx = PlanContext()
        ctx.put("other", 1)
        with pytest.raises(MissingArtifactError) as ei:
            pipe.run(ctx, goal="B")
        msg = str(ei.value)
        assert "'A'" in msg and "'b'" in msg
        assert "no registered pass provides it" in msg
        assert "other" in msg  # what *is* available

    def test_error_names_provider_when_one_exists(self):
        # 'b' needs A; a provider for A exists but is excluded by goal
        # selection state — simulate by asking the context directly.
        ctx = PlanContext()
        with pytest.raises(MissingArtifactError, match="missing artifact 'A'"):
            ctx.get("A")

    def test_pass_that_underdelivers_is_diagnosed(self):
        broken = FunctionPass("broken", [], ["A", "B"], lambda ctx: ctx.put("A", 1))
        with pytest.raises(PipelineError, match="did not provide: B"):
            Pipeline([broken]).run(PlanContext())

    def test_real_pipeline_distribution_needs_machine(self):
        ctx = plan_context(programs.example1())
        with pytest.raises(MissingArtifactError, match="machine"):
            Pipeline().run(ctx, goal="distribution")


class TestFixpoint:
    def test_converging_fixpoint_records_rounds(self):
        class Count(FixpointPass):
            name = "count"
            provides = ("n",)

            def max_rounds(self, ctx):
                return 10

            def init(self, ctx):
                return 0

            def step(self, ctx, state, rounds):
                return state + 1, state + 1 >= 3

            def finish(self, ctx, state, rounds):
                ctx.put("n", state)

        ctx = Pipeline([Count()]).run(PlanContext())
        assert ctx.get("n") == 3
        (ev,) = [e for e in ctx.trace if e["pass"] == "count"]
        assert ev["rounds"] == 3 and ev["converged"] is True

    def test_nonconverging_fixpoint_terminates_at_cap(self):
        class Never(FixpointPass):
            name = "never"
            provides = ("n",)

            def max_rounds(self, ctx):
                return 4

            def step(self, ctx, state, rounds):
                return rounds, False

            def finish(self, ctx, state, rounds):
                ctx.put("n", rounds)

        ctx = Pipeline([Never()]).run(PlanContext())
        assert ctx.get("n") == 4
        (ev,) = [e for e in ctx.trace if e["pass"] == "never"]
        assert ev["rounds"] == 4 and ev["converged"] is False

    def test_replication_fixpoint_trace_rounds_match_plan(self):
        ctx = plan_context(programs.figure1())
        Pipeline().run(ctx, goal="plan")
        (ev,) = [e for e in ctx.trace if e["pass"] == "replication-offsets"]
        assert ev["rounds"] == ctx.get("plan").replication_rounds >= 2


class TestPrefixReuse:
    def test_topology_sweep_reuses_aligned_prefix(self):
        """The ADG/alignment objects keep their identity across a sweep;
        only the machine-dependent suffix re-executes."""
        pipe = Pipeline()
        ctx = pipe.run(plan_context(programs.figure1()), goal="profile")
        adg, alignments, profile = (
            ctx.get("adg"), ctx.get("alignments"), ctx.get("profile"),
        )
        for spec in ("grid:4x4", "torus:4x4", "ring:16", "hypercube:16"):
            sub = ctx.fork()
            sub.put("machine", MachineSpec.of(topology=spec))
            pipe.run(sub, goal="distribution")
            assert sub.get("adg") is adg
            assert sub.get("alignments") is alignments
            assert sub.get("profile") is profile
            ran = [e["pass"] for e in sub.trace if e["event"] == "run"]
            assert ran == ["distribute"], ran
            reused = {e["pass"] for e in sub.trace if e["event"] == "reuse"}
            assert {"axis-stride", "replication-offsets", "comm-profile"} <= reused
        st = pipe.stats
        assert st["axis-stride"].runs == 1 and st["axis-stride"].reuses == 4
        assert st["distribute"].runs == 4

    def test_nproc_sweep_reuses_aligned_prefix(self):
        pipe = Pipeline()
        ctx = pipe.run(plan_context(programs.example1()), goal="profile")
        grids = set()
        for nprocs in (2, 4, 8):
            sub = ctx.fork()
            sub.put("machine", MachineSpec.of(nprocs))
            pipe.run(sub, goal="distribution")
            grids.add(sub.get("distribution").grid)
        assert pipe.stats["axis-stride"].runs == 1
        assert pipe.stats["distribute"].runs == 3
        assert len(grids) == 3  # different machines, different plans

    def test_content_identical_machine_is_not_replanned(self):
        """Fingerprinting: re-putting an *equal* machine spec does not
        invalidate the suffix."""
        pipe = Pipeline()
        ctx = plan_context(programs.example1())
        ctx.put("machine", MachineSpec.of(4))
        pipe.run(ctx, goal="distribution")
        ctx.put("machine", MachineSpec.of(4))  # same content, new version
        pipe.run(ctx, goal="distribution")
        assert pipe.stats["distribute"].runs == 1
        assert pipe.stats["distribute"].reuses == 1

    def test_changed_program_invalidates_prefix(self):
        pipe = Pipeline()
        ctx = pipe.run(plan_context(programs.example1()), goal="plan")
        cost1 = ctx.get("total_cost")
        ctx.put("program", programs.figure1())
        pipe.run(ctx, goal="plan")
        assert ctx.get("plan").program.name == "figure1"
        assert ctx.get("total_cost") != cost1

    def test_externally_supplied_typeinfo_is_honored(self):
        from repro.lang.typecheck import typecheck

        program = programs.example1()
        info = typecheck(program)
        plan = align_program(program, info=info)
        assert plan.total_cost == align_program(program).total_cost

    def test_external_typeinfo_goes_stale_when_program_changes(self):
        """An externally supplied artifact is pinned to the inputs it
        was honored under; replacing the program must re-run typecheck
        rather than serve the stale TypeInfo."""
        from repro.lang.typecheck import typecheck

        p1, p2 = programs.example1(), programs.figure1()
        pipe = Pipeline()
        ctx = plan_context(p1, info=typecheck(p1))
        pipe.run(ctx, goal="plan")
        assert pipe.stats["typecheck"].runs == 0  # honored external info
        ctx.put("program", p2)
        pipe.run(ctx, goal="plan")
        assert pipe.stats["typecheck"].runs == 1  # stale info re-derived
        assert ctx.get("plan").total_cost == align_program(p2).total_cost

    def test_summary_reprs_are_not_content_fingerprinted(self):
        """Same-shape, different-content programs: the rebuilt ADG's
        summary repr ('<ADG s: N nodes...>') coincides, so it must get an
        identity fingerprint and invalidate every downstream pass."""
        p1 = parse("real A(10), B(20)\nA(1:10) = B(1:20:2)", name="s")
        p2 = parse("real A(10), B(30)\nA(1:10) = B(1:30:3)", name="s")
        pipe = Pipeline()
        ctx = pipe.run(plan_context(p1), goal="plan")
        strides1 = {
            k: repr(al) for k, al in ctx.get("alignments").items()
        }
        ctx.put("program", p2)
        pipe.run(ctx, goal="plan")
        fresh = Pipeline().run(plan_context(p2), goal="plan")
        assert {
            k: repr(al) for k, al in ctx.get("alignments").items()
        } == {k: repr(al) for k, al in fresh.get("alignments").items()}
        assert {
            k: repr(al) for k, al in ctx.get("alignments").items()
        } != strides1


class TestWrappers:
    PROGRAMS = ["example1", "example2", "figure1", "figure4"]

    @pytest.mark.parametrize("name", PROGRAMS)
    def test_wrapper_report_identical_to_pipeline_path(self, name):
        program = getattr(programs, name)()
        via_wrapper = align_program(program).report()
        ctx = Pipeline().run(plan_context(program), goal="plan")
        assert via_wrapper == ctx.get("plan").report()

    def test_align_and_distribute_matches_pipeline_path(self):
        program = programs.figure1()
        plan = align_and_distribute(
            program, 16, distrib_options={"topology": "torus:4x4"}
        )
        ctx = plan_context(program)
        ctx.put("machine", MachineSpec.of(16, topology="torus:4x4"))
        Pipeline().run(ctx, goal="distribution")
        assert plan.distribution == ctx.get("distribution")

    def test_unknown_algorithm_still_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            align_program(programs.example1(), algorithm="zzz")


class TestDistribOptionsValidation:
    def test_topology_nprocs_mismatch_raises_named_error(self):
        with pytest.raises(DistributionOptionsError) as ei:
            align_and_distribute(
                programs.example1(), 8, distrib_options={"topology": "torus:4x4"}
            )
        msg = str(ei.value)
        assert "torus:4x4" in msg and "16" in msg and "8" in msg

    def test_planner_option_in_align_kw_raises_named_error(self):
        with pytest.raises(DistributionOptionsError) as ei:
            align_and_distribute(programs.example1(), 4, topology="ring:4")
        msg = str(ei.value)
        assert "topology" in msg and "distrib_options" in msg

    def test_align_option_in_distrib_options_raises_named_error(self):
        with pytest.raises(DistributionOptionsError) as ei:
            align_and_distribute(
                programs.example1(), 4, distrib_options={"replication": False}
            )
        msg = str(ei.value)
        assert "replication" in msg and "align_kw" in msg

    def test_matching_topology_accepted(self):
        plan = align_and_distribute(
            programs.example1(), 4, distrib_options={"topology": "ring:4"}
        )
        assert plan.distribution is not None
        assert plan.distribution.topology == "ring:4"

    def test_topology_object_accepted(self):
        from repro.topology import parse_topology

        topo = parse_topology("torus:2x2")
        plan = align_and_distribute(
            programs.example1(), 4, distrib_options={"topology": topo}
        )
        assert plan.distribution.topology == "torus:2x2"

    def test_unregistered_topology_object_flows_through(self):
        """A custom Topology outside the spec registry must reach the
        planner as the live object — never a spec round-trip."""
        from repro.distrib import plan_program_phases
        from repro.topology import parse_topology

        class Unregistered:
            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def spec(self):
                return "custom:unregistered"

        topo = Unregistered(parse_topology("torus:2x2"))
        plan = align_and_distribute(
            programs.example1(), 4, distrib_options={"topology": topo}
        )
        assert plan.distribution.topology == "custom:unregistered"
        phased = plan_program_phases(programs.example1(), 4, topology=topo)
        assert phased.phases[0].plan.topology == "custom:unregistered"


class TestPickling:
    def test_prefix_context_pickles_and_finishes_elsewhere(self):
        """The batch sweep contract: a machine-independent prefix can be
        pickled (stable port uids, no id() keys anywhere), shipped, and
        completed against any machine with identical results."""
        pipe = Pipeline()
        ctx = pipe.run(plan_context(programs.figure1()), goal="profile")
        shipped = pickle.loads(pickle.dumps(ctx))
        sub = shipped.fork()
        sub.put("machine", MachineSpec.of(16, topology="hypercube:16"))
        Pipeline().run(sub, goal="distribution")
        ran = [e["pass"] for e in sub.trace if e["event"] == "run"]
        assert ran == ["distribute"], ran

        direct = ctx.fork()
        direct.put("machine", MachineSpec.of(16, topology="hypercube:16"))
        Pipeline().run(direct, goal="distribution")
        assert sub.get("distribution") == direct.get("distribution")
        assert str(sub.get("total_cost")) == str(direct.get("total_cost"))

    def test_early_stage_context_pickles_before_adg_build(self):
        """TypeInfo re-keys its per-expression shapes on unpickling, so
        a context shipped at *any* stage — not just post-profile — can
        finish planning on the other side."""
        pipe = Pipeline()
        ctx = pipe.run(plan_context(programs.figure1()), goal="typeinfo")
        shipped = pickle.loads(pickle.dumps(ctx))
        Pipeline().run(shipped, goal="plan")
        assert (
            shipped.get("plan").total_cost
            == align_program(programs.figure1()).total_cost
        )

    def test_alignment_plan_survives_pickling(self):
        from repro.align import total_cost as cost_of

        plan = align_program(programs.example5())
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.total_cost == plan.total_cost
        # The alignment map stays valid against the re-hydrated graph.
        assert cost_of(clone.adg, clone.alignments) == plan.total_cost
        assert {p.key for p in clone.adg.ports()} == set(clone.alignments)

    def test_batch_sweep_ships_prefixes(self):
        from repro.batch import plan_sweep

        report = plan_sweep(
            ["real A(8), B(8)\nA(1:7) = B(2:8)"],
            ["grid:2x2", "ring:4", 4],
            serial=True,
            verify=True,
        )
        assert [r.ok for r in report.results] == [True] * 3
        assert all(r.verified for r in report.results)
        assert [r.machine for r in report.results] == ["grid:2x2", "ring:4", "P4"]
        totals = report.pass_totals()
        assert totals["distribute"][0] == 3
        assert totals["axis-stride"][0] == 1  # prefix aligned once

    def test_plan_many_machine_label_matches_sweep_schema(self):
        from repro.batch import plan_many

        src = "real A(8), B(8)\nA(1:7) = B(2:8)"
        by_nprocs = plan_many([src], nprocs=8, serial=True)
        assert by_nprocs.results[0].machine == "P8"
        by_topo = plan_many([src], nprocs=4, serial=True, topology="torus:2x2")
        assert by_topo.results[0].machine == "torus:2x2/P4"
        plain = plan_many([src], nprocs=None, serial=True)
        assert plain.results[0].machine is None


class TestTraceAndExplain:
    def test_explain_lists_goal_subset_in_order(self):
        text = Pipeline().explain(goal="plan")
        assert "distribute" not in text
        order = [
            ln.split()[1] for ln in text.splitlines()[1:]
        ]
        assert order == [
            "typecheck",
            "build-adg",
            "axis-stride",
            "replication-offsets",
            "assemble",
        ]

    def test_trace_table_renders(self):
        from repro.passes import trace_table

        ctx = Pipeline().run(plan_context(programs.example1()), goal="plan")
        text = trace_table(ctx.trace)
        assert "replication-offsets" in text and "rounds=" in text

    def test_cli_trace_and_explain(self, tmp_path, capsys):
        from repro.__main__ import main

        src = tmp_path / "p.dp"
        src.write_text("real A(10), B(10)\nA = A + B(1:10)\n")
        assert main([str(src), "--trace-passes"]) == 0
        out = capsys.readouterr().out
        assert "pass trace:" in out and "axis-stride" in out
        assert main(["--explain", "--distribute", "4"]) == 0
        out = capsys.readouterr().out
        assert "distribute" in out and "comm-profile" in out
        # --explain must not silently swallow a requested batch run.
        with pytest.raises(SystemExit):
            main(["--batch", "2", "--explain"])

    def test_sweep_prefix_timings_survive_suffix_failure(self):
        """When every machine of a program's chunk fails, the stage-1
        prefix executions still appear in the pass totals."""
        from repro.batch import plan_sweep

        report = plan_sweep(
            ["real A(8), B(8)\nA(1:7) = B(2:8)"],
            ["grid:bogus"],
            serial=True,
        )
        assert report.results[0].ok is False
        totals = report.pass_totals()
        assert totals["axis-stride"][0] == 1
        assert "distribute" not in totals
