"""Unit tests for alignments, metrics, spans."""

from fractions import Fraction

import pytest

from repro.align import (
    Alignment,
    alignment_distance,
    discrete,
    grid,
    has_sign_change,
    refine_space_at_crossings,
)
from repro.align.position import AxisAlignment, ReplicatedExtent
from repro.ir import LIV, AffineForm, IterationSpace, Triplet

k = LIV("k", 0)


class TestAlignment:
    def test_canonical(self):
        a = Alignment.canonical(1, 2)
        assert a.rank == 1
        assert a.template_rank == 2
        assert a.axes[0].is_body and not a.axes[1].is_body

    def test_position_body_and_space(self):
        a = Alignment.canonical(1, 2).with_offset(1, AffineForm(0, {k: 1}))
        pos = a.position({0: 7}, {k: 3})
        assert pos == (7, 3)

    def test_mobile_stride_position(self):
        ax = AxisAlignment(0, AffineForm(0, {k: 1}), AffineForm(0))
        a = Alignment((ax,))
        assert a.position({0: 5}, {k: 2}) == (10,)

    def test_duplicate_body_axis_rejected(self):
        ax = AxisAlignment(0, AffineForm(1), AffineForm(0))
        with pytest.raises(ValueError):
            Alignment((ax, ax))

    def test_body_requires_stride(self):
        with pytest.raises(ValueError):
            AxisAlignment(0, None, AffineForm(0))

    def test_replicated_body_rejected(self):
        with pytest.raises(ValueError):
            AxisAlignment(0, AffineForm(1), AffineForm(0), ReplicatedExtent())

    def test_replication_position_raises(self):
        ax = AxisAlignment(None, None, AffineForm(0), ReplicatedExtent())
        with pytest.raises(ValueError):
            ax.position({}, {})

    def test_with_replication(self):
        a = Alignment.canonical(1, 2).with_replication(1, ReplicatedExtent())
        assert a.axes[1].is_replicated
        with pytest.raises(ValueError):
            a.with_replication(0, ReplicatedExtent())

    def test_template_axis_of(self):
        a = Alignment.canonical(2, 3)
        assert a.template_axis_of(1) == 1
        with pytest.raises(KeyError):
            a.template_axis_of(2)

    def test_repr_mobile(self):
        a = Alignment.canonical(1, 2).with_offset(0, AffineForm(1, {k: -1}))
        assert "i0" in repr(a)


class TestMetrics:
    def test_discrete(self):
        assert discrete(1, 1) == 0
        assert discrete(1, 2) == 1

    def test_grid(self):
        assert grid((Fraction(1), Fraction(2)), (Fraction(4), Fraction(0))) == 5

    def test_grid_rank_mismatch(self):
        with pytest.raises(ValueError):
            grid((Fraction(1),), (Fraction(1), Fraction(2)))

    def test_alignment_distance_offset(self):
        a = Alignment.canonical(1, 1)
        b = a.with_offset(0, AffineForm(3))
        assert alignment_distance(a, b, {}, elements=10) == 30

    def test_alignment_distance_stride_mismatch(self):
        a = Alignment.canonical(1, 1)
        ax = AxisAlignment(0, AffineForm(2), AffineForm(0))
        b = Alignment((ax,))
        assert alignment_distance(a, b, {}, elements=10) == 10  # general comm

    def test_alignment_distance_broadcast(self):
        a = Alignment.canonical(1, 2)
        b = a.with_replication(1, ReplicatedExtent())
        assert alignment_distance(a, b, {}, elements=7) == 7

    def test_alignment_distance_from_replicated_free(self):
        a = Alignment.canonical(1, 2).with_replication(1, ReplicatedExtent())
        b = Alignment.canonical(1, 2).with_offset(1, AffineForm(9))
        assert alignment_distance(a, b, {}, elements=7) == 0

    def test_mobile_strides_compare_pointwise(self):
        ax1 = AxisAlignment(0, AffineForm(0, {k: 1}), AffineForm(0))
        ax2 = AxisAlignment(0, AffineForm(1), AffineForm(0))
        a, b = Alignment((ax1,)), Alignment((ax2,))
        # at k=1 strides agree -> offset metric; at k=2 they differ
        assert alignment_distance(a, b, {k: 1}, 5) == 0
        assert alignment_distance(a, b, {k: 2}, 5) == 5


class TestSpan:
    def test_no_sign_change(self):
        span = AffineForm(1, {k: 1})  # positive on 1..10
        assert not has_sign_change(span, IterationSpace.single(k, 1, 10))

    def test_sign_change(self):
        span = AffineForm(-5, {k: 1})  # crosses at k=5
        assert has_sign_change(span, IterationSpace.single(k, 1, 10))

    def test_boundary_zero_not_change(self):
        span = AffineForm(-1, {k: 1})  # zero at k=1, positive after
        assert not has_sign_change(span, IterationSpace.single(k, 1, 10))

    def test_refine_splits_sign_pure(self):
        span = AffineForm(Fraction(-11, 2), {k: 1})
        space = IterationSpace.single(k, 1, 10)
        parts = refine_space_at_crossings(span, space)
        assert len(parts) == 2
        assert sum(p.count for p in parts) == 10
        for p in parts:
            assert not has_sign_change(span, p)

    def test_refine_no_change_identity(self):
        span = AffineForm(100, {k: 1})
        space = IterationSpace.single(k, 1, 10)
        assert refine_space_at_crossings(span, space) == [space]

    def test_refine_depth2(self):
        j = LIV("j", 0)
        span = AffineForm(-6, {k: 1, j: 1})
        space = IterationSpace.single(k, 1, 5).extended(j, Triplet(1, 5))
        parts = refine_space_at_crossings(span, space)
        assert sum(p.count for p in parts) == 25
