"""Unit tests for the compact-DP discrete labeling engine."""

from fractions import Fraction

import pytest

from repro.solvers import DiscreteLabelingProblem


def chain(labels_per_node, weights):
    p = DiscreteLabelingProblem()
    for i, cands in enumerate(labels_per_node):
        p.add_node(i, cands)
    for i, w in enumerate(weights):
        p.add_edge(i, i + 1, w)
    return p


class TestTreeDP:
    def test_chain_prefers_agreement(self):
        p = chain([[1, 2], [1, 2], [1, 2]], [5, 5])
        r = p.solve_tree()
        assert r.cost == 0
        assert len(set(r.labels.values())) == 1

    def test_pinned_endpoints_conflict(self):
        p = chain([[1], [1, 2], [2]], [3, 7])
        r = p.solve_tree()
        # must pay the cheaper of the two edges
        assert r.cost == 3
        assert r.labels[1] == 2  # agree with the heavier edge

    def test_star_majority(self):
        p = DiscreteLabelingProblem()
        p.add_node("hub", ["a", "b"])
        for i, (lab, w) in enumerate([("a", 1), ("a", 1), ("b", 5)]):
            p.add_node(i, [lab])
            p.add_edge("hub", i, w)
        r = p.solve_tree()
        assert r.labels["hub"] == "b"
        assert r.cost == 2

    def test_relation_edge(self):
        p = DiscreteLabelingProblem()
        p.add_node("x", [1, 2])
        p.add_node("y", [2, 4])
        p.add_edge("x", "y", 10, relation=lambda v: v * 2)
        r = p.solve_tree()
        assert r.cost == 0
        assert r.labels["y"] == r.labels["x"] * 2

    def test_predicate_edge(self):
        p = DiscreteLabelingProblem()
        p.add_node("x", [1, 2, 3])
        p.add_node("y", [3, 5])
        p.add_edge("x", "y", 10, predicate=lambda a, b: a + b == 5)
        r = p.solve_tree()
        assert r.cost == 0
        assert r.labels["x"] + r.labels["y"] == 5

    def test_forest_multiple_components(self):
        p = DiscreteLabelingProblem()
        for n in "abcd":
            p.add_node(n, [1, 2])
        p.add_edge("a", "b", 4)
        p.add_edge("c", "d", 4)
        r = p.solve_tree()
        assert r.cost == 0

    def test_cycle_rejected_by_tree_solver(self):
        p = chain([[1], [1, 2], [1]], [1, 1])
        p.add_edge(0, 2, 1)
        with pytest.raises(ValueError):
            p.solve_tree()


class TestGeneralSolve:
    def test_cycle_matches_exhaustive(self):
        p = DiscreteLabelingProblem()
        p.add_node("a", [1])
        p.add_node("b", [1, 2])
        p.add_node("c", [2])
        p.add_edge("a", "b", 1)
        p.add_edge("b", "c", 1)
        p.add_edge("a", "c", 10)
        assert p.solve().cost == p.solve_exhaustive().cost == 11

    @pytest.mark.parametrize("seed", range(6))
    def test_random_cycles_not_worse_than_double_optimal(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        p = DiscreteLabelingProblem()
        n = 6
        for i in range(n):
            p.add_node(i, [0, 1, 2])
        for _ in range(9):
            u, v = rng.integers(0, n, size=2)
            if u == v:
                continue
            p.add_edge(int(u), int(v), int(rng.integers(1, 10)))
        heur = p.solve()
        exact = p.solve_exhaustive()
        assert heur.cost >= exact.cost
        # ICM from a spanning-tree seed is decent on small instances.
        assert heur.cost <= exact.cost * 3 + 1

    def test_exhaustive_limit(self):
        p = DiscreteLabelingProblem()
        for i in range(30):
            p.add_node(i, list(range(10)))
        with pytest.raises(ValueError):
            p.solve_exhaustive(limit=1000)

    def test_empty_candidates_rejected(self):
        p = DiscreteLabelingProblem()
        with pytest.raises(ValueError):
            p.add_node("x", [])

    def test_edge_before_nodes_rejected(self):
        p = DiscreteLabelingProblem()
        p.add_node("a", [1])
        with pytest.raises(KeyError):
            p.add_edge("a", "zzz", 1)

    def test_total_cost_fractions(self):
        p = chain([[1], [2]], [Fraction(3, 2)])
        assert p.total_cost({0: 1, 1: 2}) == Fraction(3, 2)
