"""Unit tests for the lexer."""

import pytest

from repro.lang import LexError, tokenize


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src) if t.kind not in ("newline", "eof")]


class TestTokens:
    def test_declaration(self):
        toks = kinds("real A(100,100)")
        assert toks[0] == ("kw", "real")
        assert toks[1] == ("ident", "A")
        assert ("int", "100") in toks

    def test_keywords_case_insensitive(self):
        assert kinds("DO k = 1, 5")[0] == ("kw", "do")
        assert kinds("EndDo")[0] == ("kw", "enddo")

    def test_identifiers_preserve_case(self):
        assert ("ident", "Vec_1") in kinds("Vec_1 = Vec_1")

    def test_operators_maximal_munch(self):
        toks = kinds("a ** b == c /= d <= e >= f")
        ops = [t for k, t in toks if k == "op"]
        assert ops == ["**", "==", "/=", "<=", ">="]

    def test_triplet_colons(self):
        toks = kinds("A(1:100:2)")
        assert ([t for k, t in toks if t == ":"]) == [":", ":"]

    def test_comments_stripped(self):
        toks = kinds("x = 1 ! this is a comment")
        assert all("comment" not in t for _, t in toks)
        assert toks[-1] == ("int", "1")

    def test_floats(self):
        toks = kinds("x = 1.5 + 2e3 + 3.25e-1")
        floats = [t for k, t in toks if k == "float"]
        assert floats == ["1.5", "2e3", "3.25e-1"]

    def test_fortran_d_exponent(self):
        toks = kinds("x = 1.5d0")
        assert ("float", "1.5e0") in toks

    def test_newlines_terminate_statements(self):
        toks = tokenize("a = 1\nb = 2")
        newlines = [t for t in toks if t.kind == "newline"]
        assert len(newlines) == 2

    def test_positions(self):
        toks = tokenize("  foo")
        assert toks[0].line == 1
        assert toks[0].col == 3

    def test_unexpected_char(self):
        with pytest.raises(LexError):
            tokenize("a = @")

    def test_eof_always_last(self):
        assert tokenize("")[-1].kind == "eof"
        assert tokenize("a = 1")[-1].kind == "eof"

    def test_number_then_colon(self):
        # '1:100' must not lex '1:' as a malformed float
        toks = kinds("A(1:100)")
        assert ("int", "1") in toks and ("int", "100") in toks

    def test_double_dot_rejected(self):
        with pytest.raises(LexError):
            tokenize("x = 1.2.3")
