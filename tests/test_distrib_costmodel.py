"""Unit tests for the distribution-planner cost model."""

import numpy as np
import pytest

from repro.align import align_program
from repro.distrib import CostVector, build_profile
from repro.distrib.costmodel import window_extents
from repro.lang import programs
from repro.machine import (
    Block,
    Cyclic,
    Distribution,
    coordinate_bounds,
    measure_traffic,
)


def _profile(prog, **kw):
    plan = align_program(prog, **kw)
    return plan, build_profile(plan.adg, plan.alignments)


class TestCostVector:
    def test_ordering_is_hops_first(self):
        assert CostVector(1, 100, 100) < CostVector(2, 0, 0)
        assert CostVector(1, 2, 0) < CostVector(1, 3, 0)

    def test_addition(self):
        c = CostVector(1, 2, 3) + CostVector(10, 20, 30)
        assert c == CostVector(11, 22, 33)

    def test_add_foreign_type_is_a_typeerror_not_a_crash(self):
        # __add__ must return NotImplemented (not raise AttributeError
        # mid-expression) so Python can try the other operand and report
        # the standard unsupported-operand TypeError.
        assert CostVector(1, 2, 3).__add__(5) is NotImplemented
        with pytest.raises(TypeError, match="unsupported operand"):
            CostVector(1, 2, 3) + 5
        with pytest.raises(TypeError, match="unsupported operand"):
            CostVector(1, 2, 3) + (1, 2, 3)

    def test_radd_zero_makes_sum_work(self):
        # sum() seeds with int 0; __radd__ absorbs it so cost lists fold
        # without a start= argument.
        costs = [CostVector(1, 2, 3), CostVector(10, 20, 30), CostVector(100, 0, 0)]
        assert sum(costs) == CostVector(111, 22, 33)
        assert 0 + CostVector(4, 5, 6) == CostVector(4, 5, 6)
        # Only the sum() seed is special: any other left operand still fails.
        with pytest.raises(TypeError, match="unsupported operand"):
            1 + CostVector(4, 5, 6)

    def test_sum_of_empty_list_is_plain_zero(self):
        assert sum([]) == 0


class TestBuildProfile:
    def test_window_matches_executor_bounds(self):
        plan, profile = _profile(programs.figure1(n=12), replication=False)
        assert profile.window == coordinate_bounds(plan.adg, plan.alignments)
        assert all(hi >= lo for lo, hi in profile.window)
        assert window_extents(profile) == tuple(
            hi - lo + 1 for lo, hi in profile.window
        )

    def test_static_moves_are_deduplicated(self):
        # The stencil repeats the same shifted move every iteration:
        # many moves, few distinct records.
        _, profile = _profile(
            programs.stencil_sweep(n=32, iters=8), replication=False
        )
        assert profile.total_moves > profile.distinct_moves

    def test_mobile_moves_are_not_collapsed(self):
        # figure1's loop-carried V shift changes coordinates with k.
        _, profile = _profile(programs.figure1(n=8), replication=False)
        assert profile.distinct_moves > 1

    def test_broadcast_folded_in(self):
        plan, profile = _profile(programs.figure4(nt=8, nk=6))
        measured = measure_traffic(
            plan.adg, plan.alignments, Distribution.identity(profile.template_rank)
        )
        assert profile.broadcast == measured.broadcast_elements == 8

    def test_describe_mentions_counts(self):
        _, profile = _profile(programs.example1(n=16))
        text = profile.describe()
        assert "records=" in text and "window=" in text


class TestEvaluateExactness:
    """The model must agree with the executor for ANY distribution."""

    CASES = [
        (lambda: programs.stencil_sweep(n=48, iters=3), dict(replication=False)),
        (lambda: programs.figure1(n=12), dict(replication=False)),
        (lambda: programs.skewed_wavefront(n=10), dict(replication=False)),
        (lambda: programs.figure4(nt=8, nk=6), {}),
    ]

    @pytest.mark.parametrize("make,kw", CASES)
    def test_identity_equals_executor_and_equation1(self, make, kw):
        plan, profile = _profile(make(), **kw)
        ident = Distribution.identity(profile.template_rank)
        modeled = profile.evaluate(ident)
        measured = measure_traffic(plan.adg, plan.alignments, ident)
        assert modeled.hops == measured.hop_cost
        assert modeled.moved == measured.elements_moved
        assert modeled.broadcast == measured.broadcast_elements
        # equation-1: identity hops plus the once-charged broadcasts
        # equal the analytic alignment cost
        assert modeled.hops + modeled.broadcast == plan.total_cost

    @pytest.mark.parametrize("make,kw", CASES)
    def test_block_and_cyclic_equal_executor(self, make, kw):
        plan, profile = _profile(make(), **kw)
        for scheme in ("block", "cyclic"):
            axes = []
            for lo, hi in profile.window:
                ext = hi - lo + 1
                if scheme == "block":
                    axes.append(Block(4, max(1, -(-ext // 4)), lo))
                else:
                    axes.append(Cyclic(4, lo))
            dist = Distribution(tuple(axes))
            modeled = profile.evaluate(dist)
            measured = measure_traffic(plan.adg, plan.alignments, dist)
            assert modeled.hops == measured.hop_cost, scheme
            assert modeled.moved == measured.elements_moved, scheme

    def test_rank_mismatch_rejected(self):
        _, profile = _profile(programs.example1(n=8))
        with pytest.raises(ValueError, match="rank"):
            profile.evaluate(Distribution.identity(profile.template_rank + 1))


class TestCachedPositionAliasing:
    """Shared cache entries must never hand out writable aliases.

    The move-record compiler memoizes per-axis coordinate arrays in a
    :class:`BoundedCache`; every consumer receives the same objects, so
    one stray in-place write would corrupt every later profile built
    from the same geometry.  The store path freezes each array, and the
    container is a tuple — immutability by construction, including for
    entries re-stored after an eviction.
    """

    def _fill_cache(self):
        from repro.distrib import costmodel

        costmodel._POSITIONS.clear()
        _profile(programs.figure1(n=10), replication=False)
        entries = list(costmodel._POSITIONS._data.values())
        assert entries, "profile build should populate the position cache"
        return entries

    def test_cached_entries_are_frozen_tuples_of_readonly_arrays(self):
        for entry in self._fill_cache():
            assert isinstance(entry, tuple)
            for arr in entry:
                assert isinstance(arr, np.ndarray)
                assert not arr.flags.writeable

    def test_writes_through_cached_arrays_are_refused(self):
        for entry in self._fill_cache():
            for arr in entry:
                if not arr.size:
                    continue
                with pytest.raises(ValueError, match="read-only"):
                    arr[..., 0] = -1

    def test_restored_entries_after_eviction_are_also_frozen(self):
        from repro.distrib import costmodel

        cache = costmodel._POSITIONS
        self._fill_cache()
        # Force the eviction path: shrink the bound so the next build
        # evicts and re-stores, then confirm the re-stored entries are
        # frozen exactly like first-time stores.
        old = cache.maxsize
        try:
            cache.maxsize = 1
            _profile(programs.figure1(n=10), replication=False)
            for entry in cache._data.values():
                for arr in entry:
                    assert not arr.flags.writeable
        finally:
            cache.maxsize = old

    def test_profiles_share_cached_arrays_not_copies(self):
        # The point of the cache: identical geometry across profile
        # builds yields the *same* array objects, which is exactly why
        # they must be read-only.
        from repro.distrib import costmodel

        costmodel._POSITIONS.clear()
        _profile(programs.figure1(n=10), replication=False)
        first = {
            k: tuple(id(a) for a in v)
            for k, v in costmodel._POSITIONS._data.items()
        }
        _profile(programs.figure1(n=10), replication=False)
        second = {
            k: tuple(id(a) for a in v)
            for k, v in costmodel._POSITIONS._data.items()
        }
        shared = set(first) & set(second)
        assert shared
        assert all(first[k] == second[k] for k in shared)


class TestAxisHops:
    def test_axis_hops_sum_to_total(self):
        # The L1 metric decomposes over axes: per-axis hop sums plus the
        # distribution-independent fixed part equal the full evaluation.
        _, profile = _profile(programs.figure1(n=10), replication=False)
        axes = []
        for lo, hi in profile.window:
            ext = hi - lo + 1
            axes.append(Block(2, max(1, -(-ext // 2)), lo))
        dist = Distribution(tuple(axes))
        per_axis = sum(
            profile.axis_hops(t, ax) for t, ax in enumerate(dist.axes)
        )
        assert per_axis + profile.fixed.hops == profile.evaluate(dist).hops
