"""Unit tests for the distribution-planner cost model."""

import numpy as np
import pytest

from repro.align import align_program
from repro.distrib import CostVector, build_profile
from repro.distrib.costmodel import window_extents
from repro.lang import programs
from repro.machine import (
    Block,
    Cyclic,
    Distribution,
    coordinate_bounds,
    measure_traffic,
)


def _profile(prog, **kw):
    plan = align_program(prog, **kw)
    return plan, build_profile(plan.adg, plan.alignments)


class TestCostVector:
    def test_ordering_is_hops_first(self):
        assert CostVector(1, 100, 100) < CostVector(2, 0, 0)
        assert CostVector(1, 2, 0) < CostVector(1, 3, 0)

    def test_addition(self):
        c = CostVector(1, 2, 3) + CostVector(10, 20, 30)
        assert c == CostVector(11, 22, 33)


class TestBuildProfile:
    def test_window_matches_executor_bounds(self):
        plan, profile = _profile(programs.figure1(n=12), replication=False)
        assert profile.window == coordinate_bounds(plan.adg, plan.alignments)
        assert all(hi >= lo for lo, hi in profile.window)
        assert window_extents(profile) == tuple(
            hi - lo + 1 for lo, hi in profile.window
        )

    def test_static_moves_are_deduplicated(self):
        # The stencil repeats the same shifted move every iteration:
        # many moves, few distinct records.
        _, profile = _profile(
            programs.stencil_sweep(n=32, iters=8), replication=False
        )
        assert profile.total_moves > profile.distinct_moves

    def test_mobile_moves_are_not_collapsed(self):
        # figure1's loop-carried V shift changes coordinates with k.
        _, profile = _profile(programs.figure1(n=8), replication=False)
        assert profile.distinct_moves > 1

    def test_broadcast_folded_in(self):
        plan, profile = _profile(programs.figure4(nt=8, nk=6))
        measured = measure_traffic(
            plan.adg, plan.alignments, Distribution.identity(profile.template_rank)
        )
        assert profile.broadcast == measured.broadcast_elements == 8

    def test_describe_mentions_counts(self):
        _, profile = _profile(programs.example1(n=16))
        text = profile.describe()
        assert "records=" in text and "window=" in text


class TestEvaluateExactness:
    """The model must agree with the executor for ANY distribution."""

    CASES = [
        (lambda: programs.stencil_sweep(n=48, iters=3), dict(replication=False)),
        (lambda: programs.figure1(n=12), dict(replication=False)),
        (lambda: programs.skewed_wavefront(n=10), dict(replication=False)),
        (lambda: programs.figure4(nt=8, nk=6), {}),
    ]

    @pytest.mark.parametrize("make,kw", CASES)
    def test_identity_equals_executor_and_equation1(self, make, kw):
        plan, profile = _profile(make(), **kw)
        ident = Distribution.identity(profile.template_rank)
        modeled = profile.evaluate(ident)
        measured = measure_traffic(plan.adg, plan.alignments, ident)
        assert modeled.hops == measured.hop_cost
        assert modeled.moved == measured.elements_moved
        assert modeled.broadcast == measured.broadcast_elements
        # equation-1: identity hops plus the once-charged broadcasts
        # equal the analytic alignment cost
        assert modeled.hops + modeled.broadcast == plan.total_cost

    @pytest.mark.parametrize("make,kw", CASES)
    def test_block_and_cyclic_equal_executor(self, make, kw):
        plan, profile = _profile(make(), **kw)
        for scheme in ("block", "cyclic"):
            axes = []
            for lo, hi in profile.window:
                ext = hi - lo + 1
                if scheme == "block":
                    axes.append(Block(4, max(1, -(-ext // 4)), lo))
                else:
                    axes.append(Cyclic(4, lo))
            dist = Distribution(tuple(axes))
            modeled = profile.evaluate(dist)
            measured = measure_traffic(plan.adg, plan.alignments, dist)
            assert modeled.hops == measured.hop_cost, scheme
            assert modeled.moved == measured.elements_moved, scheme

    def test_rank_mismatch_rejected(self):
        _, profile = _profile(programs.example1(n=8))
        with pytest.raises(ValueError, match="rank"):
            profile.evaluate(Distribution.identity(profile.template_rank + 1))


class TestAxisHops:
    def test_axis_hops_sum_to_total(self):
        # The L1 metric decomposes over axes: per-axis hop sums plus the
        # distribution-independent fixed part equal the full evaluation.
        _, profile = _profile(programs.figure1(n=10), replication=False)
        axes = []
        for lo, hi in profile.window:
            ext = hi - lo + 1
            axes.append(Block(2, max(1, -(-ext // 2)), lo))
        dist = Distribution(tuple(axes))
        per_axis = sum(
            profile.axis_hops(t, ax) for t, ax in enumerate(dist.axes)
        )
        assert per_axis + profile.fixed.hops == profile.evaluate(dist).hops
