"""Shared pytest plumbing: golden snapshot files.

``pytest --update-golden`` rewrites the files under ``tests/golden/``
from the current plans instead of comparing against them; commit the
diff deliberately.  Without the flag, a missing or mismatching golden
file fails the test with instructions.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).parent / "golden"


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json from current plans",
    )


class GoldenChecker:
    def __init__(self, update: bool) -> None:
        self.update = update

    def check(self, name: str, data: dict) -> None:
        """Compare ``data`` to the stored snapshot (or rewrite it)."""
        path = GOLDEN_DIR / f"{name}.json"
        if self.update:
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
            return
        if not path.exists():
            pytest.fail(
                f"golden snapshot {path} missing — run "
                f"`pytest --update-golden` and commit the result"
            )
        stored = json.loads(path.read_text())
        assert data == stored, (
            f"plan for {name!r} drifted from its golden snapshot "
            f"({path}); if the change is intended, rerun with "
            f"--update-golden and review the diff"
        )


@pytest.fixture
def golden(request: pytest.FixtureRequest) -> GoldenChecker:
    return GoldenChecker(request.config.getoption("--update-golden"))
