"""Unit tests for the parser."""

import pytest

from repro.ir import LIV, AffineForm
from repro.lang import ParseError, ast as A, parse

k = LIV("k", 0)


class TestDeclarations:
    def test_single(self):
        p = parse("real A(10,20)")
        assert p.decls[0].name == "A"
        assert p.decls[0].dims == (10, 20)

    def test_multiple_items(self):
        p = parse("real A(10), B(20)")
        assert [d.name for d in p.decls] == ["A", "B"]

    def test_attributes(self):
        p = parse("readonly replicated real T(256)")
        assert p.decls[0].readonly
        assert p.decls[0].replicate_hint

    def test_integer_kind(self):
        p = parse("integer idx(100)")
        assert p.decls[0].kind == "integer"

    def test_duplicate_rejected(self):
        with pytest.raises(ParseError):
            parse("real A(10)\nreal A(20)")


class TestAssignments:
    def test_whole_array(self):
        p = parse("real A(10), B(10)\nA = B")
        stmt = p.body[0]
        assert isinstance(stmt, A.Assign)
        assert stmt.lhs == A.Ref("A")

    def test_section_lhs(self):
        p = parse("real A(10)\nA(2:9) = 0")
        sub = p.body[0].lhs.subscripts[0]
        assert isinstance(sub, A.Slice)
        assert sub.lo == AffineForm(2)

    def test_full_slice(self):
        p = parse("real A(10,10)\nA(:,3) = 0")
        subs = p.body[0].lhs.subscripts
        assert isinstance(subs[0], A.FullSlice)
        assert isinstance(subs[1], A.Index)

    def test_precedence(self):
        p = parse("real A(10), B(10), C(10)\nA = B + C * 2")
        rhs = p.body[0].rhs
        assert rhs.op == "+"
        assert rhs.right.op == "*"

    def test_parens(self):
        p = parse("real A(10), B(10), C(10)\nA = (B + C) * 2")
        assert p.body[0].rhs.op == "*"

    def test_unary_minus(self):
        p = parse("real A(10), B(10)\nA = -B")
        assert isinstance(p.body[0].rhs, A.UnaryOp)


class TestAffineIndexing:
    def test_affine_subscript(self):
        p = parse("real A(100,100)\ndo k = 1, 10\nA(k,2*k+1) = 0\nenddo")
        assign = p.body[0].body[0]
        idx = assign.lhs.subscripts[1]
        assert idx.value == AffineForm(1, {k: 2})

    def test_affine_slice_bounds(self):
        p = parse("real V(200)\ndo k = 1, 100\nV(k:k+99) = 0\nenddo")
        sl = p.body[0].body[0].lhs.subscripts[0]
        assert sl.lo == AffineForm.variable(k)
        assert sl.hi == AffineForm(99, {k: 1})

    def test_liv_dependent_step(self):
        p = parse("real A(1000)\ndo k = 1, 50\nA(1:20*k:k) = 0\nenddo")
        sl = p.body[0].body[0].lhs.subscripts[0]
        assert sl.step == AffineForm.variable(k)

    def test_nonaffine_product_rejected(self):
        with pytest.raises(ParseError):
            parse("real A(100)\ndo k = 1, 9\ndo j = 1, 9\nA(k*j) = 0\nenddo\nenddo")

    def test_array_in_index_rejected(self):
        with pytest.raises(ParseError):
            parse("real A(10), B(10)\nA(B) = 0")

    def test_division_in_index(self):
        p = parse("real A(100)\ndo k = 2, 20, 2\nA(k/2) = 0\nenddo")
        idx = p.body[0].body[0].lhs.subscripts[0]
        assert idx.value == AffineForm(0, {k: AffineForm(0, {k: 1}).coeff(k) / 2})


class TestControlFlow:
    def test_do_loop(self):
        p = parse("real A(10)\ndo k = 1, 10\nA(k) = 1\nenddo")
        loop = p.body[0]
        assert isinstance(loop, A.Do)
        assert (loop.lo, loop.hi, loop.step) == (1, 10, 1)

    def test_do_with_step(self):
        p = parse("real A(10)\ndo k = 10, 1, -2\nA(k) = 1\nenddo")
        assert p.body[0].step == -2

    def test_nested_do(self):
        p = parse(
            "real A(10,10)\ndo i = 1, 10\ndo j = 1, 10\nA(i,j) = 0\nenddo\nenddo"
        )
        assert isinstance(p.body[0].body[0], A.Do)

    def test_unterminated_do(self):
        with pytest.raises(ParseError):
            parse("real A(10)\ndo k = 1, 10\nA(k) = 1")

    def test_if_else(self):
        p = parse(
            "real A(10)\nif (flag) then\nA(1) = 1\nelse\nA(2) = 2\nendif"
        )
        s = p.body[0]
        assert isinstance(s, A.If)
        assert s.cond == "flag"
        assert len(s.then_body) == 1 and len(s.else_body) == 1

    def test_if_no_else(self):
        p = parse("real A(10)\nif (x > 1) then\nA(1) = 1\nendif")
        assert p.body[0].else_body == ()


class TestIntrinsics:
    def test_transpose(self):
        p = parse("real B(8,8), C(8,8)\nB = transpose(C)")
        assert isinstance(p.body[0].rhs, A.Transpose)

    def test_spread(self):
        p = parse("real t(4), B(4,6)\nB = spread(t, dim=2, ncopies=6)")
        sp = p.body[0].rhs
        assert isinstance(sp, A.Spread)
        assert (sp.dim, sp.ncopies) == (2, 6)

    def test_spread_kwargs_any_order(self):
        p = parse("real t(4), B(6,4)\nB = spread(t, ncopies=6, dim=1)")
        sp = p.body[0].rhs
        assert (sp.dim, sp.ncopies) == (1, 6)

    def test_spread_missing_kwarg(self):
        with pytest.raises(ParseError):
            parse("real t(4), B(4,6)\nB = spread(t, dim=2)")

    def test_reduction_with_dim(self):
        p = parse("real A(4,6), r(4)\nr = sum(A, dim=2)")
        red = p.body[0].rhs
        assert isinstance(red, A.Reduce)
        assert red.dim == 2

    def test_elementwise_intrinsic(self):
        p = parse("real t(4)\nt = cos(t)")
        assert isinstance(p.body[0].rhs, A.Intrinsic)

    def test_gather(self):
        p = parse("real T(16), y(5)\ninteger idx(5)\ny = gather(T, idx(1:5))")
        g = p.body[0].rhs
        assert isinstance(g, A.Gather)
        assert g.table.name == "T"

    def test_ident_named_like_intrinsic_without_call(self):
        # a bare identifier 'sum' (no parens) is an array reference
        p = parse("real sum(4), x(4)\nx = sum")
        assert isinstance(p.body[0].rhs, A.Ref)
