"""The delta engine: program diffs, dirty regions, artifact carry-over.

Covers :mod:`repro.passes.delta` end to end — stable statement keys and
the LCS program diff, statement-provenance dirty regions over the ADG,
the projection-driven carry strategies (``identical``, ``machine_only``,
``carry_all``, ``carry_skeletons``, ``full``), byte-identity of every
incremental plan against its from-scratch counterpart, the
mutation-isolation guarantee (a replan never touches base-context
artifacts), the machine-only fast path (zero alignment passes re-run, a
priced remap), and the serve-layer delta path (``base_fingerprint``
requests, ``serve.hits.delta``/``serve.delta_stale`` counters,
stale-base fallback, concurrent-client monotonicity).
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import pickle
import threading

import pytest

from repro import cachestats
from repro.align.pipeline import plan_context
from repro.batch.engine import machine_label, replan_context, PlanRequest
from repro.lang import ast as A
from repro.lang.parser import parse
from repro.obs.metrics import registry
from repro.passes import (
    DeltaReport,
    MachineSpec,
    Pipeline,
    content_fingerprint,
    diff_programs,
    dirty_region,
    replan,
    statement_key,
)
from repro.serve import PlanDaemon, PlanService, ServeRequest
from repro.serve.service import _payload

BASE_SRC = """
real A(64), B(64), C(64)
A(1:63) = A(1:63) + B(2:64)
C(1:32) = sqrt(A(1:32))
"""

#: Single-statement edits of BASE_SRC, one per carry regime.
EDITS = {
    # label-only: '+' -> '-' — full alignment solution carries over
    "op_swap": (
        "carry_all",
        """
real A(64), B(64), C(64)
A(1:63) = A(1:63) - B(2:64)
C(1:32) = sqrt(A(1:32))
""",
    ),
    # intrinsic rename: also label-only
    "intrinsic_swap": (
        "carry_all",
        """
real A(64), B(64), C(64)
A(1:63) = A(1:63) + B(2:64)
C(1:32) = cos(A(1:32))
""",
    ),
    # extent-preserving window shift: offsets change, skeletons survive
    "section_shift": (
        "carry_skeletons",
        """
real A(64), B(64), C(64)
A(2:64) = A(2:64) + B(2:64)
C(1:32) = sqrt(A(1:32))
""",
    ),
    # a new statement: structural change, full replan
    "stmt_add": (
        "full",
        """
real A(64), B(64), C(64)
A(1:63) = A(1:63) + B(2:64)
C(1:32) = sqrt(A(1:32))
C(1:32) = sqrt(A(1:32))
""",
    ),
}

ALIGNMENT_PASSES = (
    "typecheck",
    "build-adg",
    "axis-stride",
    "replication-offsets",
    "assemble",
    "comm-profile",
)


def _plan(program, machine=MachineSpec.of(4), goal=("plan", "distribution")):
    ctx = plan_context(program)
    ctx.put("machine", machine)
    Pipeline().run(ctx, goal=goal)
    return ctx


def _blob(ctx, name="p"):
    return pickle.dumps(_payload(name, machine_label(4, None), ctx))


# -- statement keys and the program diff ---------------------------------------


class TestDiff:
    def test_statement_keys_stable_across_parses(self):
        a, b = parse(BASE_SRC), parse(BASE_SRC)
        assert [statement_key(s) for s in a.body] == [
            statement_key(s) for s in b.body
        ]

    def test_identical_programs_diff_empty(self):
        d = diff_programs(parse(BASE_SRC), parse(BASE_SRC))
        assert d.identical
        assert not d.changed_base and not d.changed_new
        assert len(d.matched) == len(parse(BASE_SRC).body)

    def test_single_edit_isolated(self):
        d = diff_programs(parse(BASE_SRC), parse(EDITS["op_swap"][1]))
        assert not d.identical
        assert d.changed_base == (0,)
        assert d.changed_new == (0,)
        assert (1, 1) in d.matched

    def test_insertion_matches_lcs(self):
        d = diff_programs(parse(BASE_SRC), parse(EDITS["stmt_add"][1]))
        # both original statements survive; only the duplicate is new
        assert d.changed_base == ()
        assert len(d.changed_new) == 1
        assert len(d.matched) == 2

    def test_decl_change_flagged(self):
        edited = BASE_SRC.replace("C(64)", "C(128)")
        d = diff_programs(parse(BASE_SRC), parse(edited))
        assert d.decls_changed
        assert not d.identical

    def test_summary_readable(self):
        d = diff_programs(parse(BASE_SRC), parse(EDITS["op_swap"][1]))
        assert "changed" in d.summary()


class TestDirtyRegion:
    def test_edit_dirties_downstream_only(self):
        base = parse(BASE_SRC)
        # edit the *second* statement: the first statement's region and
        # the B source must stay clean
        new = parse(EDITS["intrinsic_swap"][1])
        ctx = plan_context(new)
        Pipeline().run(ctx, goal="adg")
        adg = ctx.get("adg")
        diff = diff_programs(base, new)
        nodes, ports = dirty_region(adg, diff)
        assert nodes and ports
        tags = {adg.nodes[nid].stmt for nid in nodes}
        assert "s0" not in tags  # statement 0 untouched
        assert len(nodes) < len(adg.nodes)

    def test_everything_changed_dirties_everything(self):
        base = parse("real X(8)\nX(1:8) = X(1:8) + X(1:8)\n")
        new = parse(BASE_SRC)
        ctx = plan_context(new)
        Pipeline().run(ctx, goal="adg")
        adg = ctx.get("adg")
        nodes, _ = dirty_region(adg, diff_programs(base, new))
        assert len(nodes) == len(adg.nodes)


# -- carry strategies and byte-identity ----------------------------------------


class TestStrategies:
    @pytest.fixture(scope="class")
    def base_ctx(self):
        return _plan(parse(BASE_SRC))

    @pytest.mark.parametrize("edit", sorted(EDITS))
    def test_strategy_and_byte_identity(self, base_ctx, edit):
        expected, src = EDITS[edit]
        program = parse(src)
        new_ctx, rpt = replan(
            base_ctx, program=program, goal=("plan", "distribution")
        )
        assert rpt.strategy == expected, (edit, rpt.strategy)
        scratch = _plan(program)
        assert _blob(new_ctx) == _blob(scratch), (
            f"{edit}: incremental plan differs from from-scratch"
        )

    def test_identical_program_is_identical_strategy(self, base_ctx):
        new_ctx, rpt = replan(
            base_ctx, program=parse(BASE_SRC), goal=("plan", "distribution")
        )
        assert rpt.strategy == "identical"
        assert rpt.diff is not None and rpt.diff.identical
        assert _blob(new_ctx) == _blob(base_ctx)

    def test_carry_all_reuses_alignment_passes(self, base_ctx):
        new_ctx, rpt = replan(
            base_ctx,
            program=parse(EDITS["op_swap"][1]),
            goal=("plan", "distribution"),
        )
        for name in ("axis-stride", "replication-offsets", "assemble"):
            assert rpt.pass_status[name] == "reused (clean)", (
                name,
                rpt.pass_status,
            )
        assert rpt.pass_status["build-adg"] == "ran (dirty)"
        assert rpt.reused_entries > 0

    def test_carry_skeletons_reruns_offsets_only(self, base_ctx):
        new_ctx, rpt = replan(
            base_ctx,
            program=parse(EDITS["section_shift"][1]),
            goal=("plan", "distribution"),
        )
        assert rpt.pass_status["axis-stride"] == "reused (clean)"
        assert rpt.pass_status["replication-offsets"] == "ran (dirty)"

    def test_report_renders(self, base_ctx):
        _, rpt = replan(
            base_ctx,
            program=parse(EDITS["op_swap"][1]),
            goal=("plan", "distribution"),
        )
        text = rpt.render()
        assert "strategy=carry_all" in text
        assert "reused" in text and "recomputed" in text

    def test_counters_move(self, base_ctx):
        reg = registry()
        before_reused = reg.counter("passes.delta.reused").value
        snap = cachestats.snapshot().get("passes.artifact_reuse", (0, 0))
        _, rpt = replan(
            base_ctx,
            program=parse(EDITS["op_swap"][1]),
            goal=("plan", "distribution"),
        )
        assert reg.counter("passes.delta.reused").value > before_reused
        after = cachestats.snapshot()["passes.artifact_reuse"]
        assert after[0] >= snap[0] + rpt.reused_entries

    def test_explain_gains_delta_column(self, base_ctx):
        _, rpt = replan(
            base_ctx,
            program=parse(EDITS["op_swap"][1]),
            goal=("plan", "distribution"),
        )
        text = Pipeline().explain(goal=("plan", "distribution"), delta=rpt)
        assert "reused (clean)" in text
        assert "ran (dirty)" in text
        plain = Pipeline().explain(goal=("plan", "distribution"))
        assert "reused (clean)" not in plain


class TestMachineDelta:
    def test_distribute_suffix_only(self):
        base_ctx = _plan(parse(BASE_SRC))
        new_ctx, rpt = replan(base_ctx, machine=MachineSpec.of(8))
        assert rpt.strategy == "machine_only"
        reran = [
            ev["pass"]
            for ev in new_ctx.trace
            if ev.get("event") == "run" and ev.get("pass") in ALIGNMENT_PASSES
        ]
        assert reran == [], f"alignment passes re-ran: {reran}"
        assert new_ctx.get("machine").nprocs == 8
        assert base_ctx.get("machine").nprocs == 4

    def test_remap_is_priced(self):
        base_ctx = _plan(parse(BASE_SRC))
        _, rpt = replan(base_ctx, machine=MachineSpec.of(8))
        assert rpt.remap is not None
        assert rpt.remap.hops >= 0 and rpt.remap.moved >= 0

    def test_matches_scratch_plan(self):
        base_ctx = _plan(parse(BASE_SRC))
        new_ctx, _ = replan(base_ctx, machine=MachineSpec.of(8))
        scratch = _plan(parse(BASE_SRC), machine=MachineSpec.of(8))
        a = _payload("p", machine_label(8, None), new_ctx)
        b = _payload("p", machine_label(8, None), scratch)
        assert pickle.dumps(a) == pickle.dumps(b)


# -- satellite: mutation isolation ---------------------------------------------


def _artifact_snapshot(ctx):
    """(fingerprint, stable content repr) of every base artifact that a
    replan could conceivably reach through a shared reference."""
    snap = {}
    for key in ctx.keys():
        art = ctx.artifact(key)
        value = art.value
        content = content_fingerprint(value)
        if content is None and isinstance(value, dict):
            content = repr(sorted((k, repr(v)) for k, v in value.items()))
        snap[key] = (art.fingerprint, content)
    return snap


class TestMutationIsolation:
    """A replan must never write through to the base context: forked
    artifact stores, COW profiles, copied solver maps."""

    @pytest.mark.parametrize("edit", sorted(EDITS))
    def test_program_delta_leaves_base_untouched(self, edit):
        base_ctx = _plan(parse(BASE_SRC))
        before = _artifact_snapshot(base_ctx)
        before_trace = len(base_ctx.trace)
        replan(
            base_ctx,
            program=parse(EDITS[edit][1]),
            goal=("plan", "distribution"),
        )
        assert _artifact_snapshot(base_ctx) == before
        assert len(base_ctx.trace) == before_trace

    def test_machine_delta_leaves_base_untouched(self):
        base_ctx = _plan(parse(BASE_SRC))
        before = _artifact_snapshot(base_ctx)
        profile = base_ctx.get("profile")
        hops_before = dict(profile._hops_cache)
        new_ctx, _ = replan(base_ctx, machine=MachineSpec.of(8))
        # the distribution search memoizes into the profile: only the
        # replan's COW clone may have gained entries
        assert dict(base_ctx.get("profile")._hops_cache) == hops_before
        assert new_ctx.get("profile") is not base_ctx.get("profile")
        assert _artifact_snapshot(base_ctx) == before

    def test_carried_maps_are_copies(self):
        base_ctx = _plan(parse(BASE_SRC))
        new_ctx, rpt = replan(
            base_ctx,
            program=parse(EDITS["op_swap"][1]),
            goal=("plan", "distribution"),
        )
        assert rpt.strategy == "carry_all"
        for key in ("alignments", "replicated"):
            assert new_ctx.get(key) is not base_ctx.get(key)
            assert new_ctx.get(key) == base_ctx.get(key)
        assert (
            new_ctx.get("offsets").offsets is not base_ctx.get("offsets").offsets
        )
        assert (
            new_ctx.get("skeletons").skeletons
            is not base_ctx.get("skeletons").skeletons
        )


# -- the batch entry point -----------------------------------------------------


class TestReplanContext:
    def test_replan_context_round_trip(self):
        base_ctx = _plan(parse(BASE_SRC), goal=("plan", "profile"))
        req = PlanRequest(name="edited", source=EDITS["op_swap"][1])
        ctx, rpt = replan_context(base_ctx, req)
        assert isinstance(rpt, DeltaReport)
        assert rpt.strategy == "carry_all"
        assert ctx.has("plan") and ctx.has("profile")

    def test_align_kw_mismatch_rejected(self):
        base_ctx = _plan(parse(BASE_SRC), goal=("plan", "profile"))
        req = PlanRequest(name="edited", source=EDITS["op_swap"][1])
        with pytest.raises(ValueError, match="align"):
            replan_context(base_ctx, req, align_kw={"offset_mode": "static"})

    def test_batch_report_exposes_artifact_reuse(self):
        """A replanning batch task's cachestats delta carries the
        passes.artifact_reuse entry, and the report renders it
        alongside the kernel cache counters."""
        from repro.batch.engine import BatchReport, PlanResult

        base_ctx = _plan(parse(BASE_SRC), goal=("plan", "profile"))
        before = cachestats.snapshot()
        replan_context(
            base_ctx, PlanRequest(name="e", source=EDITS["op_swap"][1])
        )
        inc = cachestats.delta(before)
        assert "passes.artifact_reuse" in inc
        report = BatchReport(
            results=[PlanResult(name="e", ok=True, seconds=0.01, cache=inc)],
            seconds=0.01,
            jobs=1,
            mode="serial",
        )
        assert "passes.artifact_reuse" in report.render()


# -- the serve layer -----------------------------------------------------------


EDIT_SRC = EDITS["op_swap"][1]


class TestServeDelta:
    def test_delta_hit_and_byte_identity(self):
        reg = registry()
        with PlanService() as svc:
            first = svc.handle(ServeRequest("q", BASE_SRC, nprocs=4))
            assert first.ok and first.cached is None
            base_fp = first.fingerprints["program"]
            before = reg.counter("serve.hits.delta").value
            delta = svc.handle(
                ServeRequest(
                    "q2", EDIT_SRC, nprocs=4, base_fingerprint=base_fp
                )
            )
            assert delta.ok and delta.cached == "delta"
            assert reg.counter("serve.hits.delta").value == before + 1
        with PlanService() as svc:
            cold = svc.handle(ServeRequest("q2", EDIT_SRC, nprocs=4))
        assert pickle.dumps(delta.plan) == pickle.dumps(cold.plan)

    def test_delta_chains_across_edits(self):
        # each response's program fingerprint is a valid base for the
        # next edit: the delta path re-stores the new prefix
        with PlanService() as svc:
            r0 = svc.handle(ServeRequest("q", BASE_SRC, nprocs=4))
            r1 = svc.handle(
                ServeRequest(
                    "q",
                    EDIT_SRC,
                    nprocs=4,
                    base_fingerprint=r0.fingerprints["program"],
                )
            )
            assert r1.cached == "delta"
            r2 = svc.handle(
                ServeRequest(
                    "q",
                    EDITS["section_shift"][1],
                    nprocs=4,
                    base_fingerprint=r1.fingerprints["program"],
                )
            )
            assert r2.cached == "delta"

    def test_stale_base_falls_back_cold(self):
        reg = registry()
        with PlanService() as svc:
            before = reg.counter("serve.delta_stale").value
            resp = svc.handle(
                ServeRequest(
                    "q", BASE_SRC, nprocs=4, base_fingerprint="0" * 12
                )
            )
            assert resp.ok and resp.cached is None
            assert reg.counter("serve.delta_stale").value == before + 1

    def test_exact_hit_wins_over_delta(self):
        # if the edited program itself is already cached, the plan hit
        # answers and base_fingerprint is ignored
        with PlanService() as svc:
            svc.handle(ServeRequest("q", BASE_SRC, nprocs=4))
            resp = svc.handle(
                ServeRequest(
                    "q", BASE_SRC, nprocs=4, base_fingerprint="0" * 12
                )
            )
            assert resp.cached == "plan"

    def test_concurrent_delta_clients_monotone_counter(self):
        reg = registry()
        with PlanService() as svc:
            first = svc.handle(ServeRequest("q", BASE_SRC, nprocs=4))
            base_fp = first.fingerprints["program"]
            before = reg.counter("serve.hits.delta").value
            results = []

            def worker():
                results.append(
                    svc.handle(
                        ServeRequest(
                            "q",
                            EDIT_SRC,
                            nprocs=4,
                            base_fingerprint=base_fp,
                        )
                    )
                )

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert all(r.ok for r in results)
            hits = reg.counter("serve.hits.delta").value - before
            deltas = sum(1 for r in results if r.cached == "delta")
            assert deltas == hits
            assert deltas >= 1
            blobs = {pickle.dumps(r.plan) for r in results}
            assert len(blobs) == 1  # every client saw the same plan

    def test_daemon_delta_op(self):
        async def drive():
            daemon = PlanDaemon(PlanService(), port=0)
            await daemon.start()
            server = asyncio.create_task(daemon.serve_forever())
            reader, writer = await asyncio.open_connection(*daemon.address)

            async def ask(msg):
                writer.write(json.dumps(msg).encode() + b"\n")
                await writer.drain()
                return json.loads(await reader.readline())

            cold = await ask(
                {"op": "plan", "name": "q", "source": BASE_SRC, "nprocs": 4}
            )
            delta = await ask(
                {
                    "op": "plan",
                    "name": "q2",
                    "source": EDIT_SRC,
                    "nprocs": 4,
                    "base_fingerprint": cold["fingerprints"]["program"],
                }
            )
            stats = await ask({"op": "stats"})
            writer.close()
            daemon.shutdown()
            await server
            return cold, delta, stats

        cold, delta, stats = asyncio.run(drive())
        assert cold["status"] == "ok" and "fingerprints" in cold
        assert delta["status"] == "ok" and delta["cached"] == "delta"
        assert stats["stats"]["counters"]["serve.hits.delta"] >= 1
        assert "artifact_reuse" in stats["stats"]
