"""The serving layer: persistent plan cache, service, daemon, nonces.

Covers :mod:`repro.serve` end to end — the fingerprint-keyed
:class:`PlanCache` (round trips, LRU eviction, warm start across a
fresh process, schema-version invalidation, atomic-write hygiene, the
refusal of non-content-addressed key chains), the in-process
:class:`PlanService` (cold/warm/prefix paths with byte-identical
payloads for every generator family, backpressure, error responses),
the asyncio daemon protocol, and the fingerprint-nonce bugfix in
:mod:`repro.passes` that makes identity fingerprints safe to exist
alongside a persistent cache at all.
"""

from __future__ import annotations

import asyncio
import json
import os
import pickle
import subprocess
import sys

import pytest

from repro.obs.metrics import registry
from repro.passes import PlanContext, content_fingerprint
from repro.serve import (
    MISS,
    SCHEMA_VERSION,
    NonContentAddressedKeyError,
    PlanCache,
    PlanDaemon,
    PlanService,
    ServeRequest,
)

SRC = """
real A(64), B(64)
A(1:63) = A(1:63) + B(2:64)
"""

SRC2 = """
real C(32), D(32)
C(1:32) = C(1:32) + D(1:32)
"""


def _counter(name: str) -> int:
    return registry().counter(name).value


# -- PlanCache: key discipline -------------------------------------------------


class TestCacheKeys:
    def test_round_trip_memory(self):
        cache = PlanCache()
        assert cache.get("plan", ("abc123",)) is MISS
        cache.put("plan", ("abc123",), {"x": 1})
        assert cache.get("plan", ("abc123",)) == {"x": 1}
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_none_payload_distinct_from_miss(self):
        cache = PlanCache()
        cache.put("plan", ("abc123",), None)
        assert cache.get("plan", ("abc123",)) is None

    def test_identity_fingerprints_refused(self):
        # "v<clock>.<nonce>" chains are lineage-local; a persistent
        # cache keyed on one would serve artifact A to requester B.
        cache = PlanCache()
        for bad in ("v3", "v3.ab12cd34ef"):
            with pytest.raises(NonContentAddressedKeyError) as ei:
                cache.put("plan", ("abc123", bad), {"x": 1})
            assert ei.value.part == bad
            with pytest.raises(NonContentAddressedKeyError):
                cache.get("plan", ("abc123", bad))

    def test_bad_namespace_and_empty_key_rejected(self):
        cache = PlanCache()
        with pytest.raises(ValueError, match="unknown cache namespace"):
            cache.put("nope", ("abc123",), 1)
        with pytest.raises(ValueError, match="must not be empty"):
            cache.put("plan", (), 1)
        with pytest.raises(ValueError, match="not a fingerprint"):
            cache.put("plan", ("",), 1)

    def test_namespaces_do_not_collide(self):
        cache = PlanCache()
        cache.put("prefix", ("abc123",), "p")
        cache.put("plan", ("abc123",), "q")
        assert cache.get("prefix", ("abc123",)) == "p"
        assert cache.get("plan", ("abc123",)) == "q"


class TestCacheLRU:
    def test_eviction_past_bound(self):
        cache = PlanCache(max_entries=2)
        cache.put("plan", ("a1",), 1)
        cache.put("plan", ("b2",), 2)
        cache.get("plan", ("a1",))  # refresh a1 -> b2 is now LRU
        cache.put("plan", ("c3",), 3)
        assert cache.stats.evictions == 1
        assert cache.get("plan", ("b2",)) is MISS
        assert cache.get("plan", ("a1",)) == 1
        assert cache.get("plan", ("c3",)) == 3

    def test_bound_validated(self):
        with pytest.raises(ValueError, match="max_entries"):
            PlanCache(max_entries=0)


# -- PlanCache: persistence ----------------------------------------------------


class TestCachePersistence:
    def test_warm_start_hit(self, tmp_path):
        root = str(tmp_path / "cache")
        PlanCache(root).put("plan", ("abc123",), {"deep": [1, 2]})
        fresh = PlanCache(root)
        assert len(fresh) == 1
        assert fresh.get("plan", ("abc123",)) == {"deep": [1, 2]}

    def test_hit_across_a_fresh_process(self, tmp_path):
        root = str(tmp_path / "cache")
        cache = PlanCache(root, max_entries=2)
        for key in ("a1", "b2", "c3"):  # persist, evict a1
            cache.put("plan", (key,), f"payload-{key}")
        assert cache.stats.evictions == 1
        probe = (
            "import sys; from repro.serve import PlanCache, MISS\n"
            f"c = PlanCache({root!r})\n"
            "assert c.get('plan', ('a1',)) is MISS  # evicted stays gone\n"
            "assert c.get('plan', ('b2',)) == 'payload-b2'\n"
            "assert c.get('plan', ('c3',)) == 'payload-c3'\n"
            "print('cross-process-ok')\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        out = subprocess.run(
            [sys.executable, "-c", probe],
            capture_output=True,
            text=True,
            env=env,
        )
        assert out.returncode == 0, out.stderr
        assert "cross-process-ok" in out.stdout

    def test_schema_version_mismatch_invalidated(self, tmp_path):
        root = str(tmp_path / "cache")
        cache = PlanCache(root)
        cache.put("plan", ("abc123",), "current")
        (path,) = [
            os.path.join(root, "plan", f)
            for f in os.listdir(os.path.join(root, "plan"))
        ]
        entry = pickle.loads(open(path, "rb").read())
        entry["schema"] = SCHEMA_VERSION + 1
        with open(path, "wb") as f:
            f.write(pickle.dumps(entry))
        fresh = PlanCache(root)
        assert fresh.get("plan", ("abc123",)) is MISS
        assert fresh.stats.invalidated == 1
        assert not os.path.exists(path)  # deleted, not left to re-fail

    def test_truncated_entry_is_a_clean_miss(self, tmp_path):
        root = str(tmp_path / "cache")
        cache = PlanCache(root)
        cache.put("plan", ("abc123",), list(range(100)))
        (path,) = [
            os.path.join(root, "plan", f)
            for f in os.listdir(os.path.join(root, "plan"))
        ]
        blob = open(path, "rb").read()
        with open(path, "wb") as f:
            f.write(blob[: len(blob) // 2])
        fresh = PlanCache(root)
        assert fresh.get("plan", ("abc123",)) is MISS
        assert fresh.stats.invalidated == 1
        assert not os.path.exists(path)

    def test_stray_tmp_files_swept_at_warm_start(self, tmp_path):
        root = str(tmp_path / "cache")
        cache = PlanCache(root)
        cache.put("plan", ("abc123",), 1)
        stray = os.path.join(root, "plan", ".tmp-killed-writer~")
        with open(stray, "wb") as f:
            f.write(b"partial")
        fresh = PlanCache(root)
        assert not os.path.exists(stray)
        assert len(fresh) == 1  # the stray was not indexed as an entry

    def test_warm_start_respects_shrunk_bound(self, tmp_path):
        root = str(tmp_path / "cache")
        cache = PlanCache(root, max_entries=8)
        for i in range(5):
            cache.put("plan", (f"k{i}",), i)
        fresh = PlanCache(root, max_entries=2)
        assert len(fresh) == 2
        assert fresh.stats.evictions == 3

    def test_clear_removes_files(self, tmp_path):
        root = str(tmp_path / "cache")
        cache = PlanCache(root)
        cache.put("plan", ("abc123",), 1)
        cache.put("prefix", ("abc123",), 2)
        cache.clear()
        assert len(cache) == 0
        for ns in ("plan", "prefix"):
            assert os.listdir(os.path.join(root, ns)) == []


# -- fingerprint nonces (the satellite bugfix) ---------------------------------


class TestFingerprintNonces:
    def test_two_contexts_mint_distinct_identity_fingerprints(self):
        # Before the fix both said "v1": same version clock, different
        # lineages, colliding keys.  Now the per-context nonce splits them.
        a, b = PlanContext(), PlanContext()
        a.put("x", object())
        b.put("x", object())
        fa = a.artifact("x").fingerprint
        fb = b.artifact("x").fingerprint
        assert fa.startswith("v") and fb.startswith("v")
        assert fa != fb
        assert not a.artifact("x").content_addressed

    def test_unpickled_context_refreshes_its_nonce(self):
        ctx = PlanContext()
        ctx.put("x", object())
        clone = pickle.loads(pickle.dumps(ctx))
        ctx.put("y", object())
        clone.put("y", object())
        assert (
            ctx.artifact("y").fingerprint != clone.artifact("y").fingerprint
        )

    def test_affine_forms_are_content_addressable(self):
        # The opt-in __content_key__ protocol: without it every AST
        # containing an AffineForm degraded to identity fingerprints
        # and fell out of the persistent cache.
        from repro.ir.affine import AffineForm
        from repro.ir.symbols import LIV

        i = LIV("i", 1)
        f1 = content_fingerprint(AffineForm(1, {i: 2}))
        f2 = content_fingerprint(AffineForm(1, {i: 2}))
        f3 = content_fingerprint(AffineForm(1, {i: 3}))
        assert f1 is not None and f1 == f2 and f1 != f3

    def test_generated_corpus_is_content_addressable(self):
        # Every generator family must produce cacheable programs, or
        # the serving cache silently degrades to a passthrough.
        from repro.align.pipeline import plan_context
        from repro.lang.generate import generate_corpus
        from repro.lang.parser import parse

        for scenario in generate_corpus(7, seed=0):
            ctx = plan_context(parse(scenario.source, name=scenario.name))
            art = ctx.artifact("program")
            assert art.content_addressed, (
                f"{scenario.family}: program fingerprint degraded to "
                f"identity ({art.fingerprint})"
            )


# -- PlanService ---------------------------------------------------------------


class TestPlanService:
    def test_cold_then_plan_hit_then_prefix_hit(self):
        with PlanService() as svc:
            cold = svc.handle(ServeRequest("q", SRC, nprocs=4))
            assert cold.ok and cold.cached is None
            warm = svc.handle(ServeRequest("q", SRC, nprocs=4))
            assert warm.ok and warm.cached == "plan"
            # Same program, new machine: the machine-independent prefix
            # is reused, only the distribution suffix runs.
            other = svc.handle(ServeRequest("q", SRC, nprocs=8))
            assert other.ok and other.cached == "prefix"
            assert pickle.dumps(cold.plan) == pickle.dumps(warm.plan)
            assert other.plan["machine"] != cold.plan["machine"]

    def test_warm_hits_are_byte_identical_for_every_family(self, tmp_path):
        from repro.lang.generate import generate_corpus

        root = str(tmp_path / "cache")
        corpus = generate_corpus(7, seed=3)  # one scenario per family
        reqs = [ServeRequest(s.name, s.source, nprocs=4) for s in corpus]
        with PlanService(cache_dir=root) as svc:
            cold = {r.name: svc.handle(r) for r in reqs}
        # A fresh instance on the same directory: every hit must come
        # from disk and decode to byte-identical payloads.
        with PlanService(cache_dir=root) as svc:
            for req in reqs:
                warm = svc.handle(req)
                assert warm.cached == "plan", (req.name, warm.error)
                assert pickle.dumps(warm.plan) == pickle.dumps(
                    cold[req.name].plan
                ), f"{req.name}: cache hit drifted from cold plan"

    def test_default_machine_applied(self):
        with PlanService(default_nprocs=6) as svc:
            resp = svc.handle(ServeRequest("q", SRC))
            assert resp.ok
            assert "6" in resp.plan["machine"]

    def test_error_response_not_exception(self):
        with PlanService() as svc:
            before = _counter("serve.errors")
            resp = svc.handle(ServeRequest("bad", "real A(; nonsense"))
            assert resp.status == "error" and not resp.ok
            assert resp.plan is None and resp.error
            assert _counter("serve.errors") == before + 1

    def test_backpressure_rejects_past_high_water_mark(self):
        with PlanService(max_pending=1, retry_after=0.25) as svc:
            assert svc.try_admit()  # occupy the only slot
            try:
                before = _counter("serve.rejected")
                resp = svc.handle(ServeRequest("q", SRC, nprocs=4))
                assert resp.status == "rejected"
                assert resp.retry_after == 0.25
                assert resp.plan is None
                assert _counter("serve.rejected") == before + 1
            finally:
                svc.release()
            assert svc.handle(ServeRequest("q", SRC, nprocs=4)).ok

    def test_uncacheable_requests_are_planned_but_not_stored(self, monkeypatch):
        # Simulate a fingerprint chain degrading to identity: the
        # request must still be answered, but nothing may be persisted.
        import repro.passes as passes

        monkeypatch.setattr(passes, "content_fingerprint", lambda v: None)
        with PlanService() as svc:
            before = _counter("serve.uncacheable")
            a = svc.handle(ServeRequest("q", SRC, nprocs=4))
            b = svc.handle(ServeRequest("q", SRC, nprocs=4))
            assert a.ok and b.ok
            assert b.cached is None  # no hit: nothing was stored
            assert len(svc.cache) == 0
            assert _counter("serve.uncacheable") == before + 2

    def test_stats_shape(self):
        with PlanService() as svc:
            svc.handle(ServeRequest("q", SRC, nprocs=4))
            stats = svc.stats()
            assert stats["pending"] == 0
            assert stats["cache_dir"] is None
            assert stats["cache"]["stores"] == 2  # prefix + plan
            assert "serve.requests" in stats["counters"]
            assert set(stats["latency"]) == {"warm_ms", "cold_ms", "delta_ms"}
            assert set(stats["artifact_reuse"]) == {"reused", "recomputed"}

    def test_pooled_cold_path_matches_inline(self, tmp_path):
        inline_dir = str(tmp_path / "inline")
        pooled_dir = str(tmp_path / "pooled")
        req = ServeRequest("q", SRC, nprocs=4)
        with PlanService(cache_dir=inline_dir, jobs=1) as svc:
            inline = svc.handle(req)
        with PlanService(cache_dir=pooled_dir, jobs=2) as svc:
            pooled = svc.handle(req)
        assert inline.ok and pooled.ok
        assert pickle.dumps(inline.plan) == pickle.dumps(pooled.plan)


# -- the daemon ----------------------------------------------------------------


class TestDaemon:
    def _roundtrip(self, messages: list[dict]) -> list[dict]:
        async def drive() -> list[dict]:
            daemon = PlanDaemon(PlanService(), port=0)
            await daemon.start()
            host, port = daemon.address
            server = asyncio.create_task(daemon.serve_forever())
            reader, writer = await asyncio.open_connection(host, port)
            replies = []
            for msg in messages:
                writer.write(json.dumps(msg).encode() + b"\n")
                await writer.drain()
                replies.append(json.loads(await reader.readline()))
            writer.close()
            daemon.shutdown()
            await server
            return replies

        return asyncio.run(drive())

    def test_protocol_roundtrip(self):
        replies = self._roundtrip(
            [
                {"op": "ping"},
                {"op": "plan", "id": 7, "name": "q", "source": SRC, "nprocs": 4},
                {"name": "q", "source": SRC, "nprocs": 4},  # op defaults
                {"op": "stats"},
                {"op": "plan", "name": "empty", "source": "   "},
                {"op": "wat"},
            ]
        )
        ping, cold, warm, stats, bad_source, bad_op = replies
        assert ping == {"status": "ok", "pong": True}
        assert cold["status"] == "ok" and cold["cached"] is None
        assert cold["id"] == 7
        assert warm["status"] == "ok" and warm["cached"] == "plan"
        assert cold["plan"] == warm["plan"]
        assert stats["stats"]["counters"]["serve.hits.plan"] >= 1
        assert bad_source["status"] == "error"
        assert "source" in bad_source["error"]
        assert bad_op["status"] == "error"

    def test_malformed_json_keeps_connection_open(self):
        async def drive() -> list[dict]:
            daemon = PlanDaemon(PlanService(), port=0)
            await daemon.start()
            server = asyncio.create_task(daemon.serve_forever())
            reader, writer = await asyncio.open_connection(*daemon.address)
            writer.write(b"{not json\n")
            await writer.drain()
            first = json.loads(await reader.readline())
            writer.write(b'{"op": "ping"}\n')
            await writer.drain()
            second = json.loads(await reader.readline())
            writer.close()
            daemon.shutdown()
            await server
            return [first, second]

        first, second = asyncio.run(drive())
        assert first["status"] == "error"
        assert second == {"status": "ok", "pong": True}
