"""Unit tests for the sigma closed forms and weighted moments (Section 4.3)."""

from fractions import Fraction

import pytest

from repro.ir import (
    LIV,
    AffineForm,
    IterationSpace,
    Polynomial,
    Triplet,
    average_index,
    fixed_size_cost_closed_form,
    sigma0,
    sigma1,
    sigma2,
    weighted_moments,
)

k = LIV("k")
j = LIV("j")

TRIPLETS = [
    Triplet(1, 100),
    Triplet(2, 20, 3),
    Triplet(5, 5),
    Triplet(10, 1, -2),
    Triplet(7, 50, 6),
]


@pytest.mark.parametrize("t", TRIPLETS)
class TestSigmas:
    def test_sigma0(self, t):
        assert sigma0(t) == len(t)

    def test_sigma1(self, t):
        assert sigma1(t) == sum(t)

    def test_sigma2(self, t):
        assert sigma2(t) == sum(i * i for i in t)


class TestAverageIndex:
    def test_simple(self):
        assert average_index(Triplet(1, 100)) == Fraction(101, 2)

    def test_matches_mean(self):
        t = Triplet(2, 20, 3)
        vals = list(t)
        assert average_index(t) == Fraction(sum(vals), len(vals))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            average_index(Triplet(2, 1))


class TestWeightedMoments:
    def test_constant_weight(self):
        sp = IterationSpace.single(k, 1, 50)
        m = weighted_moments(sp, Polynomial.constant(3))
        assert m.m0 == 150
        assert m.m1[k] == 3 * sum(range(1, 51))

    def test_affine_weight(self):
        sp = IterationSpace.single(k, 1, 20)
        w = Polynomial.from_affine(AffineForm(2, {k: 5}))
        m = weighted_moments(sp, w)
        assert m.m0 == sum(2 + 5 * i for i in range(1, 21))
        assert m.m1[k] == sum((2 + 5 * i) * i for i in range(1, 21))

    def test_nested_space(self):
        sp = IterationSpace.single(k, 1, 4).extended(j, Triplet(1, 3))
        w = Polynomial.variable(k) * Polynomial.variable(j)
        m = weighted_moments(sp, w)
        brute0 = sum(ki * ji for ki in range(1, 5) for ji in range(1, 4))
        brute_k = sum(ki * ji * ki for ki in range(1, 5) for ji in range(1, 4))
        assert m.m0 == brute0
        assert m.m1[k] == brute_k

    def test_span_sum(self):
        sp = IterationSpace.single(k, 1, 10)
        m = weighted_moments(sp, Polynomial.constant(1))
        # span = 3 - k summed over 1..10 = 30 - 55 = -25
        assert m.span_sum(Fraction(3), {k: Fraction(-1)}) == -25

    def test_unknown_liv_rejected(self):
        sp = IterationSpace.single(k, 1, 10)
        with pytest.raises(ValueError):
            weighted_moments(sp, Polynomial.variable(j))


class TestEquation3:
    def test_no_crossing_exact(self):
        # span = 2k + 1 on k=1..10, unit weight: sum |2k+1| = 2*55+10 = 120
        t = Triplet(1, 10)
        c = fixed_size_cost_closed_form(t, Fraction(2), Fraction(1))
        assert c == 120

    def test_sign_flip_symmetric(self):
        # span = k - 5.5 over 1..10: closed form gives |sum| = 0 although
        # the true cost is 25 — exactly the Figure 3(b) failure mode.
        t = Triplet(1, 10)
        c = fixed_size_cost_closed_form(t, Fraction(1), Fraction(-11, 2))
        assert c == 0
        true = sum(abs(Fraction(i) - Fraction(11, 2)) for i in t)
        assert true == 25

    def test_empty(self):
        assert fixed_size_cost_closed_form(Triplet(2, 1), Fraction(1), Fraction(0)) == 0
