"""Integration tests for the full pipeline and the cost evaluator."""

from fractions import Fraction

import pytest

from repro.align import align_program, cost_breakdown, total_cost
from repro.lang import parse
from repro.lang import programs


class TestPipeline:
    def test_figure1_mobile_beats_static(self):
        static = align_program(programs.figure1(), replication=False, mobile=False)
        mobile = align_program(programs.figure1(), replication=False)
        assert mobile.total_cost == 39600
        assert static.total_cost > mobile.total_cost * 10

    def test_figure1_replication_beats_mobile(self):
        mobile = align_program(programs.figure1(), replication=False)
        full = align_program(programs.figure1(), replication=True)
        assert full.total_cost < mobile.total_cost

    def test_quiescence_terminates(self):
        plan = align_program(programs.figure1(), max_replication_rounds=10)
        assert plan.replication_rounds <= 10

    def test_source_alignments_exposed(self):
        plan = align_program(programs.example1())
        src = plan.source_alignments()
        assert set(src) == {"A", "B"}
        assert src["B"].axes[0].offset - src["A"].axes[0].offset == -1

    def test_report_is_readable(self):
        plan = align_program(programs.example1())
        text = plan.report()
        assert "total realignment cost" in text
        assert "A:" in text and "B:" in text

    def test_zero_cost_programs(self):
        for src in [
            "real A(10), B(10)\nA = A + B",
            "real A(10,10), B(10,10)\nB = B + transpose(A)",
            "real A(10)\nA = 0",
        ]:
            plan = align_program(parse(src))
            assert plan.total_cost == 0, src

    def test_alignment_map_covers_all_ports(self):
        plan = align_program(programs.figure4())
        for p in plan.adg.ports():
            al = plan.alignments[p.key]
            assert al.template_rank == plan.adg.template_rank

    def test_breakdown_sums_to_total(self):
        plan = align_program(programs.figure1(), replication=False)
        parts = cost_breakdown(plan.adg, plan.alignments)
        assert sum((ec.cost for ec in parts), Fraction(0)) == plan.total_cost

    def test_branch_program(self):
        plan = align_program(programs.conditional_update(n=16))
        assert plan.total_cost >= 0

    def test_nested_loops(self):
        plan = align_program(programs.doubly_nested(n=4))
        assert plan.total_cost >= 0

    def test_algorithm_parameter_passthrough(self):
        plan = align_program(programs.figure1(n=16), algorithm="fixed", m=5)
        assert "m=5" in plan.offsets.algorithm

    def test_unknown_algorithm_raises(self):
        with pytest.raises(ValueError):
            align_program(programs.example1(), algorithm="zzz")


class TestCostEvaluator:
    def test_edge_kinds(self):
        plan = align_program(programs.figure4(), replication=False)
        kinds = {ec.kind for ec in plan.breakdown()}
        assert "broadcast" in kinds
        assert "aligned" in kinds

    def test_general_kind_on_stride_mismatch(self):
        plan = align_program(programs.example5(iters=10, m=4))
        kinds = [ec.kind for ec in plan.breakdown() if ec.cost > 0]
        assert "general" in kinds
