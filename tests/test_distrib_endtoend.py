"""End-to-end acceptance tests for automatic distribution planning.

The issue's bar: on the bundled example programs the auto-planner's
chosen distribution achieves modeled cost no worse than the best of the
three naive uniform distributions (all-block, all-cyclic, identity),
and the cost model agrees with ``machine.executor`` measured hop counts
— exactly — under the identity distribution (and, stronger, under the
planned distribution too).
"""

import pytest

from repro import align_and_distribute, align_program
from repro.distrib import build_profile, naive_costs, plan_distribution
from repro.lang import programs
from repro.machine import Distribution, measure_traffic

# At least 3 example programs, per the acceptance criteria.
EXAMPLES = [
    ("figure1", lambda: programs.figure1(n=16), dict(replication=False)),
    ("stencil", lambda: programs.stencil_sweep(n=48, iters=3),
     dict(replication=False)),
    ("wavefront", lambda: programs.skewed_wavefront(n=10),
     dict(replication=False)),
    ("figure4", lambda: programs.figure4(nt=8, nk=6), {}),
    ("example5", lambda: programs.example5(iters=10, m=6),
     dict(replication=False)),
]


def _planned(make, kw, nprocs=4):
    plan = align_program(make(), **kw)
    profile = build_profile(plan.adg, plan.alignments)
    return plan, profile, plan_distribution(profile, nprocs)


class TestAcceptance:
    @pytest.mark.parametrize("name,make,kw", EXAMPLES)
    def test_auto_beats_or_matches_naive(self, name, make, kw):
        _, profile, dplan = _planned(make, kw)
        best_naive = min(c.hops for c in naive_costs(profile, 4).values())
        assert dplan.cost.hops <= best_naive, name

    @pytest.mark.parametrize("name,make,kw", EXAMPLES)
    def test_model_exact_under_identity(self, name, make, kw):
        plan, profile, _ = _planned(make, kw)
        ident = Distribution.identity(profile.template_rank)
        modeled = profile.evaluate(ident)
        measured = measure_traffic(plan.adg, plan.alignments, ident)
        assert modeled.hops == measured.hop_cost, name
        # and the identity machine realizes the paper's equation-1 cost:
        # hops plus the once-charged broadcast volume plus the
        # discrete-metric charge of general moves (which carry no
        # topological hop cost)
        assert (
            measured.hop_cost
            + measured.broadcast_elements
            + measured.general_elements
            == plan.total_cost
        ), name

    @pytest.mark.parametrize("name,make,kw", EXAMPLES)
    def test_model_exact_under_planned_distribution(self, name, make, kw):
        plan, _, dplan = _planned(make, kw)
        measured = measure_traffic(
            plan.adg, plan.alignments, dplan.to_distribution()
        )
        assert dplan.cost.hops == measured.hop_cost, name
        assert dplan.cost.moved == measured.elements_moved, name
        assert dplan.cost.broadcast == measured.broadcast_elements, name


class TestPipelineIntegration:
    def test_align_and_distribute_attaches_plan(self):
        plan = align_and_distribute(
            programs.figure1(n=12), 4, replication=False
        )
        assert plan.distribution is not None
        assert plan.distribution.num_processors == 4
        assert "DISTRIBUTE" in plan.report()

    def test_distrib_options_forwarded(self):
        plan = align_and_distribute(
            programs.stencil_sweep(n=24, iters=2),
            4,
            distrib_options=dict(exhaustive_limit=0),
            replication=False,
        )
        assert plan.distribution is not None
        assert not plan.distribution.exact

    def test_plain_align_has_no_distribution(self):
        plan = align_program(programs.example1(n=8))
        assert plan.distribution is None
        assert "DISTRIBUTE" not in plan.report()
