"""Rolling-window telemetry, SLOs, and Prometheus exposition.

Covers :mod:`repro.obs.live` (windowed counters/histograms on a fake
clock — zero sleeps anywhere in this file), the exact
``to_dict``/``from_dict``/``merge`` round trips on
:class:`~repro.obs.metrics.Histogram` that windowing is built from,
metric thread-safety (a hammer asserting *exact* counts under
concurrent increments, plus the overhead guard holding PR 7's line),
the registry's upgrade path from cumulative to windowed metrics, SLO
burn-rate math, and :mod:`repro.obs.prom` — renderer and the
pure-python checker CI runs on scraped expositions.
"""

from __future__ import annotations

import math
import threading

import pytest

from repro.obs.live import (
    ErrorRateSLO,
    LatencySLO,
    SLOTracker,
    WindowedCounter,
    WindowedHistogram,
    _SliceRing,
    default_serve_slos,
)
from repro.obs.metrics import Counter, Gauge, Histogram, Registry
from repro.obs.prom import (
    check_exposition,
    main as prom_main,
    render_prometheus,
    sanitize,
)


class FakeClock:
    """An injectable monotonic clock advanced by hand."""

    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# -- histogram round trips (the substrate windowing relies on) -----------------


class TestHistogramRoundTrips:
    def test_to_from_dict_exact(self):
        h = Histogram("lat")
        for v in (0.0, 0.1, 1.0, 3.7, 42.0, 42.0, 1e6):
            h.observe(v)
        d = h.to_dict()
        back = Histogram.from_dict("lat", d)
        assert back.count == h.count
        assert back.total == h.total
        assert back.min == h.min and back.max == h.max
        assert back.zeros == h.zeros
        assert back.buckets == h.buckets
        assert back.summary() == h.summary()

    def test_to_dict_is_json_clean_when_empty(self):
        d = Histogram("empty").to_dict()
        assert d["min"] is None and d["max"] is None
        assert d["count"] == 0 and d["buckets"] == {}
        # and it round-trips back to the infinities sentinel state
        back = Histogram.from_dict("empty", d)
        assert back.min == math.inf and back.max == -math.inf

    def test_merge_is_exact(self):
        a, b, both = Histogram("a"), Histogram("b"), Histogram("both")
        stream_a = [0.0, 0.5, 2.0, 100.0]
        stream_b = [0.3, 2.0, 7.0]
        for v in stream_a:
            a.observe(v)
            both.observe(v)
        for v in stream_b:
            b.observe(v)
            both.observe(v)
        a.merge(b)
        assert a.count == both.count
        assert a.total == both.total
        assert a.min == both.min and a.max == both.max
        assert a.zeros == both.zeros
        assert a.buckets == both.buckets
        assert a.summary() == both.summary()

    def test_count_le_is_conservative(self):
        h = Histogram("lat")
        for v in (0.0, 1.0, 10.0, 100.0):
            h.observe(v)
        assert h.count_le(-1.0) == 0
        assert h.count_le(0.0) == 1  # just the zero
        # 1.0 is an exact bucket upper edge (base**0): included.
        assert h.count_le(1.0) == 2
        # A threshold strictly inside 10.0's bucket must not credit it.
        assert h.count_le(9.0) == 2
        assert h.count_le(1e9) == 4


# -- windowed metrics on a fake clock ------------------------------------------


class TestSliceRing:
    def test_validation(self):
        with pytest.raises(ValueError, match="window"):
            _SliceRing(0.0, 12, None)
        with pytest.raises(ValueError, match="slice"):
            _SliceRing(60.0, 0, None)


class TestWindowedCounter:
    def test_window_decays_lifetime_does_not(self):
        clock = FakeClock()
        c = WindowedCounter("reqs", window=60.0, slices=12, clock=clock)
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.window_value() == 5
        clock.advance(30.0)
        c.inc(2)
        assert c.window_value() == 7
        clock.advance(45.0)  # first burst now 75s old: expired
        assert c.window_value() == 2
        clock.advance(120.0)
        assert c.window_value() == 0
        assert c.value == 7  # lifetime is untouched by expiry

    def test_is_a_counter(self):
        assert isinstance(WindowedCounter("c"), Counter)


class TestWindowedHistogram:
    def test_window_tracks_only_recent_phase(self):
        clock = FakeClock()
        h = WindowedHistogram("ms", window=60.0, slices=12, clock=clock)
        for _ in range(20):
            h.observe(100.0)  # the cold burst
        clock.advance(120.0)  # age it out entirely
        assert h.window().count == 0
        for _ in range(20):
            h.observe(1.0)  # the warm phase
        win = h.window().summary()
        life = h.summary()
        assert win["count"] == 20
        assert win["p99"] < 2.0
        assert life["count"] == 40
        assert life["p99"] > 50.0  # lifetime still remembers the burst

    def test_window_merge_is_exact_across_slices(self):
        clock = FakeClock()
        h = WindowedHistogram("ms", window=60.0, slices=12, clock=clock)
        reference = Histogram("ref")
        for i in range(12):  # one observation per slice, all live
            h.observe(float(i))
            reference.observe(float(i))
            clock.advance(5.0 - 1e-9)
        merged = h.window()
        assert merged.count == reference.count
        assert merged.buckets == reference.buckets
        assert merged.zeros == reference.zeros

    def test_is_a_histogram(self):
        assert isinstance(WindowedHistogram("h"), Histogram)


# -- registry integration ------------------------------------------------------


class TestRegistryWindowed:
    def test_upgrade_carries_lifetime(self):
        reg = Registry()
        reg.counter("serve.requests").inc(10)
        clock = FakeClock()
        c = reg.windowed_counter("serve.requests", window=60.0, clock=clock)
        assert isinstance(c, WindowedCounter)
        assert c.value == 10  # lifetime carried over
        assert c.window_value() == 0  # window starts empty
        # plain accessor still resolves (isinstance passes)
        assert reg.counter("serve.requests") is c

    def test_histogram_upgrade_carries_state(self):
        reg = Registry()
        reg.histogram("ms").observe(5.0)
        h = reg.windowed_histogram("ms", clock=FakeClock())
        assert h.count == 1 and h.window().count == 0

    def test_idempotent_re_registration(self):
        reg = Registry()
        clock = FakeClock()
        c = reg.windowed_counter("c", window=60.0, clock=clock)
        c.inc(3)
        again = reg.windowed_counter("c", window=60.0, clock=clock)
        assert again is c  # same clock + window: untouched
        assert again.window_value() == 3

    def test_reconfigure_resets_window_keeps_lifetime(self):
        reg = Registry()
        c = reg.windowed_counter("c", window=60.0, clock=FakeClock())
        c.inc(3)
        fresh = reg.windowed_counter("c", window=30.0, clock=FakeClock())
        assert fresh.value == 3
        assert fresh.window_value() == 0
        assert fresh.window_seconds == 30.0

    def test_kind_mismatch_raises(self):
        reg = Registry()
        reg.gauge("g")
        with pytest.raises(TypeError):
            reg.windowed_counter("g")

    def test_snapshot_reports_both_views(self):
        reg = Registry()
        clock = FakeClock()
        reg.windowed_counter("reqs", window=60.0, clock=clock).inc(5)
        reg.windowed_histogram("ms", window=60.0, clock=clock).observe(2.0)
        clock.advance(120.0)
        reg.windowed_counter("reqs", window=60.0, clock=clock).inc(1)
        snap = reg.snapshot(include_cachestats=False)
        assert snap["counters"]["reqs"] == 6  # lifetime
        assert snap["windows"]["reqs"] == {
            "window_seconds": 60.0,
            "label": "last_60s",
            "value": 1,
        }
        assert snap["histograms"]["ms"]["count"] == 1
        assert snap["windows"]["ms"]["summary"]["count"] == 0
        rendered = reg.render(include_cachestats=False)
        assert "last_60s" in rendered

    def test_collect_carries_raw_window_data(self):
        reg = Registry()
        reg.windowed_histogram("ms", clock=FakeClock()).observe(3.0)
        (rec,) = reg.collect(include_cachestats=False)
        assert rec["kind"] == "histogram"
        assert rec["data"]["count"] == 1
        assert rec["window"]["data"]["count"] == 1
        assert rec["window"]["label"] == "last_60s"


# -- thread-safety -------------------------------------------------------------


class TestConcurrency:
    THREADS = 8
    PER_THREAD = 2000

    def _hammer(self, fn):
        barrier = threading.Barrier(self.THREADS)

        def work():
            barrier.wait()
            for _ in range(self.PER_THREAD):
                fn()

        threads = [
            threading.Thread(target=work) for _ in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_counter_exact_under_hammer(self):
        c = Counter("c")
        self._hammer(c.inc)
        assert c.value == self.THREADS * self.PER_THREAD

    def test_windowed_counter_exact_under_hammer(self):
        c = WindowedCounter("c", window=3600.0, clock=FakeClock())
        self._hammer(c.inc)
        expected = self.THREADS * self.PER_THREAD
        assert c.value == expected
        assert c.window_value() == expected

    def test_gauge_inc_dec_exact_under_hammer(self):
        g = Gauge("g")
        self._hammer(g.inc)
        assert g.value == self.THREADS * self.PER_THREAD
        self._hammer(g.dec)
        assert g.value == 0

    def test_histogram_exact_under_hammer(self):
        h = WindowedHistogram("h", window=3600.0, clock=FakeClock())
        self._hammer(lambda: h.observe(1.0))
        expected = self.THREADS * self.PER_THREAD
        assert h.count == expected
        assert h.window().count == expected

    def test_locked_inc_overhead_within_guard(self):
        # The same guard style PR 7 put on disabled spans: an uncontended
        # locked increment must stay well under 20µs/call even on a slow
        # CI box (typically it is tens of nanoseconds).
        import timeit

        c = Counter("c")
        n = 20_000
        per_call = timeit.timeit(c.inc, number=n) / n
        assert per_call < 20e-6, f"Counter.inc at {per_call * 1e6:.2f}µs/call"


# -- gauges --------------------------------------------------------------------


class TestGauge:
    def test_inc_dec_from_unset(self):
        g = Gauge("g")
        assert g.value is None
        g.inc()
        g.inc(2)
        assert g.value == 3
        g.dec()
        assert g.value == 2
        g.set(10.0)
        assert g.value == 10.0


# -- SLOs ----------------------------------------------------------------------


class TestSLOs:
    def test_target_validation(self):
        with pytest.raises(ValueError, match="target"):
            LatencySLO("x", histogram="h", threshold_ms=1.0, target=1.0)
        with pytest.raises(ValueError, match="target"):
            ErrorRateSLO("x", total="t", errors="e", target=0.0)

    def test_duplicate_names_rejected(self):
        slo = ErrorRateSLO("x", total="t", errors="e", target=0.5)
        with pytest.raises(ValueError, match="duplicate"):
            SLOTracker([slo, slo])

    def test_no_traffic_is_perfect_compliance(self):
        reg = Registry()
        tracker = SLOTracker(default_serve_slos(), registry=reg)
        report = tracker.report()
        for entry in report.values():
            assert entry["healthy"]
            assert entry["window"]["compliance"] == 1.0
            assert entry["window"]["burn_rate"] == 0.0

    def test_error_rate_burn(self):
        reg = Registry()
        clock = FakeClock()
        total = reg.windowed_counter("t", clock=clock)
        errors = reg.windowed_counter("e", clock=clock)
        total.inc(100)
        errors.inc(5)  # 5% bad against a 1% budget: burn 5x
        tracker = SLOTracker(
            [ErrorRateSLO("avail", total="t", errors="e", target=0.99)],
            registry=reg,
        )
        entry = tracker.report()["avail"]
        assert entry["window"]["burn_rate"] == pytest.approx(5.0)
        assert not entry["healthy"]
        # The window forgets; lifetime does not.
        clock.advance(3600.0)
        entry = tracker.report()["avail"]
        assert entry["healthy"]
        assert entry["lifetime"]["burn_rate"] == pytest.approx(5.0)

    def test_latency_slo_windowed(self):
        reg = Registry()
        clock = FakeClock()
        h = reg.windowed_histogram("ms", clock=clock)
        for _ in range(99):
            h.observe(1.0)
        h.observe(1000.0)  # exactly the 1% budget
        tracker = SLOTracker(
            [LatencySLO("lat", histogram="ms", threshold_ms=25.0,
                        target=0.99)],
            registry=reg,
        )
        entry = tracker.report()["lat"]
        assert entry["window"]["bad"] == 1
        assert entry["window"]["burn_rate"] == pytest.approx(1.0)
        assert entry["healthy"]  # burn == 1.0 is at, not over, budget


# -- Prometheus exposition -----------------------------------------------------


class TestPromRender:
    def _registry(self):
        reg = Registry()
        clock = FakeClock()
        reg.windowed_counter("serve.requests", clock=clock).inc(5)
        reg.counter("plain.total.count").inc(2)
        reg.gauge("serve.inflight").set(3)
        reg.gauge("unset.gauge")  # must be omitted (no null in prom)
        h = reg.windowed_histogram("serve.ms", clock=clock)
        for v in (0.0, 0.5, 2.0, 100.0):
            h.observe(v)
        reg.histogram("empty.hist")
        return reg

    def test_render_is_valid(self):
        text = render_prometheus(self._registry(), include_cachestats=False)
        assert check_exposition(text) == []
        assert text.endswith("\n")
        assert "serve_requests_total 5" in text
        assert "# TYPE serve_requests_last_60s gauge" in text
        assert "serve_inflight 3" in text
        assert "unset_gauge" not in text
        assert 'serve_ms_last_60s{stat="p99"}' in text

    def test_histogram_buckets_cumulative_and_complete(self):
        text = render_prometheus(self._registry(), include_cachestats=False)
        lines = [
            line for line in text.splitlines()
            if line.startswith("serve_ms_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts)
        assert counts[-1] == 4  # +Inf == _count
        assert 'le="0"' in lines[0]  # zeros made visible
        assert "serve_ms_count 4" in text

    def test_sanitize(self):
        assert sanitize("serve.hits.plan") == "serve_hits_plan"
        assert sanitize("9lives") == "_9lives"
        assert check_exposition(
            render_prometheus(self._registry(), include_cachestats=False)
        ) == []


class TestPromChecker:
    def test_rejects_garbage(self):
        assert check_exposition("") != []
        assert any(
            "unparseable" in e
            for e in check_exposition("!! not a metric line\n")
        )

    def test_rejects_missing_trailing_newline(self):
        errors = check_exposition("# TYPE a counter\na_total 1")
        assert any("newline" in e for e in errors)

    def test_rejects_negative_counter(self):
        bad = "# TYPE a_total counter\na_total -4\n"
        assert any("negative" in e for e in check_exposition(bad))

    def test_rejects_non_cumulative_histogram(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="2"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 9\n"
            "h_count 5\n"
        )
        assert any("cumulative" in e for e in check_exposition(bad))

    def test_rejects_inf_count_mismatch(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 4\n'
            "h_sum 9\n"
            "h_count 5\n"
        )
        assert any("_count" in e for e in check_exposition(bad))

    def test_rejects_type_after_samples(self):
        bad = "a_total 1\n# TYPE a_total counter\n"
        assert any("after its samples" in e for e in check_exposition(bad))

    def test_accepts_fullscale_exposition(self):
        reg = Registry()
        reg.windowed_histogram("h", clock=FakeClock())
        text = render_prometheus(reg, include_cachestats=False)
        assert check_exposition(text) == []  # empty histograms included


class TestPromCLI:
    def test_check_file_mode(self, tmp_path, capsys):
        good = tmp_path / "good.prom"
        reg = Registry()
        reg.counter("c").inc()
        good.write_text(render_prometheus(reg, include_cachestats=False))
        assert prom_main(["--check", str(good)]) == 0
        assert "valid Prometheus exposition" in capsys.readouterr().out

        bad = tmp_path / "bad.prom"
        bad.write_text("!!\n")
        assert prom_main(["--check", str(bad)]) == 1
