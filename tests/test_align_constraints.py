"""Unit tests for offset-relation emission (constraints.py)."""

import pytest

from repro.adg import NodeKind, build_adg
from repro.align import solve_axis_stride
from repro.align.constraints import (
    EntryEval,
    EqualShift,
    LoopBack,
    node_offset_relations,
    section_shifts,
)
from repro.align.position import Alignment
from repro.ir import LIV, AffineForm
from repro.lang import parse
from repro.lang import programs
from repro.adg.nodes import SubscriptSpec

k = LIV("k", 0)


def relations_for(prog, node_pred):
    adg = build_adg(prog)
    skel = solve_axis_stride(adg).skeletons
    for n in adg.nodes:
        if node_pred(n):
            return n, node_offset_relations(n, dict(skel)), adg, skel
    raise AssertionError("node not found")


class TestSectionShifts:
    def test_full_slice_zero_shift(self):
        a = Alignment.canonical(1, 1)
        shifts = section_shifts(a, (SubscriptSpec("full"),))
        assert shifts[0] == AffineForm(0)

    def test_slice_shift_formula(self):
        # lo=10, step=2, stride=1: shift = (10-2)*1 = 8
        a = Alignment.canonical(1, 1)
        spec = SubscriptSpec("slice", lo=AffineForm(10), step=AffineForm(2))
        assert section_shifts(a, (spec,))[0] == AffineForm(8)

    def test_slice_shift_scaled_by_stride(self):
        from repro.align.position import AxisAlignment

        a = Alignment((AxisAlignment(0, AffineForm(3), AffineForm(0)),))
        spec = SubscriptSpec("slice", lo=AffineForm(5), step=AffineForm(1))
        assert section_shifts(a, (spec,))[0] == AffineForm(12)  # (5-1)*3

    def test_index_shift_mobile(self):
        a = Alignment.canonical(2, 2)
        spec_k = SubscriptSpec("index", index=AffineForm.variable(k))
        spec_full = SubscriptSpec("full")
        shifts = section_shifts(a, (spec_k, spec_full))
        assert shifts[0] == AffineForm.variable(k)
        assert shifts[1] == AffineForm(0)

    def test_mobile_step_times_constant_stride(self):
        a = Alignment.canonical(1, 1)
        spec = SubscriptSpec("slice", lo=AffineForm(1), step=AffineForm.variable(k))
        shifts = section_shifts(a, (spec,))
        assert shifts[0] == AffineForm(1) - AffineForm.variable(k)

    def test_double_mobile_rejected(self):
        from repro.align.position import AxisAlignment

        mobile_stride = Alignment(
            (AxisAlignment(0, AffineForm.variable(k), AffineForm(0)),)
        )
        spec = SubscriptSpec("slice", lo=AffineForm(1), step=AffineForm.variable(k))
        with pytest.raises(ValueError):
            section_shifts(mobile_stride, (spec,))


class TestNodeRelations:
    def test_elementwise_identity(self):
        n, rels, _, _ = relations_for(
            programs.example1(), lambda n: n.kind is NodeKind.ELEMENTWISE
        )
        assert all(isinstance(r, EqualShift) and r.shift == AffineForm(0) for r in rels)
        # one relation per (other port, axis)
        assert len(rels) == 2  # two inputs, rank-1 template

    def test_section_shift_relation(self):
        n, rels, _, _ = relations_for(
            parse("real A(100), B(90)\nB = A(11:100)"),
            lambda n: n.kind is NodeKind.SECTION,
        )
        (rel,) = rels
        assert isinstance(rel, EqualShift)
        assert rel.shift == AffineForm(10)

    def test_transformer_relations(self):
        _, rels, _, _ = relations_for(
            programs.figure1(), lambda n: n.label.startswith("entry(A")
        )
        assert all(isinstance(r, EntryEval) for r in rels)
        assert all(r.value == 1 for r in rels)

        _, rels, _, _ = relations_for(
            programs.figure1(), lambda n: n.label.startswith("loopback(A")
        )
        assert all(isinstance(r, LoopBack) and r.step == 1 for r in rels)

        _, rels, _, _ = relations_for(
            programs.figure1(), lambda n: n.label.startswith("exit(A")
        )
        assert all(isinstance(r, EntryEval) and r.value == 100 for r in rels)

    def test_source_sink_unconstrained(self):
        _, rels, _, _ = relations_for(
            programs.example1(), lambda n: n.kind is NodeKind.SOURCE
        )
        assert rels == []

    def test_spread_frees_replication_axis(self):
        n, rels, adg, skel = relations_for(
            programs.figure4(), lambda n: n.kind is NodeKind.SPREAD
        )
        out = n.outputs()[0]
        tau_star = skel[out.key].template_axis_of(n.payload.dim - 1)
        related_axes = {r.axis for r in rels}
        assert tau_star not in related_axes
        assert related_axes == {0}

    def test_reduce_frees_reduced_axis(self):
        n, rels, adg, skel = relations_for(
            parse("real A(8,6), r(8)\nr = sum(A, dim=2)"),
            lambda n: n.kind is NodeKind.REDUCE,
        )
        inp = n.inputs()[0]
        tau_red = skel[inp.key].template_axis_of(1)
        assert tau_red not in {r.axis for r in rels}

    def test_full_reduce_no_relations(self):
        n, rels, _, _ = relations_for(
            parse("real A(8), s(1)\ns(1:1) = A(1:1) + sum(A)"),
            lambda n: n.kind is NodeKind.REDUCE,
        )
        assert rels == []

    def test_gather_binds_index_not_table(self):
        n, rels, adg, skel = relations_for(
            programs.lookup_table(n=16, m=8), lambda n: n.kind is NodeKind.GATHER
        )
        ports = {p.name: p for p in n.ports}
        for r in rels:
            assert r.p is ports["index"]
            assert r.q is ports["out"]
