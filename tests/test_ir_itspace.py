"""Unit tests for triplets and iteration spaces."""

import pytest

from repro.ir import LIV, IterationSpace, Triplet

k = LIV("k")
j = LIV("j")


class TestTriplet:
    def test_count_forward(self):
        assert len(Triplet(1, 10)) == 10
        assert len(Triplet(1, 10, 3)) == 4  # 1,4,7,10
        assert len(Triplet(2, 1)) == 0

    def test_count_backward(self):
        assert len(Triplet(10, 1, -1)) == 10
        assert len(Triplet(10, 1, -4)) == 3  # 10,6,2
        assert len(Triplet(1, 2, -1)) == 0

    def test_iteration_matches_count(self):
        for t in [Triplet(1, 10), Triplet(2, 17, 3), Triplet(9, -3, -4)]:
            assert len(list(t)) == len(t)

    def test_contains(self):
        t = Triplet(2, 20, 3)
        assert 5 in t and 20 in t
        assert 6 not in t and 23 not in t

    def test_last_and_normalized(self):
        t = Triplet(1, 10, 4)  # 1,5,9
        assert t.last == 9
        assert t.normalized() == Triplet(1, 9, 4)

    def test_last_empty_raises(self):
        with pytest.raises(ValueError):
            Triplet(2, 1).last

    def test_zero_step_rejected(self):
        with pytest.raises(ValueError):
            Triplet(1, 5, 0)

    def test_value_at(self):
        t = Triplet(3, 30, 3)
        assert t.value_at(0) == 3
        assert t.value_at(9) == 30
        with pytest.raises(IndexError):
            t.value_at(10)


class TestTripletSplit:
    @pytest.mark.parametrize("m", [1, 2, 3, 5, 100])
    def test_split_covers_in_order(self, m):
        t = Triplet(1, 17, 2)
        parts = t.split(m)
        flat = [v for part in parts for v in part]
        assert flat == list(t)
        assert len(parts) == min(m, len(t))

    def test_split_sizes_balanced(self):
        parts = Triplet(1, 10).split(3)
        sizes = [len(p) for p in parts]
        assert sizes == [4, 3, 3]

    def test_split_at(self):
        t = Triplet(1, 10)
        l, r = t.split_at(4)
        assert list(l) == [1, 2, 3, 4]
        assert list(r) == [5, 6, 7, 8, 9, 10]

    def test_split_at_ends(self):
        t = Triplet(1, 5)
        l, r = t.split_at(0)
        assert l.is_empty() and list(r) == [1, 2, 3, 4, 5]
        l, r = t.split_at(5)
        assert list(l) == [1, 2, 3, 4, 5] and r.is_empty()

    def test_split_nonpositive_raises(self):
        with pytest.raises(ValueError):
            Triplet(1, 5).split(0)


class TestIterationSpace:
    def test_scalar_space(self):
        s = IterationSpace.scalar()
        assert s.count == 1
        assert list(s.points()) == [{}]

    def test_single(self):
        s = IterationSpace.single(k, 1, 5)
        assert s.count == 5
        assert [env[k] for env in s.points()] == [1, 2, 3, 4, 5]

    def test_nested_points(self):
        s = IterationSpace.single(k, 1, 2).extended(j, Triplet(1, 3))
        pts = list(s.points())
        assert len(pts) == 6
        assert pts[0] == {k: 1, j: 1}
        assert pts[-1] == {k: 2, j: 3}

    def test_extended_duplicate_raises(self):
        s = IterationSpace.single(k, 1, 2)
        with pytest.raises(ValueError):
            s.extended(k, Triplet(1, 3))

    def test_restricted(self):
        s = IterationSpace.single(k, 1, 10).restricted(k, Triplet(3, 5))
        assert s.count == 3

    def test_grid_partition_depth2(self):
        s = IterationSpace.single(k, 1, 9).extended(j, Triplet(1, 9))
        parts = s.grid_partition(3)
        assert len(parts) == 9
        assert sum(p.count for p in parts) == 81

    def test_grid_partition_scalar(self):
        s = IterationSpace.scalar()
        assert s.grid_partition(3) == [s]

    def test_triplet_of(self):
        s = IterationSpace.single(k, 1, 5)
        assert s.triplet_of(k) == Triplet(1, 5)
        with pytest.raises(KeyError):
            s.triplet_of(j)
