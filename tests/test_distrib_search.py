"""Unit tests for the distribution search (exact DP and local search)."""

from itertools import product

import pytest

from repro.align import align_program
from repro.distrib import (
    build_profile,
    naive_costs,
    plan_distribution,
    rank_plans,
)
from repro.distrib.enumerate import candidate_spaces
from repro.distrib.plan import DistributionPlan
from repro.distrib.search import _neighbor_grids, _prime_factors
from repro.lang import programs
from repro.machine import Distribution


def _profile(prog, **kw):
    plan = align_program(prog, **kw)
    return build_profile(plan.adg, plan.alignments)


def _brute_force_hops(profile, nprocs):
    """Minimum modeled hops over the full candidate cross-product."""
    best = None
    for _, cands in candidate_spaces(profile, nprocs):
        for combo in product(*cands):
            dist = Distribution(
                tuple(c.to_axis_distribution() for c in combo)
            )
            hops = profile.evaluate(dist).hops
            if best is None or hops < best:
                best = hops
    return best


class TestExhaustive:
    @pytest.mark.parametrize(
        "make,kw,nprocs",
        [
            (lambda: programs.stencil_sweep(n=48, iters=2),
             dict(replication=False), 4),
            (lambda: programs.figure1(n=10), dict(replication=False), 4),
            (lambda: programs.skewed_wavefront(n=8),
             dict(replication=False), 6),
        ],
    )
    def test_matches_brute_force(self, make, kw, nprocs):
        profile = _profile(make(), **kw)
        plan = plan_distribution(profile, nprocs)
        assert plan.exact
        assert plan.cost.hops == _brute_force_hops(profile, nprocs)

    def test_plan_is_consistent(self):
        profile = _profile(programs.figure1(n=10), replication=False)
        plan = plan_distribution(profile, 8)
        assert plan.num_processors == 8
        assert plan.rank == profile.template_rank
        # the reported cost is the plan's own evaluation
        assert profile.evaluate(plan.to_distribution()) == plan.cost

    def test_beats_or_matches_naive(self):
        profile = _profile(programs.figure1(n=10), replication=False)
        plan = plan_distribution(profile, 4)
        assert plan.cost.hops <= min(
            c.hops for c in naive_costs(profile, 4).values()
        )


class TestLocalSearch:
    def test_fallback_used_when_space_too_big(self):
        profile = _profile(
            programs.stencil_sweep(n=32, iters=2), replication=False
        )
        plan = plan_distribution(profile, 4, exhaustive_limit=0)
        assert not plan.exact
        assert plan.searched > 0

    def test_rank_one_fallback_is_still_optimal(self):
        # With one template axis there is a single factorization and the
        # greedy per-axis choice IS the optimum.
        profile = _profile(
            programs.stencil_sweep(n=32, iters=2), replication=False
        )
        exact = plan_distribution(profile, 4)
        local = plan_distribution(profile, 4, exhaustive_limit=0)
        assert local.cost.hops == exact.cost.hops

    def test_two_dim_fallback_close_to_naive(self):
        profile = _profile(programs.figure1(n=10), replication=False)
        local = plan_distribution(profile, 4, exhaustive_limit=0, seed=1)
        naive = naive_costs(profile, 4)
        assert local.cost.hops <= min(
            naive["all-block"].hops, naive["all-cyclic"].hops
        )

    def test_prime_factors(self):
        assert _prime_factors(12) == [2, 2, 3]
        assert _prime_factors(7) == [7]
        assert _prime_factors(1) == []

    def test_neighbor_grids_preserve_product(self):
        for g in _neighbor_grids((4, 3)):
            assert g[0] * g[1] == 12
        assert (2, 6) in _neighbor_grids((4, 3))


class TestRankPlans:
    def test_sorted_and_distinct_grids(self):
        profile = _profile(programs.figure1(n=10), replication=False)
        plans = rank_plans(profile, 8, k=3)
        assert len(plans) == 3
        hops = [p.cost.hops for p in plans]
        assert hops == sorted(hops)
        assert len({p.grid for p in plans}) == 3

    def test_best_agrees_with_planner(self):
        profile = _profile(programs.figure1(n=10), replication=False)
        assert (
            rank_plans(profile, 4, k=1)[0].cost.hops
            == plan_distribution(profile, 4).cost.hops
        )

    def test_window_override_widens_coverage(self):
        profile = _profile(
            programs.stencil_sweep(n=16, iters=2), replication=False
        )
        wide = ((profile.window[0][0] - 8, profile.window[0][1] + 8),)
        plans = rank_plans(profile, 4, k=1, window=wide)
        assert plans[0].axes[0].base == wide[0][0]
