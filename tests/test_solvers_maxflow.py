"""Unit tests for max-flow/min-cut, cross-checked against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.solvers import INF, FlowNetwork

METHODS = ["dinic", "edmonds-karp"]


def classic_network():
    g = FlowNetwork()
    edges = [
        ("s", "a", 10),
        ("s", "b", 10),
        ("a", "b", 2),
        ("a", "t", 4),
        ("a", "c", 8),
        ("b", "c", 9),
        ("c", "t", 10),
    ]
    for u, v, c in edges:
        g.add_edge(u, v, c)
    return g, edges


@pytest.mark.parametrize("method", METHODS)
class TestMaxFlow:
    def test_classic(self, method):
        g, _ = classic_network()
        assert g.max_flow("s", "t", method=method) == pytest.approx(14.0)

    def test_disconnected(self, method):
        g = FlowNetwork()
        g.add_edge("s", "a", 5)
        g.node("t")
        assert g.max_flow("s", "t", method=method) == 0.0

    def test_parallel_edges(self, method):
        g = FlowNetwork()
        g.add_edge("s", "t", 3)
        g.add_edge("s", "t", 4)
        assert g.max_flow("s", "t", method=method) == pytest.approx(7.0)

    def test_infinite_arc(self, method):
        g = FlowNetwork()
        g.add_edge("s", "a", INF)
        g.add_edge("a", "t", 5)
        assert g.max_flow("s", "t", method=method) == pytest.approx(5.0)

    def test_source_equals_sink_rejected(self, method):
        g = FlowNetwork()
        g.add_edge("s", "t", 1)
        with pytest.raises(ValueError):
            g.max_flow("s", "s", method=method)


class TestMinCut:
    def test_cut_value_matches_flow(self):
        g, edges = classic_network()
        value, s_side, t_side = g.min_cut("s", "t")
        assert value == pytest.approx(14.0)
        assert "s" in s_side and "t" in t_side
        crossing = sum(c for (u, v, c) in edges if u in s_side and v in t_side)
        assert crossing == pytest.approx(value)

    def test_cut_edges_helper(self):
        g, _ = classic_network()
        _, s_side, _ = g.min_cut("s", "t")
        crossing = g.cut_edges(s_side)
        assert sum(c for (_, _, c) in crossing) == pytest.approx(14.0)

    def test_methods_agree(self):
        g, _ = classic_network()
        v1 = g.max_flow("s", "t", method="dinic")
        v2 = g.max_flow("s", "t", method="edmonds-karp")
        assert v1 == pytest.approx(v2)


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        n = 8
        g = FlowNetwork()
        G = nx.DiGraph()
        for _ in range(24):
            u, v = rng.integers(0, n, size=2)
            if u == v:
                continue
            c = int(rng.integers(1, 20))
            g.add_edge(int(u), int(v), c)
            if G.has_edge(int(u), int(v)):
                G[int(u)][int(v)]["capacity"] += c
            else:
                G.add_edge(int(u), int(v), capacity=c)
        g.node(0)
        g.node(n - 1)
        G.add_node(0)
        G.add_node(n - 1)
        ours = g.max_flow(0, n - 1)
        theirs = nx.maximum_flow_value(G, 0, n - 1)
        assert ours == pytest.approx(theirs)

    def test_negative_capacity_rejected(self):
        g = FlowNetwork()
        with pytest.raises(ValueError):
            g.add_edge("a", "b", -1)
