"""Unit tests for Sections 4.1-4.4: offset alignment by RLP."""

from fractions import Fraction

import pytest

from repro.adg import build_adg
from repro.align import (
    abs_weighted_span,
    offset_only_cost,
    solve_axis_stride,
    solve_mobile_offsets,
    solve_offsets,
)
from repro.align.offset_mobile import ALGORITHMS, fixed_partitioning, unrolling
from repro.ir import LIV, AffineForm, IterationSpace, Polynomial
from repro.lang import parse
from repro.lang import programs

k = LIV("k", 0)

BACKENDS = ["scipy", "simplex"]


def solve(program, algorithm="fixed", backend="scipy", **kw):
    adg = build_adg(program)
    skel = solve_axis_stride(adg).skeletons
    res = solve_mobile_offsets(adg, skel, algorithm, backend=backend, **kw)
    return adg, skel, res


class TestStaticOffsets:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_example1_offsets(self, backend):
        """Example 1: B at [i-1] relative to A removes the shift."""
        adg, skel, res = solve(programs.example1(), backend=backend)
        assert res.cost == 0
        offs = {}
        for p in adg.ports():
            if p.node.kind.name == "SOURCE":
                offs[p.node.label] = res.offsets[(p.key, 0)]
        assert offs["source(B)"] - offs["source(A)"] == AffineForm(-1)

    def test_stencil_cost_positive(self):
        """A 3-point stencil cannot be made communication-free."""
        adg, skel, res = solve(programs.stencil_sweep(n=32, iters=2))
        assert res.cost > 0

    def test_rounding_preserves_node_constraints(self):
        adg, skel, res = solve(programs.example1())
        from repro.align.constraints import EqualShift, node_offset_relations

        for n in adg.nodes:
            for rel in node_offset_relations(n, dict(skel)):
                if isinstance(rel, EqualShift):
                    p_off = res.offsets[(rel.p.key, rel.axis)]
                    q_off = res.offsets[(rel.q.key, rel.axis)]
                    assert q_off - p_off == rel.shift, (n.label, rel.axis)

    def test_integral_offsets(self):
        adg, skel, res = solve(programs.figure1())
        for form in res.offsets.values():
            assert form.is_integral()


class TestMobileOffsets:
    def test_figure1_unrolling_exact(self):
        adg, skel, res = solve(programs.figure1(), algorithm="unrolling")
        assert res.cost == 39600  # 200 elements x L1 distance 2 x 99 moves

    def test_figure1_mobile_alignment_found(self):
        adg, skel, res = solve(programs.figure1(), algorithm="unrolling")
        for p in adg.ports():
            if "merge(V" in p.uid:
                row = res.offsets[(p.key, 0)]
                col = res.offsets[(p.key, 1)]
                assert row == AffineForm.variable(k)  # V row tracks k
                assert col == AffineForm(1, {k: -1})  # Example 4: i - k + 1

    def test_fixed_within_paper_bound(self):
        """Section 4.2: fixed partitioning is within 1 + 2/m^2 of optimal
        (22% for m=3, 8% for m=5)."""
        adg, skel, _ = solve(programs.figure1())
        exact = unrolling(adg, skel)
        for m, bound in [(3, 1 + 2 / 9), (5, 1 + 2 / 25)]:
            res = fixed_partitioning(adg, skel, m=m)
            ratio = float(res.cost / exact.cost)
            assert ratio <= bound + 1e-9, (m, ratio)

    def test_m1_unprotected_by_bound(self):
        """With a single subrange the span's sign change cancels inside the
        sum (Figure 3(b)) and the approximation can be arbitrarily poor —
        the paper's motivation for partitioning at all."""
        adg, skel, _ = solve(programs.figure1())
        exact = unrolling(adg, skel)
        res = fixed_partitioning(adg, skel, m=1)
        assert res.cost > exact.cost * 2

    def test_monotone_in_m(self):
        adg, skel, _ = solve(programs.skewed_wavefront(n=16))
        costs = [fixed_partitioning(adg, skel, m=m).cost for m in (1, 3, 5)]
        assert costs[0] >= costs[1] >= costs[2]

    @pytest.mark.parametrize("alg", sorted(ALGORITHMS))
    def test_all_algorithms_run_and_bound_exact(self, alg):
        adg, skel, _ = solve(programs.figure1(n=16))
        exact = unrolling(adg, skel)
        res = ALGORITHMS[alg](adg, skel)
        assert res.cost >= exact.cost  # exact is a lower bound
        assert res.cost <= exact.cost * 60  # and nothing absurd

    def test_static_pins_loop_values(self):
        adg, skel, res = solve(programs.figure1(n=16), static=True)
        for p in adg.ports():
            if p.node.kind.name in ("SOURCE", "MERGE", "SINK"):
                for tau in range(adg.template_rank):
                    assert res.offsets[(p.key, tau)].is_constant

    def test_static_costs_more(self):
        _, _, mobile = solve(programs.figure1(n=16))
        _, _, static = solve(programs.figure1(n=16), static=True)
        assert static.cost > mobile.cost

    def test_variable_size_objects(self):
        """Section 4.3: triangular sections still solve exactly."""
        adg, skel, res = solve(programs.triangular_sections(iters=10, m=4), algorithm="unrolling")
        assert res.cost == 0  # all sections start at 1: perfectly alignable

    def test_loop_nest_3k_subranges(self):
        """Section 4.4: 2-deep nest partitions into 3^2 subranges."""
        adg, skel, _ = solve(programs.doubly_nested(n=4))
        res = fixed_partitioning(adg, skel, m=3)
        per_edge = {
            e.eid: len(e.space.grid_partition(3)) for e in adg.edges
        }
        assert max(per_edge.values()) == 9

    def test_backends_agree_on_cost(self):
        _, _, a = solve(programs.example1(), backend="scipy")
        _, _, b = solve(programs.example1(), backend="simplex")
        assert a.cost == b.cost


class TestAbsWeightedSpan:
    def test_enumeration_matches_closed_form(self):
        span = AffineForm(3, {k: 2})
        w = Polynomial.from_affine(AffineForm(1, {k: 1}))
        space = IterationSpace.single(k, 1, 30)
        got = abs_weighted_span(span, w, space)
        brute = sum((1 + i) * abs(3 + 2 * i) for i in range(1, 31))
        assert got == brute

    def test_sign_change_exact(self):
        span = AffineForm(-7, {k: 1})
        w = Polynomial.constant(2)
        space = IterationSpace.single(k, 1, 20)
        brute = sum(2 * abs(i - 7) for i in range(1, 21))
        assert abs_weighted_span(span, w, space) == brute

    def test_scalar_space(self):
        span = AffineForm(-4)
        assert abs_weighted_span(span, Polynomial.constant(3), IterationSpace.scalar()) == 12

    def test_large_space_recursive_split(self):
        span = AffineForm(-5000, {k: 1})
        w = Polynomial.constant(1)
        space = IterationSpace.single(k, 1, 10000)
        got = abs_weighted_span(span, w, space)
        # sum |i - 5000| for i=1..10000
        brute = sum(abs(i - 5000) for i in (1, 10000))  # just ends for speed
        assert got == sum(abs(i - 5000) for i in range(1, 10001))
