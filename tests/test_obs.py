"""Tests for ``repro.obs``: spans, metrics, export, recorders, and the
guarantees the observability layer makes to the rest of the system —
near-zero disabled overhead, byte-identical plans under tracing, and
span trees that survive and merge across the process pool.
"""

import json
import pickle
import time
import timeit

import pytest

from repro import cachestats
from repro.__main__ import main
from repro.batch import PlanRequest, plan_many, plan_one, plan_sweep
from repro.lang import programs
from repro.lang.generate import generate_corpus
from repro.lang.pretty import pretty
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    SpanRecord,
    TraceRecorder,
    flame,
    latency_summary,
    registry,
    root_coverage,
    to_chrome,
    to_json,
    write_chrome_trace,
)
from repro.obs import spans as obs
from repro.obs.check import check_file, validate_chrome_trace


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with tracing disabled."""
    obs.disable()
    yield
    obs.disable()


# -- spans --------------------------------------------------------------------


class TestSpans:
    def test_disabled_span_is_shared_noop(self):
        assert not obs.enabled()
        s1 = obs.span("a")
        s2 = obs.span("b", k=1)
        assert s1 is s2  # the shared null object: no allocation
        with s1:
            pass
        assert obs.current() is None

    def test_nesting_builds_a_tree(self):
        with obs.recording(label="t") as rec:
            with obs.span("root"):
                with obs.span("a"):
                    with obs.span("a1"):
                        pass
                with obs.span("b"):
                    pass
        assert [r.name for r in rec.roots] == ["root"]
        root = rec.roots[0]
        assert [c.name for c in root.children] == ["a", "b"]
        assert [c.name for c in root.children[0].children] == ["a1"]
        # Wall times nest: parent >= sum(children).
        assert root.seconds >= sum(c.seconds for c in root.children)

    def test_recording_restores_prior_state(self):
        outer = obs.enable()
        with obs.recording(label="inner") as inner:
            with obs.span("x"):
                pass
        assert obs.enabled() and obs.recorder() is outer
        assert inner.span_names() == {"x"}
        assert outer.roots == []
        obs.disable()

    def test_tags_annotate_and_current(self):
        with obs.recording() as rec:
            with obs.span("s", a=1) as live:
                assert obs.current() is live
                obs.annotate(b=2)
        assert rec.roots[0].tags["a"] == 1
        assert rec.roots[0].tags["b"] == 2

    def test_span_captures_cache_delta(self):
        with obs.recording() as rec:
            with obs.span("s"):
                cachestats.record_hit("obs.test.counter")
                cachestats.record_miss("obs.test.counter")
        assert rec.roots[0].cache["obs.test.counter"] == (1, 1)

    def test_exception_tags_error_and_propagates(self):
        with obs.recording() as rec:
            with pytest.raises(ValueError):
                with obs.span("boom"):
                    raise ValueError("x")
        assert rec.roots[0].tags["error"] == "ValueError"

    def test_instant_records_zero_duration_child(self):
        with obs.recording() as rec:
            with obs.span("root"):
                obs.instant("marker", event="reuse")
        marker = rec.roots[0].children[0]
        assert marker.name == "marker"
        assert marker.seconds == 0.0
        assert marker.tags["event"] == "reuse"

    def test_traced_decorator(self):
        @obs.traced
        def bare(x):
            return x + 1

        @obs.traced(name="custom", stage="test")
        def named(x):
            return x * 2

        assert bare(1) == 2  # disabled: plain call
        with obs.recording() as rec:
            assert bare(1) == 2
            assert named(3) == 6
        names = {r.name for r in rec.roots}
        assert "custom" in names and any("bare" in n for n in names)
        custom = [r for r in rec.roots if r.name == "custom"][0]
        assert custom.tags["stage"] == "test"

    def test_recorder_pickles(self):
        with obs.recording(label="p") as rec:
            with obs.span("root", k="v"):
                with obs.span("child"):
                    pass
        clone = pickle.loads(pickle.dumps(rec))
        assert clone.span_names() == {"root", "child"}
        assert clone.roots[0].tags["program"] == "p"

    def test_merge_attributes_programs_and_pids(self):
        a = TraceRecorder(label="prog_a")
        with obs.recording(into=a):
            with obs.span("plan:a"):
                pass
        b = TraceRecorder(label="prog_b")
        with obs.recording(into=b):
            with obs.span("plan:b"):
                pass
        merged = TraceRecorder.merged([a, b, None], label="batch")
        by_prog = merged.by_program()
        assert set(by_prog) == {"prog_a", "prog_b"}
        assert merged.span_names() == {"plan:a", "plan:b"}


# -- metrics ------------------------------------------------------------------


class TestMetrics:
    def test_counter_and_gauge(self):
        reg = Registry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        reg.gauge("g").set(2.5)
        snap = reg.snapshot(include_cachestats=False)
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 2.5

    def test_kind_conflict_raises(self):
        reg = Registry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_histogram_percentiles_within_bucket_resolution(self):
        h = Histogram("lat")
        values = [float(i) for i in range(1, 1001)]
        for v in values:
            h.observe(v)
        s = h.summary()
        assert s["count"] == 1000
        assert s["min"] == 1.0 and s["max"] == 1000.0
        # Log-bucket resolution is ~19%; allow a generous envelope.
        assert 500 * 0.8 <= s["p50"] <= 500 * 1.25
        assert 900 * 0.8 <= s["p90"] <= 900 * 1.25
        assert 990 * 0.8 <= s["p99"] <= 1000.0
        assert s["p50"] <= s["p90"] <= s["p99"]

    def test_histogram_zero_and_negative(self):
        h = Histogram("z")
        h.observe(0.0)
        h.observe(0.0)
        h.observe(1.0)
        assert h.percentile(0.5) == 0.0
        with pytest.raises(ValueError):
            h.observe(-1.0)

    def test_histogram_merge(self):
        a, b = Histogram("a"), Histogram("b")
        for v in (1.0, 2.0):
            a.observe(v)
        for v in (3.0, 4.0):
            b.observe(v)
        a.merge(b)
        s = a.summary()
        assert s["count"] == 4 and s["min"] == 1.0 and s["max"] == 4.0

    def test_registry_absorbs_cachestats(self):
        cachestats.record_hit("obs.test.facade")
        snap = registry().snapshot()
        assert snap["counters"]["cache.obs.test.facade.hits"] >= 1
        assert "cache.obs.test.facade.misses" in snap["counters"]
        # Rendering mentions the facade counter too.
        assert "cache.obs.test.facade.hits" in registry().render()

    def test_latency_summary_groups(self):
        out = latency_summary({"fam": [0.1, 0.2], "other": []}, unit=1e3)
        assert out["fam"]["count"] == 2
        # Empty groups still carry the full summary schema (count 0 is
        # falsy for render guards), so p50/p99 reads never KeyError.
        assert out["other"]["count"] == 0
        assert out["other"]["p50"] == 0.0 and out["other"]["p99"] == 0.0
        assert 80 <= out["fam"]["p50"] <= 250

    def test_histogram_empty_percentiles_defined(self):
        h = Histogram("empty")
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.percentile(q) == 0.0
        s = h.summary()
        assert s["count"] == 0
        assert s["p50"] == s["p99"] == 0.0
        assert s["min"] == s["max"] == 0.0 and s["mean"] == 0.0

    def test_histogram_all_zeros_mass_counted(self):
        # Zeros live outside `buckets`; percentiles must not skip them
        # (nor divide by zero through an empty bucket walk).
        h = Histogram("zeros")
        for _ in range(5):
            h.observe(0.0)
        assert h.buckets == {} and h.zeros == 5
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.percentile(q) == 0.0
        s = h.summary()
        assert s["count"] == 5
        assert s["p50"] == s["p90"] == s["p99"] == 0.0
        assert s["min"] == 0.0 and s["max"] == 0.0

    def test_histogram_p0_is_min_without_zeros(self):
        h = Histogram("nz")
        h.observe(3.0)
        h.observe(7.0)
        # q=0 reports the observed minimum, not an invented zero.
        assert h.percentile(0.0) == 3.0
        h.observe(0.0)
        assert h.percentile(0.0) == 0.0


# -- export + checker ---------------------------------------------------------


class TestExport:
    def _sample(self):
        with obs.recording(label="sample") as rec:
            with obs.span("root", answer=42):
                with obs.span("child"):
                    time.sleep(0.002)
        return rec

    def test_chrome_trace_is_schema_valid(self):
        trace = to_chrome(self._sample())
        assert validate_chrome_trace(trace) == []
        phases = [e["ph"] for e in trace["traceEvents"]]
        assert "M" in phases and phases.count("X") == 2
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in xs)
        # Rebased: the earliest event of the pid lane starts at 0.
        assert min(e["ts"] for e in xs) == 0.0

    def test_chrome_args_are_json_safe(self):
        with obs.recording() as rec:
            with obs.span("s", obj=object(), ok=1):
                pass
        trace = to_chrome(rec)
        json.dumps(trace)  # must not raise
        args = [e for e in trace["traceEvents"] if e["ph"] == "X"][0]["args"]
        assert args["ok"] == 1 and isinstance(args["obj"], str)

    def test_write_and_check_file(self, tmp_path):
        path = str(tmp_path / "trace.json")
        write_chrome_trace(path, self._sample())
        assert check_file(path) == []

    def test_checker_rejects_garbage(self):
        assert validate_chrome_trace(17)
        assert validate_chrome_trace({"nope": 1})
        assert validate_chrome_trace({"traceEvents": []})
        bad = {"traceEvents": [{"ph": "X", "name": "", "pid": 0, "tid": 0}]}
        assert validate_chrome_trace(bad)
        neg = {
            "traceEvents": [
                {"ph": "X", "name": "n", "pid": 0, "tid": 0, "ts": -1, "dur": 1}
            ]
        }
        assert any("ts" in e for e in validate_chrome_trace(neg))

    def test_structured_json_and_flame(self):
        rec = self._sample()
        blob = to_json(rec)
        assert blob["totals"]["child"]["count"] == 1
        assert blob["roots"][0]["name"] == "root"
        art = flame(rec)
        assert "root" in art and "child" in art and "%" in art

    def test_roundtrip_dicts(self):
        rec = self._sample()
        clone = TraceRecorder.from_dict(rec.to_dict())
        assert clone.span_names() == rec.span_names()
        assert clone.roots[0].children[0].name == "child"

    def test_root_coverage(self):
        rec = self._sample()
        # child ~2ms of a ~2ms root: coverage is high but < 1; leaves = 1.
        assert 0.5 < root_coverage(rec) <= 1.0
        assert rec.roots[0].children[0].child_coverage() == 1.0


# -- cachestats reset magnitudes (satellite) ----------------------------------


class TestResetMagnitude:
    def test_delta_reports_lost_floor(self):
        before = {"x": (10, 4), "y": (1, 1)}
        after = {"x": (2, 0), "y": (2, 2)}
        resets, lost = set(), {}
        out = cachestats.delta(before, after, resets=resets, lost=lost)
        assert resets == {"x"}
        assert lost == {"x": (10, 4)}  # the pre-reset floor
        assert out["x"] == (2, 0) and out["y"] == (1, 1)

    def test_vanished_counter_counts_as_full_loss(self):
        resets, lost = set(), {}
        out = cachestats.delta({"gone": (7, 3)}, {}, resets=resets, lost=lost)
        assert resets == {"gone"} and lost == {"gone": (7, 3)}
        assert "gone" not in out  # nothing accumulated since

    def test_batch_report_surfaces_lost_magnitudes(self):
        from repro.batch.engine import BatchReport, PlanResult

        r = PlanResult(
            name="t",
            ok=True,
            seconds=0.01,
            cache_resets=("k",),
            cache_reset_lost={"k": (5, 2)},
        )
        rep = BatchReport([r, r], seconds=0.02, jobs=1, mode="serial")
        assert rep.cache_reset_lost() == {"k": (10, 4)}
        blob = rep.to_json()
        assert blob["cache_reset_lost"] == {"k": {"hits": 10, "misses": 4}}
        assert "lost >= 10h/4m" in rep.render()


# -- pipeline + planner spans -------------------------------------------------


class TestPipelineSpans:
    def test_pass_spans_cover_executed_passes(self):
        from repro.align.pipeline import plan_context
        from repro.passes import MachineSpec, Pipeline

        with obs.recording(label="fig1") as rec:
            with obs.span("plan:fig1"):
                ctx = plan_context(programs.figure1())
                ctx.put("machine", MachineSpec.of(4))
                Pipeline().run(ctx, goal=("plan", "distribution"))
        executed = {
            f"pass:{ev['pass']}" for ev in ctx.trace if ev["event"] == "run"
        }
        names = rec.span_names()
        assert executed <= names
        assert "distrib.plan" in names
        assert "distrib.axis_dp" in names
        assert "distrib.front_price" in names
        # Candidate counts and the vectorized flag ride on the spans.
        front = rec.find("distrib.front_price")[0]
        assert front.tags["candidates"] > 0
        assert front.tags["vectorized"] is True

    def test_reuse_shows_as_instant(self):
        from repro.align.pipeline import plan_context
        from repro.passes import MachineSpec, Pipeline

        pipe = Pipeline()
        ctx = pipe.run(plan_context(programs.figure1()), goal="profile")
        with obs.recording() as rec:
            with obs.span("suffix"):
                sub = ctx.fork()
                sub.put("machine", MachineSpec.of(4))
                pipe.run(sub, goal="distribution")
        reuses = [
            r
            for r in rec.walk()
            if r.tags.get("event") == "reuse" and r.name.startswith("pass:")
        ]
        assert reuses and all(r.seconds == 0.0 for r in reuses)

    def test_fixpoint_rounds_annotated_on_span(self):
        from repro.align.pipeline import plan_context
        from repro.passes import Pipeline

        with obs.recording() as rec:
            Pipeline().run(plan_context(programs.figure1()), goal="plan")
        fix = rec.find("pass:replication-offsets")[0]
        assert fix.tags["rounds"] >= 1
        assert "converged" in fix.tags

    def test_simulator_span(self):
        from repro.machine import Distribution, measure_traffic
        from repro.align import align_program

        plan = align_program(programs.figure1())
        ident = Distribution.identity(plan.adg.template_rank)
        with obs.recording() as rec:
            measure_traffic(plan.adg, plan.alignments, ident)
        sim = rec.find("machine.simulate")[0]
        assert sim.tags["edges"] == len(plan.adg.edges)


# -- overhead + identity guarantees (satellite) -------------------------------


SMALL = """real A(24,24), V(48)
do k = 1, 24
  A(k,1:24) = A(k,1:24) + V(k:k+23)
enddo
"""


class TestOverheadGuard:
    def test_disabled_span_call_is_cheap(self):
        # The disabled path is one global check + a shared null object;
        # hold it under an (extremely generous) 20us per call so any
        # accidental allocation/snapshot on the disabled path fails loudly.
        n = 20_000
        secs = timeit.timeit(lambda: obs.span("hot", a=1), number=n)
        assert secs / n < 20e-6, f"disabled span() costs {secs / n * 1e6:.2f}us"

    def test_disabled_tracing_within_noise_of_no_obs_baseline(self, monkeypatch):
        """A pipeline run with tracing disabled must not measurably lag a
        build where the obs hooks are literally no-ops."""
        from contextlib import nullcontext

        from repro.batch.engine import _plan_one_impl

        req = PlanRequest("small", SMALL)

        def run():
            r = _plan_one_impl(req, 4, None, None, False, None)
            assert r.ok, r.error
            return r

        def best_of(k=5):
            best = float("inf")
            for _ in range(k):
                t0 = time.perf_counter()
                run()
                best = min(best, time.perf_counter() - t0)
            return best

        run()  # warm caches for both measurements
        disabled = best_of()
        # The no-obs baseline: every span() site degraded to nullcontext.
        monkeypatch.setattr(obs, "span", lambda *a, **k: nullcontext())
        monkeypatch.setattr(obs, "instant", lambda *a, **k: None)
        baseline = best_of()
        # "Within noise": generous 2x headroom keeps CI immune to jitter
        # while still catching an accidentally-always-on tracing path
        # (which costs well over 2x on snapshot/delta traffic).
        assert disabled <= baseline * 2.0 + 0.01, (disabled, baseline)

    def test_tracing_never_changes_plans(self):
        req = PlanRequest("small", SMALL)
        plain = plan_one(req, nprocs=4, verify=True)
        traced = plan_one(req, nprocs=4, verify=True, trace=True)
        assert plain.ok and traced.ok
        # Byte-identical planning outcome, trace riding alongside.
        assert traced.total_cost == plain.total_cost
        assert traced.alignments == plain.alignments
        assert traced.distribution == plain.distribution
        assert (traced.dist_hops, traced.dist_moved) == (
            plain.dist_hops,
            plain.dist_moved,
        )
        assert plain.trace is None and traced.trace is not None
        assert f"plan:{req.name}" in traced.trace.span_names()


# -- cross-process span merging (satellite) -----------------------------------


class TestPoolMerging:
    def test_plan_many_merges_worker_recorders(self):
        corpus = generate_corpus(4, seed=3)
        serial = plan_many(corpus, nprocs=4, serial=True, trace=True)
        pooled = plan_many(corpus, nprocs=4, jobs=2, trace=True)
        ms, mp = serial.merged_trace(), pooled.merged_trace()
        assert ms is not None and mp is not None
        # Identical per-program span sets, pool or no pool.
        assert set(mp.by_program()) == set(ms.by_program()) == {
            sc.name for sc in corpus
        }
        for prog, roots in mp.by_program().items():
            pooled_names = {r.name for root in roots for r in root.walk()}
            serial_names = {
                r.name
                for root in ms.by_program()[prog]
                for r in root.walk()
            }
            assert pooled_names == serial_names, prog
        # And the merged multi-process trace exports cleanly.
        assert validate_chrome_trace(to_chrome(mp)) == []

    def test_untraced_batch_has_no_recorders(self):
        report = plan_many(generate_corpus(2, seed=0), nprocs=4, serial=True)
        assert report.merged_trace() is None
        assert all(r.trace is None for r in report.results)

    def test_plan_sweep_traces_prefix_and_suffix(self):
        corpus = generate_corpus(2, seed=1)
        report = plan_sweep(corpus, ["torus:2x2", 8], serial=True, trace=True)
        merged = report.merged_trace()
        assert merged is not None
        names = merged.span_names()
        for sc in corpus:
            assert f"prefix:{sc.name}" in names
            assert f"plan:{sc.name}@torus:2x2" in names
            assert f"plan:{sc.name}@P8" in names
        assert validate_chrome_trace(to_chrome(merged)) == []

    def test_batch_latency_summaries(self):
        corpus = generate_corpus(4, seed=2)
        report = plan_many(corpus, nprocs=4, serial=True)
        lat = report.latency_summaries()
        assert lat["*"]["count"] == 4
        assert all(
            s["p50"] <= s["p90"] <= s["p99"] for s in lat.values() if s["count"]
        )
        blob = report.to_json()
        assert blob["latency"]["*"]["count"] == 4


# -- CLI ----------------------------------------------------------------------


class TestCLITraceOut:
    @pytest.fixture
    def prog_file(self, tmp_path):
        f = tmp_path / "fig1.dp"
        f.write_text(pretty(programs.figure1()))
        return str(f)

    def test_trace_out_writes_valid_chrome_trace(
        self, prog_file, tmp_path, capsys
    ):
        out = str(tmp_path / "trace.json")
        assert main([prog_file, "--distribute", "4", "--trace-out", out]) == 0
        printed = capsys.readouterr().out
        assert "trace written to" in printed
        assert check_file(out) == []
        blob = json.load(open(out))
        names = {e["name"] for e in blob["traceEvents"]}
        assert "repro" in names and "pass:distribute" in names
        # Acceptance gate: the root span tree accounts for >=90% of the
        # run's measured wall time (children of "repro" + leaf shares).
        roots = [
            e
            for e in blob["traceEvents"]
            if e.get("ph") == "X" and e["name"] == "repro"
        ]
        assert len(roots) == 1
        children = [
            e
            for e in blob["traceEvents"]
            if e.get("ph") == "X"
            and e["name"] != "repro"
            and e.get("ts", 0) >= roots[0]["ts"]
        ]
        top = [
            e
            for e in children
            if not any(
                o is not e
                and o["ts"] <= e["ts"]
                and e["ts"] + e["dur"] <= o["ts"] + o["dur"]
                for o in children
            )
        ]
        covered = sum(e["dur"] for e in top)
        assert covered >= 0.9 * roots[0]["dur"], (covered, roots[0]["dur"])

    def test_metrics_flag(self, prog_file, capsys):
        assert main([prog_file, "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "metrics:" in out and "cache.affine.evaluate.hits" in out

    def test_batch_trace_out(self, tmp_path, capsys):
        out = str(tmp_path / "batch.json")
        assert (
            main(["--batch", "3", "--serial", "--trace-out", out]) == 0
        )
        assert "trace written to" in capsys.readouterr().out
        assert check_file(out) == []
