"""Differential harness: every planner cross-checked against the simulator.

For every generated scenario (all families of :mod:`repro.lang.generate`,
fixed seeds):

* the pipeline's analytic equation-1 cost equals the machine simulator's
  measured cost under the identity distribution — hops plus broadcasts
  plus the discrete-metric charge of general moves (which carry no
  topological hop cost);
* the compiled :class:`~repro.distrib.CommProfile` agrees with the
  executor's counts exactly — general edges included — under both the
  identity distribution and the planner's chosen distribution;
* the exact-DP distribution planner is never beaten by the
  greedy/local-search fallback on the same instance;
* both equalities hold on every machine model: for each scenario family
  and each sampled topology (grid, torus, ring, hypercube,
  hierarchical), analytic cost == simulator cost under the identity
  distribution and under the per-topology planned distribution.

These are the oracles that let the batch engine trust its numbers: any
memoization or refactor that shifts a cost breaks one of these
equalities immediately.
"""

from __future__ import annotations

import pytest

from repro.align import align_program
from repro.distrib import plan_distribution
from repro.lang.generate import (
    FAMILIES,
    generate_corpus,
    generate_scenario,
    topology_corpus,
)
from repro.machine import Distribution
from repro.machine.executor import measure_traffic
from repro.topology import parse_topology

SEED = 0
CORPUS = generate_corpus(28, seed=SEED)
NPROCS = 4
# One machine per kind, all sized for NPROCS processors.
TOPOLOGIES = topology_corpus(5, seed=SEED, nprocs=NPROCS)


def _ids(corpus):
    return [sc.name for sc in corpus]


@pytest.fixture(scope="module")
def planned():
    """Plan every corpus scenario once; share across the harness.

    Runs through the staged pass pipeline (goal ``"profile"``) — the
    same path the wrappers, CLI and batch engine use — so every
    equality below also certifies the pipeline's artifacts.
    """
    from repro.align.pipeline import plan_context
    from repro.passes import Pipeline

    pipeline = Pipeline()
    out = {}
    for sc in CORPUS:
        ctx = pipeline.run(plan_context(sc.parse()), goal="profile")
        out[sc.name] = (ctx.get("plan"), ctx.get("profile"))
    return out


@pytest.mark.parametrize("scenario", CORPUS, ids=_ids(CORPUS))
def test_analytic_cost_matches_simulator_identity(scenario, planned):
    plan, profile = planned[scenario.name]
    rep = measure_traffic(
        plan.adg, plan.alignments, Distribution.identity(plan.adg.template_rank)
    )
    # Unconditional: general moves carry the discrete-metric charge in
    # general_elements (and zero hops), so the equation-1 identity holds
    # even on programs with general communication.
    assert (
        plan.total_cost
        == rep.hop_cost + rep.broadcast_elements + rep.general_elements
    ), scenario.name
    # The profile equality is unconditional too (general edges are
    # priced identically by model and simulator).
    cv = profile.evaluate(Distribution.identity(profile.template_rank))
    assert cv.hops == rep.hop_cost, scenario.name
    assert cv.moved == rep.elements_moved, scenario.name
    assert cv.broadcast == rep.broadcast_elements, scenario.name


@pytest.mark.parametrize("scenario", CORPUS, ids=_ids(CORPUS))
def test_exact_dp_never_beaten_by_fallback(scenario, planned):
    _, profile = planned[scenario.name]
    exact = plan_distribution(profile, NPROCS, exhaustive_limit=10**9)
    fallback = plan_distribution(profile, NPROCS, exhaustive_limit=0)
    assert exact.exact and not fallback.exact
    assert exact.cost <= fallback.cost, (
        scenario.name,
        exact.cost,
        fallback.cost,
    )


@pytest.mark.parametrize("scenario", CORPUS, ids=_ids(CORPUS))
def test_model_exact_under_planned_distribution(scenario, planned):
    plan, profile = planned[scenario.name]
    dplan = plan_distribution(profile, NPROCS)
    measured = measure_traffic(
        plan.adg, plan.alignments, dplan.to_distribution()
    )
    assert dplan.cost.hops == measured.hop_cost, scenario.name
    assert dplan.cost.moved == measured.elements_moved, scenario.name


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_every_family_covered_without_replication(family):
    """The harness also holds with replication disabled (the fuzz
    regime), per family, on an independent seed."""
    sc = generate_scenario(97, family=family)
    plan = align_program(sc.parse(), replication=False)
    rep = measure_traffic(
        plan.adg, plan.alignments, Distribution.identity(plan.adg.template_rank)
    )
    assert (
        plan.total_cost
        == rep.hop_cost + rep.broadcast_elements + rep.general_elements
    )


@pytest.mark.parametrize("spec", TOPOLOGIES, ids=TOPOLOGIES)
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_every_family_on_every_topology(family, spec, planned):
    """Analytic cost == simulator cost per topology: the compiled
    profile and the executor must agree hop for hop on every machine
    model, both under the identity distribution and under the plan the
    topology-aware planner actually picks."""
    scenario = next(sc for sc in CORPUS if sc.family == family)
    plan, profile = planned[scenario.name]
    topo = parse_topology(spec)
    ident = Distribution.identity(profile.template_rank)
    rep = measure_traffic(plan.adg, plan.alignments, ident, topology=topo)
    cv = profile.evaluate(ident, topo)
    assert cv.hops == rep.hop_cost, (family, spec)
    assert cv.moved == rep.elements_moved, (family, spec)
    assert cv.broadcast == rep.broadcast_elements, (family, spec)
    dplan = plan_distribution(profile, topo.nprocs, topology=topo)
    measured = measure_traffic(
        plan.adg, plan.alignments, dplan.to_distribution(), topology=topo
    )
    assert dplan.cost.hops == measured.hop_cost, (family, spec)
    assert dplan.cost.moved == measured.elements_moved, (family, spec)


def _candidate_front(profile, nprocs, topology, cap=96):
    """Full candidate distributions from the planner's own enumeration:
    every per-axis scheme crossed per grid shape, capped for test time."""
    import itertools

    from repro.distrib.enumerate import candidate_spaces

    dists = []
    for _, cands in candidate_spaces(profile, nprocs, topology=topology):
        for combo in itertools.product(*cands):
            dists.append(
                Distribution(tuple(c.to_axis_distribution() for c in combo))
            )
            if len(dists) >= cap:
                return dists
    return dists


@pytest.mark.parametrize("spec", TOPOLOGIES, ids=TOPOLOGIES)
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_front_pricing_matches_scalar_and_simulator(family, spec, planned):
    """The vectorized front == the scalar oracle == the simulator.

    For every scenario family on every topology family, the whole
    candidate enumeration is priced once through
    :func:`~repro.distrib.vectorized.evaluate_front`; every row must
    equal the scalar ``profile.evaluate`` exactly, and sampled rows are
    additionally replayed on the machine simulator."""
    from repro.distrib import evaluate_front

    scenario = next(sc for sc in CORPUS if sc.family == family)
    plan, profile = planned[scenario.name]
    topo = parse_topology(spec)
    dists = _candidate_front(profile, topo.nprocs, topo)
    assert dists, (family, spec)
    matrix = evaluate_front(profile, dists, topo)
    assert matrix.shape == (len(dists), 3)
    for i, dist in enumerate(dists):
        cv = profile.evaluate(dist, topo)
        assert tuple(int(x) for x in matrix[i]) == (
            cv.hops,
            cv.moved,
            cv.broadcast,
        ), (family, spec, i)
    for i in {0, len(dists) // 2, len(dists) - 1}:
        rep = measure_traffic(
            plan.adg, plan.alignments, dists[i], topology=topo
        )
        assert int(matrix[i][0]) == rep.hop_cost, (family, spec, i)
        assert int(matrix[i][1]) == rep.elements_moved, (family, spec, i)
        assert int(matrix[i][2]) == rep.broadcast_elements, (family, spec, i)


@pytest.mark.parametrize("scenario", CORPUS, ids=_ids(CORPUS))
def test_vectorized_and_scalar_planning_agree_exactly(scenario, planned):
    """plan_distribution(vectorize=True) and the scalar oracle pick
    byte-identical plans — axes, cost, exactness and search count."""
    _, profile = planned[scenario.name]
    fast = plan_distribution(profile, NPROCS, vectorize=True)
    slow = plan_distribution(profile, NPROCS, vectorize=False)
    assert fast == slow, scenario.name


@pytest.mark.parametrize("spec", TOPOLOGIES, ids=TOPOLOGIES)
def test_vectorized_planning_agrees_on_every_topology(spec, planned):
    topo = parse_topology(spec)
    for scenario in CORPUS[:6]:
        _, profile = planned[scenario.name]
        fast = plan_distribution(
            profile, topo.nprocs, topology=topo, vectorize=True
        )
        slow = plan_distribution(
            profile, topo.nprocs, topology=topo, vectorize=False
        )
        assert fast == slow, (scenario.name, spec)


def _single_edit(program):
    """One deterministic single-statement edit: flip the first additive
    operator; programs without one get their first statement duplicated."""
    import dataclasses

    from repro.lang import ast as A

    def flip(e):
        if isinstance(e, A.BinOp):
            if e.op in "+-":
                return dataclasses.replace(
                    e, op="-" if e.op == "+" else "+"
                )
            left = flip(e.left)
            if left is not None:
                return dataclasses.replace(e, left=left)
            right = flip(e.right)
            if right is not None:
                return dataclasses.replace(e, right=right)
        elif isinstance(
            e, (A.UnaryOp, A.Intrinsic, A.Transpose, A.Spread, A.Reduce)
        ):
            operand = flip(e.operand)
            if operand is not None:
                return dataclasses.replace(e, operand=operand)
        return None

    def edit_stmt(s):
        if isinstance(s, A.Assign):
            rhs = flip(s.rhs)
            if rhs is not None:
                return dataclasses.replace(s, rhs=rhs)
        elif isinstance(s, A.Do):
            for j, b in enumerate(s.body):
                r = edit_stmt(b)
                if r is not None:
                    return dataclasses.replace(
                        s, body=s.body[:j] + (r,) + s.body[j + 1 :]
                    )
        return None

    for i, s in enumerate(program.body):
        r = edit_stmt(s)
        if r is not None:
            return dataclasses.replace(
                program, body=program.body[:i] + (r,) + program.body[i + 1 :]
            )
    return dataclasses.replace(
        program, body=program.body + (program.body[-1],)
    )


@pytest.mark.parametrize("scenario", CORPUS[:10], ids=_ids(CORPUS[:10]))
def test_incremental_replan_matches_scratch(scenario):
    """Edit pairs: a single-statement edit replanned incrementally via
    the delta engine yields the byte-identical payload of a from-scratch
    plan, and the incremental plan still satisfies the equation-1
    simulator oracle."""
    import pickle

    from repro.align.pipeline import plan_context
    from repro.batch.engine import machine_label
    from repro.passes import MachineSpec, Pipeline, replan
    from repro.serve.service import _payload

    def scratch_plan(p):
        ctx = plan_context(p)
        ctx.put("machine", MachineSpec.of(NPROCS))
        Pipeline().run(ctx, goal=("plan", "distribution"))
        return ctx

    program = scenario.parse()
    base = scratch_plan(program)
    edited = _single_edit(program)
    new_ctx, _ = replan(base, program=edited, goal=("plan", "distribution"))
    scratch = scratch_plan(edited)
    label = machine_label(NPROCS, None)
    assert pickle.dumps(_payload(scenario.name, label, new_ctx)) == (
        pickle.dumps(_payload(scenario.name, label, scratch))
    ), scenario.name
    plan = new_ctx.get("plan")
    rep = measure_traffic(
        plan.adg, plan.alignments, Distribution.identity(plan.adg.template_rank)
    )
    assert (
        plan.total_cost
        == rep.hop_cost + rep.broadcast_elements + rep.general_elements
    ), scenario.name


def test_batch_engine_verify_flag_agrees():
    """plan_many's built-in verifier reproduces the harness verdicts."""
    from repro.batch import plan_many

    report = plan_many(CORPUS[:8], nprocs=NPROCS, serial=True, verify=True)
    assert not report.failures
    assert all(r.verified for r in report.results)
