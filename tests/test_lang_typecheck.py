"""Unit tests for shape/binding analysis and section extents."""

import pytest

from repro.ir import LIV, AffineForm, Triplet
from repro.lang import TypeError_, parse, typecheck
from repro.lang.typecheck import section_extent

k = LIV("k", 0)


def shapes_of(src, pick):
    p = parse(src)
    info = typecheck(p)
    from repro.lang import ast as A

    for s in A.walk_stmts(p.body):
        if isinstance(s, A.Assign):
            for e in A.walk_exprs(s.rhs):
                if pick(e):
                    return info.shape_of(e)
    raise AssertionError("expression not found")


class TestShapes:
    def test_whole_array(self):
        from repro.lang import ast as A

        sh = shapes_of("real A(10,20), B(10,20)\nB = A", lambda e: isinstance(e, A.Ref) and e.name == "A")
        assert sh == (AffineForm(10), AffineForm(20))

    def test_section_shape(self):
        from repro.lang import ast as A

        sh = shapes_of(
            "real A(100), B(50)\nB = A(2:100:2)",
            lambda e: isinstance(e, A.Ref) and e.subscripts,
        )
        assert sh == (AffineForm(50),)

    def test_index_drops_axis(self):
        from repro.lang import ast as A

        sh = shapes_of(
            "real A(10,20), B(20)\nB = A(3,1:20)",
            lambda e: isinstance(e, A.Ref) and e.subscripts,
        )
        assert sh == (AffineForm(20),)

    def test_transpose_swaps(self):
        from repro.lang import ast as A

        sh = shapes_of(
            "real A(10,20), B(20,10)\nB = transpose(A)",
            lambda e: isinstance(e, A.Transpose),
        )
        assert sh == (AffineForm(20), AffineForm(10))

    def test_spread_inserts(self):
        from repro.lang import ast as A

        sh = shapes_of(
            "real t(4), B(4,6)\nB = t + 0 * spread(t, dim=2, ncopies=6)"
            if False
            else "real t(4), B(4,6)\nB = spread(t, dim=2, ncopies=6)",
            lambda e: isinstance(e, A.Spread),
        )
        assert sh == (AffineForm(4), AffineForm(6))

    def test_reduce_removes(self):
        from repro.lang import ast as A

        sh = shapes_of(
            "real A(4,6), r(4)\nr = sum(A, dim=2)",
            lambda e: isinstance(e, A.Reduce),
        )
        assert sh == (AffineForm(4),)


class TestErrors:
    def test_undeclared(self):
        with pytest.raises(TypeError_):
            typecheck(parse("real A(10)\nA = Z"))

    def test_nonconformable(self):
        with pytest.raises(TypeError_):
            typecheck(parse("real A(10), B(20)\nA = B"))

    def test_wrong_subscript_count(self):
        with pytest.raises(TypeError_):
            typecheck(parse("real A(10,10)\nA(3) = 0"))

    def test_constant_index_out_of_bounds(self):
        with pytest.raises(TypeError_):
            typecheck(parse("real A(10)\nA(11) = 0"))

    def test_unbound_liv(self):
        with pytest.raises(TypeError_):
            typecheck(parse("real A(10)\nA(k) = 0"))

    def test_shadowed_liv(self):
        with pytest.raises(TypeError_):
            typecheck(
                parse("real A(9,9)\ndo k = 1, 9\ndo k = 1, 9\nA(k,k) = 0\nenddo\nenddo")
            )

    def test_liv_colliding_with_array(self):
        with pytest.raises(TypeError_):
            typecheck(parse("real A(10)\ndo A = 1, 5\nenddo"))

    def test_assign_to_readonly(self):
        with pytest.raises(TypeError_):
            typecheck(parse("readonly real T(10)\nT(1) = 0"))

    def test_transpose_rank1_rejected(self):
        with pytest.raises(TypeError_):
            typecheck(parse("real A(10), B(10)\nB = transpose(A)"))

    def test_spread_dim_out_of_range(self):
        with pytest.raises(TypeError_):
            typecheck(parse("real t(4), B(4,6)\nB = spread(t, dim=5, ncopies=6)"))

    def test_reduce_dim_out_of_range(self):
        with pytest.raises(TypeError_):
            typecheck(parse("real A(4,6), r(4)\nr = sum(A, dim=3)"))


class TestSectionExtent:
    def test_constant_step_exact(self):
        ext = section_extent(AffineForm(2), AffineForm(100), AffineForm(2), {})
        assert ext == AffineForm(50)

    def test_affine_bounds_constant_step(self):
        # V(k : k+99): extent 100 for every k
        lo = AffineForm.variable(k)
        hi = AffineForm(99, {k: 1})
        ext = section_extent(lo, hi, AffineForm(1), {"k": Triplet(1, 100)})
        assert ext == AffineForm(100)

    def test_liv_step_constant_count(self):
        # A(1:20k:k): 20 elements for every k in 1..50
        lo = AffineForm(1)
        hi = AffineForm(0, {k: 20})
        step = AffineForm.variable(k)
        ext = section_extent(lo, hi, step, {"k": Triplet(1, 50)})
        assert ext == AffineForm(20)

    def test_growing_extent(self):
        # B(1 : 8k): extent 8k, affine in k
        ext = section_extent(
            AffineForm(1), AffineForm(0, {k: 8}), AffineForm(1), {"k": Triplet(1, 10)}
        )
        assert ext == AffineForm(0, {k: 8})

    def test_floor_constant_correction(self):
        # 1 : 2k+1 : 2 -> elements 1,3,..,2k+1: extent k+1
        ext = section_extent(
            AffineForm(1),
            AffineForm(1, {k: 2}),
            AffineForm(2),
            {"k": Triplet(1, 10)},
        )
        assert ext == AffineForm(1, {k: 1})

    def test_nonaffine_rejected(self):
        # 1 : k*k not expressible -> reject via varying count
        lo = AffineForm(1)
        hi = AffineForm.variable(k)
        step = AffineForm.variable(k)  # count = floor((k-1)/k)+1: 1 for k=1? varies
        with pytest.raises(TypeError_):
            # hi - lo = k - 1; step k: count = floor((k-1)/k) + 1 = 1 for all k>=1
            # so use a genuinely varying case: hi = 3k, step 2
            section_extent(
                AffineForm(1), AffineForm(0, {k: 3}), AffineForm(2), {"k": Triplet(1, 4)}
            )

    def test_unknown_liv_range(self):
        # Step 2 with non-integral symbolic quotient needs the LIV range;
        # with none supplied, the extent is not computable.
        with pytest.raises(TypeError_):
            section_extent(
                AffineForm(1), AffineForm.variable(k), AffineForm(2), {}
            )

    def test_symbolic_extent_without_range(self):
        # (k - 1)/1 + 1 = k is affine without needing the range.
        ext = section_extent(AffineForm(1), AffineForm.variable(k), AffineForm(1), {})
        assert ext == AffineForm.variable(k)
