"""Tests for the paper's Section 6 extensions that this library implements,
plus robustness on gnarlier program shapes.

* control weights: expected realignment cost under branch probabilities
  (the c_e of Section 6's arbitrary-control-flow discussion);
* sequences of loops, loops after straight-line code, negative steps;
* replication hints (lookup tables) end to end.
"""

from fractions import Fraction

import pytest

from repro.adg import build_adg
from repro.align import align_program, total_cost
from repro.lang import parse
from repro.lang import programs


class TestControlWeights:
    def test_branch_probability_scales_cost(self):
        """A misalignable statement inside a rare branch should cost its
        probability times the unconditional cost."""
        src_template = """
real A(100), B(100)
if (rare) then
  A(1:99) = B(2:100)
endif
A(1:99) = B(1:99)
"""
        prog_rare = parse(src_template)
        # prob defaults to 0.5; rebuild with prob 0.1 via the builder AST
        from repro.lang import ast as A

        def with_prob(p, prob):
            body = tuple(
                A.If(s.cond, s.then_body, s.else_body, prob)
                if isinstance(s, A.If)
                else s
                for s in p.body
            )
            return A.Program(p.decls, body, p.name)

        cost_half = align_program(with_prob(prog_rare, 0.5)).total_cost
        cost_tenth = align_program(with_prob(prog_rare, 0.1)).total_cost
        cost_nine = align_program(with_prob(prog_rare, 0.9)).total_cost
        # The conflicting requirements (B-1 vs B+0) force someone to pay;
        # the optimizer sides with the likelier branch.
        assert cost_tenth <= cost_half <= cost_nine * 2
        assert cost_tenth < cost_nine

    def test_expected_cost_uses_weights(self):
        prog = parse(
            """
real A(100), B(100)
if (c) then
  A(1:99) = B(2:100)
else
  A(1:99) = B(1:99)
endif
"""
        )
        plan = align_program(prog)
        # Either branch alone is alignable; the merge forces a choice, and
        # total cost must be at most one branch's worth times its weight.
        assert plan.total_cost <= Fraction(99)


class TestProgramShapes:
    def test_two_sequential_loops(self):
        prog = parse(
            """
real A(64,64), V(128)
do k = 1, 32
  A(k,1:64) = A(k,1:64) + V(k:k+63)
enddo
do j = 1, 32
  A(j,1:64) = A(j,1:64) + V(j:j+63)
enddo
"""
        )
        plan = align_program(prog, replication=False)
        assert plan.total_cost > 0
        plan.adg.validate()

    def test_loop_after_straightline(self):
        prog = parse(
            """
real A(32), B(32)
A = B
do k = 1, 8
  A(1:31) = A(1:31) + B(2:32)
enddo
"""
        )
        plan = align_program(prog)
        # A=B wants B at offset 0; the loop wants B at -1 (8 iterations of
        # 31 elements = 248 if unmet).  The optimizer must side with the
        # loop and pay only the one-time 32-element copy realignment.
        assert plan.total_cost == 32

    def test_negative_step_loop_pipeline(self):
        prog = parse(
            """
real A(64,64), V(128)
do k = 64, 1, -1
  A(k,1:64) = A(k,1:64) + V(k:k+63)
enddo
"""
        )
        plan = align_program(prog, replication=False)
        # mobility works backwards too
        assert plan.total_cost < 64 * 128 * 64

    def test_strided_loop(self):
        prog = parse(
            """
real A(64,64), V(128)
do k = 1, 64, 4
  A(k,1:64) = A(k,1:64) + V(k:k+63)
enddo
"""
        )
        plan = align_program(prog, replication=False)
        assert plan.total_cost >= 0

    def test_imperfect_nest(self):
        prog = parse(
            """
real A(16,16), R(16), V(32)
do i = 1, 16
  R(i) = sum(A(i,1:16))
  do j = 1, 8
    A(i,j:j+8) = A(i,j:j+8) + V(j:j+8)
  enddo
enddo
"""
        )
        plan = align_program(prog, replication=False)
        plan.adg.validate()

    def test_whole_array_copy_chain(self):
        prog = parse("real A(16), B(16), C(16)\nB = A\nC = B\nA = C")
        plan = align_program(prog)
        assert plan.total_cost == 0

    def test_self_assign(self):
        prog = parse("real A(16)\nA = A")
        assert align_program(prog).total_cost == 0


class TestLookupTables:
    def test_hinted_table_replicates(self):
        plan = align_program(programs.lookup_table(n=64, m=32))
        src = plan.source_alignments()
        # The hinted table's source is pinned R by rule 4.
        assert plan.replication is not None
        tab_ports = [
            p
            for p in plan.adg.ports()
            if p.node.label == "source(tab)" and p.is_output
        ]
        assert tab_ports
        # axis 0 is tab's body axis so only higher axes could replicate;
        # with template rank 1 the hint is moot but the pipeline must not
        # crash and the gather stays general-comm-free on the table edge.
        assert plan.total_cost == 0


def test_total_cost_helper_matches_plan():
    prog = programs.example1()
    plan = align_program(prog)
    assert total_cost(plan.adg, plan.alignments) == plan.total_cost
