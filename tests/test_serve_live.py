"""Serve-layer live telemetry: access log, inflight gauge, metrics op.

Covers the observable surface PR 9 added to :mod:`repro.serve` — the
exactly-once JSON-lines access log with deterministic trace sampling,
the ``serve.inflight`` gauge, the daemon's ``metrics`` op (JSON and
Prometheus forms) and raw ``/metrics`` scrape mode, structured daemon
event logging (the ``listening`` line, malformed requests), windowed
``stats`` sections decaying on a fake clock (zero sleeps), and the
daemon protocol under concurrent clients (full stats schema, monotone
counters).
"""

from __future__ import annotations

import asyncio
import io
import json
import threading

import pytest

from repro.obs.metrics import registry
from repro.serve import (
    AccessLog,
    PlanDaemon,
    PlanService,
    ServeRequest,
    ServeResponse,
    read_access_log,
    run_daemon,
)

SRC = """
real A(64), B(64)
A(1:63) = A(1:63) + B(2:64)
"""

SRC2 = """
real C(32), D(32)
C(1:32) = C(1:32) + D(1:32)
"""


class FakeClock:
    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# -- AccessLog unit behavior ---------------------------------------------------


class TestAccessLog:
    def test_needs_exactly_one_sink(self, tmp_path):
        with pytest.raises(ValueError, match="exactly one"):
            AccessLog()
        with pytest.raises(ValueError, match="exactly one"):
            AccessLog(str(tmp_path / "a.jsonl"), stream=io.StringIO())

    def test_trace_sample_validated(self):
        with pytest.raises(ValueError, match="trace_sample"):
            AccessLog(stream=io.StringIO(), trace_sample=1.5)

    def test_deterministic_sampling(self):
        log = AccessLog(stream=io.StringIO(), trace_sample=0.5)
        # every 2nd access, first always sampled
        assert [log.should_trace() for _ in range(6)] == [
            True, False, True, False, True, False,
        ]
        assert not AccessLog(stream=io.StringIO()).should_trace()

    def test_file_records_round_trip(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        log = AccessLog(path, clock=lambda: 123.0)
        log.access(name="q", status="ok", cached="plan", ms=0.61234)
        log.event("listening", host="h", port=9)
        access, event = read_access_log(path)
        assert access == {
            "ts": 123.0,
            "kind": "access",
            "name": "q",
            "status": "ok",
            "cached": "plan",
            "ms": 0.6123,
        }
        assert event["kind"] == "event" and event["event"] == "listening"
        assert event["port"] == 9

    def test_stream_mode_writes_json_lines(self):
        stream = io.StringIO()
        AccessLog(stream=stream).event("x", a=1)
        record = json.loads(stream.getvalue())
        assert record["event"] == "x" and record["a"] == 1

    def test_concurrent_appends_never_tear(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        log = AccessLog(path)
        n, threads = 200, 8

        def work(tid):
            for i in range(n):
                log.access(name=f"t{tid}.{i}", status="ok", cached=None,
                           ms=1.0)

        ts = [threading.Thread(target=work, args=(t,)) for t in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        records = read_access_log(path)  # json.loads fails on a torn line
        assert len(records) == n * threads
        assert len({r["name"] for r in records}) == n * threads


# -- service: inflight gauge + access log --------------------------------------


class TestServiceTelemetry:
    def test_inflight_gauge_tracks_admission(self):
        svc = PlanService(max_pending=4)
        base = registry().gauge("serve.inflight").value or 0
        assert svc.try_admit() and svc.try_admit()
        assert registry().gauge("serve.inflight").value == base + 2
        assert svc.stats()["inflight"] == base + 2
        svc.release()
        svc.release()
        assert registry().gauge("serve.inflight").value == base

    def test_access_log_exactly_once_all_outcomes(self, tmp_path):
        path = str(tmp_path / "access.jsonl")
        with PlanService(access_log=path, max_pending=1) as svc:
            ok = svc.handle(ServeRequest("q", SRC, nprocs=4))
            err = svc.handle(ServeRequest("bad", "no so//rce here"))
            assert svc.try_admit()  # fill the admission slot...
            rej = svc.handle(ServeRequest("q2", SRC2, nprocs=4))
            svc.release()
        assert (ok.status, err.status, rej.status) == (
            "ok", "error", "rejected",
        )
        records = read_access_log(path)
        assert [r["status"] for r in records] == ["ok", "error", "rejected"]
        assert all(r["kind"] == "access" for r in records)
        ok_rec, err_rec, rej_rec = records
        assert set(ok_rec["fingerprints"]) == {
            "program", "options", "machine",
        }
        assert "error" in err_rec and "fingerprints" not in err_rec
        assert rej_rec["cached"] is None

    def test_trace_sampling_deterministic_and_labeled(self, tmp_path):
        path = str(tmp_path / "access.jsonl")
        with PlanService(access_log=path, trace_sample=0.5) as svc:
            for _ in range(4):
                assert svc.handle(ServeRequest("q", SRC, nprocs=4)).ok
        records = read_access_log(path)
        assert ["trace" in r for r in records] == [True, False, True, False]
        trace = records[0]["trace"]
        assert trace["serve.request"]["count"] == 1
        assert trace["serve.request"]["ms"] > 0

    def test_fingerprints_on_the_wire_when_present(self):
        # The delta protocol needs them: a client quotes
        # fingerprints["program"] as the next request's base_fingerprint.
        resp = ServeResponse(
            name="q", status="ok", fingerprints={"program": "abc"}
        )
        assert resp.to_json()["fingerprints"] == {"program": "abc"}
        bare = ServeResponse(name="q", status="error")
        assert "fingerprints" not in bare.to_json()

    def test_windowed_stats_decay_on_fake_clock(self, tmp_path):
        clock = FakeClock()
        with PlanService(window=60.0, clock=clock) as svc:
            assert svc.handle(ServeRequest("q", SRC, nprocs=4)).ok
            window = svc.stats()["window"]
            assert window["serve.requests"]["value"] >= 1
            assert window["serve.ms"]["summary"]["count"] >= 1
            clock.advance(120.0)
            window = svc.stats()["window"]
            assert window["serve.requests"]["value"] == 0
            assert window["serve.ms"]["summary"]["count"] == 0
            # lifetime view is untouched by window expiry
            assert svc.stats()["counters"]["serve.requests"] >= 1

    def test_slo_section_in_stats(self):
        with PlanService() as svc:
            slo = svc.stats()["slo"]
        assert set(slo) == {"warm_latency", "availability"}
        for entry in slo.values():
            assert {"kind", "target", "healthy", "lifetime", "window"} <= set(
                entry
            )


# -- daemon: metrics op, scrape mode, event log --------------------------------


def _drive(coro):
    return asyncio.run(coro)


class TestDaemonMetricsOp:
    def _roundtrip(self, messages, log=None):
        async def drive():
            daemon = PlanDaemon(PlanService(), port=0, log=log)
            await daemon.start()
            server = asyncio.create_task(daemon.serve_forever())
            reader, writer = await asyncio.open_connection(*daemon.address)
            replies = []
            for msg in messages:
                writer.write(json.dumps(msg).encode() + b"\n")
                await writer.drain()
                replies.append(json.loads(await reader.readline()))
            writer.close()
            daemon.shutdown()
            await server
            return replies

        return _drive(drive())

    def test_metrics_op_json(self):
        plan, metrics = self._roundtrip(
            [
                {"op": "plan", "name": "q", "source": SRC, "nprocs": 4},
                {"op": "metrics"},
            ]
        )
        assert plan["status"] == "ok"
        assert metrics["status"] == "ok"
        snap = metrics["metrics"]
        assert {"counters", "gauges", "histograms", "windows"} <= set(snap)
        assert snap["counters"]["serve.requests"] >= 1
        assert "serve.ms" in snap["windows"]

    def test_metrics_op_prom_format(self):
        from repro.obs.prom import check_exposition

        (reply,) = self._roundtrip([{"op": "metrics", "format": "prom"}])
        assert reply["status"] == "ok" and reply["format"] == "prom"
        assert check_exposition(reply["metrics"]) == []

    def test_malformed_requests_logged_as_events(self):
        stream = io.StringIO()
        log = AccessLog(stream=stream)
        replies = self._roundtrip(
            [{"op": "wat"}, {"op": "plan", "source": "  "}], log=log
        )
        assert all(r["status"] == "error" for r in replies)
        events = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert [e["event"] for e in events] == [
            "malformed_request", "malformed_request",
        ]
        assert "wat" in events[0]["error"]

    def test_raw_metrics_line_scrapes_and_closes(self):
        from repro.obs.prom import check_exposition

        async def drive():
            daemon = PlanDaemon(PlanService(), port=0)
            await daemon.start()
            server = asyncio.create_task(daemon.serve_forever())
            reader, writer = await asyncio.open_connection(*daemon.address)
            writer.write(b"/metrics\n")
            await writer.drain()
            body = (await reader.read()).decode()  # daemon closes: EOF
            writer.close()
            daemon.shutdown()
            await server
            return body

        body = _drive(drive())
        assert check_exposition(body) == []

    def test_http_get_metrics(self):
        async def drive():
            daemon = PlanDaemon(PlanService(), port=0)
            await daemon.start()
            server = asyncio.create_task(daemon.serve_forever())
            reader, writer = await asyncio.open_connection(*daemon.address)
            writer.write(b"GET /metrics HTTP/1.0\r\n\r\n")
            await writer.drain()
            payload = (await reader.read()).decode()
            writer.close()
            daemon.shutdown()
            await server
            return payload

        payload = _drive(drive())
        head, _, body = payload.partition("\r\n\r\n")
        assert head.startswith("HTTP/1.0 200 OK")
        assert "text/plain" in head
        assert body.endswith("\n") and "# TYPE" in body

    def test_run_daemon_emits_structured_listening_event(self):
        stream = io.StringIO()
        log = AccessLog(stream=stream)

        async def drive():
            service = PlanService()
            bound = {}
            task = asyncio.create_task(
                run_daemon(
                    service,
                    host="127.0.0.1",
                    port=0,
                    log=log,
                    ready=lambda h, p: bound.update(host=h, port=p),
                )
            )
            while "port" not in bound:
                await asyncio.sleep(0.01)
            reader, writer = await asyncio.open_connection(
                bound["host"], bound["port"]
            )
            writer.write(b'{"op": "shutdown"}\n')
            await writer.drain()
            reply = json.loads(await reader.readline())
            writer.close()
            await task
            return bound, reply

        bound, reply = _drive(drive())
        assert reply["status"] == "ok"
        event = json.loads(stream.getvalue().splitlines()[0])
        assert event["kind"] == "event" and event["event"] == "listening"
        assert event["port"] == bound["port"]
        assert event["host"] == "127.0.0.1"


class TestDaemonConcurrentClients:
    STATS_KEYS = {
        "pending", "max_pending", "jobs", "cache_dir", "cache_entries",
        "cache", "counters", "inflight", "latency", "window", "slo",
    }

    def test_stats_schema_and_monotone_counters_under_load(self):
        async def client(host, port, name, source):
            reader, writer = await asyncio.open_connection(host, port)
            results = []
            for _ in range(3):
                writer.write(
                    json.dumps(
                        {"op": "plan", "name": name, "source": source,
                         "nprocs": 4}
                    ).encode() + b"\n"
                )
                await writer.drain()
                results.append(json.loads(await reader.readline()))
                writer.write(b'{"op": "stats"}\n')
                await writer.drain()
                results.append(json.loads(await reader.readline()))
            writer.close()
            return results

        async def drive():
            daemon = PlanDaemon(PlanService(), port=0)
            await daemon.start()
            server = asyncio.create_task(daemon.serve_forever())
            host, port = daemon.address
            per_client = await asyncio.gather(
                client(host, port, "a", SRC),
                client(host, port, "b", SRC2),
                client(host, port, "c", SRC),
            )
            daemon.shutdown()
            await server
            return per_client

        before = registry().counter("serve.requests").value
        per_client = _drive(drive())
        for results in per_client:
            plans = results[0::2]
            stats = results[1::2]
            assert all(p["status"] == "ok" for p in plans)
            for s in stats:
                assert s["status"] == "ok"
                assert self.STATS_KEYS <= set(s["stats"])
            requests_seen = [
                s["stats"]["counters"]["serve.requests"] for s in stats
            ]
            assert requests_seen == sorted(requests_seen)  # monotone
        final = registry().counter("serve.requests").value
        assert final == before + 9  # 3 clients x 3 plans, exactly once
