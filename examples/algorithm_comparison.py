#!/usr/bin/env python
"""Compare the five mobile-offset algorithms of Section 4.2.

Runs unrolling (exact), state-space search, zero-crossing tracking,
recursive refinement, and fixed partitioning (m = 1, 3, 5) on the
paper's wavefront workload and reports cost ratio to exact, LP size,
and wall time — the trade-off the paper's Section 4.2 menu describes.
"""

import time

from repro import parse
from repro.adg import build_adg
from repro.align import solve_axis_stride
from repro.align.offset_mobile import (
    fixed_partitioning,
    recursive_refinement,
    state_space_search,
    tracking_zero_crossings,
    unrolling,
)
from repro.machine import format_table

PROGRAM = """
real A(64,64), V(128)
do k = 1, 64
  A(k,1:64) = A(k,1:64) * V(k:k+63) + V(k+1:k+64)
enddo
"""


def main() -> None:
    program = parse(PROGRAM, name="wavefront")
    adg = build_adg(program)
    skel = solve_axis_stride(adg).skeletons

    runs = []
    t0 = time.perf_counter()
    exact = unrolling(adg, skel)
    runs.append(("unrolling (exact)", exact, time.perf_counter() - t0))

    for label, fn, kw in [
        ("fixed m=1", fixed_partitioning, {"m": 1}),
        ("fixed m=3 (paper)", fixed_partitioning, {"m": 3}),
        ("fixed m=5", fixed_partitioning, {"m": 5}),
        ("state-space", state_space_search, {}),
        ("zero-crossing", tracking_zero_crossings, {}),
        ("recursive-refine", recursive_refinement, {}),
    ]:
        t0 = time.perf_counter()
        res = fn(adg, skel, **kw)
        runs.append((label, res, time.perf_counter() - t0))

    rows = []
    for label, res, dt in runs:
        ratio = float(res.cost / exact.cost) if exact.cost else 1.0
        rows.append(
            (
                label,
                str(res.cost),
                f"{ratio:.4f}",
                res.lp_vars_total,
                res.subranges_total,
                res.iterations,
                f"{dt*1000:.0f}ms",
            )
        )
    print(
        format_table(
            ["algorithm", "cost", "ratio vs exact", "LP vars", "subranges", "iters", "time"],
            rows,
            title="Section 4.2 algorithm comparison (wavefront, 64 iterations)",
        )
    )


if __name__ == "__main__":
    main()
