#!/usr/bin/env python
"""Build a program with the Python DSL and inspect its ADG (Figure 2).

Shows the builder API (no parsing), the node/edge inventory of the
alignment-distribution graph, and the Graphviz rendering — the paper's
Figure 2 regenerated for its Figure 1 fragment.
"""

from repro.lang import ProgramBuilder, pretty
from repro.adg import build_adg, summary, to_dot


def main() -> None:
    b = ProgramBuilder("figure1")
    A = b.real("A", 100, 100)
    V = b.real("V", 200)
    with b.do("k", 1, 100) as k:
        b.assign(A[k, 1:100], A[k, 1:100] + V[k : k + 99])
    program = b.build()

    print("surface syntax:")
    print(pretty(program))

    adg = build_adg(program)
    print("ADG inventory (compare to the paper's Figure 2):")
    print(summary(adg))

    with open("figure2.dot", "w") as f:
        f.write(to_dot(adg))
    print("\nGraphviz written to figure2.dot (render with `dot -Tpng`)")


if __name__ == "__main__":
    main()
