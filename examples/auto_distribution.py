#!/usr/bin/env python
"""Walkthrough: automatic distribution planning (the paper's phase 2).

The SC'93 paper aligns arrays to a template and defers the mapping of
template cells onto processors.  This example runs the full stack the
repository now provides:

1. align a program (the paper's contribution);
2. compile the aligned ADG into a communication profile;
3. search distributions (scheme per axis x grid shape) for P procs;
4. compare against the naive uniform baselines;
5. verify the modeled cost against the machine simulator;
6. plan per program *phase*, pricing redistributions between phases.
"""

from repro import align_program, parse
from repro.distrib import (
    build_profile,
    naive_costs,
    plan_distribution,
    plan_program_phases,
)
from repro.machine import format_table, measure_traffic

# The wavefront workload: the mobile alignment of V makes the template
# traffic skewed, so the best processor grid is NOT the balanced one.
WAVEFRONT = """
real A(24,24), V(48)
do k = 1, 24
  A(k,1:24) = A(k,1:24) * V(k:k+23) + V(k+1:k+24)
enddo
"""

# Two top-level statements with different preferred layouts: a stencil
# phase (likes block) followed by a scatter phase (likes cyclic-ish).
TWO_PHASE = """
real U(48), W(48)
W(2:47) = U(1:46) + U(3:48)
U(2:47) = W(2:47)
"""

NPROCS = 8


def main() -> None:
    # -- steps 1-2: align, then profile ---------------------------------
    program = parse(WAVEFRONT, name="wavefront")
    plan = align_program(program, replication=False)
    profile = build_profile(plan.adg, plan.alignments)
    print(plan.report())
    print()
    print(profile.describe())

    # -- step 3: search --------------------------------------------------
    dplan = plan_distribution(profile, NPROCS)
    print()
    print(dplan.render())

    # -- step 4: baselines -----------------------------------------------
    naive = naive_costs(profile, NPROCS)
    rows = [("auto", dplan.directive(), dplan.cost.hops, dplan.cost.moved)]
    for name, cost in sorted(naive.items()):
        rows.append((name, "-", cost.hops, cost.moved))
    print()
    print(
        format_table(
            ["policy", "directive", "hops", "moved"],
            rows,
            title=f"Auto-planned vs naive uniform distributions (P={NPROCS})",
        )
    )

    # -- step 5: validate against the simulator --------------------------
    measured = measure_traffic(plan.adg, plan.alignments, dplan.to_distribution())
    print()
    print(f"simulator check: modeled hops={dplan.cost.hops}, "
          f"measured hops={measured.hop_cost} "
          f"({'exact match' if dplan.cost.hops == measured.hop_cost else 'MISMATCH'})")

    # -- step 6: phase-chain planning with remaps ------------------------
    print()
    phased = plan_program_phases(
        parse(TWO_PHASE, name="two_phase"), NPROCS,
        align_kw=dict(replication=False),
    )
    print(phased.render())


if __name__ == "__main__":
    main()
