#!/usr/bin/env python
"""Measure aligned programs on the machine simulator under different
distributions.

Alignment (this paper) and distribution (deferred by the paper) interact:
a block distribution coalesces small offset moves into on-processor
copies, while cyclic scatters them.  This example runs the stencil and
wavefront workloads under identity / block / cyclic distributions and
reports actual elements moved and processor hops — the operational view
of the paper's cost model.
"""

from repro import align_program, parse
from repro.machine import measure_plan, format_table

WORKLOADS = {
    "stencil": """
real U(64), W(64)
do t = 1, 8
  W(2:63) = U(1:62) + U(2:63) + U(3:64)
  U(2:63) = W(2:63)
enddo
""",
    "wavefront": """
real A(32,32), V(64)
do k = 1, 32
  A(k,1:32) = A(k,1:32) + V(k:k+31)
enddo
""",
}


def main() -> None:
    rows = []
    for name, src in WORKLOADS.items():
        program = parse(src, name=name)
        plan = align_program(program, replication=False)
        for scheme, procs in [
            ("identity", None),
            ("block", (4,) * plan.adg.template_rank),
            ("cyclic", (4,) * plan.adg.template_rank),
        ]:
            rep = measure_plan(plan, scheme=scheme, processors=procs)
            rows.append(
                (
                    name,
                    scheme,
                    str(plan.total_cost),
                    rep.elements_moved,
                    rep.hop_cost,
                    rep.broadcast_elements,
                )
            )
    print(
        format_table(
            ["workload", "distribution", "eq.1 cost", "elements moved", "hops", "broadcast"],
            rows,
            title="Aligned programs measured under different distributions",
        )
    )
    print(
        "\nNote: under the identity distribution, hops == the analytic "
        "equation-1 cost; block/cyclic change the operational counts "
        "without changing the alignment decision."
    )


if __name__ == "__main__":
    main()
