#!/usr/bin/env python
"""Figure 4 of the paper: replication labeling by min-cut.

::

    real t(100), B(100,200)
    do K = 1, 200
      t = cos(t)
      B = B + spread(t, dim=2, ncopies=200)
    enddo

The spread forces its input to be replicated along template axis 2
(rule 2).  The question the min-cut answers: should the *rest* of t's
loop-carried cycle (the cos node, the merge, the loop-back) also be
replicated?  If not, a broadcast of t happens in every iteration
(100 x 200 = 20,000 elements of broadcast); if yes, a single broadcast
at loop entry (100 elements) suffices — each processor column then
updates its own copy of t with a local cos.  The min-cut finds the
latter, exactly as the paper describes.
"""

from repro import align_program, parse
from repro.align import label_replication, solve_axis_stride
from repro.adg import build_adg

PROGRAM = """
real t(100), B(100,200)
do K = 1, 200
  t = cos(t)
  B = B + spread(t, dim=2, ncopies=200)
enddo
"""


def main() -> None:
    program = parse(PROGRAM, name="figure4")

    print("=== min-cut replication (Section 5) ===")
    optimal = align_program(program, replication=True)
    print(optimal.report())

    print("\n=== forced labels only (no optimization) ===")
    baseline = align_program(program, replication=False)
    print(baseline.report())

    ratio = float(baseline.total_cost / optimal.total_cost)
    print(
        f"\nreplication labeling reduces broadcast volume {ratio:.0f}x "
        "(one broadcast at loop entry instead of one per iteration)"
    )

    # Show the cut itself.
    adg = build_adg(program)
    skel = solve_axis_stride(adg)
    rep = label_replication(adg, skel.skeletons, program)
    print("\nper-axis broadcast cost certified by the cut:")
    for axis, value in rep.cut_value.items():
        print(f"  template axis {axis}: {value}")


if __name__ == "__main__":
    main()
