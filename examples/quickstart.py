#!/usr/bin/env python
"""Quickstart: align the paper's Figure 1 fragment.

The program reads a diagonal band of ``V`` against each row of ``A``::

    real A(100,100), V(200)
    do k = 1, 100
      A(k,1:100) = A(k,1:100) + V(k:k+99)
    enddo

A static alignment of V cannot avoid realignment: the band it must meet
moves one row down and one column right every iteration.  The pipeline
discovers the paper's *mobile* alignment ``V(i) at [k, i-k+1]``
(Example 4 / Figure 1(b)) and, with replication enabled, additionally
replicates the read-only V across rows (Section 5, rule 3).
"""

from repro import align_program, parse
from repro.align.pipeline import plan_context
from repro.machine import measure_plan
from repro.passes import Pipeline, trace_table

PROGRAM = """
real A(100,100), V(200)
do k = 1, 100
  A(k,1:100) = A(k,1:100) + V(k:k+99)
enddo
"""


def main() -> None:
    program = parse(PROGRAM, name="figure1")

    print("=== best static alignment (baseline) ===")
    static = align_program(program, replication=False, mobile=False)
    print(static.report())

    print("\n=== mobile alignment (Section 4) ===")
    mobile = align_program(program, replication=False)
    print(mobile.report())

    print("\n=== mobile + replication (Section 5) ===")
    # Drive the staged pipeline explicitly this time, to show the pass
    # trace: each phase is a registered pass with its own wall time, and
    # the replication <-> offset quiescence loop reports its rounds.
    ctx = Pipeline().run(plan_context(program, replication=True), goal="plan")
    full = ctx.get("plan")
    print(full.report())
    print("\npass trace (the same pipeline align_program wraps):")
    print(trace_table(ctx.trace, indent="  "))

    print(
        f"\nmobile improves on static by "
        f"{float(static.total_cost / mobile.total_cost):.1f}x; "
        f"replication improves further to "
        f"{float(static.total_cost / full.total_cost):.1f}x"
    )

    print("\noperational check on the machine simulator (identity distribution):")
    rep = measure_plan(mobile, scheme="identity")
    print(f"  measured hop cost = {rep.hop_cost}, analytic = {mobile.total_cost}")


if __name__ == "__main__":
    main()
