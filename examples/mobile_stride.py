#!/usr/bin/env python
"""Example 5 of the paper: mobile *stride* alignment.

::

    real A(1000), B(1000), V(20)
    do k = 1, 50
      V = V + A(1:20*k:k)
      B(1:20*k:k) = V
    enddo

The sections of A and B have stride ``k`` — it changes every iteration.
With any static stride for V, one of the two statements needs a general
communication every iteration (two per iteration total).  The mobile
stride alignment ``V(i) at [k*i]`` makes V's layout track the sections,
halving the cost to one general communication per iteration — the
loop-back realignment of V itself.
"""

from repro import parse
from repro.adg import build_adg
from repro.align import solve_axis_stride
from repro.align.axis_stride import AxisStrideSolver

PROGRAM = """
real A(1000), B(1000), V(20)
do k = 1, 50
  V = V + A(1:20*k:k)
  B(1:20*k:k) = V
enddo
"""


def main() -> None:
    program = parse(PROGRAM, name="example5")
    adg = build_adg(program)

    result = solve_axis_stride(adg)
    print(f"discrete-metric (general communication) cost: {result.cost}")
    print("  = 20 elements x 49 inter-iteration realignments of V\n")

    print("chosen stride labels:")
    for p in adg.ports():
        if p.node.kind.name == "SOURCE" or "merge(V" in p.uid:
            print(f"  {p.uid:32s} -> {result.of(p)!r}")

    # Compare with the best static labeling: program variables (source,
    # merge, sink ports) may only take constant strides; derived section
    # labels stay mobile, as they inherently are.
    solver = AxisStrideSolver(adg)
    solver.generate_candidates()
    storage_kinds = {"SOURCE", "MERGE", "SINK"}
    for p in adg.ports():
        if p.node.kind.name not in storage_kinds:
            continue
        cands = solver.candidates[p.key]
        static_only = [
            lab
            for lab in cands
            if all(
                ax.stride is None or ax.stride.is_constant for ax in lab.axes
            )
        ]
        if static_only:
            solver.candidates[p.key] = static_only
    static = solver.solve(regenerate=False)
    print(f"\nbest static-stride cost: {static.cost}")
    print(
        f"mobile stride wins by {float(static.cost / result.cost):.2f}x "
        "(the paper: cost drops from two general communications per "
        "iteration to one)"
    )


if __name__ == "__main__":
    main()
