"""Delta-driven incremental re-planning.

A single-statement edit to a program changes its content fingerprint,
so the serve cache (:mod:`repro.serve`) treats the edited program as a
cold miss and the pipeline re-runs every pass from typecheck through
distribute — even though most of the ADG and almost every alignment
artifact are untouched.  This module closes that gap:

* :func:`diff_programs` compares two programs statement-by-statement
  under stable *statement keys* (content fingerprints — the statement
  analogue of ``Port.key``) and reports which top-level statements
  changed.
* :func:`dirty_region` maps the changed statements onto the new ADG via
  the build-time provenance tags (``ADGNode.stmt``) and takes the
  forward reachability closure: the dirty nodes and ports an edit can
  influence.  This drives the *accounting* (dirty/total counts in the
  trace, ``passes.delta.dirty_ports``).
* :func:`replan` re-enters the pipeline against a fresh context with
  unchanged artifacts carried over from a prior ``PlanContext`` —
  skeletons, replication labels, mobile offsets, per-port alignments
  and the comm profile — so only the genuinely invalidated suffix
  recomputes.  A machine-only delta (same program, new
  nprocs/topology) forks the base context and re-runs exactly the
  distribution suffix, pricing the move with the existing remap cost
  model (:func:`repro.distrib.remap.remap_cost`).

Carry-over *soundness* is decided by projection fingerprints, not by
the diff itself.  Two projections of the ``(program, adg)`` pair are
hashed:

* the **alignment projection** keeps everything the alignment phases
  read — node kinds, payload content, port shapes/spaces, edge weights
  — and masks what they do not (node display labels, the reduce
  operator, which only executors read);
* the **skeleton projection** additionally masks section offsets
  (slice lower bounds, scalar subscript values): axis/stride labeling
  is offset-blind, so an offset-only edit preserves the skeleton
  solution even though the mobile-offset LP must re-run.

Equal alignment projections mean the alignment solvers would see
byte-for-byte identical inputs, so every alignment artifact of the
base is *the* answer for the edited program and carrying it over is
exact, not approximate — the differential harness asserts the
resulting plans match from-scratch plans on every edit pair.  Any
value that fails content fingerprinting degrades the projection to
``None``, which disables carry-over rather than risking a stale reuse.

Every per-pass reuse/recompute shows up in the context trace, the
``passes.artifact_reuse`` cachestats cell, and the obs counters
``passes.delta.dirty_ports`` / ``passes.delta.reused``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from .. import cachestats
from ..adg.graph import ADG
from ..adg.nodes import (
    EmptyPayload,
    ReducePayload,
    SectionPayload,
    SinkPayload,
    SourcePayload,
    SpreadPayload,
    TransformerPayload,
)
from ..lang import ast as A
from ..obs import spans as obs
from ..obs.metrics import registry
from .core import Pipeline, PlanContext, content_fingerprint

__all__ = [
    "DeltaReport",
    "ProgramDiff",
    "diff_programs",
    "dirty_region",
    "replan",
    "statement_key",
]


# -- statement keys and program diffing -----------------------------------


def statement_key(stmt: Any) -> str:
    """A stable content key for one top-level statement.

    The statement analogue of ``Port.key``: two parses of the same
    source text yield the same key, across processes.  Every AST node
    is a frozen dataclass, so :func:`content_fingerprint` covers the
    whole subtree; the identity fallback (only reachable for a subtree
    exceeding the fingerprint budget) never matches anything, which
    degrades the diff to "changed" — conservative, never stale.
    """
    fp = content_fingerprint(stmt)
    return fp if fp is not None else f"!opaque-{id(stmt):x}"


@dataclass(frozen=True)
class ProgramDiff:
    """A statement-level diff between a base and a new program.

    ``matched`` pairs base/new body indices whose statement keys agree
    (a longest common subsequence, so a statement moving past an edit
    still matches); ``changed_base`` / ``changed_new`` are the
    unmatched indices on each side.  ``decls_changed`` flags any
    difference in the declaration list, which can invalidate every
    port (shapes, readonly-ness) and is never treated as local.
    """

    base_keys: tuple[str, ...]
    new_keys: tuple[str, ...]
    matched: tuple[tuple[int, int], ...]
    changed_base: tuple[int, ...]
    changed_new: tuple[int, ...]
    decls_changed: bool

    @property
    def identical(self) -> bool:
        return (
            not self.changed_base
            and not self.changed_new
            and not self.decls_changed
        )

    def summary(self) -> str:
        if self.identical:
            return "identical"
        parts = [
            f"{len(self.changed_new)}/{len(self.new_keys)} statements changed"
        ]
        dropped = len(self.changed_base) - len(self.changed_new)
        if dropped > 0:
            parts.append(f"{dropped} removed")
        elif dropped < 0:
            parts.append(f"{-dropped} added")
        if self.decls_changed:
            parts.append("decls changed")
        return ", ".join(parts)


def _lcs_pairs(a: Sequence[str], b: Sequence[str]) -> list[tuple[int, int]]:
    """Longest-common-subsequence index pairs of two key sequences.

    Bodies are tens of statements at most, so the quadratic DP is
    plenty; ties break toward the earliest match, keeping the pairing
    deterministic.
    """
    n, m = len(a), len(b)
    L = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n - 1, -1, -1):
        for j in range(m - 1, -1, -1):
            L[i][j] = (
                L[i + 1][j + 1] + 1
                if a[i] == b[j]
                else max(L[i + 1][j], L[i][j + 1])
            )
    pairs: list[tuple[int, int]] = []
    i = j = 0
    while i < n and j < m:
        if a[i] == b[j]:
            pairs.append((i, j))
            i += 1
            j += 1
        elif L[i + 1][j] >= L[i][j + 1]:
            i += 1
        else:
            j += 1
    return pairs


def diff_programs(base: A.Program, new: A.Program) -> ProgramDiff:
    """Statement-level diff of two programs (see :class:`ProgramDiff`)."""
    base_keys = tuple(statement_key(s) for s in base.body)
    new_keys = tuple(statement_key(s) for s in new.body)
    matched = tuple(_lcs_pairs(base_keys, new_keys))
    mb = {i for i, _ in matched}
    mn = {j for _, j in matched}
    decls_changed = content_fingerprint(base.decls) != content_fingerprint(
        new.decls
    ) or content_fingerprint(new.decls) is None
    return ProgramDiff(
        base_keys=base_keys,
        new_keys=new_keys,
        matched=matched,
        changed_base=tuple(i for i in range(len(base_keys)) if i not in mb),
        changed_new=tuple(j for j in range(len(new_keys)) if j not in mn),
        decls_changed=decls_changed,
    )


# -- dirty-region computation ---------------------------------------------


def dirty_region(adg: ADG, diff: ProgramDiff) -> tuple[set[int], set[str]]:
    """Dirty ``(node ids, port keys)`` of ``adg`` under ``diff``.

    Seeds are the nodes whose provenance tag (``ADGNode.stmt``) names a
    changed statement — or *any* declaration node when the declaration
    list changed — plus nodes with unknown provenance (older pickled
    graphs), which are conservatively dirty.  The region is the forward
    dataflow closure of the seeds: everything an edit's new values can
    reach, hence everything whose alignment decision the edit could
    perturb through the cost terms downstream.
    """
    tags = {f"s{j}" for j in diff.changed_new}
    decls_dirty = diff.decls_changed
    dirty: set[int] = set()
    frontier: list = []
    for n in adg.nodes:
        seeded = (
            n.stmt in tags
            or n.stmt == ""
            or (decls_dirty and n.stmt.startswith("decl:"))
        )
        if seeded:
            dirty.add(n.nid)
            frontier.append(n)
    while frontier:
        n = frontier.pop()
        for p in n.outputs():
            for e in adg.out_edges(p):
                m = e.head.node
                if m.nid not in dirty:
                    dirty.add(m.nid)
                    frontier.append(m)
    ports = {p.key for n in adg.nodes if n.nid in dirty for p in n.ports}
    return dirty, ports


# -- projection fingerprints ----------------------------------------------


def _payload_key(payload: Any, offsets: bool) -> Optional[str]:
    """Canonical key of one node payload under the given projection.

    ``offsets=True`` is the alignment projection, ``offsets=False`` the
    skeleton projection (section lower bounds and scalar subscript
    values masked — they only ever reach the offset terms of the
    alignment constraints, never the axis/stride labels).  The reduce
    operator is masked in both: no planning phase reads it (the reduced
    axis is released regardless of whether it folds with ``sum`` or
    ``maxval``).  Returns ``None`` for content that cannot be
    fingerprinted, which poisons the whole projection.
    """
    if isinstance(payload, EmptyPayload):
        return "empty"
    if isinstance(payload, ReducePayload):
        return f"reduce(dim={payload.dim})"
    if isinstance(payload, SectionPayload):
        subs = []
        for s in payload.subscripts:
            if offsets:
                fp = content_fingerprint(s)
                if fp is None:
                    return None
                subs.append(fp)
            elif s.kind == "slice":
                fp = content_fingerprint(s.step)
                if fp is None:
                    return None
                subs.append(f"slice:step={fp}")
            else:
                subs.append(s.kind)  # "index" / "full": offset-only content
        return f"section({payload.array};{','.join(subs)})"
    if isinstance(
        payload, (SpreadPayload, TransformerPayload, SourcePayload, SinkPayload)
    ):
        # Transformer values (loop bounds/steps) stay in both
        # projections: steps reach strides, and entry/exit values feed
        # the iteration spaces the stride DP weighs candidates by.
        return content_fingerprint(payload)
    return content_fingerprint(payload)


def _projection(program: A.Program, adg: ADG, offsets: bool) -> Optional[str]:
    """Projection fingerprint of everything the planning phases read.

    Node display labels and provenance tags are excluded (cosmetic), so
    e.g. swapping ``+`` for ``-`` — which only changes an ELEMENTWISE
    node's label — leaves the alignment projection fixed and the whole
    alignment solution carries over.  ``None`` when any constituent is
    not content-addressable: carry-over is then disabled.
    """
    from ..align.replication import read_only_arrays

    # Shapes, spaces and edge weights are heavily shared between ports
    # (one iteration space serves a whole loop nest), so fingerprints
    # are memoized by object identity for the duration of this walk.
    # The memo holds a reference alongside each digest — an id() can
    # only be recycled after its object is collected.
    memo: dict[int, tuple[Any, Optional[str]]] = {}

    def _fp(obj: Any) -> Optional[str]:
        hit = memo.get(id(obj))
        if hit is not None:
            return hit[1]
        digest = content_fingerprint(obj)
        memo[id(obj)] = (obj, digest)
        return digest

    parts = [
        f"rank={adg.template_rank}",
        "ro=" + ",".join(sorted(read_only_arrays(program))),
    ]
    for n in adg.nodes:
        pk = _payload_key(n.payload, offsets)
        if pk is None:
            return None
        parts.append(f"n{n.nid}:{n.kind.name}:{pk}")
        for p in n.ports:
            fsh = _fp(p.shape)
            fsp = _fp(p.space)
            if fsh is None or fsp is None:
                return None
            parts.append(
                f"p{p.key}:{p.name}:{int(p.is_output)}:{fsh}:{fsp}"
            )
    for e in adg.edges:
        fw = _fp(e.weight)
        fsp = _fp(e.space)
        if fw is None or fsp is None:
            return None
        parts.append(
            f"e{e.eid}:{e.tail.key}>{e.head.key}:{fw}:{fsp}:"
            f"{e.control_weight!r}"
        )
    return hashlib.sha1("|".join(parts).encode()).hexdigest()[:16]


def _base_projection(
    base: PlanContext, program: A.Program, adg: ADG, offsets: bool
) -> Optional[str]:
    """`_projection` of the *base* side, memoized on the base context.

    A base context is replanned against many times (one edit stream =
    one base, dozens of edits) and its program/graph never change, so
    the projection is computed once per (program, adg, offsets) triple.
    The memo keeps references to the keyed objects: identity keys stay
    valid exactly as long as the objects they name are alive.
    """
    try:
        memo = base.__dict__.setdefault("_delta_proj_memo", {})
    except AttributeError:  # slotted/frozen stand-ins in tests
        return _projection(program, adg, offsets)
    key = (id(program), id(adg), offsets)
    hit = memo.get(key)
    if hit is None:
        hit = (program, adg, _projection(program, adg, offsets))
        memo[key] = hit
    return hit[2]


# -- copy-on-write carriers -----------------------------------------------


def _cow_profile(profile):
    """A copy-on-write clone of a comm profile.

    Containers the distribution search mutates — the hop memo, and the
    record list in principle — are copied; the records themselves and
    the lazily-compiled front tensors are immutable-in-practice and
    shared.  The base context's profile is never touched by a replan.
    """
    return dataclasses.replace(
        profile,
        records=list(profile.records),
        _hops_cache=dict(profile._hops_cache),
    )


#: Per-port (or per-record) entry counts of the carriable artifacts, for
#: the reused/recomputed accounting.  Scalars count as one entry.
def _entries(key: str, value: Any) -> int:
    try:
        if key == "skeletons":
            return len(value.skeletons)
        if key == "replication":
            return len(value.labels)
        if key == "offsets":
            return len(value.offsets)
        if key == "profile":
            return len(value.records)
        if key in ("alignments", "replicated"):
            return len(value)
    except (AttributeError, TypeError):
        return 1
    return 1


# -- the report -----------------------------------------------------------


@dataclass
class DeltaReport:
    """What one incremental replan did and why.

    ``strategy`` is one of ``identical`` (nothing changed — pure
    reuse), ``machine_only`` (distribute suffix re-ran against a new
    machine), ``carry_all`` (every alignment artifact carried, only the
    distribution suffix ran), ``carry_skeletons`` (axis/stride carried,
    offsets onward re-ran), ``full`` (nothing carriable).  ``reused`` /
    ``recomputed`` count artifact *entries* (per-port map sizes), the
    same granularity ``passes.artifact_reuse`` accumulates.
    """

    strategy: str
    diff: Optional[ProgramDiff]
    dirty_nodes: int = 0
    dirty_ports: int = 0
    total_nodes: int = 0
    total_ports: int = 0
    reused: dict[str, int] = field(default_factory=dict)
    recomputed: dict[str, int] = field(default_factory=dict)
    pass_status: dict[str, str] = field(default_factory=dict)
    remap: Any = None  # CostVector for machine deltas with a base distribution
    seconds: float = 0.0

    @property
    def reused_entries(self) -> int:
        return sum(self.reused.values())

    @property
    def recomputed_entries(self) -> int:
        return sum(self.recomputed.values())

    def render(self) -> str:
        lines = [f"delta replan: strategy={self.strategy}"]
        if self.diff is not None:
            lines.append(f"  diff: {self.diff.summary()}")
        lines.append(
            f"  dirty region: {self.dirty_nodes}/{self.total_nodes} nodes, "
            f"{self.dirty_ports}/{self.total_ports} ports"
        )

        def _fmt(counts: dict[str, int]) -> str:
            return (
                ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
                or "none"
            )

        lines.append(
            f"  reused:     {_fmt(self.reused)} "
            f"({self.reused_entries} entries)"
        )
        lines.append(
            f"  recomputed: {_fmt(self.recomputed)} "
            f"({self.recomputed_entries} entries)"
        )
        for name, status in self.pass_status.items():
            lines.append(f"  pass {name:<22s} {status}")
        if self.remap is not None:
            lines.append(
                f"  remap: hops={self.remap.hops} moved={self.remap.moved}"
            )
        lines.append(f"  seconds: {self.seconds:.4f}")
        return "\n".join(lines)


# -- the replan driver ----------------------------------------------------

#: Machine-independent alignment artifacts carried by the full-alignment
#: strategy, in pipeline order (assemble's whole input/output surface).
_ALIGN_ARTIFACTS = (
    "skeletons",
    "replication",
    "offsets",
    "replicated",
    "replication_rounds",
    "alignments",
    "total_cost",
)


def _machine_fp(machine) -> Optional[str]:
    return None if machine is None else content_fingerprint(machine)


def _carry_skeletons(ctx: PlanContext, base: PlanContext, new_adg: ADG):
    """Carry the axis/stride solution onto ``ctx``, rebound to the new
    graph's ports (key sets are identical whenever a projection
    matched).  Containers are copied so later passes can never reach
    back into the base context's maps."""
    skel = base.get("skeletons")
    rebound = dataclasses.replace(
        skel,
        skeletons=dict(skel.skeletons),
        port_by_key={p.key: p for p in new_adg.ports()},
    )
    ctx.put("skeletons", rebound)
    return rebound


def _carry_alignment(ctx: PlanContext, base: PlanContext, new_adg: ADG) -> None:
    """Carry every alignment artifact (copy-on-write) and hand-assemble
    the plan object against the new program/graph — exactly what
    :class:`~repro.passes.align_passes.AssemblePass` would build, with
    the solver outputs supplied instead of recomputed."""
    from ..align.pipeline import AlignmentPlan

    skel = _carry_skeletons(ctx, base, new_adg)
    rep = base.get("replication")
    rep = dataclasses.replace(
        rep, labels=dict(rep.labels), cut_value=dict(rep.cut_value)
    )
    off = base.get("offsets")
    off = dataclasses.replace(
        off, offsets=dict(off.offsets), lp_stats=list(off.lp_stats)
    )
    alignments = dict(base.get("alignments"))
    rounds = base.get("replication_rounds")
    cost = base.get("total_cost")

    def _put_copy(key: str, value) -> None:
        # A shallow copy has the same *content* as the base artifact, so
        # when the base ledger entry is content-addressed its
        # fingerprint transfers verbatim — no re-hash of a solver-sized
        # map on the replan hot path.
        art = base.artifact(key)
        ctx.put(
            key, value, fingerprint=art.fingerprint if art.content_addressed else None
        )

    _put_copy("replication", rep)
    _put_copy("offsets", off)
    _put_copy("replicated", set(base.get("replicated")))
    _put_copy("replication_rounds", rounds)
    _put_copy("alignments", alignments)
    _put_copy("total_cost", cost)
    ctx.put(
        "plan",
        AlignmentPlan(
            ctx.get("program"),
            new_adg,
            skel,
            rep,
            off,
            alignments,
            cost,
            replication_rounds=rounds,
        ),
    )
    if base.has("profile"):
        ctx.put("profile", _cow_profile(base.get("profile")))


def _account(
    ctx: PlanContext, pipeline: Pipeline, report: DeltaReport
) -> None:
    """Fill reused/recomputed counts and per-pass status from the trace.

    A pass can appear twice (the diff stage runs the graph prefix, then
    the goal run emits a reuse for it); a pass that ran *at all* during
    this replan counts as recomputed — reuse events merely confirm its
    outputs stayed valid."""
    last: dict[str, dict] = {}
    ran_once: set[str] = set()
    for ev in ctx.trace:
        if ev.get("pass") == "delta" or "provides" not in ev:
            continue
        last[ev["pass"]] = ev
        if ev["event"] == "run":
            ran_once.add(ev["pass"])
    for name, ev in last.items():
        ran = name in ran_once
        report.pass_status[name] = "ran (dirty)" if ran else "reused (clean)"
        bucket = report.recomputed if ran else report.reused
        for key in ev["provides"]:
            bucket[key] = _entries(key, ctx.get(key)) if ctx.has(key) else 1


def replan(
    base: PlanContext,
    program: Optional[A.Program] = None,
    machine=None,
    goal: str | Sequence[str] = ("plan", "distribution"),
    pipeline: Optional[Pipeline] = None,
) -> tuple[PlanContext, DeltaReport]:
    """Incrementally re-plan against a solved base context.

    ``program`` is the edited program (``None``: unchanged) and
    ``machine`` the new target (``None``: the base's, if any).  Returns
    a *new* context solved to ``goal`` plus the :class:`DeltaReport`;
    the base context and its artifacts are never mutated — everything
    carried over is copied at the container level first.

    The incremental result is exact: artifacts carry over only when the
    relevant projection fingerprints match, i.e. when a from-scratch
    solve would have received identical inputs.
    """
    t0 = time.perf_counter()
    pipeline = pipeline if pipeline is not None else Pipeline()
    base_program = base.get("program")
    new_program = program if program is not None else base_program
    program_same = new_program is base_program or (
        content_fingerprint(base_program) is not None
        and content_fingerprint(base_program)
        == content_fingerprint(new_program)
    )
    base_machine = base.get("machine") if base.has("machine") else None
    new_machine = machine if machine is not None else base_machine
    machine_same = base_machine is not None and (
        new_machine is base_machine
        or (
            _machine_fp(new_machine) is not None
            and _machine_fp(new_machine) == _machine_fp(base_machine)
        )
    )

    with obs.span("passes.delta", kind="delta"):
        report = DeltaReport(strategy="full", diff=None)
        if program_same:
            diff = diff_programs(base_program, new_program)
            report.diff = diff
            ctx = base.fork()
            if machine_same or new_machine is None:
                report.strategy = "identical"
            else:
                report.strategy = "machine_only"
                # COW the mutable suffix inputs before the fork touches
                # them: the distribution search memoizes into the
                # profile, and callers routinely write
                # ``plan.distribution``; neither may reach the base.
                if base.has("profile"):
                    ctx.put("profile", _cow_profile(base.get("profile")))
                if base.has("plan"):
                    ctx.put("plan", dataclasses.replace(base.get("plan")))
                ctx.put("machine", new_machine)
            adg = base.get("adg") if base.has("adg") else None
            if adg is not None:
                report.total_nodes = len(adg.nodes)
                report.total_ports = sum(len(n.ports) for n in adg.nodes)
        else:
            diff = diff_programs(base_program, new_program)
            report.diff = diff
            ctx = PlanContext()
            ctx.put("program", new_program)
            ctx.put("align_options", base.get("align_options"))
            if new_machine is not None:
                ctx.put("machine", new_machine)
            if base.has("phase_options"):
                ctx.put("phase_options", base.get("phase_options"))
            # The graph prefix always re-runs: the diff needs the new
            # ADG, and typecheck/build are the cheap passes.
            pipeline.run(ctx, goal="adg")
            new_adg = ctx.get("adg")
            dirty_nodes, dirty_ports = dirty_region(new_adg, diff)
            report.dirty_nodes = len(dirty_nodes)
            report.dirty_ports = len(dirty_ports)
            report.total_nodes = len(new_adg.nodes)
            report.total_ports = sum(len(n.ports) for n in new_adg.nodes)
            base_adg = base.get("adg") if base.has("adg") else None

            def _match(offsets: bool) -> bool:
                new_proj = _projection(new_program, new_adg, offsets)
                return new_proj is not None and new_proj == _base_projection(
                    base, base_program, base_adg, offsets
                )

            if base_adg is not None:
                if all(base.has(k) for k in _ALIGN_ARTIFACTS) and _match(
                    offsets=True
                ):
                    report.strategy = "carry_all"
                    _carry_alignment(ctx, base, new_adg)
                elif base.has("skeletons") and _match(offsets=False):
                    report.strategy = "carry_skeletons"
                    _carry_skeletons(ctx, base, new_adg)
                else:
                    report.strategy = "full"

        diff_seconds = time.perf_counter() - t0
        ctx.trace.append(
            {
                "pass": "delta",
                "event": "diff",
                "seconds": diff_seconds,
                "strategy": report.strategy,
                "dirty_nodes": report.dirty_nodes,
                "dirty_ports": report.dirty_ports,
            }
        )
        pipeline.run(ctx, goal=goal)

        if (
            report.strategy == "machine_only"
            and base.has("distribution")
            and ctx.has("distribution")
            and base.has("profile")
        ):
            from ..distrib.remap import remap_cost

            report.remap = remap_cost(
                base.get("profile").window,
                base.get("distribution").to_distribution(),
                ctx.get("distribution").to_distribution(),
                topology=new_machine.topology_object()
                if new_machine is not None
                else None,
            )

        _account(ctx, pipeline, report)
        report.seconds = time.perf_counter() - t0
        reg = registry()
        reg.counter("passes.delta.dirty_ports").inc(report.dirty_ports)
        reg.counter("passes.delta.reused").inc(report.reused_entries)
        cachestats.record_hit("passes.artifact_reuse", report.reused_entries)
        cachestats.record_miss(
            "passes.artifact_reuse", report.recomputed_entries
        )
        obs.annotate(
            strategy=report.strategy,
            dirty_ports=report.dirty_ports,
            reused=report.reused_entries,
            recomputed=report.recomputed_entries,
        )
    return ctx, report
