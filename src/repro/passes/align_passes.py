"""The paper's alignment phases, registered as pipeline passes.

One pass per phase, in the paper's order: typecheck → ADG build
(Section 2.2) → axis/stride labeling (Section 3) → the replication ↔
mobile-offset fixpoint (Sections 4–6) → assembly + exact cost
accounting.  Every pass here is machine-independent: a topology or
processor-count sweep reuses all of them and re-executes only the
distribution suffix (:mod:`repro.passes.distrib_passes`).

The fixpoint is an explicit :class:`~repro.passes.core.FixpointPass`:
labels accumulate monotonically (once replication is justified by a
mobile offset, dropping the offset's cost must not un-justify it), so
the iteration terminates — at quiescence or at the configured round
cap, both recorded in the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..adg.build import build_adg
from ..align.axis_stride import solve_axis_stride
from ..align.cost import assemble_alignments, total_cost
from ..align.offset_mobile import solve_mobile_offsets
from ..align.replication import label_replication
from ..lang.typecheck import typecheck
from .core import FixpointPass, Pass, PlanContext


@dataclass(frozen=True)
class AlignOptions:
    """Frozen alignment configuration — one artifact, stable fingerprint.

    Mirrors the keyword surface of :func:`repro.align.align_program`;
    ``alg_kw`` holds the algorithm-specific keywords (e.g. ``m`` for
    fixed partitioning) as a sorted item tuple so the whole record is
    hashable and its repr is content-stable.
    """

    algorithm: str = "fixed"
    backend: str = "scipy"
    replication: bool = True
    mobile: bool = True
    max_replication_rounds: int = 3
    alg_kw: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def of(
        cls,
        algorithm: str = "fixed",
        backend: str = "scipy",
        replication: bool = True,
        mobile: bool = True,
        max_replication_rounds: int = 3,
        **alg_kw: Any,
    ) -> "AlignOptions":
        return cls(
            algorithm,
            backend,
            replication,
            mobile,
            max_replication_rounds,
            tuple(sorted(alg_kw.items())),
        )

    @property
    def algorithm_kwargs(self) -> dict[str, Any]:
        return dict(self.alg_kw)


class TypecheckPass(Pass):
    name = "typecheck"
    requires = ("program",)
    provides = ("typeinfo",)

    def run(self, ctx: PlanContext) -> None:
        ctx.put("typeinfo", typecheck(ctx.get("program")))


class BuildADGPass(Pass):
    name = "build-adg"
    requires = ("program", "typeinfo")
    provides = ("adg",)

    def run(self, ctx: PlanContext) -> None:
        ctx.put("adg", build_adg(ctx.get("program"), ctx.get("typeinfo")))


class AxisStridePass(Pass):
    name = "axis-stride"
    requires = ("adg",)
    provides = ("skeletons",)

    def run(self, ctx: PlanContext) -> None:
        ctx.put("skeletons", solve_axis_stride(ctx.get("adg")))


@dataclass
class _FixpointState:
    """Carries the loop state of the replication ↔ offset iteration."""

    seen: Optional[set[tuple[str, int]]] = None
    offsets_in: Optional[dict] = None  # feeds the next labeling round
    replication: Any = None
    offsets: Any = None
    replicated: set[tuple[str, int]] = field(default_factory=set)


class ReplicationFixpointPass(FixpointPass):
    """Sections 4–6: replication labeling ↔ mobile offsets to quiescence.

    With ``replication=False`` the loop degenerates to one round of
    forced labels only (spread inputs R) — the paper's no-optimization
    baseline — followed by a single offset solve.
    """

    name = "replication-offsets"
    requires = ("program", "adg", "skeletons", "align_options")
    provides = ("replication", "offsets", "replicated", "replication_rounds")

    def max_rounds(self, ctx: PlanContext) -> int:
        opts: AlignOptions = ctx.get("align_options")
        return opts.max_replication_rounds if opts.replication else 1

    def init(self, ctx: PlanContext) -> _FixpointState:
        return _FixpointState()

    def step(
        self, ctx: PlanContext, state: _FixpointState, rounds: int
    ) -> tuple[_FixpointState, bool]:
        opts: AlignOptions = ctx.get("align_options")
        adg = ctx.get("adg")
        skel = ctx.get("skeletons")
        program = ctx.get("program")
        if not opts.replication:
            state.replication = label_replication(
                adg, skel.skeletons, program, None, minimal=True
            )
            state.replicated = state.replication.replicated_ports()
            state.offsets = solve_mobile_offsets(
                adg,
                skel.skeletons,
                opts.algorithm,
                replicated=state.replicated,
                backend=opts.backend,
                static=not opts.mobile,
                **opts.algorithm_kwargs,
            )
            return state, True
        state.replication = label_replication(
            adg, skel.skeletons, program, state.offsets_in
        )
        new_rep = state.replication.replicated_ports() | (state.seen or set())
        state.offsets = solve_mobile_offsets(
            adg,
            skel.skeletons,
            opts.algorithm,
            replicated=new_rep,
            backend=opts.backend,
            static=not opts.mobile,
            **opts.algorithm_kwargs,
        )
        state.offsets_in = state.offsets.offsets
        converged = new_rep == state.seen
        state.seen = new_rep
        state.replicated = new_rep
        return state, converged

    def finish(
        self, ctx: PlanContext, state: _FixpointState, rounds: int
    ) -> None:
        ctx.put("replication", state.replication)
        ctx.put("offsets", state.offsets)
        ctx.put("replicated", state.replicated)
        ctx.put("replication_rounds", rounds)


class AssemblePass(Pass):
    """Combine skeletons, offsets and replication labels into full
    per-port alignments, price every edge exactly (equation 1), and wrap
    the result as the public :class:`~repro.align.pipeline.AlignmentPlan`."""

    name = "assemble"
    requires = (
        "program",
        "adg",
        "skeletons",
        "replication",
        "offsets",
        "replicated",
        "replication_rounds",
    )
    provides = ("alignments", "total_cost", "plan")

    def run(self, ctx: PlanContext) -> None:
        from ..align.pipeline import AlignmentPlan

        adg = ctx.get("adg")
        skel = ctx.get("skeletons")
        offsets = ctx.get("offsets")
        replicated = ctx.get("replicated")
        alignments = assemble_alignments(
            adg, skel.skeletons, offsets.offsets, replicated
        )
        cost = total_cost(adg, alignments)
        ctx.put("alignments", alignments)
        ctx.put("total_cost", cost)
        ctx.put(
            "plan",
            AlignmentPlan(
                ctx.get("program"),
                adg,
                skel,
                ctx.get("replication"),
                offsets,
                alignments,
                cost,
                replication_rounds=ctx.get("replication_rounds"),
            ),
        )
