"""The pass-manager core: passes, contexts, and the pipeline driver.

The paper's phases (ADG build → axis/stride → replication ↔ mobile
offsets → assembly → distribution → phase remaps) used to be hardwired
inside one monolithic driver.  Here each phase is a :class:`Pass` — a
named unit declaring the artifact keys it ``requires`` and ``provides``
— and a :class:`Pipeline` resolves the dependency order, runs only the
passes a goal needs, instruments each run (wall time, cache-counter
deltas, structured trace events), and *reuses* artifacts whose inputs
have not changed.

Reuse is what makes machine sweeps cheap: a :class:`PlanContext` holds
typed artifacts versioned by a store-time clock and fingerprinted by
content where the value supports it.  ``ctx.fork()`` shares the solved
artifacts; re-running the pipeline on the fork after replacing only the
machine artifact re-executes just the machine-dependent suffix — every
machine-independent pass is skipped with a ``reuse`` trace event, and
the shared prefix objects (ADG, alignments, profile) keep their
identity across the sweep.

All per-port artifacts are keyed by the stable ``Port.key`` (never
``id(port)``), so a context prefix pickles across process boundaries —
:mod:`repro.batch` ships exactly these prefixes to its worker pool.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
import uuid
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from .. import cachestats
from ..obs import spans as obs


class PipelineError(Exception):
    """Structural pipeline faults: duplicate providers, cycles."""


class MissingArtifactError(KeyError):
    """A required artifact is absent from the context.

    Carries enough context to be actionable: the missing key, who asked
    for it, which pass could provide it (if any), and what *is*
    available.
    """

    def __init__(
        self,
        key: str,
        requester: str | None = None,
        provider: str | None = None,
        available: Iterable[str] = (),
        goal: bool = False,
    ) -> None:
        self.key = key
        self.requester = requester
        self.provider = provider
        self.available = sorted(available)
        have = ", ".join(self.available) or "none"
        if goal:
            # A goal must be *producible* by a registered pass; context
            # contents are irrelevant (selection happens before any run).
            msg = (
                f"goal {key!r} is not a producible artifact of this "
                f"pipeline; producible goals: {have}"
            )
        else:
            who = f" (required by pass {requester!r})" if requester else ""
            if provider:
                hint = (
                    f"; pass {provider!r} provides it — add it to the "
                    "pipeline or run it first"
                )
            else:
                hint = (
                    "; no registered pass provides it — supply it as a "
                    "pipeline input"
                )
            msg = f"missing artifact {key!r}{who}{hint} (available: {have})"
        super().__init__(msg)

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message readable
        return self.args[0]


class _NotContentAddressable(Exception):
    pass


_FINGERPRINT_BUDGET = 10_000  # recursion item cap: stay cheap on big values


def _stable_repr(value: Any, budget: list[int]) -> str:
    """A canonical string for values whose *content* fully determines it.

    Only structurally transparent values qualify: primitives, containers
    of such values, frozen dataclasses (``MachineSpec``,
    ``AlignOptions``, ``LIV``, ...), and immutable classes exposing a
    ``__content_key__()`` of such values (``AffineForm``).  Everything
    else — in particular objects with summary-style reprs like
    ``<ADG main: 4 nodes...>``, which do not distinguish distinct
    contents — raises :class:`_NotContentAddressable` so the fingerprint
    falls back to store-version identity, which never spuriously
    matches.
    """
    budget[0] -= 1
    if budget[0] < 0:
        raise _NotContentAddressable
    if value is None or isinstance(value, (bool, int, float, str, Fraction)):
        return repr(value)
    if isinstance(value, (tuple, list)):
        inner = ",".join(_stable_repr(v, budget) for v in value)
        return f"{type(value).__name__}({inner})"
    if isinstance(value, (set, frozenset)):
        inner = ",".join(sorted(_stable_repr(v, budget) for v in value))
        return f"{type(value).__name__}({inner})"
    if isinstance(value, dict):
        items = sorted(
            (_stable_repr(k, budget), _stable_repr(v, budget))
            for k, v in value.items()
        )
        return "dict(" + ",".join(f"{k}:{v}" for k, v in items) + ")"
    if (
        dataclasses.is_dataclass(value)
        and not isinstance(value, type)
        and type(value).__dataclass_params__.frozen
    ):
        fields = ",".join(
            f"{f.name}={_stable_repr(getattr(value, f.name), budget)}"
            for f in dataclasses.fields(value)
        )
        return f"{type(value).__qualname__}({fields})"
    key_fn = getattr(value, "__content_key__", None)
    if key_fn is not None:
        # Immutable non-dataclass values opt in by returning the
        # structural content that fully determines them.
        return f"{type(value).__qualname__}<{_stable_repr(key_fn(), budget)}>"
    raise _NotContentAddressable


def content_fingerprint(value: Any) -> Optional[str]:
    """A short content fingerprint, or ``None`` when the value is not
    content-addressable (opaque objects, over-budget containers).

    This is the public face of the fingerprinting scheme: two values
    with the same fingerprint have the same canonical content, across
    processes and machines.  Persistent caches (:mod:`repro.serve`) key
    on exactly these — a ``None`` here must never become a cache key.
    """
    try:
        r = _stable_repr(value, [_FINGERPRINT_BUDGET])
    except Exception:  # noqa: BLE001 - fingerprinting must never fail
        return None
    digest = hashlib.sha1(f"{type(value).__name__}|{r}".encode()).hexdigest()
    return digest[:12]


def _fresh_nonce() -> str:
    """A per-context nonce namespacing identity fingerprints.

    Identity fingerprints used to be ``f"v{version}"`` — unique only
    within one context's store clock.  Two contexts (two forks of the
    same prefix, or two pool workers whose clocks advance in lockstep)
    could therefore mint the *same* identity fingerprint for different
    artifacts, which is fatal the moment fingerprints escape their
    context and become cache keys.  The nonce makes an identity
    fingerprint unique to the context instance that minted it.
    """
    return uuid.uuid4().hex[:10]


def _fingerprint(value: Any, version: int, nonce: str = "") -> str:
    """A short content fingerprint for content-addressable values; an
    identity fingerprint (tied to the store version and the context
    nonce) for everything else."""
    digest = content_fingerprint(value)
    if digest is not None:
        return digest
    return f"v{version}.{nonce}" if nonce else f"v{version}"


@dataclass(frozen=True)
class Artifact:
    """One stored artifact: value plus versioning metadata."""

    key: str
    value: Any
    version: int
    fingerprint: str

    @property
    def content_addressed(self) -> bool:
        return not self.fingerprint.startswith("v")


class PlanContext:
    """Typed artifact store threaded through the pipeline.

    Artifacts are immutable records: ``put`` always creates a new
    :class:`Artifact` with a fresh version from the context clock.  The
    trace is a list of structured per-pass event dicts, and the ledger
    records the input signature each pass last ran under — the basis of
    the pipeline's reuse decision.
    """

    def __init__(self) -> None:
        self._artifacts: dict[str, Artifact] = {}
        self._clock = 0
        # Namespaces this context's identity fingerprints: forks and
        # unpickled copies get their own, so "v3" minted here can never
        # collide with "v3" minted by a sibling lineage (see
        # :func:`_fresh_nonce`).
        self._nonce = _fresh_nonce()
        # pass name -> {required key -> (version, fingerprint) at last run}
        self._ledger: dict[str, dict[str, tuple[int, str]]] = {}
        self.trace: list[dict] = []
        self._current_event: dict | None = None

    # -- artifact access ---------------------------------------------------

    def put(
        self, key: str, value: Any, fingerprint: Optional[str] = None
    ) -> Artifact:
        """Store ``value`` under ``key``.

        ``fingerprint`` lets a caller that already *knows* the content
        fingerprint (the delta engine carrying a copied artifact whose
        base ledger entry is content-addressed) skip recomputing it.
        The caller owns the claim that the value's content matches.
        """
        self._clock += 1
        art = Artifact(
            key,
            value,
            self._clock,
            fingerprint
            if fingerprint is not None
            else _fingerprint(value, self._clock, self._nonce),
        )
        self._artifacts[key] = art
        return art

    def get(self, key: str) -> Any:
        try:
            return self._artifacts[key].value
        except KeyError:
            raise MissingArtifactError(
                key, available=self._artifacts
            ) from None

    def artifact(self, key: str) -> Artifact:
        if key not in self._artifacts:
            raise MissingArtifactError(key, available=self._artifacts)
        return self._artifacts[key]

    def has(self, key: str) -> bool:
        return key in self._artifacts

    def keys(self) -> list[str]:
        return sorted(self._artifacts)

    def __contains__(self, key: str) -> bool:
        return key in self._artifacts

    # -- trace annotation --------------------------------------------------

    def annotate(self, **extras: Any) -> None:
        """Attach extra fields (e.g. fixpoint rounds) to the trace event
        of the pass currently running; no-op outside a pass."""
        if self._current_event is not None:
            self._current_event.update(extras)
        obs.annotate(**extras)  # mirrored onto the active span, if tracing

    # -- prefix reuse ------------------------------------------------------

    def fork(self) -> "PlanContext":
        """A child context sharing every solved artifact.

        The child sees the parent's artifacts and run ledger (so
        unchanged passes are reused with their object identity intact)
        but has its own trace and an independent future: ``put`` on the
        child never mutates the parent.
        """
        child = PlanContext()
        child._artifacts = dict(self._artifacts)
        child._clock = self._clock
        child._ledger = {name: dict(sig) for name, sig in self._ledger.items()}
        return child

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_current_event"] = None  # never ship a live event handle
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # An unpickled copy is a new lineage: its future puts must not
        # mint the same identity fingerprints as the original's (both
        # clocks continue from the same value in different processes).
        self._nonce = _fresh_nonce()

    def __repr__(self) -> str:
        return f"<PlanContext {len(self._artifacts)} artifacts: {', '.join(self.keys())}>"


class Pass:
    """One named pipeline stage.

    Subclasses set ``name``, ``requires`` and ``provides`` (artifact key
    tuples) and implement :meth:`run`, reading inputs with ``ctx.get``
    and storing every declared output with ``ctx.put``.  A pass must be
    deterministic in its declared inputs — that is what makes the
    pipeline's reuse decision sound.
    """

    name: str = "pass"
    requires: tuple[str, ...] = ()
    provides: tuple[str, ...] = ()

    def run(self, ctx: PlanContext) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name}: "
            f"{', '.join(self.requires) or '∅'} -> {', '.join(self.provides)}>"
        )


class FunctionPass(Pass):
    """A pass wrapping a plain callable ``fn(ctx)`` — the compact way to
    register a stage (used heavily by the tests)."""

    def __init__(
        self,
        name: str,
        requires: Sequence[str],
        provides: Sequence[str],
        fn: Callable[[PlanContext], None],
    ) -> None:
        self.name = name
        self.requires = tuple(requires)
        self.provides = tuple(provides)
        self._fn = fn

    def run(self, ctx: PlanContext) -> None:
        self._fn(ctx)


class FixpointPass(Pass):
    """A pass that iterates a step function to quiescence.

    The replication ↔ mobile-offset loop of Section 6 is the motivating
    instance: :meth:`step` advances one round and reports convergence;
    the driver loop caps rounds at :meth:`max_rounds` (the paper's
    quiescence loops are all iteration-capped, so hitting the cap is a
    valid, terminating outcome, recorded as ``converged=False`` in the
    trace).
    """

    def max_rounds(self, ctx: PlanContext) -> int:
        return 8

    def init(self, ctx: PlanContext) -> Any:
        return None

    def step(
        self, ctx: PlanContext, state: Any, rounds: int
    ) -> tuple[Any, bool]:  # pragma: no cover - interface
        raise NotImplementedError

    def finish(self, ctx: PlanContext, state: Any, rounds: int) -> None:
        """Store the converged artifacts; default expects step to have."""

    def run(self, ctx: PlanContext) -> None:
        state = self.init(ctx)
        cap = max(1, self.max_rounds(ctx))
        rounds = 0
        converged = False
        while rounds < cap and not converged:
            rounds += 1
            state, converged = self.step(ctx, state, rounds)
        self.finish(ctx, state, rounds)
        ctx.annotate(rounds=rounds, converged=converged)


@dataclass
class PassStats:
    """Aggregate per-pass accounting across every context a pipeline ran."""

    runs: int = 0
    reuses: int = 0
    seconds: float = 0.0

    def as_dict(self) -> dict:
        return {"runs": self.runs, "reuses": self.reuses, "seconds": self.seconds}


class Pipeline:
    """Dependency-resolving, instrumented driver over registered passes.

    Construction validates the pass graph (unique providers, no cycles)
    and fixes a topological execution order.  :meth:`run` executes the
    subset of passes needed for ``goal`` against a context, skipping any
    pass whose outputs are already present and whose recorded input
    signature still matches — version *or* content fingerprint — so
    forked contexts re-execute only what actually changed.
    """

    def __init__(self, passes: Sequence[Pass] | None = None) -> None:
        if passes is None:
            from .registry import default_passes

            passes = default_passes()
        self.passes: list[Pass] = self._order(list(passes))
        self.stats: dict[str, PassStats] = {
            p.name: PassStats() for p in self.passes
        }

    # -- graph validation / ordering ---------------------------------------

    @staticmethod
    def _order(passes: list[Pass]) -> list[Pass]:
        provider: dict[str, Pass] = {}
        for p in passes:
            for key in p.provides:
                if key in provider:
                    raise PipelineError(
                        f"artifact {key!r} provided by both "
                        f"{provider[key].name!r} and {p.name!r}"
                    )
                provider[key] = p
        # Kahn's algorithm, stable in registration order.
        index = {id(p): i for i, p in enumerate(passes)}
        deps: dict[int, set[int]] = {
            id(p): {
                id(provider[r]) for r in p.requires if r in provider
            } - {id(p)}
            for p in passes
        }
        ordered: list[Pass] = []
        remaining = list(passes)
        done: set[int] = set()
        while remaining:
            ready = [p for p in remaining if deps[id(p)] <= done]
            if not ready:
                cyc = ", ".join(p.name for p in remaining)
                raise PipelineError(f"pass dependency cycle among: {cyc}")
            ready.sort(key=lambda p: index[id(p)])
            nxt = ready[0]
            ordered.append(nxt)
            done.add(id(nxt))
            remaining.remove(nxt)
        return ordered

    @property
    def provider_of(self) -> dict[str, Pass]:
        return {key: p for p in self.passes for key in p.provides}

    # -- goal selection ----------------------------------------------------

    def select(self, goal: str | Sequence[str] | None = None) -> list[Pass]:
        """The passes needed (transitively) to produce ``goal``.

        ``None`` selects every registered pass.  Unknown goals raise a
        :class:`MissingArtifactError` naming what *is* producible.
        """
        if goal is None:
            return list(self.passes)
        goals = [goal] if isinstance(goal, str) else list(goal)
        provider = self.provider_of
        for g in goals:
            if g not in provider:
                raise MissingArtifactError(g, available=provider, goal=True)
        needed: set[str] = set(goals)
        chosen: list[Pass] = []
        for p in reversed(self.passes):
            if needed & set(p.provides):
                chosen.append(p)
                needed |= set(p.requires)
        return list(reversed(chosen))

    # -- execution ---------------------------------------------------------

    def run(
        self, ctx: PlanContext, goal: str | Sequence[str] | None = None
    ) -> PlanContext:
        provider = self.provider_of
        for p in self.select(goal):
            for req in p.requires:
                if not ctx.has(req):
                    prov = provider.get(req)
                    raise MissingArtifactError(
                        req,
                        requester=p.name,
                        provider=prov.name if prov else None,
                        available=ctx.keys(),
                    )
            signature = {
                req: (ctx.artifact(req).version, ctx.artifact(req).fingerprint)
                for req in p.requires
            }
            if self._reusable(ctx, p, signature):
                if p.name not in ctx._ledger:
                    # Externally supplied outputs are honored, but pinned
                    # to the inputs current *now*: if e.g. the program is
                    # later replaced, a supplied TypeInfo goes stale and
                    # the pass re-runs instead of serving stale artifacts.
                    ctx._ledger[p.name] = signature
                self.stats[p.name].reuses += 1
                obs.instant(f"pass:{p.name}", event="reuse")
                ctx.trace.append(
                    {
                        "pass": p.name,
                        "event": "reuse",
                        "seconds": 0.0,
                        "provides": {
                            key: ctx.artifact(key).fingerprint
                            for key in p.provides
                        },
                    }
                )
                continue
            event: dict = {
                "pass": p.name,
                "event": "run",
                "requires": {req: sig[1] for req, sig in signature.items()},
            }
            ctx._current_event = event
            before = cachestats.snapshot()
            t0 = time.perf_counter()
            try:
                # The span subsumes the trace event when tracing is on:
                # same name, wall time, and cache deltas, but as a node
                # in the hierarchical trace (nested under whatever span
                # the caller — CLI root, batch task — has open).
                with obs.span(f"pass:{p.name}", kind="pass"):
                    p.run(ctx)
            finally:
                event["seconds"] = time.perf_counter() - t0
                event["cache"] = cachestats.delta(before)
                ctx._current_event = None
            missing = [key for key in p.provides if not ctx.has(key)]
            if missing:
                raise PipelineError(
                    f"pass {p.name!r} declared but did not provide: "
                    f"{', '.join(missing)}"
                )
            event["provides"] = {
                key: ctx.artifact(key).fingerprint for key in p.provides
            }
            ctx.trace.append(event)
            ctx._ledger[p.name] = signature
            st = self.stats[p.name]
            st.runs += 1
            st.seconds += event["seconds"]
        return ctx

    @staticmethod
    def _reusable(
        ctx: PlanContext, p: Pass, signature: Mapping[str, tuple[int, str]]
    ) -> bool:
        if not all(ctx.has(key) for key in p.provides):
            return False
        last = ctx._ledger.get(p.name)
        if last is None:
            # Outputs present but the pass never ran in this lineage:
            # they were supplied externally (e.g. a precomputed TypeInfo).
            # Honored — and the caller pins the current input signature
            # so a later input change invalidates them.
            return True
        if set(last) != set(signature):
            return False
        for req, (version, fp) in signature.items():
            lv, lfp = last[req]
            if version == lv:
                continue
            if not fp.startswith("v") and fp == lfp:
                continue  # re-stored but content-identical
            return False
        return True

    # -- introspection -----------------------------------------------------

    def explain(
        self,
        goal: str | Sequence[str] | None = None,
        delta: Any = None,
    ) -> str:
        """Render the pass graph the given goal would execute.

        ``delta`` (a :class:`~repro.passes.delta.DeltaReport`, or any
        object with a ``pass_status`` mapping) adds a dirty/clean column
        showing what an incremental replan actually did per pass.
        """
        chosen = self.select(goal)
        label = goal if goal is None or isinstance(goal, str) else ", ".join(goal)
        lines = ["planning pipeline" + (f" (goal: {label})" if label else "")]
        status = getattr(delta, "pass_status", None)
        for i, p in enumerate(chosen):
            kind = "fixpoint" if isinstance(p, FixpointPass) else "pass"
            req = ", ".join(p.requires) or "-"
            prov = ", ".join(p.provides)
            col = (
                f" [{status.get(p.name, 'pending'):<14s}]"
                if status is not None
                else ""
            )
            lines.append(
                f"  {i + 1}. {p.name:<22s} [{kind}]{col}  {req}  ->  {prov}"
            )
        return "\n".join(lines)

    def stats_table(self) -> str:
        lines = ["pass                     runs  reuses   seconds"]
        for p in self.passes:
            st = self.stats[p.name]
            lines.append(
                f"{p.name:<22s} {st.runs:6d}  {st.reuses:6d}  {st.seconds:8.3f}"
            )
        return "\n".join(lines)


def trace_table(trace: Sequence[Mapping], indent: str = "") -> str:
    """Human-readable rendering of a context's structured trace."""
    lines = [
        f"{indent}{'pass':<22s} {'event':<7s} {'seconds':>9s}  detail"
    ]
    for ev in trace:
        detail = []
        if "rounds" in ev:
            detail.append(
                f"rounds={ev['rounds']}"
                + ("" if ev.get("converged", True) else " (capped)")
            )
        cache = ev.get("cache") or {}
        hits = sum(h for h, _ in cache.values())
        misses = sum(m for _, m in cache.values())
        if hits or misses:
            detail.append(f"cache {hits}h/{misses}m")
        if ev.get("provides"):
            detail.append("-> " + ", ".join(ev["provides"]))
        lines.append(
            f"{indent}{ev['pass']:<22s} {ev['event']:<7s} "
            f"{ev.get('seconds', 0.0):9.4f}  {' '.join(detail)}"
        )
    return "\n".join(lines)
