"""The standard pass registry.

``default_passes()`` is the full compilation pipeline — the alignment
prefix (machine-independent), the profile bridge, and the
machine-dependent distribution/remap suffix.  Consumers that need a
subset ask the :class:`~repro.passes.core.Pipeline` for a goal
("plan", "profile", "distribution", "phase_plan") and get exactly the
passes that goal transitively requires.
"""

from __future__ import annotations

from .align_passes import (
    AssemblePass,
    AxisStridePass,
    BuildADGPass,
    ReplicationFixpointPass,
    TypecheckPass,
)
from .core import Pass
from .distrib_passes import (
    CommProfilePass,
    DistributePass,
    PhaseProfilesPass,
    PhaseRemapPass,
)

def alignment_passes() -> list[Pass]:
    """The paper's alignment phases (all machine-independent)."""
    return [
        TypecheckPass(),
        BuildADGPass(),
        AxisStridePass(),
        ReplicationFixpointPass(),
        AssemblePass(),
    ]


def default_passes() -> list[Pass]:
    """The complete registered pipeline, in dependency order."""
    return alignment_passes() + [
        CommProfilePass(),
        DistributePass(),
        PhaseProfilesPass(),
        PhaseRemapPass(),
    ]
