"""The machine-dependent pipeline suffix: profiling, distribution, remaps.

:class:`CommProfilePass` is the last machine-*independent* stage — the
compiled :class:`~repro.distrib.costmodel.CommProfile` holds template
coordinates, not processor assignments, so one profile prices any
machine.  Everything downstream depends on the ``machine`` artifact
(:class:`MachineSpec`); replacing only that artifact on a forked
context re-executes exactly these passes, which is what makes topology
and processor-count sweeps cheap.

The machine crosses process boundaries as a *spec string* (the
:mod:`repro.topology` convention), so a :class:`MachineSpec` — like
every other artifact on the context — pickles cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..distrib.costmodel import build_profile
from ..distrib.search import plan_distribution
from .core import Pass, PlanContext


@dataclass(frozen=True)
class MachineSpec:
    """The target machine as one frozen artifact.

    ``nprocs`` may be ``None`` when a finite topology implies it;
    ``topology`` is either a spec string (``"torus:4x4"``, ... — the
    picklable, content-fingerprintable form every cross-process caller
    uses) or a live :class:`~repro.topology.Topology` object (honored
    as-is, so custom implementations outside the spec registry keep
    working in-process; ``None`` is the paper's unbounded L1 grid).
    ``options`` forwards planner keywords (``block_sizes``,
    ``exhaustive_limit``, ``seed``, ``restarts``) as a sorted item
    tuple.
    """

    nprocs: Optional[int] = None
    topology: Any = None  # None | spec str | Topology object
    options: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def of(
        cls,
        nprocs: Optional[int] = None,
        topology: Any = None,
        **options: Any,
    ) -> "MachineSpec":
        return cls(nprocs, topology, tuple(sorted(options.items())))

    def topology_object(self):
        if self.topology is None or not isinstance(self.topology, str):
            return self.topology  # None, or a live Topology: as-is
        from ..topology import parse_topology

        return parse_topology(self.topology)

    def resolved_nprocs(self, topo=None) -> int:
        """The processor count, taking it from a finite topology if the
        spec leaves it implicit."""
        topo = topo if topo is not None else self.topology_object()
        if self.nprocs is not None:
            return self.nprocs
        if topo is not None and topo.shape:
            return topo.nprocs
        raise ValueError(
            f"machine {self} fixes no processor count: give nprocs or a "
            "finite topology"
        )

    @property
    def options_dict(self) -> dict[str, Any]:
        return dict(self.options)


class CommProfilePass(Pass):
    name = "comm-profile"
    requires = ("adg", "alignments")
    provides = ("profile",)

    def run(self, ctx: PlanContext) -> None:
        ctx.put("profile", build_profile(ctx.get("adg"), ctx.get("alignments")))


class DistributePass(Pass):
    """The program-level distribution search (the paper's deferred phase
    2): grid factorization × per-axis HPF scheme, exact per-axis DP with
    a local-search fallback, priced on the machine's interconnect."""

    name = "distribute"
    requires = ("profile", "machine")
    provides = ("distribution",)

    def run(self, ctx: PlanContext) -> None:
        machine: MachineSpec = ctx.get("machine")
        topo = machine.topology_object()
        ctx.put(
            "distribution",
            plan_distribution(
                ctx.get("profile"),
                machine.resolved_nprocs(topo),
                topology=topo,
                **machine.options_dict,
            ),
        )


class PhaseProfilesPass(Pass):
    """Split the program into phases (one per top-level statement), align
    and profile each through its own pipeline prefix — machine-independent,
    so a machine sweep re-prices phases without re-aligning them."""

    name = "phase-profiles"
    requires = ("program", "align_options")
    provides = ("phase_profiles",)

    def run(self, ctx: PlanContext) -> None:
        from ..distrib.remap import split_phases
        from .core import Pipeline
        from .registry import alignment_passes

        inner = Pipeline(alignment_passes() + [CommProfilePass()])
        profiles = []
        for sub in split_phases(ctx.get("program")):
            sub_ctx = PlanContext()
            sub_ctx.put("program", sub)
            sub_ctx.put("align_options", ctx.get("align_options"))
            inner.run(sub_ctx, goal="profile")
            profiles.append((sub.name, sub_ctx.get("profile")))
        ctx.put("phase_profiles", profiles)


class PhaseRemapPass(Pass):
    """The phase-chain DP with costed remap edges (distrib.remap)."""

    name = "phase-remap"
    requires = ("phase_profiles", "machine", "phase_options")
    provides = ("phase_plan",)

    def run(self, ctx: PlanContext) -> None:
        from ..distrib.remap import plan_phase_sequence

        machine: MachineSpec = ctx.get("machine")
        topo = machine.topology_object()
        opts = dict(ctx.get("phase_options"))
        k = opts.pop("k", 4)
        ctx.put(
            "phase_plan",
            plan_phase_sequence(
                ctx.get("phase_profiles"),
                machine.resolved_nprocs(topo),
                k=k,
                topology=topo,
                **opts,
            ),
        )
