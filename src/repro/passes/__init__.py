"""Staged planning pipeline: a pass manager over the paper's phases.

The phases that used to be hardwired in ``align_program`` — ADG build,
axis/stride labeling, the replication ↔ mobile-offset fixpoint,
assembly, and the deferred distribution phase — are registered here as
:class:`Pass` instances with explicit ``requires``/``provides``
artifact contracts.  A :class:`Pipeline` resolves dependencies, runs
only what a goal needs, traces and times every pass, and reuses
artifacts whose inputs are unchanged, so machine sweeps re-execute only
the machine-dependent suffix against a shared aligned prefix::

    from repro.passes import MachineSpec, Pipeline, PlanContext, AlignOptions

    ctx = PlanContext()
    ctx.put("program", program)
    ctx.put("align_options", AlignOptions.of())
    pipe = Pipeline()
    pipe.run(ctx, goal="profile")            # machine-independent prefix
    for spec in ("torus:4x4", "ring:16", "hypercube:16"):
        sub = ctx.fork()                     # shares the solved prefix
        sub.put("machine", MachineSpec.of(topology=spec))
        pipe.run(sub, goal="distribution")   # suffix only: prefix reused

``repro.align.align_program`` and ``align_and_distribute`` remain the
stable one-call wrappers over exactly this pipeline.
"""

from .align_passes import (
    AlignOptions,
    AssemblePass,
    AxisStridePass,
    BuildADGPass,
    ReplicationFixpointPass,
    TypecheckPass,
)
from .core import (
    Artifact,
    FixpointPass,
    FunctionPass,
    MissingArtifactError,
    Pass,
    PassStats,
    Pipeline,
    PipelineError,
    PlanContext,
    content_fingerprint,
    trace_table,
)
from .delta import (
    DeltaReport,
    ProgramDiff,
    diff_programs,
    dirty_region,
    replan,
    statement_key,
)
from .distrib_passes import (
    CommProfilePass,
    DistributePass,
    MachineSpec,
    PhaseProfilesPass,
    PhaseRemapPass,
)
from .registry import alignment_passes, default_passes

__all__ = [
    "AlignOptions",
    "Artifact",
    "AssemblePass",
    "AxisStridePass",
    "BuildADGPass",
    "CommProfilePass",
    "DeltaReport",
    "DistributePass",
    "FixpointPass",
    "FunctionPass",
    "MachineSpec",
    "MissingArtifactError",
    "Pass",
    "PassStats",
    "PhaseProfilesPass",
    "PhaseRemapPass",
    "Pipeline",
    "PipelineError",
    "PlanContext",
    "ProgramDiff",
    "ReplicationFixpointPass",
    "TypecheckPass",
    "alignment_passes",
    "content_fingerprint",
    "default_passes",
    "diff_programs",
    "dirty_region",
    "replan",
    "statement_key",
    "trace_table",
]
