"""Command-line driver: align a program and print the plan.

Usage::

    python -m repro FILE [--algorithm fixed|unrolling|...] [--m 3]
                         [--no-replication] [--static] [--dot OUT.dot]
                         [--measure identity|block|cyclic] [--procs N,N]
                         [--distribute P] [--phases] [--topology SPEC]
                         [--replan-from BASE]
                         [--trace-passes] [--no-vectorize]
                         [--trace-out OUT.json] [--metrics]
                         [--prom-out OUT.prom]
    python -m repro --batch <dir|count> [--jobs J] [--serial]
                         [--batch-seed S] [--batch-json OUT.json]
                         [--distribute P] [--topology SPEC]
                         [--trace-out OUT.json] [--metrics]
                         [--prom-out OUT.prom]
    python -m repro --explain [--distribute P] [--phases]

Reads a program in the Fortran-90-like surface syntax, runs the full
alignment pipeline, and prints the report; optionally renders the ADG,
measures the plan on the machine simulator, or — the paper's deferred
second phase — plans a distribution automatically for P processors
(``--distribute``), per program phase with costed remaps (``--phases``).

``--topology`` selects the machine interconnect pricing every hop
(``grid:4x4``, ``torus:4x4``, ``ring:8``, ``hypercube:16``,
``hier:(grid:2x2)/(grid:4x4)@8``; default: the paper's open grid).  A
finite topology also implies the processor count, so ``--distribute``
may be omitted; different machines can and do pick different
distributions for the same program.

``--batch`` switches to the batched planning engine: the argument is
either a directory of program sources (planned file by file) or an
integer N (a generated N-program corpus from
:mod:`repro.lang.generate`); programs are planned concurrently over a
process pool and the aggregate report — throughput, failures, cache hit
rates, per-pass timings — is printed, optionally dumped as JSON.

``--replan-from BASE`` demonstrates incremental re-planning: BASE is
planned from scratch, then FILE is treated as an edit of it and
re-planned through the delta engine (:mod:`repro.passes.delta`) —
unchanged alignment artifacts carry over, and the printed delta report
shows the statement diff, the dirty ADG region, and which passes ran
versus reused per pass (the same dirty/clean column ``--explain``
shows).  The incremental plan is identical to a from-scratch plan of
FILE; only the work to get there shrinks.

Every plan is produced by the staged pass pipeline
(:mod:`repro.passes`).  ``--explain`` prints the pass graph the chosen
flags would execute and exits; ``--trace-passes`` appends the per-pass
trace (wall time, fixpoint rounds, cache-counter deltas) to a normal
run's report.

``--trace-out OUT.json`` records the run through :mod:`repro.obs` —
hierarchical spans over every pipeline pass, distribution search, and
simulator call — and writes a Chrome trace-event file loadable in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``; an ASCII
flame summary is printed too.  With ``--batch``, every worker records
its tasks and the per-process traces are merged into one file.
``--metrics`` prints the typed metric registry, cache hit counters
included; ``--prom-out OUT.prom`` writes the same registry as
Prometheus text exposition (validated in CI by
``python -m repro.obs.prom --check``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from ._io import atomic_write_json
from .adg import to_dot
from .align import ALGORITHMS
from .lang import parse
from .machine import measure_plan


def _run_batch(args, align_kw: dict) -> int:
    from .batch import PlanRequest, plan_many
    from .lang.generate import generate_corpus

    if os.path.isdir(args.batch):
        names = sorted(
            f
            for f in os.listdir(args.batch)
            if os.path.isfile(os.path.join(args.batch, f))
        )
        if not names:
            print(f"--batch: no program files in {args.batch}", file=sys.stderr)
            return 1
        # errors="replace": an unreadable (non-UTF-8) file becomes a
        # parse failure diagnosed in the report, not a CLI traceback.
        from pathlib import Path

        corpus = [
            PlanRequest(
                name,
                Path(args.batch, name).read_text(
                    encoding="utf-8", errors="replace"
                ),
            )
            for name in names
        ]
    else:
        try:
            count = int(args.batch)
        except ValueError:
            print(
                f"--batch: {args.batch!r} is neither a directory nor a count",
                file=sys.stderr,
            )
            return 1
        if count < 1:
            print("--batch: corpus count must be >= 1", file=sys.stderr)
            return 1
        corpus = generate_corpus(count, seed=args.batch_seed)
    # Only a set flag reaches the planner: the default machine spec must
    # stay byte-identical (specs feed artifact fingerprints).
    distrib_options = {"vectorize": False} if args.no_vectorize else None
    report = plan_many(
        corpus,
        nprocs=args.distribute,
        jobs=args.jobs,
        serial=args.serial,
        align_kw=align_kw,
        distrib_options=distrib_options,
        verify=True,
        topology=args.topology,
        trace=args.trace_out is not None,
    )
    print(report.render())
    if args.batch_json:
        # Atomic (temp file + os.replace): a crash mid-write must never
        # leave a truncated JSON where CI expects a parseable report.
        atomic_write_json(args.batch_json, report.to_json())
        print(f"batch report written to {args.batch_json}")
    if args.trace_out:
        from .obs import write_chrome_trace

        merged = report.merged_trace()
        if merged is not None:
            write_chrome_trace(args.trace_out, merged)
            print(f"trace written to {args.trace_out}")
    if args.metrics:
        from .obs import registry

        print(registry().render())
    if args.prom_out:
        _write_prom(args.prom_out)
    unverified = any(r.verified is False for r in report.results)
    return 0 if not report.failures and not unverified else 1


def _write_prom(path: str) -> None:
    """Write the registry as Prometheus exposition (atomic: a crash
    must not leave a truncated scrape file where CI validates one)."""
    from ._io import atomic_write_text
    from .obs import render_prometheus

    atomic_write_text(path, render_prometheus())
    print(f"prometheus exposition written to {path}")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro",
        description="Mobile and replicated alignment analysis (SC'93)",
    )
    ap.add_argument(
        "file", nargs="?", help="program source, or '-' for stdin"
    )
    ap.add_argument(
        "--algorithm",
        default="fixed",
        choices=sorted(ALGORITHMS),
        help="mobile-offset algorithm (Section 4.2)",
    )
    ap.add_argument("--m", type=int, default=3, help="subranges for fixed partitioning")
    ap.add_argument(
        "--no-replication",
        action="store_true",
        help="apply only program-forced replication labels",
    )
    ap.add_argument(
        "--static", action="store_true", help="best static alignment baseline"
    )
    ap.add_argument("--dot", metavar="OUT", help="write the ADG as Graphviz dot")
    ap.add_argument(
        "--measure",
        choices=["identity", "block", "cyclic", "block-cyclic"],
        help="measure traffic on the machine simulator",
    )
    ap.add_argument(
        "--procs",
        default="4",
        help="comma-separated processor grid for --measure (default 4 per axis)",
    )
    ap.add_argument(
        "--distribute",
        type=int,
        metavar="P",
        help="automatically plan a distribution for P processors",
    )
    ap.add_argument(
        "--topology",
        metavar="SPEC",
        help="machine interconnect pricing hops: grid:RxC, torus:RxC, "
        "ring:P, hypercube:P, hier:(outer)/(inner)@cost "
        "(default: the paper's open grid)",
    )
    ap.add_argument(
        "--phases",
        action="store_true",
        help="with --distribute: plan per program phase with costed remaps",
    )
    ap.add_argument(
        "--no-vectorize",
        action="store_true",
        help="price candidates through the scalar per-record oracle "
        "instead of the NumPy front-pricing kernels (same plans, slower; "
        "for differential debugging)",
    )
    ap.add_argument(
        "--trace-passes",
        action="store_true",
        help="print the staged pipeline's per-pass trace (time, fixpoint "
        "rounds, cache deltas) after the report",
    )
    ap.add_argument(
        "--trace-out",
        metavar="OUT",
        help="record a hierarchical span trace of the run and write it "
        "as Chrome trace-event JSON (open in Perfetto / chrome://tracing); "
        "with --batch, per-worker traces are merged into one file",
    )
    ap.add_argument(
        "--metrics",
        action="store_true",
        help="print the metrics registry (counters, gauges, histograms, "
        "cache hit counters) after the run",
    )
    ap.add_argument(
        "--prom-out",
        metavar="OUT",
        help="write the post-run metric registry as Prometheus text "
        "exposition (validate with python -m repro.obs.prom --check)",
    )
    ap.add_argument(
        "--replan-from",
        metavar="BASE",
        help="incremental mode: plan BASE first, then re-plan FILE as an "
        "edit of it — unchanged alignment artifacts carry over and the "
        "delta report (dirty region, per-pass reuse) is printed",
    )
    ap.add_argument(
        "--explain",
        action="store_true",
        help="print the pass graph the chosen flags would run, then exit",
    )
    ap.add_argument(
        "--batch",
        metavar="DIR|N",
        help="batch mode: plan every program in a directory, or a "
        "generated corpus of N programs",
    )
    ap.add_argument(
        "--jobs",
        type=int,
        help="worker processes for --batch (default: CPU count)",
    )
    ap.add_argument(
        "--serial",
        action="store_true",
        help="with --batch: force the deterministic serial fallback",
    )
    ap.add_argument(
        "--batch-seed",
        type=int,
        default=0,
        help="seed for the generated corpus (default 0)",
    )
    ap.add_argument(
        "--batch-json",
        metavar="OUT",
        help="with --batch: write the aggregate report as JSON",
    )
    args = ap.parse_args(argv)
    topology = None
    if args.topology is not None:
        from .topology import parse_topology

        try:
            topology = parse_topology(args.topology)
        except ValueError as exc:
            ap.error(f"--topology: {exc}")
        if topology.shape:
            if (
                args.distribute is not None
                and args.distribute != topology.nprocs
            ):
                ap.error(
                    f"--topology {topology.spec()} is a "
                    f"{topology.nprocs}-processor machine but --distribute "
                    f"asked for {args.distribute}"
                )
            if args.distribute is None and args.measure is None:
                # A finite machine implies the processor count.
                args.distribute = topology.nprocs
    if args.distribute is not None and args.distribute < 1:
        ap.error("--distribute needs at least 1 processor")
    if args.phases and args.distribute is None and not args.explain:
        ap.error("--phases requires --distribute")
    if args.explain and args.batch is not None:
        ap.error("--explain cannot be combined with --batch")
    if args.explain:
        from .passes import Pipeline

        if args.phases:
            goal: tuple[str, ...] = ("plan", "distribution", "phase_plan")
        elif args.distribute is not None or args.topology is not None:
            goal = ("plan", "distribution")
        else:
            goal = ("plan",)
        print(Pipeline().explain(goal=goal))
        return 0
    if args.batch is None and args.file is None:
        ap.error("a program file is required unless --batch is given")
    if args.batch is not None:
        for flag, present in [
            ("a program file", args.file is not None),
            ("--measure", args.measure is not None),
            ("--dot", args.dot is not None),
            ("--phases", args.phases),
            ("--trace-passes", args.trace_passes),
            ("--replan-from", args.replan_from is not None),
        ]:
            if present:
                ap.error(f"{flag} cannot be combined with --batch")
    else:
        for flag, present in [
            ("--jobs", args.jobs is not None),
            ("--serial", args.serial),
            ("--batch-json", args.batch_json is not None),
        ]:
            if present:
                ap.error(f"{flag} requires --batch")
    if args.replan_from is not None and args.phases:
        ap.error("--replan-from cannot be combined with --phases")

    kw = {}
    if args.algorithm == "fixed":
        kw["m"] = args.m
    if args.batch is not None:
        align_kw = dict(
            algorithm=args.algorithm,
            replication=not args.no_replication,
            mobile=not args.static,
            **kw,
        )
        return _run_batch(args, align_kw)

    # Single-program mode drives the staged pipeline explicitly: one
    # context, goals chosen by the flags, every artifact (plan, profile,
    # distribution, phase plan) read back off the context.
    from .align.pipeline import plan_context
    from .passes import MachineSpec, Pipeline, trace_table

    def run_single():
        source = (
            sys.stdin.read() if args.file == "-" else open(args.file).read()
        )
        program = parse(source, name=args.file)
        pipeline = Pipeline()
        align_kw = dict(
            algorithm=args.algorithm,
            replication=not args.no_replication,
            mobile=not args.static,
            **kw,
        )
        machine = None
        goals = ["plan"]
        if args.distribute is not None:
            machine_kw = {"vectorize": False} if args.no_vectorize else {}
            machine = MachineSpec.of(
                args.distribute, topology=args.topology, **machine_kw
            )
            goals.append("distribution")
        if args.replan_from is not None:
            # Incremental mode: solve the base program fully, then
            # re-enter the pipeline for FILE as an edit of it.
            from .passes import replan

            base_program = parse(
                open(args.replan_from).read(), name=args.replan_from
            )
            base_ctx = plan_context(base_program, **align_kw)
            if machine is not None:
                base_ctx.put("machine", machine)
            pipeline.run(base_ctx, goal=tuple(goals))
            ctx, dreport = replan(
                base_ctx,
                program=program,
                machine=machine,
                goal=tuple(goals),
                pipeline=pipeline,
            )
            print(dreport.render())
            print(pipeline.explain(goal=tuple(goals), delta=dreport))
            print()
        else:
            ctx = plan_context(program, **align_kw)
            if machine is not None:
                ctx.put("machine", machine)
            if args.phases:
                ctx.put("phase_options", {})
                goals.append("phase_plan")
            pipeline.run(ctx, goal=tuple(goals))
        plan = ctx.get("plan")
        print(plan.report())

        if args.dot:
            with open(args.dot, "w") as f:
                f.write(to_dot(plan.adg))
            print(f"ADG written to {args.dot}")

        if topology is not None:
            print(f"machine model: {topology.describe()}")

        if args.measure:
            procs = tuple(int(x) for x in args.procs.split(","))
            if len(procs) == 1:
                procs = procs * plan.adg.template_rank
            traffic = measure_plan(
                plan,
                scheme=args.measure,
                processors=None if args.measure == "identity" else procs,
                topology=topology,
            )
            print(f"machine ({args.measure}): {traffic.summary()}")

        if args.distribute is not None:
            from .distrib import naive_costs
            from .machine import measure_traffic

            profile = ctx.get("profile")
            dplan = ctx.get("distribution")
            print(dplan.render())
            naive = naive_costs(
                profile,
                args.distribute,
                topology,
                vectorize=not args.no_vectorize,
            )
            for name, cost in sorted(naive.items()):
                print(
                    f"  naive {name:>9s}: hops={cost.hops} moved={cost.moved}"
                )
            traffic = measure_traffic(
                plan.adg,
                plan.alignments,
                dplan.to_distribution(),
                topology=topology,
            )
            print(f"machine (planned): {traffic.summary()}")
            if args.phases:
                print(ctx.get("phase_plan").render())
        return ctx

    if args.trace_out:
        # The root span wraps the whole run (read, parse, plan, measure,
        # report), so its child tree accounts for essentially all of the
        # measured wall time — what the Perfetto view hangs off of.
        from .obs import spans as obs_spans

        with obs_spans.recording(label=str(args.file)) as rec:
            with obs_spans.span("repro", file=str(args.file)):
                ctx = run_single()
        from .obs import flame, write_chrome_trace

        write_chrome_trace(args.trace_out, rec)
        print(f"\ntrace written to {args.trace_out} "
              f"({len(rec.span_names())} span names)")
        print(flame(rec))
    else:
        ctx = run_single()

    if args.metrics:
        from .obs import registry

        print(registry().render())

    if args.prom_out:
        _write_prom(args.prom_out)

    if args.trace_passes:
        print("\npass trace:")
        print(trace_table(ctx.trace, indent="  "))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
