"""Command-line driver: align a program and print the plan.

Usage::

    python -m repro FILE [--algorithm fixed|unrolling|...] [--m 3]
                         [--no-replication] [--static] [--dot OUT.dot]
                         [--measure identity|block|cyclic] [--procs N,N]
                         [--distribute P] [--phases]

Reads a program in the Fortran-90-like surface syntax, runs the full
alignment pipeline, and prints the report; optionally renders the ADG,
measures the plan on the machine simulator, or — the paper's deferred
second phase — plans a distribution automatically for P processors
(``--distribute``), per program phase with costed remaps (``--phases``).
"""

from __future__ import annotations

import argparse
import sys

from .adg import to_dot
from .align import ALGORITHMS, align_program
from .lang import parse
from .machine import measure_plan


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro",
        description="Mobile and replicated alignment analysis (SC'93)",
    )
    ap.add_argument("file", help="program source, or '-' for stdin")
    ap.add_argument(
        "--algorithm",
        default="fixed",
        choices=sorted(ALGORITHMS),
        help="mobile-offset algorithm (Section 4.2)",
    )
    ap.add_argument("--m", type=int, default=3, help="subranges for fixed partitioning")
    ap.add_argument(
        "--no-replication",
        action="store_true",
        help="apply only program-forced replication labels",
    )
    ap.add_argument(
        "--static", action="store_true", help="best static alignment baseline"
    )
    ap.add_argument("--dot", metavar="OUT", help="write the ADG as Graphviz dot")
    ap.add_argument(
        "--measure",
        choices=["identity", "block", "cyclic", "block-cyclic"],
        help="measure traffic on the machine simulator",
    )
    ap.add_argument(
        "--procs",
        default="4",
        help="comma-separated processor grid for --measure (default 4 per axis)",
    )
    ap.add_argument(
        "--distribute",
        type=int,
        metavar="P",
        help="automatically plan a distribution for P processors",
    )
    ap.add_argument(
        "--phases",
        action="store_true",
        help="with --distribute: plan per program phase with costed remaps",
    )
    args = ap.parse_args(argv)
    if args.distribute is not None and args.distribute < 1:
        ap.error("--distribute needs at least 1 processor")
    if args.phases and args.distribute is None:
        ap.error("--phases requires --distribute")

    source = sys.stdin.read() if args.file == "-" else open(args.file).read()
    program = parse(source, name=args.file)

    kw = {}
    if args.algorithm == "fixed":
        kw["m"] = args.m
    plan = align_program(
        program,
        algorithm=args.algorithm,
        replication=not args.no_replication,
        mobile=not args.static,
        **kw,
    )
    print(plan.report())

    if args.dot:
        with open(args.dot, "w") as f:
            f.write(to_dot(plan.adg))
        print(f"ADG written to {args.dot}")

    if args.measure:
        procs = tuple(int(x) for x in args.procs.split(","))
        if len(procs) == 1:
            procs = procs * plan.adg.template_rank
        traffic = measure_plan(
            plan,
            scheme=args.measure,
            processors=None if args.measure == "identity" else procs,
        )
        print(f"machine ({args.measure}): {traffic.summary()}")

    if args.distribute is not None:
        from .distrib import build_profile, naive_costs, plan_distribution
        from .machine import measure_traffic

        profile = build_profile(plan.adg, plan.alignments)
        dplan = plan_distribution(profile, args.distribute)
        print(dplan.render())
        for name, cost in sorted(naive_costs(profile, args.distribute).items()):
            print(f"  naive {name:>9s}: hops={cost.hops} moved={cost.moved}")
        traffic = measure_traffic(
            plan.adg, plan.alignments, dplan.to_distribution()
        )
        print(f"machine (planned): {traffic.summary()}")
        if args.phases:
            from .distrib import plan_program_phases

            align_kw = dict(
                algorithm=args.algorithm,
                replication=not args.no_replication,
                mobile=not args.static,
                **kw,
            )
            print(
                plan_program_phases(
                    program, args.distribute, align_kw=align_kw
                ).render()
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
