"""Interpretation of ADG node payloads as offset relations.

Given a *skeleton* (axis mapping + strides per port, produced by the
axis/stride phase of Section 3), every node kind induces linear
relations among its ports' offset functions, per template axis
(Section 2.2.2).  These relations are what the offset LP of Section 4
consumes.

Relation kinds:

* :class:`EqualShift` — ``f_q = f_p + shift`` with a known affine shift
  (sections, elementwise nodes with shift 0, ...);
* :class:`EntryEval` — ``f_q(liv = value) = f_p`` (entry/exit
  transformers);
* :class:`LoopBack` — ``f_q(liv) = f_p(liv - step)`` (loop-back
  transformers);
* axes with no relation are *free* (reduced axes, gather tables,
  spread's replication axis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..adg.graph import ADGNode, Port
from ..adg.nodes import (
    NodeKind,
    ReducePayload,
    SectionPayload,
    SpreadPayload,
    SubscriptSpec,
    TransformerPayload,
)
from ..ir.affine import AffineForm
from ..ir.symbols import LIV
from .position import Alignment


@dataclass(frozen=True)
class EqualShift:
    """``offset[q][axis] = offset[p][axis] + shift``."""

    p: Port
    q: Port
    axis: int
    shift: AffineForm


@dataclass(frozen=True)
class EntryEval:
    """``offset[q][axis] with liv := value  ==  offset[p][axis]``.

    ``q`` is the port whose space contains ``liv`` (the inside-the-loop
    port); ``p`` is outside.
    """

    p: Port
    q: Port
    axis: int
    liv: LIV
    value: int


@dataclass(frozen=True)
class LoopBack:
    """``offset[q][axis](liv) = offset[p][axis](liv - step)``."""

    p: Port
    q: Port
    axis: int
    liv: LIV
    step: int


OffsetRelation = Union[EqualShift, EntryEval, LoopBack]

Skeleton = dict[str, Alignment]  # keyed by Port.key


def _skel(skeleton: Skeleton, p: Port) -> Alignment:
    try:
        return skeleton[p.key]
    except KeyError:
        raise KeyError(f"port {p.uid} missing from skeleton") from None


def section_shifts(
    array_align: Alignment, subs: tuple[SubscriptSpec, ...]
) -> dict[int, AffineForm]:
    """Per-template-axis offset shift from an array to its section.

    For a slice ``lo::step`` on array axis ``a`` mapped to template axis
    ``tau`` with stride ``s``: the section's element j sits where the
    array's element ``lo + (j-1)*step`` sits, so

        offset_sec[tau] = offset_arr[tau] + (lo - step) * s
        stride_sec[tau] = step * s

    For a scalar subscript ``idx`` the axis collapses to the space
    position ``offset_arr[tau] + idx * s``, i.e. a shift of ``idx * s``.
    Full slices shift by 0 (lo = 1, step = 1 gives ``(1-1)*s = 0``).
    Space axes of the array pass through unchanged (shift 0).
    """
    shifts: dict[int, AffineForm] = {}
    for t in range(array_align.template_rank):
        shifts[t] = AffineForm(0)
    for a, spec in enumerate(subs):
        tau = array_align.template_axis_of(a)
        stride = array_align.axes[tau].stride
        assert stride is not None
        if spec.kind == "full":
            continue
        if spec.kind == "index":
            assert spec.index is not None
            shifts[tau] = _affine_mul(spec.index, stride)
        else:
            assert spec.lo is not None and spec.step is not None
            shifts[tau] = _affine_mul(spec.lo - spec.step, stride)
    return shifts


def _affine_mul(a: AffineForm, b: AffineForm) -> AffineForm:
    """Product of two affine forms, required to stay affine.

    Arises as ``subscript * stride``; the stride phase guarantees at most
    one factor is non-constant whenever the paper's restrictions hold.
    """
    if a.is_constant:
        return b * a.const
    if b.is_constant:
        return a * b.const
    raise ValueError(
        f"offset shift ({a})*({b}) is not affine; "
        "stride and subscript are both mobile on the same axis"
    )


def node_offset_relations(
    node: ADGNode, skeleton: Skeleton
) -> list[OffsetRelation]:
    """All offset relations induced by ``node`` under ``skeleton``."""
    kind = node.kind
    rels: list[OffsetRelation] = []

    if kind in (NodeKind.SOURCE, NodeKind.SINK):
        return rels

    if kind in (
        NodeKind.ELEMENTWISE,
        NodeKind.MERGE,
        NodeKind.FANOUT,
        NodeKind.BRANCH,
        NodeKind.TRANSPOSE,  # transpose: equal offsets on every template axis
    ):
        outs = node.outputs()
        if not outs:
            return rels
        ref = outs[0]
        t = _skel(skeleton, ref).template_rank
        for p in node.ports:
            if p is ref:
                continue
            for tau in range(t):
                rels.append(EqualShift(p, ref, tau, AffineForm(0)))
        return rels

    if kind is NodeKind.SECTION:
        payload = node.payload
        assert isinstance(payload, SectionPayload)
        arr = node.inputs()[0]
        out = node.outputs()[0]
        arr_align = _skel(skeleton, arr)
        shifts = section_shifts(arr_align, payload.subscripts)
        for tau, shift in shifts.items():
            rels.append(EqualShift(arr, out, tau, shift))
        return rels

    if kind is NodeKind.SECTION_ASSIGN:
        payload = node.payload
        assert isinstance(payload, SectionPayload)
        ports = {p.name: p for p in node.ports}
        arr = ports["array"]
        out = ports["out"]
        arr_align = _skel(skeleton, arr)
        for tau in range(arr_align.template_rank):
            rels.append(EqualShift(arr, out, tau, AffineForm(0)))
        value = ports.get("value")
        if value is not None and self_has_edge(value):
            shifts = section_shifts(arr_align, payload.subscripts)
            for tau, shift in shifts.items():
                rels.append(EqualShift(arr, value, tau, shift))
        return rels

    if kind is NodeKind.SPREAD:
        payload = node.payload
        assert isinstance(payload, SpreadPayload)
        inp = node.inputs()[0]
        out = node.outputs()[0]
        out_align = _skel(skeleton, out)
        tau_star = out_align.template_axis_of(payload.dim - 1)
        for tau in range(out_align.template_rank):
            if tau == tau_star:
                continue  # replication axis: free (input port is R there)
            rels.append(EqualShift(inp, out, tau, AffineForm(0)))
        return rels

    if kind is NodeKind.REDUCE:
        payload = node.payload
        assert isinstance(payload, ReducePayload)
        inp = node.inputs()[0]
        outs = node.outputs()
        if not outs or payload.dim is None:
            return rels  # full reduction: scalar result, nothing to relate
        out = outs[0]
        in_align = _skel(skeleton, inp)
        tau_red = in_align.template_axis_of(payload.dim - 1)
        for tau in range(in_align.template_rank):
            if tau == tau_red:
                continue  # reduced axis: free
            rels.append(EqualShift(inp, out, tau, AffineForm(0)))
        return rels

    if kind is NodeKind.GATHER:
        ports = {p.name: p for p in node.ports}
        index = ports["index"]
        out = ports["out"]
        t = _skel(skeleton, out).template_rank
        for tau in range(t):
            rels.append(EqualShift(index, out, tau, AffineForm(0)))
        return rels  # table is free: the gather is general communication

    if kind is NodeKind.TRANSFORMER:
        payload = node.payload
        assert isinstance(payload, TransformerPayload)
        inp = node.inputs()[0]
        out = node.outputs()[0]
        t = _skel(skeleton, out).template_rank
        for tau in range(t):
            if payload.kind == "entry":
                rels.append(EntryEval(inp, out, tau, payload.liv, payload.value))
            elif payload.kind == "exit":
                rels.append(EntryEval(out, inp, tau, payload.liv, payload.value))
            else:
                rels.append(LoopBack(inp, out, tau, payload.liv, payload.value))
        return rels

    raise TypeError(f"unhandled node kind {kind}")


def self_has_edge(port: Port) -> bool:
    """Whether a value port is fed by an edge (scalar fills are not)."""
    # The ADG tracks edges; a dangling 'value' port (scalar rhs broadcast)
    # has no incoming edge and therefore no alignment of its own to relate.
    # We cannot reach the ADG from the port, so approximate: dangling value
    # ports are created only for scalar fills, which the builder marks by
    # giving them no edges; relation emission for them is harmless because
    # the LP simply never references their variables elsewhere.
    return True
