"""The five mobile-offset algorithms of Section 4.2.

All five share the RLP core (:mod:`repro.align.offset_static`); they
differ only in how each edge's iteration space is partitioned into
subranges, and whether the partition is iterated:

1. **unrolling** — every iteration its own subrange; exact but the LP
   grows with the iteration count;
2. **state-space search** — one subrange, then steepest descent on the
   exact cost from the rounded solution;
3. **tracking zero crossings** — two equal subranges, then move each
   edge's boundary to its span's zero crossing and re-solve until
   quiescent (convergence not guaranteed; iteration-capped);
4. **recursive refinement** — one subrange, then split any subrange in
   which the solved span changes sign and re-solve, until clean or
   stalled;
5. **fixed partitioning** — m equal subranges (m = 3 by default); the
   paper's recommended compromise, within ``1 + 2/m**2`` of optimal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping

from ..adg.graph import ADG, ADGEdge
from ..ir.affine import AffineForm
from ..ir.itspace import IterationSpace
from ..ir.symbols import LIV
from .cost import offset_only_cost
from .offset_static import (
    OffsetLPStats,
    OffsetMap,
    OffsetSolution,
    PartitionPlan,
    ReplicationLabels,
    edge_is_offset_costed,
    solve_offsets,
)
from .position import Alignment
from .span import has_sign_change, refine_space_at_crossings

Skeleton = Mapping[str, Alignment]


@dataclass
class MobileOffsetResult:
    algorithm: str
    offsets: OffsetMap
    cost: Fraction
    lp_stats: list[OffsetLPStats] = field(default_factory=list)
    iterations: int = 1
    subranges_total: int = 0

    @property
    def lp_vars_total(self) -> int:
        return sum(s.num_vars for s in self.lp_stats)


def _plan_fixed(adg: ADG, m: int) -> PartitionPlan:
    return {e.eid: e.space.grid_partition(m) for e in adg.edges}


def _plan_unrolled(adg: ADG) -> PartitionPlan:
    plan: PartitionPlan = {}
    for e in adg.edges:
        n = max((len(t) for t in e.space.triplets), default=1)
        plan[e.eid] = e.space.grid_partition(n)
    return plan


def _count_subranges(plan: PartitionPlan) -> int:
    return sum(len(v) for v in plan.values())


def _solve_plan(
    adg: ADG,
    skeleton: Skeleton,
    plan: PartitionPlan,
    replicated: ReplicationLabels | None,
    backend: str,
    static: bool = False,
) -> OffsetSolution:
    return solve_offsets(adg, skeleton, plan, replicated, backend, static)


def _exact_cost(
    adg: ADG,
    skeleton: Skeleton,
    offsets: OffsetMap,
    replicated: ReplicationLabels | None,
) -> Fraction:
    return offset_only_cost(adg, skeleton, offsets, set(replicated or ()))


def _edge_spans(
    adg: ADG,
    skeleton: Skeleton,
    offsets: OffsetMap,
    replicated: ReplicationLabels | None,
):
    """Yield (edge, axis, span) for every costed edge/axis pair."""
    rep = set(replicated or ())
    for e in adg.edges:
        for tau in range(adg.template_rank):
            if not edge_is_offset_costed(e, skeleton, tau, rep):
                continue
            span = offsets[(e.tail.key, tau)] - offsets[(e.head.key, tau)]
            yield e, tau, span


# ---------------------------------------------------------------------------
# 5. Fixed partitioning (the paper's recommendation)
# ---------------------------------------------------------------------------


def fixed_partitioning(
    adg: ADG,
    skeleton: Skeleton,
    m: int = 3,
    replicated: ReplicationLabels | None = None,
    backend: str = "scipy",
    static: bool = False,
) -> MobileOffsetResult:
    """Partition every edge space into ``m`` equal subranges per axis and
    solve once.  Guaranteed within ``1 + 2/m**2`` of optimal."""
    plan = _plan_fixed(adg, m)
    sol = _solve_plan(adg, skeleton, plan, replicated, backend, static)
    cost = _exact_cost(adg, skeleton, sol.offsets, replicated)
    return MobileOffsetResult(
        f"fixed(m={m})", sol.offsets, cost, sol.stats, 1, _count_subranges(plan)
    )


# ---------------------------------------------------------------------------
# 1. Unrolling (exact, large LP)
# ---------------------------------------------------------------------------


def unrolling(
    adg: ADG,
    skeleton: Skeleton,
    replicated: ReplicationLabels | None = None,
    backend: str = "scipy",
    static: bool = False,
) -> MobileOffsetResult:
    """Every iteration its own subrange: the exact mobile-offset optimum
    (over affine alignments), at the price of an LP that scales with the
    iteration count."""
    plan = _plan_unrolled(adg)
    sol = _solve_plan(adg, skeleton, plan, replicated, backend, static)
    cost = _exact_cost(adg, skeleton, sol.offsets, replicated)
    return MobileOffsetResult(
        "unrolling", sol.offsets, cost, sol.stats, 1, _count_subranges(plan)
    )


# ---------------------------------------------------------------------------
# 2. State-space search
# ---------------------------------------------------------------------------


def state_space_search(
    adg: ADG,
    skeleton: Skeleton,
    replicated: ReplicationLabels | None = None,
    backend: str = "scipy",
    max_passes: int = 4,
    static: bool = False,
) -> MobileOffsetResult:
    """One-subrange RLP seed, then steepest descent on the exact cost.

    The descent perturbs each offset coefficient slot by +-1 and keeps
    the per-node constraint structure intact by re-deriving dependent
    ports — implemented here as a coordinate descent over the rounded
    solution's free slots, since node-derived slots move rigidly with
    their roots.
    """
    plan = _plan_fixed(adg, 1)
    sol = _solve_plan(adg, skeleton, plan, replicated, backend, static)
    offsets = dict(sol.offsets)
    best = _exact_cost(adg, skeleton, offsets, replicated)
    # Group ports per node: moving a node's ports together preserves all
    # intra-node relations (they are relative).
    passes = 0
    for _ in range(max_passes):
        passes += 1
        improved = False
        for n in adg.nodes:
            for tau in range(adg.template_rank):
                slots: list[LIV | None] = [None]
                for p in n.ports:
                    for liv in p.space.livs:
                        if liv not in slots:
                            slots.append(liv)
                for slot in slots:
                    for delta in (1, -1):
                        trial = dict(offsets)
                        for p in n.ports:
                            key = (p.key, tau)
                            form = trial[key]
                            if slot is None:
                                trial[key] = form + delta
                            elif slot in p.space.livs:
                                trial[key] = form + AffineForm.variable(slot, delta)
                        c = _exact_cost(adg, skeleton, trial, replicated)
                        if c < best:
                            best = c
                            offsets = trial
                            improved = True
                            break
        if not improved:
            break
    return MobileOffsetResult(
        "state-space", offsets, best, sol.stats, passes, _count_subranges(plan)
    )


# ---------------------------------------------------------------------------
# 3. Tracking zero crossings
# ---------------------------------------------------------------------------


def tracking_zero_crossings(
    adg: ADG,
    skeleton: Skeleton,
    replicated: ReplicationLabels | None = None,
    backend: str = "scipy",
    max_iter: int = 8,
    static: bool = False,
) -> MobileOffsetResult:
    """Two equal subranges per edge; then move subrange boundaries to the
    solved spans' zero crossings and re-solve until the cost stops
    improving (convergence is not guaranteed; the paper says so)."""
    plan = _plan_fixed(adg, 2)
    sol = _solve_plan(adg, skeleton, plan, replicated, backend, static)
    best_offsets = sol.offsets
    best = _exact_cost(adg, skeleton, best_offsets, replicated)
    stats = list(sol.stats)
    iters = 1
    for _ in range(max_iter - 1):
        newplan: PartitionPlan = dict(plan)
        changed = False
        for e, tau, span in _edge_spans(adg, skeleton, best_offsets, replicated):
            if span == AffineForm(0) or not has_sign_change(span, e.space):
                continue
            parts = refine_space_at_crossings(span, e.space)
            if len(parts) > 1:
                newplan[e.eid] = parts
                changed = True
        if not changed:
            break
        iters += 1
        plan = newplan
        sol = _solve_plan(adg, skeleton, plan, replicated, backend, static)
        stats.extend(sol.stats)
        c = _exact_cost(adg, skeleton, sol.offsets, replicated)
        if c < best:
            best = c
            best_offsets = sol.offsets
        else:
            break
    return MobileOffsetResult(
        "zero-crossing", best_offsets, best, stats, iters, _count_subranges(plan)
    )


# ---------------------------------------------------------------------------
# 4. Recursive refinement
# ---------------------------------------------------------------------------


def recursive_refinement(
    adg: ADG,
    skeleton: Skeleton,
    replicated: ReplicationLabels | None = None,
    backend: str = "scipy",
    max_iter: int = 8,
    static: bool = False,
) -> MobileOffsetResult:
    """One subrange; split any subrange whose solved span changes sign at
    the crossing; re-solve; repeat until clean, stalled, or capped."""
    plan: PartitionPlan = _plan_fixed(adg, 1)
    sol = _solve_plan(adg, skeleton, plan, replicated, backend, static)
    best_offsets = sol.offsets
    best = _exact_cost(adg, skeleton, best_offsets, replicated)
    stats = list(sol.stats)
    iters = 1
    for _ in range(max_iter - 1):
        newplan: PartitionPlan = {}
        changed = False
        span_by_edge: dict[tuple[int, int], AffineForm] = {}
        for e, tau, span in _edge_spans(adg, skeleton, best_offsets, replicated):
            span_by_edge[(e.eid, tau)] = span
        for e in adg.edges:
            parts = plan.get(e.eid, [e.space])
            refined: list[IterationSpace] = []
            for sub in parts:
                split = False
                for tau in range(adg.template_rank):
                    span = span_by_edge.get((e.eid, tau))
                    if span is None or span == AffineForm(0):
                        continue
                    if has_sign_change(span, sub):
                        refined.extend(refine_space_at_crossings(span, sub))
                        split = True
                        changed = True
                        break
                if not split:
                    refined.append(sub)
            newplan[e.eid] = refined
        if not changed:
            break
        iters += 1
        plan = newplan
        sol = _solve_plan(adg, skeleton, plan, replicated, backend, static)
        stats.extend(sol.stats)
        c = _exact_cost(adg, skeleton, sol.offsets, replicated)
        if c < best:
            best = c
            best_offsets = sol.offsets
        else:
            break
    return MobileOffsetResult(
        "recursive-refinement",
        best_offsets,
        best,
        stats,
        iters,
        _count_subranges(plan),
    )


ALGORITHMS = {
    "unrolling": unrolling,
    "state-space": state_space_search,
    "zero-crossing": tracking_zero_crossings,
    "recursive-refinement": recursive_refinement,
    "fixed": fixed_partitioning,
}


def solve_mobile_offsets(
    adg: ADG,
    skeleton: Skeleton,
    algorithm: str = "fixed",
    replicated: ReplicationLabels | None = None,
    backend: str = "scipy",
    **kw,
) -> MobileOffsetResult:
    """Entry point: run one of the five Section 4.2 algorithms."""
    try:
        fn = ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)}"
        ) from None
    return fn(adg, skeleton, replicated=replicated, backend=backend, **kw)
