"""Core contribution: mobile and replicated alignment analysis."""

from .position import Alignment, AxisAlignment, ReplicatedExtent
from .metric import alignment_distance, axes_strides_equal, discrete, grid
from .axis_stride import (
    AxisStrideResult,
    AxisStrideSolver,
    canonical_skeletons,
    solve_axis_stride,
)
from .constraints import (
    EntryEval,
    EqualShift,
    LoopBack,
    node_offset_relations,
    section_shifts,
)
from .offset_static import (
    OffsetLP,
    OffsetLPStats,
    OffsetSolution,
    solve_offsets,
)
from .offset_mobile import (
    ALGORITHMS,
    MobileOffsetResult,
    fixed_partitioning,
    recursive_refinement,
    solve_mobile_offsets,
    state_space_search,
    tracking_zero_crossings,
    unrolling,
)
from .replication import (
    ReplicationLabeler,
    ReplicationResult,
    label_replication,
    read_only_arrays,
    value_carrier_nodes,
)
from .span import has_sign_change, refine_space_at_crossings, span_form
from .cost import (
    AlignmentMap,
    EdgeCost,
    abs_weighted_span,
    assemble_alignments,
    cost_breakdown,
    edge_cost,
    offset_only_cost,
    total_cost,
)
from .pipeline import (
    AlignmentPlan,
    DistributionOptionsError,
    align_and_distribute,
    align_program,
    plan_context,
)

__all__ = [
    "Alignment",
    "AxisAlignment",
    "ReplicatedExtent",
    "alignment_distance",
    "axes_strides_equal",
    "discrete",
    "grid",
    "AxisStrideResult",
    "AxisStrideSolver",
    "canonical_skeletons",
    "solve_axis_stride",
    "EntryEval",
    "EqualShift",
    "LoopBack",
    "node_offset_relations",
    "section_shifts",
    "OffsetLP",
    "OffsetLPStats",
    "OffsetSolution",
    "solve_offsets",
    "ALGORITHMS",
    "MobileOffsetResult",
    "fixed_partitioning",
    "recursive_refinement",
    "solve_mobile_offsets",
    "state_space_search",
    "tracking_zero_crossings",
    "unrolling",
    "ReplicationLabeler",
    "ReplicationResult",
    "label_replication",
    "read_only_arrays",
    "value_carrier_nodes",
    "has_sign_change",
    "refine_space_at_crossings",
    "span_form",
    "AlignmentMap",
    "EdgeCost",
    "abs_weighted_span",
    "assemble_alignments",
    "cost_breakdown",
    "edge_cost",
    "offset_only_cost",
    "total_cost",
    "AlignmentPlan",
    "DistributionOptionsError",
    "align_and_distribute",
    "align_program",
    "plan_context",
]
