"""Distance metrics on positions (Section 2.3).

Two metrics, as in the paper:

* the **discrete metric** for axis and stride alignment — any change of
  axis or stride is general communication, cost 1 per element;
* the **grid (L1 / Manhattan) metric** for offset alignment — separable,
  so offsets are optimized independently per template axis.

``alignment_distance`` combines them for whole alignments, which is what
the operational cost evaluator (:mod:`repro.align.cost`) and the machine
simulator use.

The offset metric is the *default topology*'s cell distance — the
unbounded grid machine of :mod:`repro.topology`, whose per-axis metric
is exactly the paper's L1.  Alignment happens on the conceptually
infinite template, before any processor mapping, so the alignment
phases always price on that machine; finite interconnects enter once a
distribution maps cells to processors (:mod:`repro.machine`,
:mod:`repro.distrib`).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping

from ..ir.affine import AffineForm
from ..ir.symbols import LIV
from ..topology import default_topology
from .position import Alignment

# The identity machine every alignment-phase distance is measured on.
_CELL_METRIC = default_topology()
_AXIS_METRIC = _CELL_METRIC.axis_metric()


def discrete(a: object, b: object) -> int:
    """d(p, q) = 0 if p == q else 1."""
    return 0 if a == b else 1


def grid(p: tuple[Fraction, ...], q: tuple[Fraction, ...]) -> Fraction:
    """Distance between two template cells on the default topology
    (the unbounded grid — L1, per the paper)."""
    return _CELL_METRIC.distance(p, q)


def axes_strides_equal(a: Alignment, b: Alignment, env: Mapping[LIV, int]) -> bool:
    """Whether two alignments agree on axis mapping and stride *values* at
    the given iteration (mobile strides compare pointwise)."""
    if a.axis_signature() != b.axis_signature():
        return False
    for ax_a, ax_b in zip(a.axes, b.axes):
        if ax_a.is_body:
            assert ax_a.stride is not None and ax_b.stride is not None
            if ax_a.stride.evaluate(env) != ax_b.stride.evaluate(env):
                return False
    return True


def alignment_distance(
    a: Alignment,
    b: Alignment,
    env: Mapping[LIV, int],
    elements: int,
    extent_per_axis: Mapping[int, int] | None = None,
) -> Fraction:
    """Per-iteration realignment cost of moving an object of ``elements``
    elements from alignment ``a`` to ``b`` at LIV environment ``env``.

    * axis or stride mismatch: general communication — every element
      moves: cost = ``elements`` (discrete metric times data weight);
    * otherwise: grid metric on the offsets, times ``elements`` — the L1
      offset difference is the per-element move distance, identical for
      every element when strides agree;
    * an edge into a replicated target is a broadcast: cost = elements
      (times the replication degree is a storage matter, not counted —
      Section 5 counts the object size);
    * an edge out of a replicated source costs nothing on that axis (a
      copy is already wherever it needs to be).
    """
    if a.template_rank != b.template_rank:
        raise ValueError("alignments live in different templates")
    if not axes_strides_equal(a, b, env):
        return Fraction(elements)
    total = Fraction(0)
    for ax_a, ax_b in zip(a.axes, b.axes):
        if ax_b.is_replicated:
            if not ax_a.is_replicated:
                # Broadcast along this axis: pay the object size once.
                total += Fraction(elements)
            continue
        if ax_a.is_replicated:
            continue  # source replicated: a copy exists at the target offset
        d = _AXIS_METRIC.distance(
            ax_a.offset.evaluate(env), ax_b.offset.evaluate(env)
        )
        total += d * elements
    return total
