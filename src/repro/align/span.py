"""Spans and zero crossings (Section 4.2, Figure 3).

The *span* of an edge at iteration ``i`` is ``(a - a') i^T`` — the signed
offset difference between its two ports.  When the span does not change
sign over a subrange, the sum of absolute values equals the absolute
value of the sum and the closed forms of Section 4.3 apply; when it does,
the interchange is wrong (Figure 3(b)) and the subrange must be split at
the crossing.  This module provides span evaluation, crossing location,
and crossing-aware splitting of iteration triplets.
"""

from __future__ import annotations

from fractions import Fraction
from math import ceil, floor
from typing import Mapping

from ..ir.affine import AffineForm
from ..ir.itspace import IterationSpace, Triplet
from ..ir.symbols import LIV


def span_form(offset_x: AffineForm, offset_y: AffineForm) -> AffineForm:
    """The span as an affine form in the LIVs."""
    return offset_x - offset_y


def crossing_point(span: AffineForm, liv: LIV) -> Fraction | None:
    """The real value of ``liv`` where the span crosses zero, holding all
    other LIVs fixed at zero contribution.  None when the span is constant
    in ``liv``."""
    c = span.coeff(liv)
    if c == 0:
        return None
    rest = span - AffineForm.variable(liv, c)
    if not rest.is_constant:
        raise ValueError("crossing_point needs a single-LIV span")
    return -rest.const / c


def has_sign_change(span: AffineForm, space: IterationSpace) -> bool:
    """Whether the span takes both positive and negative values on the
    space.  Affine spans attain extremes at corner points, so checking
    the 2^k corners is exact."""
    from itertools import product

    if space.depth == 0:
        return False
    corners = []
    for t in space.triplets:
        if t.is_empty():
            return False
        corners.append((t.lo, t.last))
    seen_pos = seen_neg = False
    for combo in product(*corners):
        env = dict(zip(space.livs, combo))
        v = span.evaluate(env)
        if v > 0:
            seen_pos = True
        elif v < 0:
            seen_neg = True
        if seen_pos and seen_neg:
            return True
    return False


def split_at_crossing(trip: Triplet, cross: Fraction) -> list[Triplet]:
    """Split a triplet at a real crossing point into sign-pure halves.

    Values strictly below the crossing go left, the rest right.  Returns
    one or two nonempty triplets covering the same value set.
    """
    if trip.is_empty():
        return []
    lo, last, s = trip.lo, trip.last, trip.step
    if s > 0:
        if cross <= lo:
            return [trip.normalized()]
        if cross > last:
            return [trip.normalized()]
        # Number of values strictly below the crossing:
        n_left = int(ceil((cross - lo) / s))
        n_left = max(1, min(n_left, len(trip) - 1))
        left, right = trip.split_at(n_left)
        return [t for t in (left, right) if not t.is_empty()]
    # Negative step: mirror.
    if cross >= lo:
        return [trip.normalized()]
    if cross < last:
        return [trip.normalized()]
    n_left = int(ceil((lo - cross) / (-s)))
    n_left = max(1, min(n_left, len(trip) - 1))
    left, right = trip.split_at(n_left)
    return [t for t in (left, right) if not t.is_empty()]


def refine_space_at_crossings(
    span: AffineForm, space: IterationSpace
) -> list[IterationSpace]:
    """Split each axis of the space at the span's marginal crossing.

    For a single LIV this is exact (the two halves are sign-pure); for
    nests it splits each axis at the crossing of the span's marginal in
    that LIV (other LIVs at their range midpoint), the natural extension
    the paper's Section 4.4 Cartesian scheme suggests.
    """
    if space.depth == 0 or not has_sign_change(span, space):
        return [space]
    per_axis: list[list[Triplet]] = []
    for liv, trip in zip(space.livs, space.triplets):
        c = span.coeff(liv)
        if c == 0:
            per_axis.append([trip])
            continue
        # Fix other LIVs at midpoints to locate the marginal crossing.
        rest = span - AffineForm.variable(liv, c)
        env: dict[LIV, Fraction] = {}
        for l2, t2 in zip(space.livs, space.triplets):
            if l2 != liv:
                env[l2] = Fraction(t2.lo + t2.last, 2)
        base = rest.evaluate(env) if not rest.is_constant else rest.const
        cross = -base / c
        per_axis.append(split_at_crossing(trip, cross))
    from itertools import product

    return [
        IterationSpace(space.livs, tuple(combo)) for combo in product(*per_axis)
    ]
