"""Alignment representation: axis, stride, offset; mobile; replicated.

Section 2 of the paper: an alignment maps array element ``i`` (a d-vector
of Fortran indices) to template cell ``g(i)`` where each template-axis
component ``g_t`` is either a constant (*space axis*) or ``s_t * i_a + f_t``
for exactly one array axis ``a`` (*body axis*).  Mobile alignments make
the stride ``s_t`` and offset ``f_t`` affine functions of the LIVs
(Section 2.4).  Replication (Section 5) widens a space-axis offset from a
single position to a regular section of the template axis, written
``lo:hi:st`` or ``*`` for the whole axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Optional

from ..ir.affine import AffineForm
from ..ir.symbols import LIV


@dataclass(frozen=True)
class ReplicatedExtent:
    """The positions a replicated space axis occupies: a triplet or ``*``.

    ``full=True`` means the whole template axis (the paper's ``*``);
    otherwise ``lo:hi:step`` with integer bounds.
    """

    full: bool = True
    lo: int = 0
    hi: int = 0
    step: int = 1

    def __repr__(self) -> str:
        if self.full:
            return "*"
        if self.step == 1:
            return f"{self.lo}:{self.hi}"
        return f"{self.lo}:{self.hi}:{self.step}"


@dataclass(frozen=True)
class AxisAlignment:
    """One template axis of an object's alignment.

    * body axis: ``array_axis`` (0-based) is set, position is
      ``stride * i_axis + offset``;
    * space axis: ``array_axis is None``, position is ``offset`` alone,
      or a :class:`ReplicatedExtent` when replicated.
    """

    array_axis: Optional[int]
    stride: Optional[AffineForm]  # None on space axes
    offset: AffineForm
    replication: Optional[ReplicatedExtent] = None

    @property
    def is_body(self) -> bool:
        return self.array_axis is not None

    @property
    def is_replicated(self) -> bool:
        return self.replication is not None

    def __post_init__(self) -> None:
        if self.is_body and self.stride is None:
            raise ValueError("body axis requires a stride")
        if self.is_body and self.replication is not None:
            raise ValueError("replication is restricted to space axes (Section 5)")

    def position(
        self, index: Mapping[int, Fraction | int], env: Mapping[LIV, int]
    ) -> Fraction:
        """Template coordinate for an element, at a LIV environment.

        ``index`` maps array-axis number to the element's index value.
        Replicated axes have no single position; callers must branch on
        :attr:`is_replicated` first.
        """
        if self.is_replicated:
            raise ValueError("replicated axis has no single position")
        off = self.offset.evaluate(env)
        if not self.is_body:
            return off
        assert self.stride is not None and self.array_axis is not None
        return off + self.stride.evaluate(env) * Fraction(index[self.array_axis])

    def __repr__(self) -> str:
        if self.is_replicated:
            return f"[{self.replication!r}]"
        if not self.is_body:
            return f"[{self.offset!r}]"
        s = repr(self.stride)
        if "+" in s or "-" in s[1:]:
            s = f"({s})"
        body = f"{s}*i{self.array_axis}" if self.stride != AffineForm(1) else f"i{self.array_axis}"
        off = self.offset
        if off == AffineForm(0):
            return f"[{body}]"
        return f"[{body} + {off!r}]"


@dataclass(frozen=True)
class Alignment:
    """A complete alignment: one :class:`AxisAlignment` per template axis.

    Invariants enforced: every array axis of the object appears exactly
    once among the body axes.
    """

    axes: tuple[AxisAlignment, ...]

    def __post_init__(self) -> None:
        body = [a.array_axis for a in self.axes if a.is_body]
        if len(body) != len(set(body)):
            raise ValueError("array axis mapped to two template axes")

    @property
    def template_rank(self) -> int:
        return len(self.axes)

    @property
    def rank(self) -> int:
        return sum(1 for a in self.axes if a.is_body)

    def body_axes(self) -> dict[int, int]:
        """Map array axis -> template axis."""
        return {
            a.array_axis: t  # type: ignore[misc]
            for t, a in enumerate(self.axes)
            if a.is_body
        }

    def template_axis_of(self, array_axis: int) -> int:
        for t, a in enumerate(self.axes):
            if a.array_axis == array_axis:
                return t
        raise KeyError(f"array axis {array_axis} is not mapped")

    def position(
        self, index: Mapping[int, int], env: Mapping[LIV, int]
    ) -> tuple[Fraction, ...]:
        """Template cell of one element (no replicated axes allowed)."""
        return tuple(a.position(index, env) for a in self.axes)

    def axis_signature(self) -> tuple[Optional[int], ...]:
        """The axis mapping alone (for discrete-metric comparison)."""
        return tuple(a.array_axis for a in self.axes)

    def stride_signature(self) -> tuple[Optional[AffineForm], ...]:
        return tuple(a.stride for a in self.axes)

    def __repr__(self) -> str:
        return "".join(repr(a) for a in self.axes)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def canonical(cls, rank: int, template_rank: int) -> "Alignment":
        """Identity alignment: array axis a -> template axis a, stride 1,
        offset 0; trailing template axes are space axes at offset 0."""
        axes = []
        for t in range(template_rank):
            if t < rank:
                axes.append(AxisAlignment(t, AffineForm(1), AffineForm(0)))
            else:
                axes.append(AxisAlignment(None, None, AffineForm(0)))
        return cls(tuple(axes))

    def with_offset(self, template_axis: int, offset: AffineForm) -> "Alignment":
        axes = list(self.axes)
        a = axes[template_axis]
        axes[template_axis] = AxisAlignment(a.array_axis, a.stride, offset, a.replication)
        return Alignment(tuple(axes))

    def with_replication(
        self, template_axis: int, extent: ReplicatedExtent | None
    ) -> "Alignment":
        axes = list(self.axes)
        a = axes[template_axis]
        if a.is_body and extent is not None:
            raise ValueError("cannot replicate a body axis")
        axes[template_axis] = AxisAlignment(a.array_axis, a.stride, a.offset, extent)
        return Alignment(tuple(axes))
