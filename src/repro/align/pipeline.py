"""The full alignment pipeline.

Phases, in the paper's order:

1. build the ADG (Section 2.2);
2. axis + mobile stride alignment under the discrete metric (Section 3);
3. replication labeling by min-cut, iterated with
4. mobile offset alignment by RLP (Sections 4 and 5) until quiescence —
   the paper's resolution of the chicken-and-egg between replication
   (which needs to know which offsets are mobile) and offsets (which
   skip edges with replicated endpoints);
5. assembly of full per-port alignments and exact cost accounting;
6. *(optional, beyond the paper)* automatic distribution planning —
   the phase the paper defers — via :func:`align_and_distribute`,
   which attaches a :class:`repro.distrib.DistributionPlan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (distrib uses align)
    from ..distrib.plan import DistributionPlan

from ..adg.build import build_adg
from ..adg.graph import ADG, Port
from ..lang.ast import Program
from ..lang.typecheck import TypeInfo, typecheck
from .axis_stride import AxisStrideResult, solve_axis_stride
from .cost import AlignmentMap, EdgeCost, assemble_alignments, cost_breakdown, total_cost
from .offset_mobile import MobileOffsetResult, solve_mobile_offsets
from .position import Alignment
from .replication import ReplicationResult, label_replication


@dataclass
class AlignmentPlan:
    """Everything the pipeline decided, plus cost accounting."""

    program: Program
    adg: ADG
    axis_stride: AxisStrideResult
    replication: Optional[ReplicationResult]
    offsets: MobileOffsetResult
    alignments: AlignmentMap
    total_cost: Fraction
    replication_rounds: int = 1
    distribution: Optional["DistributionPlan"] = None

    def alignment_of(self, p: Port) -> Alignment:
        return self.alignments[id(p)]

    def source_alignments(self) -> dict[str, Alignment]:
        """Final alignment of each declared array (at its source port)."""
        from ..adg.nodes import NodeKind, SourcePayload

        out = {}
        for n in self.adg.nodes:
            if n.kind is NodeKind.SOURCE and isinstance(n.payload, SourcePayload):
                out[n.payload.array] = self.alignments[id(n.outputs()[0])]
        return out

    def breakdown(self) -> list[EdgeCost]:
        return cost_breakdown(self.adg, self.alignments)

    def report(self) -> str:
        lines = [
            f"program {self.program.name}: total realignment cost {self.total_cost}",
            f"  axis/stride discrete cost: {self.axis_stride.cost}",
        ]
        for arr, al in sorted(self.source_alignments().items()):
            lines.append(f"  {arr}: {al!r}")
        nonzero = [ec for ec in self.breakdown() if ec.cost != 0]
        if nonzero:
            lines.append("  costed edges:")
            for ec in nonzero:
                lines.append(
                    f"    {ec.kind:10s} {str(ec.cost):>12s}  "
                    f"{ec.edge.tail.uid} -> {ec.edge.head.uid}"
                )
        if self.distribution is not None:
            lines.append(self.distribution.render())
        return "\n".join(lines)


def align_program(
    program: Program,
    algorithm: str = "fixed",
    backend: str = "scipy",
    replication: bool = True,
    mobile: bool = True,
    max_replication_rounds: int = 3,
    info: TypeInfo | None = None,
    **alg_kw,
) -> AlignmentPlan:
    """Run the complete alignment analysis on a program.

    ``algorithm`` selects the Section 4.2 mobile-offset algorithm;
    ``mobile=False`` computes the best *static* alignment baseline
    (program variables pinned, derived positions still track sections);
    ``replication=False`` disables Section 5 labeling (every port N).
    """
    info = info or typecheck(program)
    adg = build_adg(program, info)
    skel = solve_axis_stride(adg)

    replicated: set[tuple[int, int]] = set()
    rep_result: Optional[ReplicationResult] = None
    offsets_result: Optional[MobileOffsetResult] = None
    rounds = 0
    if replication:
        # Iterate replication labeling <-> mobile offsets until quiescence
        # (Section 6).  Labels accumulate monotonically: once replication
        # is justified by a mobile offset, dropping the offset's cost must
        # not un-justify it — this guarantees termination.
        offsets = None
        seen: set[tuple[int, int]] | None = None
        for _ in range(max_replication_rounds):
            rounds += 1
            rep_result = label_replication(
                adg, skel.skeletons, program, offsets
            )
            new_rep = rep_result.replicated_ports() | (seen or set())
            offsets_result = solve_mobile_offsets(
                adg,
                skel.skeletons,
                algorithm,
                replicated=new_rep,
                backend=backend,
                static=not mobile,
                **alg_kw,
            )
            offsets = offsets_result.offsets
            if new_rep == seen:
                break
            seen = new_rep
        replicated = seen or set()
    else:
        # Baseline: only the program-forced labels (spread inputs R).
        rounds = 1
        rep_result = label_replication(
            adg, skel.skeletons, program, None, minimal=True
        )
        replicated = rep_result.replicated_ports()
        offsets_result = solve_mobile_offsets(
            adg,
            skel.skeletons,
            algorithm,
            replicated=replicated,
            backend=backend,
            static=not mobile,
            **alg_kw,
        )

    assert offsets_result is not None
    alignments = assemble_alignments(
        adg, skel.skeletons, offsets_result.offsets, replicated
    )
    cost = total_cost(adg, alignments)
    return AlignmentPlan(
        program,
        adg,
        skel,
        rep_result,
        offsets_result,
        alignments,
        cost,
        replication_rounds=rounds,
    )


def align_and_distribute(
    program: Program,
    nprocs: int,
    distrib_options: Optional[dict] = None,
    **align_kw,
) -> AlignmentPlan:
    """Alignment plus the paper's deferred phase: distribution planning.

    Runs :func:`align_program`, then hands the solved alignments to the
    :mod:`repro.distrib` planner for ``nprocs`` processors and attaches
    the chosen :class:`~repro.distrib.plan.DistributionPlan` to the
    returned plan (``plan.distribution``); ``distrib_options`` forwards
    keyword arguments to
    :func:`repro.distrib.search.plan_distribution`.
    """
    # Imported lazily: repro.distrib depends on this module.
    from ..distrib import build_profile, plan_distribution

    plan = align_program(program, **align_kw)
    profile = build_profile(plan.adg, plan.alignments)
    plan.distribution = plan_distribution(
        profile, nprocs, **(distrib_options or {})
    )
    return plan
