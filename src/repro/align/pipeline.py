"""The full alignment pipeline — stable wrappers over :mod:`repro.passes`.

Phases, in the paper's order (each one a registered pass):

1. build the ADG (Section 2.2);
2. axis + mobile stride alignment under the discrete metric (Section 3);
3. replication labeling by min-cut, iterated with
4. mobile offset alignment by RLP (Sections 4 and 5) until quiescence —
   the paper's resolution of the chicken-and-egg between replication
   (which needs to know which offsets are mobile) and offsets (which
   skip edges with replicated endpoints) — an explicit
   :class:`~repro.passes.core.FixpointPass`;
5. assembly of full per-port alignments and exact cost accounting;
6. *(optional, beyond the paper)* automatic distribution planning —
   the phase the paper defers — via :func:`align_and_distribute`,
   which attaches a :class:`repro.distrib.DistributionPlan`.

:func:`align_program` and :func:`align_and_distribute` keep their
historical signatures and produce byte-identical results to the old
monolithic driver; they build a :class:`~repro.passes.core.PlanContext`
and run the staged pipeline.  Callers that sweep machines should use
the pipeline directly (``ctx.fork()`` + goal ``"distribution"``) to
reuse the machine-independent prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (distrib uses align)
    from ..distrib.plan import DistributionPlan

from ..adg.graph import ADG, Port
from ..lang.ast import Program
from ..lang.typecheck import TypeInfo
from .axis_stride import AxisStrideResult
from .cost import AlignmentMap, EdgeCost, cost_breakdown
from .offset_mobile import MobileOffsetResult
from .position import Alignment
from .replication import ReplicationResult

#: Planner keywords that belong in ``distrib_options`` — used to catch
#: machine options smuggled into the alignment keywords (and vice versa).
_DISTRIB_ONLY_KEYS = frozenset(
    {"topology", "block_sizes", "exhaustive_limit", "seed", "restarts",
     "vectorize"}
)
#: Alignment keywords that belong in ``align_kw`` — the other direction.
_ALIGN_ONLY_KEYS = frozenset(
    {"algorithm", "backend", "replication", "mobile", "max_replication_rounds",
     "info"}
)


class DistributionOptionsError(ValueError):
    """Conflicting machine/metric options between ``align_kw`` and
    ``distrib_options`` — raised instead of silently preferring one."""


@dataclass
class AlignmentPlan:
    """Everything the pipeline decided, plus cost accounting."""

    program: Program
    adg: ADG
    axis_stride: AxisStrideResult
    replication: Optional[ReplicationResult]
    offsets: MobileOffsetResult
    alignments: AlignmentMap
    total_cost: Fraction
    replication_rounds: int = 1
    distribution: Optional["DistributionPlan"] = None

    def alignment_of(self, p: Port) -> Alignment:
        return self.alignments[p.key]

    def source_alignments(self) -> dict[str, Alignment]:
        """Final alignment of each declared array (at its source port)."""
        from ..adg.nodes import NodeKind, SourcePayload

        out = {}
        for n in self.adg.nodes:
            if n.kind is NodeKind.SOURCE and isinstance(n.payload, SourcePayload):
                out[n.payload.array] = self.alignments[n.outputs()[0].key]
        return out

    def breakdown(self) -> list[EdgeCost]:
        return cost_breakdown(self.adg, self.alignments)

    def report(self) -> str:
        lines = [
            f"program {self.program.name}: total realignment cost {self.total_cost}",
            f"  axis/stride discrete cost: {self.axis_stride.cost}",
        ]
        for arr, al in sorted(self.source_alignments().items()):
            lines.append(f"  {arr}: {al!r}")
        nonzero = [ec for ec in self.breakdown() if ec.cost != 0]
        if nonzero:
            lines.append("  costed edges:")
            for ec in nonzero:
                lines.append(
                    f"    {ec.kind:10s} {str(ec.cost):>12s}  "
                    f"{ec.edge.tail.uid} -> {ec.edge.head.uid}"
                )
        if self.distribution is not None:
            lines.append(self.distribution.render())
        return "\n".join(lines)


def plan_context(
    program: Program,
    info: TypeInfo | None = None,
    algorithm: str = "fixed",
    backend: str = "scipy",
    replication: bool = True,
    mobile: bool = True,
    max_replication_rounds: int = 3,
    **alg_kw,
):
    """A :class:`~repro.passes.core.PlanContext` seeded for ``program``.

    The shared front door for every consumer of the staged pipeline
    (wrappers, CLI, batch engine, benchmarks): puts the program, the
    frozen alignment options and — when supplied — a precomputed
    :class:`TypeInfo` onto a fresh context.
    """
    from ..passes import AlignOptions, PlanContext

    ctx = PlanContext()
    ctx.put("program", program)
    if info is not None:
        ctx.put("typeinfo", info)
    ctx.put(
        "align_options",
        AlignOptions.of(
            algorithm=algorithm,
            backend=backend,
            replication=replication,
            mobile=mobile,
            max_replication_rounds=max_replication_rounds,
            **alg_kw,
        ),
    )
    return ctx


def align_program(
    program: Program,
    algorithm: str = "fixed",
    backend: str = "scipy",
    replication: bool = True,
    mobile: bool = True,
    max_replication_rounds: int = 3,
    info: TypeInfo | None = None,
    **alg_kw,
) -> AlignmentPlan:
    """Run the complete alignment analysis on a program.

    ``algorithm`` selects the Section 4.2 mobile-offset algorithm;
    ``mobile=False`` computes the best *static* alignment baseline
    (program variables pinned, derived positions still track sections);
    ``replication=False`` disables Section 5 labeling (every port N).

    Thin wrapper: builds a plan context and runs the registered pass
    pipeline to the ``"plan"`` goal.
    """
    from ..passes import Pipeline

    ctx = plan_context(
        program,
        info=info,
        algorithm=algorithm,
        backend=backend,
        replication=replication,
        mobile=mobile,
        max_replication_rounds=max_replication_rounds,
        **alg_kw,
    )
    Pipeline().run(ctx, goal="plan")
    return ctx.get("plan")


def _validate_distrib_options(
    distrib_options: Optional[dict], align_kw: dict
) -> None:
    """Reject conflicting machine/metric specs instead of ignoring one.

    Two historical silent footguns: a distribution-planner keyword
    (``topology`` above all) smuggled into the alignment keywords — the
    alignment phases always price on the paper's unbounded L1 grid, so
    the option would be dropped on the floor — and a finite-topology
    machine in ``distrib_options`` whose processor count contradicts the
    explicit ``nprocs`` argument.  Both now raise a single named error
    listing the two sides of the conflict.
    """
    misplaced = sorted(_DISTRIB_ONLY_KEYS & set(align_kw))
    if misplaced:
        raise DistributionOptionsError(
            f"distribution option(s) {misplaced} passed in align_kw="
            f"{sorted(align_kw)} but belong in distrib_options="
            f"{sorted(distrib_options or {})}; the alignment metric is "
            "always the paper's L1 grid, so they would be silently ignored"
        )
    misplaced = sorted(_ALIGN_ONLY_KEYS & set(distrib_options or {}))
    if misplaced:
        raise DistributionOptionsError(
            f"alignment option(s) {misplaced} passed in distrib_options="
            f"{sorted(distrib_options or {})} but belong in align_kw="
            f"{sorted(align_kw)}; the distribution planner does not "
            "accept them"
        )


def align_and_distribute(
    program: Program,
    nprocs: int,
    distrib_options: Optional[dict] = None,
    **align_kw,
) -> AlignmentPlan:
    """Alignment plus the paper's deferred phase: distribution planning.

    Runs the full staged pipeline to the ``"distribution"`` goal for
    ``nprocs`` processors and attaches the chosen
    :class:`~repro.distrib.plan.DistributionPlan` to the returned plan
    (``plan.distribution``); ``distrib_options`` forwards keyword
    arguments to :func:`repro.distrib.search.plan_distribution`.

    Raises :class:`DistributionOptionsError` when the two option sets
    conflict — a planner option in ``align_kw``, or a finite
    ``distrib_options`` topology whose size contradicts ``nprocs``.
    """
    from ..passes import MachineSpec, Pipeline

    _validate_distrib_options(distrib_options, align_kw)
    machine = MachineSpec.of(nprocs, **(distrib_options or {}))
    topo = machine.topology_object()
    if topo is not None and topo.shape and topo.nprocs != nprocs:
        raise DistributionOptionsError(
            f"distrib_options topology {machine.topology!r} is a "
            f"{topo.nprocs}-processor machine but nprocs={nprocs} was "
            "requested; make the two agree (or drop one)"
        )
    info = align_kw.pop("info", None)
    ctx = plan_context(program, info=info, **align_kw)
    ctx.put("machine", machine)
    Pipeline().run(ctx, goal=("plan", "distribution"))
    plan = ctx.get("plan")
    plan.distribution = ctx.get("distribution")
    return plan
