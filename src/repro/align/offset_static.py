"""Offset alignment by rounded linear programming (Sections 4.1–4.3).

This module is the LP core shared by every mobile-offset algorithm: given

* a *skeleton* (axis/stride labels from Section 3),
* a per-axis replication labeling (Section 5; replicated endpoints drop
  their edges from the offset problem), and
* a *partition plan* assigning each edge a list of subranges of its
  iteration space (Section 4.2),

it builds one LP per template axis — separability of the grid metric
(Section 2.3) makes the axes independent — with

* one offset-coefficient variable per (port, LIV-slot),
* the node relations of :mod:`repro.align.constraints` as equalities,
* one bound variable per (edge, subrange) with the paper's two
  inequalities ``theta >= +-(span-sum)``, where the span-sum is the
  moment form ``delta a . M_R`` evaluated in closed form,

solves it, and *rounds*: each node derives integer offsets for all its
ports from its root port, so node constraints hold exactly after
rounding (the relation graph is per-node, hence acyclic).

For a program with no loops every edge space is scalar, the plan is the
trivial single subrange, and this reduces to the static offset LP of the
authors' POPL'93 paper, as Section 4 notes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Mapping

from ..adg.graph import ADG, ADGEdge, ADGNode, Port
from ..adg.nodes import NodeKind
from ..ir.affine import AffineForm
from ..ir.closedform import weighted_moments
from ..ir.itspace import IterationSpace
from ..ir.symbols import LIV
from ..solvers.lp import LinExpr, LPModel
from .constraints import EntryEval, EqualShift, LoopBack, OffsetRelation, node_offset_relations
from .position import Alignment

# (Port.key, template_axis) -> whether that port/axis is replicated.
ReplicationLabels = set[tuple[str, int]]

# edge -> subranges covering its iteration space.
PartitionPlan = dict[int, list[IterationSpace]]  # keyed by edge eid

# Result: (Port.key, axis) -> offset AffineForm with integer coefficients.
OffsetMap = dict[tuple[str, int], AffineForm]

Slot = tuple[str, object]  # (Port.key, None | LIV)


@dataclass
class OffsetLPStats:
    axis: int
    num_vars: int
    num_constraints: int
    objective: float


@dataclass
class OffsetSolution:
    offsets: OffsetMap
    stats: list[OffsetLPStats] = field(default_factory=list)

    def of(self, p: Port, axis: int) -> AffineForm:
        return self.offsets[(p.key, axis)]


def edge_is_offset_costed(
    e: ADGEdge,
    skeleton: Mapping[str, Alignment],
    axis: int,
    replicated: ReplicationLabels,
) -> bool:
    """Whether an edge contributes grid-metric offset cost on ``axis``.

    Edges whose ports disagree on axis/stride already pay the discrete
    general-communication cost (Section 3); edges with a replicated
    endpoint on this axis are discarded per Section 5.1.
    """
    if skeleton[e.tail.key] != skeleton[e.head.key]:
        return False
    if (e.tail.key, axis) in replicated or (e.head.key, axis) in replicated:
        return False
    return True


class OffsetLP:
    """One offset LP instance for a fixed template axis and plan."""

    def __init__(
        self,
        adg: ADG,
        skeleton: Mapping[str, Alignment],
        axis: int,
        plan: PartitionPlan,
        replicated: ReplicationLabels | None = None,
        backend: str = "scipy",
        static: bool = False,
    ) -> None:
        self.adg = adg
        self.skeleton = skeleton
        self.axis = axis
        self.plan = plan
        self.replicated = replicated or set()
        self.backend = backend
        self.static = static
        self.model = LPModel(f"offset-axis{axis}")
        self.vars: dict[Slot, object] = {}
        self.relations: list[OffsetRelation] = []

    # -- variables ------------------------------------------------------------

    def _slot(self, p: Port, liv: LIV | None):
        key = (p.key, liv)
        v = self.vars.get(key)
        if v is None:
            name = f"p{p.key}_{'c' if liv is None else liv.name}"
            v = self.model.var(name)
            self.vars[key] = v
        return v

    def _offset_expr(self, p: Port) -> LinExpr:
        expr = LinExpr.of(self._slot(p, None))
        for liv in p.space.livs:
            expr = expr + LinExpr({self._slot(p, liv): 1.0})
        return expr

    # -- constraints --------------------------------------------------------------

    def _emit_relation(self, rel: OffsetRelation) -> None:
        m = self.model
        if isinstance(rel, EqualShift):
            p, q, shift = rel.p, rel.q, rel.shift
            m.add(
                LinExpr.of(self._slot(q, None)) - self._slot(p, None),
                "==",
                float(shift.const),
            )
            livs = set(q.space.livs) | set(p.space.livs) | set(shift.livs())
            for liv in livs:
                lhs = LinExpr()
                if liv in q.space.livs:
                    lhs = lhs + self._slot(q, liv)
                if liv in p.space.livs:
                    lhs = lhs - LinExpr.of(self._slot(p, liv))
                m.add(lhs, "==", float(shift.coeff(liv)))
        elif isinstance(rel, EntryEval):
            p, q, k, v = rel.p, rel.q, rel.liv, rel.value
            # a_q0 + v*a_qk = a_p0
            m.add(
                LinExpr.of(self._slot(q, None))
                + LinExpr({self._slot(q, k): float(v)})
                - self._slot(p, None),
                "==",
                0,
            )
            for liv in p.space.livs:
                m.add(
                    LinExpr.of(self._slot(q, liv)) - self._slot(p, liv), "==", 0
                )
        elif isinstance(rel, LoopBack):
            p, q, k, s = rel.p, rel.q, rel.liv, rel.step
            # f_q(k) = f_p(k - s):  a_q0 = a_p0 - s*a_pk ;  a_qk = a_pk
            m.add(
                LinExpr.of(self._slot(q, None))
                - self._slot(p, None)
                + LinExpr({self._slot(p, k): float(s)}),
                "==",
                0,
            )
            for liv in q.space.livs:
                m.add(
                    LinExpr.of(self._slot(q, liv)) - self._slot(p, liv), "==", 0
                )
        else:  # pragma: no cover - exhaustive
            raise TypeError(f"unknown relation {rel!r}")

    # -- assembly ----------------------------------------------------------------------

    def build(self) -> None:
        for n in self.adg.nodes:
            for rel in node_offset_relations(n, dict(self.skeleton)):
                if rel.axis == self.axis:
                    self.relations.append(rel)
                    self._emit_relation(rel)
        objective = LinExpr()
        for e in self.adg.edges:
            if not edge_is_offset_costed(e, self.skeleton, self.axis, self.replicated):
                continue
            subranges = self.plan.get(e.eid, [e.space])
            for j, sub in enumerate(subranges):
                if sub.is_empty():
                    continue
                moments = weighted_moments(sub, e.weight)
                inner = LinExpr()
                inner = inner + LinExpr(
                    {self._slot(e.tail, None): float(moments.m0)}
                ) - LinExpr({self._slot(e.head, None): float(moments.m0)})
                for liv, m1 in moments.m1.items():
                    inner = (
                        inner
                        + LinExpr({self._slot(e.tail, liv): float(m1)})
                        - LinExpr({self._slot(e.head, liv): float(m1)})
                    )
                theta = self.model.var(f"th_e{e.eid}_{j}", lower=0)
                self.model.add_abs_bound(theta, inner, name=f"abs_e{e.eid}_{j}")
                objective = objective + theta * e.control_weight
        # Pin one port per weakly-connected component to anchor translation.
        self._pin_components()
        if self.static:
            # Static-alignment baseline: loop-carried values (merge nodes)
            # and program variables (sources/sinks) may not move with the
            # LIVs.  Derived section positions stay mobile, as they must.
            for n in self.adg.nodes:
                if n.kind in (NodeKind.SOURCE, NodeKind.MERGE, NodeKind.SINK):
                    for p in n.ports:
                        for liv in p.space.livs:
                            self.model.add(
                                LinExpr.of(self._slot(p, liv)), "==", 0
                            )
        self.model.minimize(objective)

    def _pin_components(self) -> None:
        parent: dict[str, str] = {}

        def find(x: str) -> str:
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for rel in self.relations:
            union(rel.p.key, rel.q.key)
        for e in self.adg.edges:
            union(e.tail.key, e.head.key)
        pinned: set[str] = set()
        for p in self.adg.ports():
            root = find(p.key)
            if root not in pinned:
                pinned.add(root)
                self.model.add(LinExpr.of(self._slot(p, None)), "==", 0)

    # -- solve + round -----------------------------------------------------------------

    def solve(self) -> tuple[dict[Slot, Fraction], OffsetLPStats]:
        self.build()
        sol = self.model.solve(backend=self.backend)
        if sol.status != "optimal":
            raise RuntimeError(f"offset LP axis {self.axis}: {sol.status}")
        values = {
            key: Fraction(sol.values[v]).limit_denominator(10**9)
            for key, v in self.vars.items()
        }
        stats = OffsetLPStats(
            self.axis,
            self.model.num_vars,
            self.model.num_constraints,
            sol.objective,
        )
        return values, stats

    # -- rounding: per-node derivation keeps constraints exact ---------------------------

    def rounded_offsets(self, values: dict[Slot, Fraction]) -> OffsetMap:
        out: OffsetMap = {}

        def lp_slot(p: Port, liv: LIV | None) -> Fraction:
            return values.get((p.key, liv), Fraction(0))

        def rounded_port(p: Port) -> AffineForm:
            coeffs = {liv: Fraction(round(lp_slot(p, liv))) for liv in p.space.livs}
            return AffineForm(Fraction(round(lp_slot(p, None))), coeffs)

        for n in self.adg.nodes:
            rels = [r for r in self.relations if r.p.node is n or r.q.node is n]
            node_rels = [
                r for r in rels if r.p.node is n and r.q.node is n
            ]
            assigned: dict[str, AffineForm] = {}
            # Repeatedly derive ports from already-assigned neighbours.
            pending = list(node_rels)
            # Seed: root any port not derivable otherwise.
            order = list(n.ports)
            progress = True
            while progress:
                progress = False
                for rel in list(pending):
                    pa, qa = assigned.get(rel.p.key), assigned.get(rel.q.key)
                    if pa is not None and qa is not None:
                        pending.remove(rel)
                        continue
                    if pa is None and qa is None:
                        continue
                    if pa is not None:
                        assigned[rel.q.key] = self._derive_q(rel, pa, rel.q, values)
                    else:
                        assigned[rel.p.key] = self._derive_p(rel, qa, rel.p, values)
                    pending.remove(rel)
                    progress = True
                if not progress and pending:
                    # Seed a root among ports of remaining relations.
                    for rel in pending:
                        if rel.p.key not in assigned:
                            assigned[rel.p.key] = rounded_port(rel.p)
                            progress = True
                            break
                        if rel.q.key not in assigned:
                            assigned[rel.q.key] = rounded_port(rel.q)
                            progress = True
                            break
            for p in order:
                if p.key not in assigned:
                    assigned[p.key] = rounded_port(p)
            for p in n.ports:
                out[(p.key, self.axis)] = assigned[p.key]
        return out

    def _derive_q(
        self, rel: OffsetRelation, pa: AffineForm, q: Port, values
    ) -> AffineForm:
        if isinstance(rel, EqualShift):
            return pa + rel.shift
        if isinstance(rel, EntryEval):
            k, v = rel.liv, rel.value
            ak = Fraction(round(values.get((q.key, k), Fraction(0))))
            coeffs = {liv: pa.coeff(liv) for liv in rel.p.space.livs}
            coeffs[k] = ak
            const = pa.const - v * ak
            return AffineForm(const, coeffs)
        if isinstance(rel, LoopBack):
            k, s = rel.liv, rel.step
            return pa.shift_liv(k, -s)
        raise TypeError(rel)

    def _derive_p(
        self, rel: OffsetRelation, qa: AffineForm, p: Port, values
    ) -> AffineForm:
        if isinstance(rel, EqualShift):
            return qa - rel.shift
        if isinstance(rel, EntryEval):
            k, v = rel.liv, rel.value
            # a_p0 = a_q0 + v * a_qk ; p copies q's other slots
            coeffs = {liv: qa.coeff(liv) for liv in p.space.livs}
            const = qa.const + v * qa.coeff(k)
            return AffineForm(const, coeffs)
        if isinstance(rel, LoopBack):
            k, s = rel.liv, rel.step
            return qa.shift_liv(k, s)
        raise TypeError(rel)


def solve_offsets(
    adg: ADG,
    skeleton: Mapping[str, Alignment],
    plan: PartitionPlan,
    replicated: ReplicationLabels | None = None,
    backend: str = "scipy",
    static: bool = False,
) -> OffsetSolution:
    """Solve the offset problem for every template axis under one plan."""
    offsets: OffsetMap = {}
    stats = []
    for axis in range(adg.template_rank):
        lp = OffsetLP(adg, skeleton, axis, plan, replicated, backend, static)
        values, st = lp.solve()
        offsets.update(lp.rounded_offsets(values))
        stats.append(st)
    return OffsetSolution(offsets, stats)
