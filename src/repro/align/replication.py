"""Replication labeling by network flow (Section 5, Theorem 1).

Per template axis ("the current axis"), every port is labeled R
(replicated) or N (non-replicated), subject to:

1. a port for which the current axis is a *body* axis is N;
2. a spread along the current axis has its input port R and its output
   port N (the spread itself neither computes nor communicates — it just
   converts a replicated object into a higher-dimensional one);
3. a port of a *read-only* object with a mobile offset in the current
   (space) axis is R — replication realizes the mobile alignment for
   free;
4. specified ports (replicated lookup tables via the ``replicated``
   declaration attribute) are R;
5. at every other node, all ports share one label.

Minimizing broadcast communication — the total weight of edges directed
from an N port to an R port — is a minimum s-t cut in a graph with one
vertex per ADG node (two for current-axis spreads), infinite-capacity
arcs pinning the prelabeled vertices, and ADG edges carrying their
closed-form total data weights.  The max-flow/min-cut theorem makes the
optimum exact (Theorem 1); we solve it with Dinic's algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping

from ..adg.graph import ADG, ADGNode, Port
from ..adg.nodes import NodeKind, SourcePayload, SpreadPayload
from ..ir.affine import AffineForm
from ..ir.closedform import weighted_moments
from ..lang.ast import Program, walk_stmts, Assign
from ..solvers.maxflow import INF, FlowNetwork
from .offset_static import OffsetMap
from .position import Alignment

Skeleton = Mapping[str, Alignment]


@dataclass
class ReplicationResult:
    """Per-axis labels plus the broadcast cost the cut certifies."""

    labels: dict[tuple[str, int], str] = field(default_factory=dict)  # (Port.key, axis) -> R/N
    cut_value: dict[int, Fraction] = field(default_factory=dict)  # axis -> cost

    def replicated_ports(self) -> set[tuple[str, int]]:
        return {k for k, v in self.labels.items() if v == "R"}

    def is_replicated(self, p: Port, axis: int) -> bool:
        return self.labels.get((p.key, axis)) == "R"


def read_only_arrays(program: Program) -> set[str]:
    """Arrays never assigned (plus explicitly readonly declarations)."""
    assigned = {
        s.lhs.name for s in walk_stmts(program.body) if isinstance(s, Assign)
    }
    out = set()
    for d in program.decls:
        if d.readonly or d.name not in assigned:
            out.add(d.name)
    return out


def value_carrier_nodes(adg: ADG, array: str) -> set[int]:
    """Nodes that carry the (unmodified) value of ``array``.

    BFS from the array's source through value-preserving node kinds:
    transformers, merges, fanouts, branches.  Computation nodes stop the
    propagation — past them the value is a different object.
    """
    carriers: set[int] = set()
    frontier: list[ADGNode] = []
    for n in adg.nodes:
        if n.kind is NodeKind.SOURCE and isinstance(n.payload, SourcePayload):
            if n.payload.array == array:
                carriers.add(n.nid)
                frontier.append(n)
    passthrough = {
        NodeKind.TRANSFORMER,
        NodeKind.MERGE,
        NodeKind.FANOUT,
        NodeKind.BRANCH,
    }
    while frontier:
        n = frontier.pop()
        for p in n.outputs():
            for e in adg.out_edges(p):
                m = e.head.node
                if m.kind in passthrough and m.nid not in carriers:
                    carriers.add(m.nid)
                    frontier.append(m)
    return carriers


def _current_axis_spread(n: ADGNode, skeleton: Skeleton, axis: int) -> bool:
    if n.kind is not NodeKind.SPREAD:
        return False
    assert isinstance(n.payload, SpreadPayload)
    out = n.outputs()[0]
    out_align = skeleton[out.key]
    try:
        return out_align.template_axis_of(n.payload.dim - 1) == axis
    except KeyError:
        return False


class ReplicationLabeler:
    def __init__(
        self,
        adg: ADG,
        skeleton: Skeleton,
        program: Program | None = None,
        offsets: OffsetMap | None = None,
        method: str = "dinic",
        minimal: bool = False,
    ) -> None:
        self.adg = adg
        self.skeleton = skeleton
        self.program = program
        self.offsets = offsets or {}
        self.method = method
        # minimal: apply only the *forced* labels (spread inputs R,
        # everything else N) — the no-replication-optimization baseline.
        self.minimal = minimal
        self.readonly = read_only_arrays(program) if program is not None else set()

    def _edge_weight(self, e) -> float:
        m = weighted_moments(e.space, e.weight)
        return float(m.m0) * e.control_weight

    def label_axis(self, axis: int) -> tuple[dict[int, str], Fraction, dict[str, str]]:
        """Label every node for one axis; returns (node labels, cut value,
        spread-split labels keyed by port key)."""
        g = FlowNetwork()
        S, T = ("__source__",), ("__sink__",)
        g.node(S)
        g.node(T)

        pinned_n: set[object] = set()
        pinned_r: set[object] = set()
        split_ports: dict[str, str] = {}

        def vertex_of(p: Port) -> object:
            n = p.node
            if _current_axis_spread(n, self.skeleton, axis):
                return (n.nid, "in" if not p.is_output else "out")
            return n.nid

        carriers_mobile: set[int] = set()
        for arr in self.readonly:
            carriers = value_carrier_nodes(self.adg, arr)
            for nid in carriers:
                node = self.adg.nodes[nid]
                mobile = False
                space_ok = True
                for p in node.ports:
                    sk = self.skeleton[p.key]
                    if axis >= sk.template_rank:
                        space_ok = False
                        break
                    if sk.axes[axis].is_body:
                        space_ok = False
                        break
                    off = self.offsets.get((p.key, axis))
                    if off is not None and not off.is_constant:
                        mobile = True
                if space_ok and mobile:
                    carriers_mobile.add(nid)

        for n in self.adg.nodes:
            if _current_axis_spread(n, self.skeleton, axis):
                pinned_r.add((n.nid, "in"))
                pinned_n.add((n.nid, "out"))
                for p in n.ports:
                    split_ports[p.key] = "in" if not p.is_output else "out"
                continue
            body_here = any(
                axis < self.skeleton[p.key].template_rank
                and self.skeleton[p.key].axes[axis].is_body
                for p in n.ports
            )
            if body_here:
                pinned_n.add(n.nid)
                continue
            if n.kind is NodeKind.SOURCE and isinstance(n.payload, SourcePayload):
                if n.payload.replicate_hint:
                    pinned_r.add(n.nid)  # rule 4: replicated lookup tables
                else:
                    # Subroutine boundary: initial data arrives with one
                    # copy (rule 4's "specified labels").
                    pinned_n.add(n.nid)
                continue
            if n.kind is NodeKind.SINK:
                pinned_n.add(n.nid)  # results must be written back single-copy
                continue
            if n.nid in carriers_mobile:
                pinned_r.add(n.nid)

        for e in self.adg.edges:
            u = vertex_of(e.tail)
            v = vertex_of(e.head)
            if u == v:
                continue
            g.add_edge(u, v, self._edge_weight(e))
        for nv in pinned_n:
            g.add_edge(S, nv, INF)
        for rv in pinned_r:
            g.add_edge(rv, T, INF)

        if self.minimal:
            # Forced labels only: every unpinned vertex stays N.
            s_side = {g.name_of(i) for i in range(g.num_nodes)} - set(pinned_r)
            value = sum(
                w for (u, v, w) in g.cut_edges(s_side) if w != INF
            )
        elif pinned_r or pinned_n:
            value, s_side, _ = g.min_cut(S, T, method=self.method)
        else:
            # Nothing forces replication: all N, no broadcasts.
            value, s_side = 0.0, {g.name_of(i) for i in range(g.num_nodes)}

        labels: dict[int, str] = {}
        for n in self.adg.nodes:
            if _current_axis_spread(n, self.skeleton, axis):
                continue
            v = n.nid
            if v in g:
                labels[n.nid] = "N" if v in s_side else "R"
            else:
                labels[n.nid] = "N"
        # Split spreads: fixed labels.
        spread_labels: dict[str, str] = {}
        for n in self.adg.nodes:
            if _current_axis_spread(n, self.skeleton, axis):
                for p in n.ports:
                    spread_labels[p.key] = "R" if not p.is_output else "N"
        return labels, Fraction(value).limit_denominator(10**6), spread_labels

    def solve(self) -> ReplicationResult:
        result = ReplicationResult()
        for axis in range(self.adg.template_rank):
            node_labels, value, spread_labels = self.label_axis(axis)
            result.cut_value[axis] = value
            for n in self.adg.nodes:
                for p in n.ports:
                    if p.key in spread_labels:
                        lab = spread_labels[p.key]
                    else:
                        lab = node_labels.get(n.nid, "N")
                    sk = self.skeleton[p.key]
                    if (
                        axis < sk.template_rank
                        and sk.axes[axis].is_body
                    ):
                        lab = "N"  # rule 1, port-level
                    result.labels[(p.key, axis)] = lab
        return result


def label_replication(
    adg: ADG,
    skeleton: Skeleton,
    program: Program | None = None,
    offsets: OffsetMap | None = None,
    method: str = "dinic",
    minimal: bool = False,
) -> ReplicationResult:
    """Run replication labeling for every template axis.

    ``minimal=True`` applies only the forced labels (the no-optimization
    baseline); otherwise the min-cut of Theorem 1 decides.
    """
    return ReplicationLabeler(
        adg, skeleton, program, offsets, method, minimal
    ).solve()
