"""Exact evaluation of the realignment cost (equation 1).

``C(pi) = sum_edges sum_{i in space} c_e * w(i) * d(pi_x(i), pi_y(i))``

with the paper's composite metric: the discrete metric on axis/stride
labels (mismatch = general communication = the whole object moves) and
the grid (L1) metric on offsets, plus the broadcast convention of
Section 5 (an N->R edge pays the object size once; an R->N or R->R edge
pays nothing for the replicated axis).

Evaluation is exact: sign-pure boxes use the closed-form moment sums;
boxes where the affine span changes sign are split recursively (binary
subdivision terminates because an affine function on a shrinking box
eventually has constant sign, at the latest on singletons).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping

from ..adg.graph import ADG, ADGEdge, Port
from ..cachestats import MISS, BoundedCache
from ..ir.affine import AffineForm
from ..ir.closedform import Moments, weighted_moments
from ..ir.itspace import IterationSpace
from ..ir.polynomial import Polynomial
from .position import Alignment
from .span import has_sign_change

AlignmentMap = dict[str, Alignment]  # keyed by Port.key

_ENUM_LIMIT = 4096

# Edge-cost construction is re-run per pipeline phase (objective
# evaluation, assembly, breakdown) and per batched program; both the
# moment sums and the absolute weighted spans are pure functions of
# hashable (span, weight, space) values, so they memoize safely across
# edges, phases and programs within a process.
_MOMENTS = BoundedCache("align.moments", maxsize=4096)
_SPANS = BoundedCache("align.edge_cost", maxsize=8192)


def cached_moments(space: IterationSpace, weight: Polynomial) -> Moments:
    """Memoized :func:`repro.ir.closedform.weighted_moments`."""
    key = (space, weight)
    m = _MOMENTS.lookup(key)
    if m is MISS:
        m = _MOMENTS.store(key, weighted_moments(space, weight))
    return m  # type: ignore[return-value]


def abs_weighted_span(
    span: AffineForm, weight: Polynomial, space: IterationSpace
) -> Fraction:
    """Exact ``sum_i weight(i) * |span(i)|`` over the space.

    Requires the weight to be nonnegative on the space (data weights
    are element counts, so they are).  Memoized on the argument triple;
    recursive sign-change splits share the cache.
    """
    key = (span, weight, space)
    cached = _SPANS.lookup(key)
    if cached is not MISS:
        return cached  # type: ignore[return-value]
    return _SPANS.store(key, _abs_weighted_span(span, weight, space))  # type: ignore[return-value]


def _abs_weighted_span(
    span: AffineForm, weight: Polynomial, space: IterationSpace
) -> Fraction:
    if space.is_empty():
        return Fraction(0)
    if space.depth == 0:
        return abs(span.const) * weight.const if weight.is_constant else abs(
            span.const
        ) * weight.evaluate({})
    if not has_sign_change(span, space):
        m = cached_moments(space, weight)
        return abs(m.span_sum(span.const, span.coeffs))
    if space.count <= _ENUM_LIMIT:
        total = Fraction(0)
        for env in space.points():
            total += weight.evaluate(env) * abs(span.evaluate(env))
        return total
    # Split the largest axis in half and recurse.
    sizes = [len(t) for t in space.triplets]
    axis = max(range(space.depth), key=lambda j: sizes[j])
    trip = space.triplets[axis]
    left, right = trip.split_at(len(trip) // 2)
    total = Fraction(0)
    for part in (left, right):
        if not part.is_empty():
            total += abs_weighted_span(
                span, weight, space.restricted(space.livs[axis], part)
            )
    return total


@dataclass
class EdgeCost:
    edge: ADGEdge
    kind: str  # "aligned", "shift", "general", "broadcast"
    cost: Fraction


def edge_cost(e: ADGEdge, alignments: Mapping[str, Alignment]) -> EdgeCost:
    """Exact realignment cost of one edge under the alignment map."""
    ax = alignments[e.tail.key]
    ay = alignments[e.head.key]
    cw = Fraction(e.control_weight).limit_denominator(10**9)
    if (
        ax.axis_signature() != ay.axis_signature()
        or ax.stride_signature() != ay.stride_signature()
    ):
        m = cached_moments(e.space, e.weight)
        return EdgeCost(e, "general", cw * m.m0)
    total = Fraction(0)
    kind = "aligned"
    for tau in range(ax.template_rank):
        a1, a2 = ax.axes[tau], ay.axes[tau]
        if a2.is_replicated:
            if not a1.is_replicated:
                m = cached_moments(e.space, e.weight)
                total += m.m0
                kind = "broadcast"
            continue
        if a1.is_replicated:
            continue
        span = a1.offset - a2.offset
        if span == AffineForm(0):
            continue
        c = abs_weighted_span(span, e.weight, e.space)
        if c != 0:
            total += c
            if kind == "aligned":
                kind = "shift"
    return EdgeCost(e, kind, cw * total)


def total_cost(adg: ADG, alignments: Mapping[str, Alignment]) -> Fraction:
    return sum((edge_cost(e, alignments).cost for e in adg.edges), Fraction(0))


def cost_breakdown(
    adg: ADG, alignments: Mapping[str, Alignment]
) -> list[EdgeCost]:
    return [edge_cost(e, alignments) for e in adg.edges]


def offset_only_cost(
    adg: ADG,
    skeleton: Mapping[str, Alignment],
    offsets: Mapping[tuple[str, int], AffineForm],
    replicated: set[tuple[str, int]] | None = None,
) -> Fraction:
    """Grid-metric cost of an offset assignment, skipping edges that are
    general communication (skeleton mismatch) or replicated — the exact
    objective the mobile-offset algorithms of Section 4 approximate."""
    replicated = replicated or set()
    total = Fraction(0)
    for e in adg.edges:
        if skeleton[e.tail.key] != skeleton[e.head.key]:
            continue
        cw = Fraction(e.control_weight).limit_denominator(10**9)
        for tau in range(adg.template_rank):
            if (e.tail.key, tau) in replicated or (e.head.key, tau) in replicated:
                continue
            span = offsets[(e.tail.key, tau)] - offsets[(e.head.key, tau)]
            if span == AffineForm(0):
                continue
            total += cw * abs_weighted_span(span, e.weight, e.space)
    return total


def assemble_alignments(
    adg: ADG,
    skeleton: Mapping[str, Alignment],
    offsets: Mapping[tuple[str, int], AffineForm],
    replicated: set[tuple[str, int]] | None = None,
) -> AlignmentMap:
    """Combine skeletons, offsets and replication labels into full
    per-port alignments."""
    from .position import AxisAlignment, ReplicatedExtent

    replicated = replicated or set()
    out: AlignmentMap = {}
    for p in adg.ports():
        skel = skeleton[p.key]
        axes = []
        for tau, ax in enumerate(skel.axes):
            off = offsets.get((p.key, tau), AffineForm(0))
            rep = None
            if (p.key, tau) in replicated and not ax.is_body:
                rep = ReplicatedExtent(full=True)
            axes.append(AxisAlignment(ax.array_axis, ax.stride, off, rep))
        out[p.key] = Alignment(tuple(axes))
    return out
