"""repro — Mobile and replicated alignment of arrays in data-parallel programs.

A complete reproduction of Chatterjee, Gilbert & Schreiber (SC'93):
automatic determination of loop-dependent (*mobile*) array alignments
and of *replicated* alignments that minimize residual communication in
data-parallel programs.

Quickstart::

    from repro import parse, align_program

    program = parse('''
    real A(100,100), V(200)
    do k = 1, 100
      A(k,1:100) = A(k,1:100) + V(k:k+99)
    enddo
    ''')
    plan = align_program(program)
    print(plan.report())

Subpackages:

* :mod:`repro.lang` — the Fortran-90-like mini language (parser, DSL,
  typechecker, reference programs);
* :mod:`repro.ir` — affine forms, polynomials, iteration spaces,
  closed-form sums;
* :mod:`repro.adg` — the alignment-distribution graph;
* :mod:`repro.align` — the paper's contribution: axis/stride labeling,
  the five mobile-offset algorithms, replication labeling by min-cut,
  and the full pipeline;
* :mod:`repro.passes` — the staged planning pipeline: every phase a
  registered pass with requires/provides artifact contracts, run by an
  instrumented, prefix-reusable ``Pipeline`` over a ``PlanContext``
  (machine sweeps re-execute only the machine-dependent suffix);
* :mod:`repro.solvers` — from-scratch simplex LP and max-flow/min-cut;
* :mod:`repro.topology` — pluggable machine interconnects (grid, torus,
  ring, hypercube, hierarchical) whose per-axis hop metrics price every
  data movement; the grid default is the paper's L1 machine;
* :mod:`repro.machine` — a distributed-memory machine simulator that
  measures the communication the alignments imply;
* :mod:`repro.distrib` — automatic distribution planning (the phase the
  paper defers): per-axis HPF scheme + processor-grid search over a
  communication cost model exact against the simulator, priced per
  topology;
* :mod:`repro.batch` — batched planning of program corpora over a
  process pool, with memoized hot kernels (:mod:`repro.cachestats`) and
  generated workloads (:mod:`repro.lang.generate`).
"""

from .lang import ProgramBuilder, parse, pretty, typecheck
from .lang import programs
from .adg import build_adg
from .align import (
    Alignment,
    AlignmentPlan,
    align_and_distribute,
    align_program,
    label_replication,
    solve_axis_stride,
    solve_mobile_offsets,
    total_cost,
)
from .topology import Topology, default_topology, parse_topology
from .machine import Distribution, measure_plan, run_program
from .distrib import DistributionPlan, build_profile, plan_distribution
from .batch import BatchReport, PlanResult, plan_many, plan_one, plan_sweep
from .passes import MachineSpec, Pipeline, PlanContext
from .obs import TraceRecorder

__version__ = "1.5.0"

__all__ = [
    "ProgramBuilder",
    "parse",
    "pretty",
    "typecheck",
    "programs",
    "build_adg",
    "Alignment",
    "AlignmentPlan",
    "align_and_distribute",
    "align_program",
    "label_replication",
    "solve_axis_stride",
    "solve_mobile_offsets",
    "total_cost",
    "Topology",
    "default_topology",
    "parse_topology",
    "Distribution",
    "measure_plan",
    "run_program",
    "DistributionPlan",
    "build_profile",
    "plan_distribution",
    "BatchReport",
    "PlanResult",
    "plan_many",
    "plan_one",
    "plan_sweep",
    "MachineSpec",
    "Pipeline",
    "PlanContext",
    "TraceRecorder",
    "__version__",
]
