"""Max-flow / min-cut, written from scratch.

Theorem 1 of the paper reduces replication labeling to s-t min-cut.  The
paper notes any standard algorithm works [Papadimitriou & Steiglitz;
Tarjan]; we provide Dinic's algorithm (default) and Edmonds–Karp (simple
reference), both on an adjacency-list residual graph with integer-or-
float capacities and a proper infinity.  ``networkx`` cross-checks both
in the test suite.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable, Iterable

INF = float("inf")

NodeId = Hashable


@dataclass
class _Arc:
    to: int
    cap: float
    flow: float
    rev: int  # index of the reverse arc in adj[to]


class FlowNetwork:
    """A directed flow network over arbitrary hashable node ids.

    ``add_edge(u, v, cap)`` adds a forward arc with capacity ``cap`` and a
    reverse residual arc with capacity 0.  Parallel edges are allowed and
    kept separate (their capacities are not merged), which keeps cut
    reporting faithful to the ADG edges that created them.
    """

    def __init__(self) -> None:
        self._ids: dict[NodeId, int] = {}
        self._names: list[NodeId] = []
        self.adj: list[list[_Arc]] = []
        self._edges: list[tuple[int, int, int]] = []  # (u, arc_index, v)

    def node(self, name: NodeId) -> int:
        idx = self._ids.get(name)
        if idx is None:
            idx = len(self._names)
            self._ids[name] = idx
            self._names.append(name)
            self.adj.append([])
        return idx

    def name_of(self, idx: int) -> NodeId:
        return self._names[idx]

    def __contains__(self, name: NodeId) -> bool:
        return name in self._ids

    @property
    def num_nodes(self) -> int:
        return len(self._names)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def add_edge(self, u: NodeId, v: NodeId, cap: float) -> int:
        """Add arc u->v with capacity cap; returns an edge handle."""
        if cap < 0:
            raise ValueError("capacity must be nonnegative")
        ui, vi = self.node(u), self.node(v)
        fwd = _Arc(vi, float(cap), 0.0, len(self.adj[vi]))
        rev = _Arc(ui, 0.0, 0.0, len(self.adj[ui]))
        self.adj[ui].append(fwd)
        self.adj[vi].append(rev)
        handle = len(self._edges)
        self._edges.append((ui, len(self.adj[ui]) - 1, vi))
        return handle

    def edge_flow(self, handle: int) -> float:
        u, ai, _ = self._edges[handle]
        return self.adj[u][ai].flow

    def reset_flow(self) -> None:
        for arcs in self.adj:
            for arc in arcs:
                arc.flow = 0.0

    # -- algorithms --------------------------------------------------------

    def max_flow(self, s: NodeId, t: NodeId, method: str = "dinic") -> float:
        """Compute a maximum s-t flow; flow is left on the arcs."""
        si, ti = self.node(s), self.node(t)
        if si == ti:
            raise ValueError("source equals sink")
        self.reset_flow()
        if method == "dinic":
            return self._dinic(si, ti)
        if method == "edmonds-karp":
            return self._edmonds_karp(si, ti)
        raise ValueError(f"unknown max-flow method {method!r}")

    def _bfs_levels(self, s: int, t: int) -> list[int] | None:
        level = [-1] * self.num_nodes
        level[s] = 0
        q = deque([s])
        while q:
            u = q.popleft()
            for arc in self.adj[u]:
                if level[arc.to] < 0 and arc.cap - arc.flow > 1e-12:
                    level[arc.to] = level[u] + 1
                    q.append(arc.to)
        return level if level[t] >= 0 else None

    def _dinic(self, s: int, t: int) -> float:
        total = 0.0
        while True:
            level = self._bfs_levels(s, t)
            if level is None:
                return total
            it = [0] * self.num_nodes

            def dfs(u: int, pushed: float) -> float:
                if u == t:
                    return pushed
                while it[u] < len(self.adj[u]):
                    arc = self.adj[u][it[u]]
                    residual = arc.cap - arc.flow
                    if residual > 1e-12 and level[arc.to] == level[u] + 1:
                        got = dfs(arc.to, min(pushed, residual))
                        if got > 0:
                            arc.flow += got
                            self.adj[arc.to][arc.rev].flow -= got
                            return got
                    it[u] += 1
                return 0.0

            while True:
                pushed = dfs(s, INF)
                if pushed <= 0:
                    break
                total += pushed

    def _edmonds_karp(self, s: int, t: int) -> float:
        total = 0.0
        while True:
            parent: list[tuple[int, int] | None] = [None] * self.num_nodes
            parent[s] = (s, -1)
            q = deque([s])
            while q and parent[t] is None:
                u = q.popleft()
                for ai, arc in enumerate(self.adj[u]):
                    if parent[arc.to] is None and arc.cap - arc.flow > 1e-12:
                        parent[arc.to] = (u, ai)
                        q.append(arc.to)
            if parent[t] is None:
                return total
            # Find bottleneck.
            bottleneck = INF
            v = t
            while v != s:
                u, ai = parent[v]  # type: ignore[misc]
                arc = self.adj[u][ai]
                bottleneck = min(bottleneck, arc.cap - arc.flow)
                v = u
            v = t
            while v != s:
                u, ai = parent[v]  # type: ignore[misc]
                arc = self.adj[u][ai]
                arc.flow += bottleneck
                self.adj[arc.to][arc.rev].flow -= bottleneck
                v = u
            total += bottleneck

    def min_cut(
        self, s: NodeId, t: NodeId, method: str = "dinic"
    ) -> tuple[float, set[NodeId], set[NodeId]]:
        """Return ``(cut_value, S_side, T_side)`` of a minimum s-t cut.

        The S side is the set of nodes reachable from ``s`` in the residual
        graph after a max flow; by max-flow/min-cut the forward capacity
        across (S, T) equals the flow value.
        """
        value = self.max_flow(s, t, method=method)
        si = self.node(s)
        seen = [False] * self.num_nodes
        seen[si] = True
        q = deque([si])
        while q:
            u = q.popleft()
            for arc in self.adj[u]:
                if not seen[arc.to] and arc.cap - arc.flow > 1e-12:
                    seen[arc.to] = True
                    q.append(arc.to)
        s_side = {self.name_of(i) for i in range(self.num_nodes) if seen[i]}
        t_side = {self.name_of(i) for i in range(self.num_nodes) if not seen[i]}
        return value, s_side, t_side

    def cut_edges(self, s_side: set[NodeId]) -> list[tuple[NodeId, NodeId, float]]:
        """Forward arcs crossing from ``s_side`` to its complement."""
        out = []
        for u, ai, v in self._edges:
            un, vn = self.name_of(u), self.name_of(v)
            if un in s_side and vn not in s_side:
                out.append((un, vn, self.adj[u][ai].cap))
        return out
