"""HiGHS backend for :class:`repro.solvers.lp.LPModel` via scipy.

An independent, industrial-strength solver used to cross-validate the
from-scratch simplex in the test suite and available as a faster backend
for large alignment problems.
"""

from __future__ import annotations

from scipy.optimize import linprog

from .lp import LPModel, LPSolution


def solve_scipy(model: LPModel) -> LPSolution:
    c, a_ub, b_ub, a_eq, b_eq, bounds = model.to_dense()
    res = linprog(
        c,
        A_ub=a_ub if a_ub.size else None,
        b_ub=b_ub if b_ub.size else None,
        A_eq=a_eq if a_eq.size else None,
        b_eq=b_eq if b_eq.size else None,
        bounds=bounds,
        method="highs",
    )
    if res.status == 2:
        return LPSolution("infeasible")
    if res.status == 3:
        return LPSolution("unbounded")
    if not res.success:
        raise RuntimeError(f"scipy linprog failed: {res.message}")
    values = {v: float(res.x[v.index]) for v in model.variables}
    return LPSolution("optimal", float(res.fun) + model.objective.const, values)
