"""Two-phase dense simplex, written from scratch.

The paper assumes "a linear programming package" (Section 4.1); this is
ours.  It is a textbook tableau implementation with Bland's anti-cycling
rule, adequate for the RLP instances produced by alignment analysis
(O(|E|) variables; a few hundred for realistic procedures).  The scipy
HiGHS backend (:mod:`repro.solvers.scipy_backend`) provides an
independent cross-check in the test suite.

Standard-form conversion:

* free variables are split ``x = x+ - x-``;
* finite lower bounds are shifted out; finite upper bounds become rows;
* ``<=`` / ``>=`` rows gain slack/surplus variables;
* phase 1 drives artificial variables out of the basis.
"""

from __future__ import annotations

import numpy as np

from .lp import LPModel, LPSolution

_EPS = 1e-9


class SimplexError(RuntimeError):
    pass


def solve_simplex(model: LPModel, max_iter: int | None = None) -> LPSolution:
    """Solve ``model`` (minimization) and return an :class:`LPSolution`."""
    n = model.num_vars

    # --- build the column map for standard form -----------------------------
    # Each original variable maps to (pos_col, neg_col or None, shift).
    pos_col: list[int] = []
    neg_col: list[int | None] = []
    shift: list[float] = []
    ncols = 0
    extra_rows: list[tuple[list[tuple[int, float]], str, float]] = []
    for j in range(n):
        lo, hi = model.lower[j], model.upper[j]
        if lo is None:
            pos_col.append(ncols)
            neg_col.append(ncols + 1)
            shift.append(0.0)
            ncols += 2
        else:
            pos_col.append(ncols)
            neg_col.append(None)
            shift.append(lo)
            ncols += 1
        if hi is not None:
            # x <= hi, expressed on the substituted variable(s) later.
            extra_rows.append(([(j, 1.0)], "<=", hi))

    def substituted_row(pairs: list[tuple[int, float]]) -> tuple[np.ndarray, float]:
        """Expand original-variable coefficients into standard-form columns.

        Returns (row over standard columns, rhs correction from shifts).
        """
        row = np.zeros(ncols)
        corr = 0.0
        for j, coef in pairs:
            row[pos_col[j]] += coef
            nc = neg_col[j]
            if nc is not None:
                row[nc] -= coef
            corr += coef * shift[j]
        return row, corr

    rows: list[np.ndarray] = []
    rhs: list[float] = []
    senses: list[str] = []
    for con in model.constraints:
        pairs = [(v.index, c) for v, c in con.expr.coeffs.items()]
        row, corr = substituted_row(pairs)
        rows.append(row)
        rhs.append(con.rhs - corr)
        senses.append(con.sense)
    for pairs, sense, b in extra_rows:
        row, corr = substituted_row(pairs)
        rows.append(row)
        rhs.append(b - corr)
        senses.append(sense)

    obj = np.zeros(ncols)
    obj_const = model.objective.const
    for v, coef in model.objective.coeffs.items():
        obj[pos_col[v.index]] += coef
        nc = neg_col[v.index]
        if nc is not None:
            obj[nc] -= coef
        obj_const += coef * shift[v.index]

    m = len(rows)
    if m == 0:
        # No rows: every standard-form column is bounded below by 0, so
        # the optimum is the all-zero point unless some column could
        # decrease the objective (negative coefficient), which makes the
        # problem unbounded (free-variable splits give +-c pairs).
        if np.any(obj < 0):
            return LPSolution("unbounded")
        values = {v: shift[v.index] for v in model.variables}
        return LPSolution("optimal", obj_const, values)

    # --- slack variables and artificial variables ----------------------------
    a = np.array(rows, dtype=float)
    b = np.array(rhs, dtype=float)
    # Normalize rows to b >= 0.
    for i in range(m):
        if b[i] < 0:
            a[i] = -a[i]
            b[i] = -b[i]
            if senses[i] == "<=":
                senses[i] = ">="
            elif senses[i] == ">=":
                senses[i] = "<="

    slack_cols = sum(1 for s in senses if s in ("<=", ">="))
    total = ncols + slack_cols
    tab = np.zeros((m, total))
    tab[:, :ncols] = a
    sc = ncols
    basis = [-1] * m
    need_artificial: list[int] = []
    for i, s in enumerate(senses):
        if s == "<=":
            tab[i, sc] = 1.0
            basis[i] = sc
            sc += 1
        elif s == ">=":
            tab[i, sc] = -1.0
            sc += 1
            need_artificial.append(i)
        else:
            need_artificial.append(i)

    art_start = total
    total += len(need_artificial)
    full = np.zeros((m, total))
    full[:, : tab.shape[1]] = tab
    for idx, i in enumerate(need_artificial):
        full[i, art_start + idx] = 1.0
        basis[i] = art_start + idx

    if max_iter is None:
        max_iter = 200 * (total + m) + 5000

    # --- phase 1 -------------------------------------------------------------
    if need_artificial:
        c1 = np.zeros(total)
        c1[art_start:] = 1.0
        value, status = _run_simplex(full, b, c1, basis, max_iter)
        if status != "optimal" or value > 1e-7:
            return LPSolution("infeasible")
        # Drive any artificial variables still basic (at zero) out.
        for i in range(m):
            if basis[i] >= art_start:
                pivoted = False
                for j in range(art_start):
                    if abs(full[i, j]) > _EPS:
                        _pivot(full, b, basis, i, j)
                        pivoted = True
                        break
                if not pivoted:
                    # Redundant row: harmless; leave the zero artificial basic
                    # but ensure it never re-enters with nonzero value.
                    pass
        full = full[:, :art_start]
        basis = [min(bi, art_start - 1) if bi < art_start else bi for bi in basis]
        # Rows whose artificial could not be pivoted out are redundant, but
        # slicing off artificial columns would lose their basis entry; patch:
        for i in range(m):
            if basis[i] >= art_start:
                basis[i] = -1  # degenerate redundant row
        total = art_start

    # --- phase 2 -------------------------------------------------------------
    c2 = np.zeros(total)
    c2[:ncols] = obj
    value, status = _run_simplex(full, b, c2, basis, max_iter)
    if status == "unbounded":
        return LPSolution("unbounded")
    if status != "optimal":
        raise SimplexError("simplex iteration limit exceeded")

    x = np.zeros(total)
    for i, bi in enumerate(basis):
        if bi >= 0:
            x[bi] = b[i]
    values = {}
    for v in model.variables:
        j = v.index
        val = x[pos_col[j]]
        nc = neg_col[j]
        if nc is not None:
            val -= x[nc]
        values[v] = val + shift[j]
    return LPSolution("optimal", value + obj_const, values)


def _pivot(tab: np.ndarray, b: np.ndarray, basis: list[int], r: int, c: int) -> None:
    piv = tab[r, c]
    tab[r] /= piv
    b[r] /= piv
    for i in range(tab.shape[0]):
        if i != r and abs(tab[i, c]) > 0:
            factor = tab[i, c]
            tab[i] -= factor * tab[r]
            b[i] -= factor * b[r]
    basis[r] = c


def _run_simplex(
    tab: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    basis: list[int],
    max_iter: int,
) -> tuple[float, str]:
    """Run primal simplex on (tab, b) with objective c; mutates in place.

    Uses Dantzig pricing normally and Bland's rule after a degeneracy
    streak to guarantee termination.
    """
    m, total = tab.shape
    degenerate_streak = 0
    for _ in range(max_iter):
        # Reduced costs: z_j - c_j = c_B B^-1 A_j - c_j; tab is already B^-1 A.
        cb = np.array([c[bi] if bi >= 0 else 0.0 for bi in basis])
        reduced = cb @ tab - c
        if degenerate_streak > 3 * m:
            # Bland: smallest index with positive reduced cost.
            candidates = np.nonzero(reduced > _EPS)[0]
            if candidates.size == 0:
                break
            col = int(candidates[0])
        else:
            col = int(np.argmax(reduced))
            if reduced[col] <= _EPS:
                break
        ratios = np.full(m, np.inf)
        positive = tab[:, col] > _EPS
        ratios[positive] = b[positive] / tab[positive, col]
        row = int(np.argmin(ratios))
        if not np.isfinite(ratios[row]):
            return 0.0, "unbounded"
        if degenerate_streak > 3 * m:
            # Bland tie-break on leaving variable too.
            best = ratios[row]
            ties = [i for i in range(m) if positive[i] and abs(ratios[i] - best) < _EPS]
            row = min(ties, key=lambda i: basis[i])
        if b[row] < _EPS:
            degenerate_streak += 1
        else:
            degenerate_streak = 0
        _pivot(tab, b, basis, row, col)
    else:
        return 0.0, "iterlimit"
    cb = np.array([c[bi] if bi >= 0 else 0.0 for bi in basis])
    return float(cb @ b), "optimal"
