"""Linear-program model layer.

Section 4.1 reduces offset alignment to linear programming: minimize
``sum w_xy * theta_xy`` subject to ``theta_xy >= +-(pi_x - pi_y)`` plus the
linear node constraints.  This module is the declarative model those
reductions target; it is solver-agnostic, with two interchangeable
backends (:mod:`repro.solvers.simplex` from scratch, and
:mod:`repro.solvers.scipy_backend` wrapping HiGHS).

Variables are free (unbounded both ways) by default, matching offsets
which may be negative; the backends handle the free-variable split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Literal, Mapping, Sequence, Union

Number = Union[int, float, Fraction]


@dataclass(frozen=True)
class Variable:
    """A decision variable.  Identity is by index within its model.

    Arithmetic operators lift to :class:`LinExpr` so constraints read
    naturally (``m.add(x - y, ">=", 1)``).
    """

    index: int
    name: str

    def __repr__(self) -> str:
        return self.name

    def __add__(self, other):
        return LinExpr.of(self) + other

    __radd__ = __add__

    def __sub__(self, other):
        return LinExpr.of(self) - other

    def __rsub__(self, other):
        return -LinExpr.of(self) + other

    def __neg__(self):
        return -LinExpr.of(self)

    def __mul__(self, k):
        return LinExpr.of(self) * k

    __rmul__ = __mul__


class LinExpr:
    """A linear expression ``sum c_j x_j + const`` over model variables."""

    __slots__ = ("coeffs", "const")

    def __init__(
        self,
        coeffs: Mapping[Variable, Number] | None = None,
        const: Number = 0,
    ) -> None:
        self.coeffs: dict[Variable, float] = {}
        if coeffs:
            for v, c in coeffs.items():
                fc = float(c)
                if fc != 0.0:
                    self.coeffs[v] = fc
        self.const = float(const)

    @classmethod
    def of(cls, v: "Variable | LinExpr | Number") -> "LinExpr":
        if isinstance(v, LinExpr):
            return v
        if isinstance(v, Variable):
            return cls({v: 1.0})
        return cls({}, v)

    def __add__(self, other: "Variable | LinExpr | Number") -> "LinExpr":
        o = LinExpr.of(other)
        coeffs = dict(self.coeffs)
        for v, c in o.coeffs.items():
            coeffs[v] = coeffs.get(v, 0.0) + c
        return LinExpr(coeffs, self.const + o.const)

    __radd__ = __add__

    def __neg__(self) -> "LinExpr":
        return LinExpr({v: -c for v, c in self.coeffs.items()}, -self.const)

    def __sub__(self, other: "Variable | LinExpr | Number") -> "LinExpr":
        return self + (-LinExpr.of(other))

    def __rsub__(self, other: Number) -> "LinExpr":
        return (-self) + other

    def __mul__(self, k: Number) -> "LinExpr":
        kf = float(k)
        return LinExpr({v: c * kf for v, c in self.coeffs.items()}, self.const * kf)

    __rmul__ = __mul__

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{c:+g}*{v.name}" for v, c in self.coeffs.items()]
        if self.const or not parts:
            parts.append(f"{self.const:+g}")
        return " ".join(parts)


Sense = Literal["<=", ">=", "=="]


@dataclass
class Constraint:
    """``expr (sense) rhs`` with the expression's constant folded into rhs."""

    expr: LinExpr
    sense: Sense
    rhs: float
    name: str = ""


@dataclass
class LPSolution:
    status: Literal["optimal", "infeasible", "unbounded"]
    objective: float = 0.0
    values: dict[Variable, float] = field(default_factory=dict)

    def __getitem__(self, v: Variable) -> float:
        return self.values[v]


class LPModel:
    """A minimization LP built incrementally.

    Typical use::

        m = LPModel()
        x = m.var("x"); y = m.var("y", lower=0)
        m.add(x - y, ">=", 1)
        m.minimize(x + 2*y)
        sol = m.solve(backend="simplex")
    """

    def __init__(self, name: str = "lp") -> None:
        self.name = name
        self.variables: list[Variable] = []
        self.lower: list[float | None] = []
        self.upper: list[float | None] = []
        self.constraints: list[Constraint] = []
        self.objective: LinExpr = LinExpr()

    def var(
        self,
        name: str | None = None,
        lower: Number | None = None,
        upper: Number | None = None,
    ) -> Variable:
        """Create a variable; default bounds are free (-inf, +inf)."""
        idx = len(self.variables)
        v = Variable(idx, name or f"x{idx}")
        self.variables.append(v)
        self.lower.append(None if lower is None else float(lower))
        self.upper.append(None if upper is None else float(upper))
        return v

    def add(
        self,
        expr: "Variable | LinExpr",
        sense: Sense,
        rhs: Number = 0,
        name: str = "",
    ) -> Constraint:
        e = LinExpr.of(expr)
        con = Constraint(
            LinExpr(e.coeffs), sense, float(rhs) - e.const, name
        )
        self.constraints.append(con)
        return con

    def add_abs_bound(
        self, bound: Variable, inner: "Variable | LinExpr", name: str = ""
    ) -> None:
        """Add ``bound >= |inner|`` via the paper's two inequalities.

        Section 4.1: ``theta + pi_x - pi_y >= 0`` and
        ``theta - pi_x + pi_y >= 0`` guarantee ``theta >= |pi_x - pi_y|``;
        at optimality equality holds whenever theta has positive objective
        weight.
        """
        e = LinExpr.of(inner)
        self.add(LinExpr.of(bound) + e, ">=", 0, name=f"{name}+")
        self.add(LinExpr.of(bound) - e, ">=", 0, name=f"{name}-")

    def minimize(self, expr: "Variable | LinExpr") -> None:
        self.objective = LinExpr.of(expr)

    @property
    def num_vars(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    def solve(self, backend: str = "simplex") -> LPSolution:
        """Solve with the chosen backend ("simplex" or "scipy")."""
        if backend == "simplex":
            from .simplex import solve_simplex

            return solve_simplex(self)
        if backend == "scipy":
            from .scipy_backend import solve_scipy

            return solve_scipy(self)
        raise ValueError(f"unknown LP backend {backend!r}")

    # -- dense export shared by backends ------------------------------------

    def to_dense(self):
        """Return ``(c, A_ub, b_ub, A_eq, b_eq, bounds)`` as numpy arrays.

        All constraints are normalized: ``<=`` rows in A_ub, ``==`` rows in
        A_eq (``>=`` rows are negated into ``<=``).
        """
        import numpy as np

        n = self.num_vars
        c = np.zeros(n)
        for v, coef in self.objective.coeffs.items():
            c[v.index] = coef
        a_ub: list[list[float]] = []
        b_ub: list[float] = []
        a_eq: list[list[float]] = []
        b_eq: list[float] = []
        for con in self.constraints:
            row = [0.0] * n
            for v, coef in con.expr.coeffs.items():
                row[v.index] = coef
            if con.sense == "<=":
                a_ub.append(row)
                b_ub.append(con.rhs)
            elif con.sense == ">=":
                a_ub.append([-x for x in row])
                b_ub.append(-con.rhs)
            else:
                a_eq.append(row)
                b_eq.append(con.rhs)
        bounds = list(zip(self.lower, self.upper))
        return (
            c,
            np.array(a_ub) if a_ub else np.zeros((0, n)),
            np.array(b_ub),
            np.array(a_eq) if a_eq else np.zeros((0, n)),
            np.array(b_eq),
            bounds,
        )
