"""Compact dynamic programming for discrete-metric labeling.

Section 3 solves mobile *stride* alignment (and, with the same machinery,
static axis alignment) under the discrete metric: every port gets a label
from a small candidate set, each edge pays its (closed-form, LIV-summed)
weight unless the labels at its two ports agree after the node's
transformation.  This is the "compact dynamic programming" of the
authors' POPL'93 paper: exact on trees via bottom-up tables over the
candidate sets, with spanning-tree + iterated-local-search refinement on
graphs with cycles, and exhaustive enumeration for (small) verification.

The formulation here is deliberately generic — a
:class:`DiscreteLabelingProblem` over hashable labels with per-edge
*relations* (e.g. a transpose node relates an axis permutation on one
side to the swapped permutation on the other) — so that axis and stride
alignment are both thin wrappers around it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from itertools import product
from typing import Callable, Hashable, Iterable, Mapping

Label = Hashable
NodeId = Hashable
# A relation maps the label at the edge tail to the label the head must
# carry for the edge to be communication-free.  Identity by default.
Relation = Callable[[Label], Label]
# Alternatively a predicate decides compatibility directly (used for
# non-functional constraints like transformer evaluation equalities).
Predicate = Callable[[Label, Label], bool]


def identity_relation(x: Label) -> Label:
    return x


@dataclass
class LabelEdge:
    u: NodeId
    v: NodeId
    weight: Fraction
    relation: Relation = identity_relation
    predicate: Predicate | None = None

    def cost(self, lu: Label, lv: Label) -> Fraction:
        if self.predicate is not None:
            return Fraction(0) if self.predicate(lu, lv) else self.weight
        return Fraction(0) if self.relation(lu) == lv else self.weight


@dataclass
class LabelingResult:
    labels: dict[NodeId, Label]
    cost: Fraction
    exact: bool


class DiscreteLabelingProblem:
    """Minimize total discrete-metric edge cost over per-node label choices."""

    def __init__(self) -> None:
        self.candidates: dict[NodeId, list[Label]] = {}
        self.edges: list[LabelEdge] = []
        self._adj: dict[NodeId, list[int]] = {}

    def add_node(self, node: NodeId, candidates: Iterable[Label]) -> None:
        cands = list(dict.fromkeys(candidates))
        if not cands:
            raise ValueError(f"node {node!r} has an empty candidate set")
        self.candidates[node] = cands
        self._adj.setdefault(node, [])

    def fix_node(self, node: NodeId, label: Label) -> None:
        """Pin a node to a single label (pre-aligned object, constraint)."""
        self.add_node(node, [label])

    def add_edge(
        self,
        u: NodeId,
        v: NodeId,
        weight: Fraction | int,
        relation: Relation = identity_relation,
        predicate: Predicate | None = None,
    ) -> None:
        if u not in self.candidates or v not in self.candidates:
            raise KeyError("both endpoints must be added before the edge")
        e = LabelEdge(u, v, Fraction(weight), relation, predicate)
        idx = len(self.edges)
        self.edges.append(e)
        self._adj[u].append(idx)
        self._adj[v].append(idx)

    # -- cost of a complete labeling -----------------------------------------

    def total_cost(self, labels: Mapping[NodeId, Label]) -> Fraction:
        return sum(
            (e.cost(labels[e.u], labels[e.v]) for e in self.edges), Fraction(0)
        )

    # -- exact DP on trees ------------------------------------------------------

    def _is_forest(self) -> bool:
        seen_edges: set[int] = set()
        visited: set[NodeId] = set()
        for root in self.candidates:
            if root in visited:
                continue
            stack = [(root, -1)]
            visited.add(root)
            while stack:
                node, via = stack.pop()
                for ei in self._adj[node]:
                    if ei == via or ei in seen_edges:
                        continue
                    e = self.edges[ei]
                    other = e.v if e.u == node else e.u
                    if other in visited:
                        return False
                    seen_edges.add(ei)
                    visited.add(other)
                    stack.append((other, ei))
        return True

    def solve_tree(self) -> LabelingResult:
        """Exact bottom-up DP; requires the edge structure to be a forest."""
        if not self._is_forest():
            raise ValueError("labeling graph is not a forest; use solve()")
        labels: dict[NodeId, Label] = {}
        total = Fraction(0)
        visited: set[NodeId] = set()
        for root in self.candidates:
            if root in visited:
                continue
            order: list[tuple[NodeId, int]] = []  # (node, via-edge) postorder
            stack = [(root, -1)]
            visited.add(root)
            while stack:
                node, via = stack.pop()
                order.append((node, via))
                for ei in self._adj[node]:
                    if ei == via:
                        continue
                    e = self.edges[ei]
                    other = e.v if e.u == node else e.u
                    if other not in visited:
                        visited.add(other)
                        stack.append((other, ei))
            # table[node][label] = best cost of node's subtree given label
            table: dict[NodeId, dict[Label, Fraction]] = {}
            choice: dict[tuple[NodeId, Label, int], Label] = {}
            for node, via in reversed(order):
                t = {lab: Fraction(0) for lab in self.candidates[node]}
                for ei in self._adj[node]:
                    if ei == via:
                        continue
                    e = self.edges[ei]
                    child = e.v if e.u == node else e.u
                    if child not in table:
                        continue  # not in this subtree (shouldn't happen)
                    for lab in t:
                        best = None
                        best_child = None
                        for clab, ccost in table[child].items():
                            ec = (
                                e.cost(lab, clab)
                                if e.u == node
                                else e.cost(clab, lab)
                            )
                            cand = ccost + ec
                            if best is None or cand < best:
                                best = cand
                                best_child = clab
                        t[lab] += best  # type: ignore[arg-type]
                        choice[(node, lab, ei)] = best_child
                table[node] = t
            # choose root label, then propagate down
            root_label = min(table[root], key=lambda lab: table[root][lab])
            total += table[root][root_label]
            labels[root] = root_label
            down = [(root, -1)]
            while down:
                node, via = down.pop()
                for ei in self._adj[node]:
                    if ei == via:
                        continue
                    e = self.edges[ei]
                    child = e.v if e.u == node else e.u
                    if child in labels:
                        continue
                    labels[child] = choice[(node, labels[node], ei)]
                    down.append((child, ei))
        return LabelingResult(labels, total, exact=True)

    # -- exhaustive (verification only) ------------------------------------------

    def solve_exhaustive(self, limit: int = 2_000_000) -> LabelingResult:
        nodes = list(self.candidates)
        size = 1
        for n in nodes:
            size *= len(self.candidates[n])
            if size > limit:
                raise ValueError(f"search space exceeds limit ({limit})")
        best_cost: Fraction | None = None
        best: dict[NodeId, Label] = {}
        for combo in product(*(self.candidates[n] for n in nodes)):
            labels = dict(zip(nodes, combo))
            c = self.total_cost(labels)
            if best_cost is None or c < best_cost:
                best_cost = c
                best = labels
        assert best_cost is not None
        return LabelingResult(best, best_cost, exact=True)

    # -- general graphs: spanning-tree seed + iterated conditional modes ---------

    def solve(self, max_rounds: int = 50) -> LabelingResult:
        """Exact on forests; otherwise spanning-tree DP seed + ICM refinement.

        The discrete-metric alignment problem on general graphs is NP-hard
        (the POPL'93 paper); this mirrors the authors' "compact dynamic
        programming" practice: solve the dominant tree structure exactly,
        then settle cycle edges by coordinate descent to a local optimum.
        """
        if self._is_forest():
            return self.solve_tree()
        # Build a spanning forest sub-problem with the same candidates.
        tree = DiscreteLabelingProblem()
        for n, cands in self.candidates.items():
            tree.add_node(n, cands)
        visited: set[NodeId] = set()
        for root in self.candidates:
            if root in visited:
                continue
            visited.add(root)
            stack = [root]
            while stack:
                node = stack.pop()
                for ei in self._adj[node]:
                    e = self.edges[ei]
                    other = e.v if e.u == node else e.u
                    if other in visited:
                        continue
                    visited.add(other)
                    tree.add_edge(e.u, e.v, e.weight, e.relation, e.predicate)
                    stack.append(other)
        seed = tree.solve_tree().labels
        labels = dict(seed)
        # Iterated conditional modes on the full edge set.
        for _ in range(max_rounds):
            changed = False
            for node in self.candidates:
                if len(self.candidates[node]) == 1:
                    continue
                best_lab = labels[node]
                best_cost = self._local_cost(node, best_lab, labels)
                for lab in self.candidates[node]:
                    c = self._local_cost(node, lab, labels)
                    if c < best_cost:
                        best_cost = c
                        best_lab = lab
                        changed = True
                labels[node] = best_lab
            if not changed:
                break
        return LabelingResult(labels, self.total_cost(labels), exact=False)

    def _local_cost(
        self, node: NodeId, lab: Label, labels: Mapping[NodeId, Label]
    ) -> Fraction:
        total = Fraction(0)
        for ei in self._adj[node]:
            e = self.edges[ei]
            if e.u == node:
                total += e.cost(lab, labels[e.v])
            else:
                total += e.cost(labels[e.u], lab)
        return total
