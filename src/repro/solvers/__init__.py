"""Optimization substrates: LP (simplex + HiGHS), max-flow/min-cut, DP.

These are the "standard packages" the paper assumes; all are implemented
from scratch here, with scipy/networkx used only as cross-checks.
"""

from .lp import Constraint, LinExpr, LPModel, LPSolution, Variable
from .simplex import SimplexError, solve_simplex
from .scipy_backend import solve_scipy
from .maxflow import INF, FlowNetwork
from .dp import (
    DiscreteLabelingProblem,
    LabelEdge,
    LabelingResult,
    identity_relation,
)

__all__ = [
    "Constraint",
    "LinExpr",
    "LPModel",
    "LPSolution",
    "Variable",
    "SimplexError",
    "solve_simplex",
    "solve_scipy",
    "INF",
    "FlowNetwork",
    "DiscreteLabelingProblem",
    "LabelEdge",
    "LabelingResult",
    "identity_relation",
]
