"""Crash-safe file writes, shared by every report/cache emitter.

A plain ``json.dump`` (or ``pickle.dump``) to an open destination file
leaves a truncated, unparseable artifact if the process dies mid-write —
which matters once files outlive the process that wrote them: batch
report JSONs consumed by CI, Chrome traces opened in Perfetto, and
above all the persistent plan cache of :mod:`repro.serve`, whose whole
contract is that a killed daemon never leaves a corrupt entry behind.

The pattern here is the standard one: write the full payload to a
temporary file *in the same directory* (same filesystem, so the final
rename cannot degrade to a copy), fsync it, then :func:`os.replace` it
over the destination — atomic on POSIX and Windows alike.  Readers
therefore see either the old content or the new content, never a
prefix of the new one.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + ``os.replace``)."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-", suffix="~")
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(data)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> None:
    """Atomic text-mode companion to :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(path: str, obj: Any, indent: int | None = 2) -> None:
    """Serialize ``obj`` as JSON and write it atomically.

    Serialization happens *before* any file is touched, so a
    non-serializable object cannot clobber an existing artifact either.
    """
    atomic_write_text(path, json.dumps(obj, indent=indent))
