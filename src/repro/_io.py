"""Crash-safe file writes, shared by every report/cache emitter.

A plain ``json.dump`` (or ``pickle.dump``) to an open destination file
leaves a truncated, unparseable artifact if the process dies mid-write —
which matters once files outlive the process that wrote them: batch
report JSONs consumed by CI, Chrome traces opened in Perfetto, and
above all the persistent plan cache of :mod:`repro.serve`, whose whole
contract is that a killed daemon never leaves a corrupt entry behind.

The pattern here is the standard one: write the full payload to a
temporary file *in the same directory* (same filesystem, so the final
rename cannot degrade to a copy), fsync it, then :func:`os.replace` it
over the destination — atomic on POSIX and Windows alike.  Readers
therefore see either the old content or the new content, never a
prefix of the new one.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + ``os.replace``)."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-", suffix="~")
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(data)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> None:
    """Atomic text-mode companion to :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(path: str, obj: Any, indent: int | None = 2) -> None:
    """Serialize ``obj`` as JSON and write it atomically.

    Serialization happens *before* any file is touched, so a
    non-serializable object cannot clobber an existing artifact either.
    """
    atomic_write_text(path, json.dumps(obj, indent=indent))


def append_line(path: str, line: str, encoding: str = "utf-8") -> None:
    """Append one newline-terminated record to ``path`` (created if
    missing).

    The complement of the atomic-replace writers above, for logs that
    *grow*: the file is opened with ``O_APPEND``, the whole record is a
    single ``write`` of one line, and POSIX guarantees append writes
    are not interleaved with other appenders for ordinary files — so
    concurrent threads (the serve access log is written from a thread
    pool) each land one intact line.  The line itself must not contain
    a newline; serialize first, then append.
    """
    if "\n" in line:
        raise ValueError("append_line records must be single lines")
    data = (line + "\n").encode(encoding)
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, data)
    finally:
        os.close(fd)


def append_jsonl(path: str, obj: Any) -> None:
    """Serialize ``obj`` compactly and append it as one JSON line.

    Serialization happens before the file is opened (a non-serializable
    record cannot leave a partial line), and the single-write append of
    :func:`append_line` keeps concurrent writers' records intact.
    """
    append_line(path, json.dumps(obj, separators=(",", ":")))
