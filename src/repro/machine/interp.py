"""Reference interpreter: numpy semantics for the mini language.

Alignment analysis must never change program meaning; this interpreter
defines that meaning.  Language tests execute programs here and compare
against hand-computed results; the machine simulator shares its
section/spread/reduction semantics.

Arrays are Fortran-style 1-based in the surface language and stored as
0-based numpy arrays internally.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..ir.affine import AffineForm
from ..ir.symbols import LIV
from ..lang import ast as A

_INTRINSICS = {
    "cos": np.cos,
    "sin": np.sin,
    "exp": np.exp,
    "sqrt": np.sqrt,
    "abs": np.abs,
    "log": np.log,
    "tanh": np.tanh,
}

_REDUCTIONS = {
    "sum": np.sum,
    "product": np.prod,
    "maxval": np.max,
    "minval": np.min,
}


class InterpreterError(RuntimeError):
    pass


class Interpreter:
    """Executes a program; array state is a dict of numpy arrays."""

    def __init__(self, program: A.Program, init: Mapping[str, np.ndarray] | None = None):
        self.program = program
        self.state: dict[str, np.ndarray] = {}
        for d in program.decls:
            if init and d.name in init:
                arr = np.array(init[d.name], dtype=float)
                if arr.shape != d.dims:
                    raise InterpreterError(
                        f"initializer for {d.name} has shape {arr.shape}, "
                        f"declared {d.dims}"
                    )
                self.state[d.name] = arr
            else:
                self.state[d.name] = np.zeros(d.dims)
        self.env: dict[LIV, int] = {}

    # -- helpers -----------------------------------------------------------

    def _int(self, form: AffineForm) -> int:
        v = form.evaluate(self.env)
        if v.denominator != 1:
            raise InterpreterError(f"non-integer index {form} = {v}")
        return int(v)

    def _np_index(self, ref: A.Ref):
        """Convert subscripts to a numpy index tuple (0-based)."""
        decl = self.program.decl(ref.name)
        if not ref.subscripts:
            return (slice(None),) * decl.rank
        out = []
        for sub, extent in zip(ref.subscripts, decl.dims):
            if isinstance(sub, A.FullSlice):
                out.append(slice(None))
            elif isinstance(sub, A.Index):
                i = self._int(sub.value)
                if not 1 <= i <= extent:
                    raise InterpreterError(
                        f"{ref.name}: index {i} out of bounds 1..{extent}"
                    )
                out.append(i - 1)
            else:
                assert isinstance(sub, A.Slice)
                lo = self._int(sub.lo)
                hi = self._int(sub.hi)
                st = self._int(sub.step)
                if st == 0:
                    raise InterpreterError("zero section step")
                if not (1 <= lo <= extent and 1 <= hi <= extent):
                    raise InterpreterError(
                        f"{ref.name}: section {lo}:{hi}:{st} out of bounds 1..{extent}"
                    )
                out.append(slice(lo - 1, hi - 1 + (1 if st > 0 else -1) or None, st))
        return tuple(out)

    # -- execution -------------------------------------------------------------

    def run(self) -> dict[str, np.ndarray]:
        self._block(self.program.body)
        return self.state

    def _block(self, stmts) -> None:
        for s in stmts:
            if isinstance(s, A.Assign):
                value = self._eval(s.rhs)
                idx = self._np_index(s.lhs)
                self.state[s.lhs.name][idx] = value
            elif isinstance(s, A.Do):
                liv = LIV(s.liv, 0)
                k = s.lo
                while (s.step > 0 and k <= s.hi) or (s.step < 0 and k >= s.hi):
                    self.env[liv] = k
                    self._block(s.body)
                    k += s.step
                self.env.pop(liv, None)
            elif isinstance(s, A.If):
                cond = self._condition(s.cond)
                self._block(s.then_body if cond else s.else_body)
            else:
                raise InterpreterError(f"unknown statement {s!r}")

    def _condition(self, cond: str) -> bool:
        """Branch conditions are opaque to alignment; the interpreter
        resolves names bound in the state's scalars or defaults to True."""
        text = cond.strip()
        if text in ("true", ".true.", "1"):
            return True
        if text in ("false", ".false.", "0"):
            return False
        return True

    def _eval(self, e: A.Expr):
        if isinstance(e, A.Const):
            return e.value
        if isinstance(e, A.ScalarRef):
            raise InterpreterError(f"unbound scalar {e.name}")
        if isinstance(e, A.Ref):
            if e.name not in self.state and not e.subscripts:
                # A bare identifier may be a LIV used as a scalar value.
                liv = LIV(e.name, 0)
                if liv in self.env:
                    return float(self.env[liv])
                raise InterpreterError(f"undeclared array or LIV {e.name!r}")
            return self.state[e.name][self._np_index(e)]
        if isinstance(e, A.BinOp):
            l = self._eval(e.left)
            r = self._eval(e.right)
            if e.op == "+":
                return l + r
            if e.op == "-":
                return l - r
            if e.op == "*":
                return l * r
            if e.op == "/":
                return l / r
            raise InterpreterError(f"unknown operator {e.op}")
        if isinstance(e, A.UnaryOp):
            return -self._eval(e.operand)
        if isinstance(e, A.Intrinsic):
            return _INTRINSICS[e.name](self._eval(e.operand))
        if isinstance(e, A.Transpose):
            return np.transpose(self._eval(e.operand))
        if isinstance(e, A.Spread):
            v = np.asarray(self._eval(e.operand))
            return np.repeat(np.expand_dims(v, e.dim - 1), e.ncopies, axis=e.dim - 1)
        if isinstance(e, A.Reduce):
            v = np.asarray(self._eval(e.operand))
            fn = _REDUCTIONS[e.op]
            if e.dim is None:
                return fn(v)
            return fn(v, axis=e.dim - 1)
        if isinstance(e, A.Gather):
            table = self.state[e.table.name][self._np_index(e.table)]
            idx = np.asarray(self._eval(e.index)).astype(int) - 1
            if np.any((idx < 0) | (idx >= table.shape[0])):
                raise InterpreterError("gather index out of bounds")
            return table[idx]
        raise InterpreterError(f"unknown expression {e!r}")


def run_program(
    program: A.Program, init: Mapping[str, np.ndarray] | None = None
) -> dict[str, np.ndarray]:
    """Execute ``program`` and return the final array state."""
    return Interpreter(program, init).run()
