"""Distributions: template cells -> processors.

The paper's second phase (which it explicitly defers) maps template
cells onto processors; the simulator implements the three standard HPF
distributions per axis — block, cyclic, block-cyclic — plus the identity
distribution (one processor per cell) under which processor-hop counts
coincide exactly with the paper's grid-metric cost, which is what the
equation-1 validation experiment uses.

All mapping functions are vectorized over numpy arrays of cell
coordinates, and all of them enforce one shared contract via
:func:`validate_cells`: a distribution owns the template cells in
``[base, base + coverage)`` (``coverage`` is infinite for the wrapping
schemes and for the identity machine) and mapping any cell outside that
range is an error, never a silent clip or wrap of data the distribution
does not own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..topology import AxisMetric
from .template import ProcessorGrid, Template


def validate_cells(
    cells: np.ndarray,
    base: int,
    coverage: int | None,
    kind: str,
) -> np.ndarray:
    """Enforce the ``AxisDistribution.map`` contract; return cells - base.

    Every axis distribution covers the half-open cell range
    ``[base, base + coverage)`` (``coverage=None`` means unbounded above:
    cyclic schemes wrap forever).  Cells below ``base`` — in particular
    negative cells under the default base 0 — or at/past the coverage
    limit are rejected with :class:`ValueError` so that Block, Cyclic and
    BlockCyclic all fail identically instead of Block clipping and
    Cyclic wrapping out-of-contract data onto arbitrary processors.
    """
    arr = np.asarray(cells)
    rel = arr - base
    if arr.size:
        lo = int(rel.min())
        if lo < 0:
            raise ValueError(
                f"{kind}: cell {base + lo} below distribution base {base}"
            )
        if coverage is not None:
            hi = int(rel.max())
            if hi >= coverage:
                raise ValueError(
                    f"{kind}: cell {base + hi} outside covered range "
                    f"[{base}, {base + coverage})"
                )
    return rel


class AxisDistribution:
    """Maps one template axis's cell coordinates to processor coords."""

    def map(self, cells: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def processor_coordinate_distance(
        self, a: np.ndarray, b: np.ndarray, metric: AxisMetric | None = None
    ) -> np.ndarray:
        """Hop distance between the owners of cells ``a`` and ``b``.

        ``metric`` is the interconnect's per-axis distance kernel
        (:mod:`repro.topology`); ``None`` is the paper's open chain,
        ``|proc(a) - proc(b)|``.
        """
        pa, pb = self.map(a), self.map(b)
        if metric is None:
            return np.abs(pa - pb)
        return metric.hops(pa, pb)


@dataclass(frozen=True)
class Block(AxisDistribution):
    """Contiguous blocks of ``block`` cells per processor, from ``base``.

    Covers exactly ``nprocs * block`` cells; anything outside is a
    contract violation (the old behaviour silently clipped such cells
    onto the first/last processor, undercounting hops).
    """

    nprocs: int
    block: int
    base: int = 0

    def __post_init__(self) -> None:
        if self.nprocs <= 0 or self.block <= 0:
            raise ValueError("Block needs nprocs >= 1 and block >= 1")

    @property
    def coverage(self) -> int:
        return self.nprocs * self.block

    def map(self, cells: np.ndarray) -> np.ndarray:
        rel = validate_cells(cells, self.base, self.coverage, "Block")
        return rel // self.block


@dataclass(frozen=True)
class Cyclic(AxisDistribution):
    """Cell c lives on processor ``(c - base) mod nprocs``."""

    nprocs: int
    base: int = 0

    def __post_init__(self) -> None:
        if self.nprocs <= 0:
            raise ValueError("Cyclic needs nprocs >= 1")

    def map(self, cells: np.ndarray) -> np.ndarray:
        rel = validate_cells(cells, self.base, None, "Cyclic")
        return np.mod(rel, self.nprocs)


@dataclass(frozen=True)
class BlockCyclic(AxisDistribution):
    """Blocks of ``block`` cells dealt cyclically to processors."""

    nprocs: int
    block: int
    base: int = 0

    def __post_init__(self) -> None:
        if self.nprocs <= 0 or self.block <= 0:
            raise ValueError("BlockCyclic needs nprocs >= 1 and block >= 1")

    def map(self, cells: np.ndarray) -> np.ndarray:
        rel = validate_cells(cells, self.base, None, "BlockCyclic")
        return np.mod(rel // self.block, self.nprocs)


@dataclass(frozen=True)
class Identity(AxisDistribution):
    """One processor per template cell: the cost-model-exact machine.

    This is the paper's analytic machine over the conceptually infinite
    template, so any integer cell (negative included) is in contract.
    """

    def map(self, cells: np.ndarray) -> np.ndarray:
        return np.asarray(cells)


def _bases(grid: ProcessorGrid, bases: Sequence[int] | None) -> list[int]:
    if bases is None:
        return [0] * grid.rank
    if len(bases) != grid.rank:
        raise ValueError("bases must match the processor-grid rank")
    return list(bases)


@dataclass
class Distribution:
    """A full template distribution: one AxisDistribution per axis."""

    axes: tuple[AxisDistribution, ...]

    @property
    def rank(self) -> int:
        return len(self.axes)

    @classmethod
    def identity(cls, rank: int) -> "Distribution":
        return cls(tuple(Identity() for _ in range(rank)))

    @classmethod
    def block(
        cls,
        template: Template,
        grid: ProcessorGrid,
        bases: Sequence[int] | None = None,
    ) -> "Distribution":
        if not template.extents:
            raise ValueError("block distribution needs template extents")
        axes = []
        for ext, p, lo in zip(template.extents, grid.shape, _bases(grid, bases)):
            blk = max(1, -(-ext // p))  # ceil division
            axes.append(Block(p, blk, lo))
        return cls(tuple(axes))

    @classmethod
    def cyclic(
        cls,
        template: Template,
        grid: ProcessorGrid,
        bases: Sequence[int] | None = None,
    ) -> "Distribution":
        return cls(
            tuple(Cyclic(p, lo) for p, lo in zip(grid.shape, _bases(grid, bases)))
        )

    @classmethod
    def block_cyclic(
        cls,
        template: Template,
        grid: ProcessorGrid,
        block: int | Sequence[int] = 4,
        bases: Sequence[int] | None = None,
    ) -> "Distribution":
        blocks = [block] * grid.rank if isinstance(block, int) else list(block)
        return cls(
            tuple(
                BlockCyclic(p, b, lo)
                for p, b, lo in zip(grid.shape, blocks, _bases(grid, bases))
            )
        )

    def map_cells(self, cells: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Per-axis processor coordinates for arrays of cell coordinates."""
        return [ax.map(np.asarray(c)) for ax, c in zip(self.axes, cells)]

    def moved_mask(
        self, src: Sequence[np.ndarray], dst: Sequence[np.ndarray]
    ) -> np.ndarray:
        """Boolean mask of elements whose processor changes."""
        moved = None
        for ax, s, d in zip(self.axes, src, dst):
            m = ax.map(np.asarray(s)) != ax.map(np.asarray(d))
            moved = m if moved is None else (moved | m)
        assert moved is not None
        return moved

    def hop_distance(
        self,
        src: Sequence[np.ndarray],
        dst: Sequence[np.ndarray],
        metrics: Sequence[AxisMetric] | None = None,
    ) -> np.ndarray:
        """Per-element processor-hop distance, summed over axes.

        ``metrics`` (one per axis, from
        :func:`repro.topology.distribution_metrics`) prices each axis
        with the machine's interconnect; ``None`` is the paper's L1
        grid metric.
        """
        total = None
        for i, (ax, s, d) in enumerate(zip(self.axes, src, dst)):
            h = ax.processor_coordinate_distance(
                np.asarray(s),
                np.asarray(d),
                None if metrics is None else metrics[i],
            )
            total = h if total is None else total + h
        assert total is not None
        return total
