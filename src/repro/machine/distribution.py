"""Distributions: template cells -> processors.

The paper's second phase (which it explicitly defers) maps template
cells onto processors; the simulator implements the three standard HPF
distributions per axis — block, cyclic, block-cyclic — plus the identity
distribution (one processor per cell) under which processor-hop counts
coincide exactly with the paper's grid-metric cost, which is what the
equation-1 validation experiment uses.

All mapping functions are vectorized over numpy arrays of cell
coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .template import ProcessorGrid, Template


class AxisDistribution:
    """Maps one template axis's cell coordinates to processor coords."""

    def map(self, cells: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def processor_coordinate_distance(
        self, a: np.ndarray, b: np.ndarray
    ) -> np.ndarray:
        """|proc(a) - proc(b)| along this axis (hop distance)."""
        return np.abs(self.map(a) - self.map(b))


@dataclass
class Block(AxisDistribution):
    """Contiguous blocks of ``block`` cells per processor, from ``base``."""

    nprocs: int
    block: int
    base: int = 0

    def map(self, cells: np.ndarray) -> np.ndarray:
        return np.clip((cells - self.base) // self.block, 0, self.nprocs - 1)


@dataclass
class Cyclic(AxisDistribution):
    """Cell c lives on processor ``(c - base) mod nprocs``."""

    nprocs: int
    base: int = 0

    def map(self, cells: np.ndarray) -> np.ndarray:
        return np.mod(cells - self.base, self.nprocs)


@dataclass
class BlockCyclic(AxisDistribution):
    """Blocks of ``block`` cells dealt cyclically to processors."""

    nprocs: int
    block: int
    base: int = 0

    def map(self, cells: np.ndarray) -> np.ndarray:
        return np.mod((cells - self.base) // self.block, self.nprocs)


@dataclass
class Identity(AxisDistribution):
    """One processor per template cell: the cost-model-exact machine."""

    def map(self, cells: np.ndarray) -> np.ndarray:
        return np.asarray(cells)


@dataclass
class Distribution:
    """A full template distribution: one AxisDistribution per axis."""

    axes: tuple[AxisDistribution, ...]

    @property
    def rank(self) -> int:
        return len(self.axes)

    @classmethod
    def identity(cls, rank: int) -> "Distribution":
        return cls(tuple(Identity() for _ in range(rank)))

    @classmethod
    def block(cls, template: Template, grid: ProcessorGrid) -> "Distribution":
        if not template.extents:
            raise ValueError("block distribution needs template extents")
        axes = []
        for ext, p in zip(template.extents, grid.shape):
            blk = max(1, -(-ext // p))  # ceil division
            axes.append(Block(p, blk))
        return cls(tuple(axes))

    @classmethod
    def cyclic(cls, template: Template, grid: ProcessorGrid) -> "Distribution":
        return cls(tuple(Cyclic(p) for p in grid.shape))

    @classmethod
    def block_cyclic(
        cls, template: Template, grid: ProcessorGrid, block: int | Sequence[int] = 4
    ) -> "Distribution":
        blocks = [block] * grid.rank if isinstance(block, int) else list(block)
        return cls(
            tuple(BlockCyclic(p, b) for p, b in zip(grid.shape, blocks))
        )

    def map_cells(self, cells: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Per-axis processor coordinates for arrays of cell coordinates."""
        return [ax.map(np.asarray(c)) for ax, c in zip(self.axes, cells)]

    def moved_mask(
        self, src: Sequence[np.ndarray], dst: Sequence[np.ndarray]
    ) -> np.ndarray:
        """Boolean mask of elements whose processor changes."""
        moved = None
        for ax, s, d in zip(self.axes, src, dst):
            m = ax.map(np.asarray(s)) != ax.map(np.asarray(d))
            moved = m if moved is None else (moved | m)
        assert moved is not None
        return moved

    def hop_distance(
        self, src: Sequence[np.ndarray], dst: Sequence[np.ndarray]
    ) -> np.ndarray:
        """Per-element L1 distance in processor-grid hops."""
        total = None
        for ax, s, d in zip(self.axes, src, dst):
            h = ax.processor_coordinate_distance(np.asarray(s), np.asarray(d))
            total = h if total is None else total + h
        assert total is not None
        return total
