"""Tabular reporting helpers shared by examples and benchmarks."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None
) -> str:
    """Render an ASCII table (the benches print paper-style rows)."""
    srows = [[str(c) for c in r] for r in rows]
    widths = [len(h) for h in headers]
    for r in srows:
        for i, c in enumerate(r):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for r in srows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)
