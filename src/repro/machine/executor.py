"""Operational communication measurement for an aligned program.

Walks every ADG edge over its iteration space and counts the actual
communication (elements moved, processor hops, broadcasts) that a
distributed-memory runtime would perform under a chosen distribution.
Under the identity distribution (one processor per template cell) the
hop count equals the paper's equation-1 cost exactly — the validation
experiment E11 asserts that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping

from ..adg.graph import ADG, ADGEdge
from ..align.cost import AlignmentMap
from ..align.pipeline import AlignmentPlan
from ..ir.symbols import LIV
from ..obs import spans as obs
from ..topology import Topology, distribution_metrics
from .comm import MoveCount, _axis_positions, count_move
from .distribution import Distribution
from .template import ProcessorGrid, Template


@dataclass
class EdgeTraffic:
    edge: ADGEdge
    count: MoveCount


@dataclass
class TrafficReport:
    edges: list[EdgeTraffic] = field(default_factory=list)

    @property
    def elements_moved(self) -> int:
        return sum(t.count.elements_moved for t in self.edges)

    @property
    def hop_cost(self) -> int:
        return sum(t.count.hop_cost for t in self.edges)

    @property
    def broadcast_elements(self) -> int:
        return sum(t.count.broadcast_elements for t in self.edges)

    @property
    def general_edges(self) -> int:
        return sum(1 for t in self.edges if t.count.general)

    @property
    def general_elements(self) -> int:
        """Elements moved by general (axis/stride-mismatch) comm — the
        analytic discrete-metric charge; hop_cost excludes them."""
        return sum(t.count.general_elements for t in self.edges)

    def nonzero(self) -> list[EdgeTraffic]:
        return [
            t
            for t in self.edges
            if t.count.elements_moved or t.count.broadcast_elements
        ]

    def summary(self) -> str:
        return (
            f"moved={self.elements_moved} hops={self.hop_cost} "
            f"broadcast={self.broadcast_elements} general_edges={self.general_edges}"
        )


def _shape_at(port, env: Mapping[LIV, int]) -> tuple[int, ...]:
    out = []
    for ext in port.shape:
        v = ext.evaluate(env)
        if v.denominator != 1 or v < 0:
            raise ValueError(f"extent {ext} evaluates to {v} at {env}")
        out.append(int(v))
    return tuple(out)


def coordinate_bounds(
    adg: ADG, alignments: AlignmentMap
) -> tuple[tuple[int, int], ...]:
    """Exact per-template-axis ``(lo, hi)`` cell bounds actually touched.

    Walks every edge over its iteration space and takes the min/max
    template coordinate reached by either endpoint's alignment on every
    non-replicated axis.  Distributions sized from these bounds are
    guaranteed to own every cell the traffic measurement will visit —
    mobile offsets routinely push coordinates negative, so a heuristic
    window anchored at 0 is not safe.  Untouched axes get ``(0, 0)``.
    """
    lo: list[int | None] = [None] * adg.template_rank
    hi: list[int | None] = [None] * adg.template_rank
    for e in adg.edges:
        for env in e.space.points():
            shape = _shape_at(e.tail, env)
            for port in (e.tail, e.head):
                align = alignments[port.key]
                pos = _axis_positions(align, shape, env)
                for t, (ax, arr) in enumerate(zip(align.axes, pos)):
                    if ax.is_replicated or arr.size == 0:
                        continue
                    a_lo, a_hi = int(arr.min()), int(arr.max())
                    lo[t] = a_lo if lo[t] is None else min(lo[t], a_lo)
                    hi[t] = a_hi if hi[t] is None else max(hi[t], a_hi)
    return tuple(
        (0, 0) if l is None else (l, h)  # type: ignore[misc]
        for l, h in zip(lo, hi)
    )


def measure_traffic(
    adg: ADG,
    alignments: AlignmentMap,
    dist: Distribution,
    control_weighted: bool = False,
    topology: Topology | None = None,
) -> TrafficReport:
    """Count all residual communication of the aligned program.

    ``control_weighted=False`` counts every edge as executing (the
    worst-case trace); with True, counts are scaled by the edge's
    control weight (expected-cost mode for branches).  ``topology``
    prices hops with the machine's interconnect metrics
    (:mod:`repro.topology`); ``None`` is the paper's L1 grid.
    """
    metrics = (
        None if topology is None else distribution_metrics(topology, dist)
    )
    report = TrafficReport()
    with obs.span(
        "machine.simulate",
        edges=len(adg.edges),
        topology="L1-grid" if topology is None else topology.spec(),
    ):
        for e in adg.edges:
            total = MoveCount()
            for env in e.space.points():
                shape = _shape_at(e.tail, env)
                mc = count_move(
                    alignments[e.tail.key],
                    alignments[e.head.key],
                    shape,
                    env,
                    dist,
                    metrics,
                )
                total = total + mc
            if control_weighted and e.control_weight != 1.0:
                f = e.control_weight
                total = MoveCount(
                    total.elements,
                    int(round(total.elements_moved * f)),
                    int(round(total.hop_cost * f)),
                    int(round(total.broadcast_elements * f)),
                    total.general,
                    int(round(total.general_elements * f)),
                )
            report.edges.append(EdgeTraffic(e, total))
    return report


def measure_plan(
    plan: AlignmentPlan,
    dist: Distribution | None = None,
    processors: tuple[int, ...] | None = None,
    scheme: str = "identity",
    topology: Topology | None = None,
) -> TrafficReport:
    """Measure an :class:`AlignmentPlan` under a distribution scheme.

    ``scheme`` in {"identity", "block", "cyclic", "block-cyclic"}; for
    non-identity schemes a processor grid must be given.  The template
    window is the exact :func:`coordinate_bounds` of the aligned traffic,
    so the distribution owns every cell the measurement touches.
    ``topology`` selects the interconnect pricing hops (default: the
    paper's L1 grid).
    """
    adg = plan.adg
    if dist is None:
        if scheme == "identity":
            dist = Distribution.identity(adg.template_rank)
        else:
            if processors is None:
                raise ValueError("non-identity schemes need a processor grid")
            bounds = coordinate_bounds(adg, plan.alignments)
            window = tuple(h - l + 1 for l, h in bounds)
            bases = tuple(l for l, _ in bounds)
            template = Template.for_window(window)
            grid = ProcessorGrid(processors)
            if scheme == "block":
                dist = Distribution.block(template, grid, bases)
            elif scheme == "cyclic":
                dist = Distribution.cyclic(template, grid, bases)
            elif scheme == "block-cyclic":
                dist = Distribution.block_cyclic(template, grid, bases=bases)
            else:
                raise ValueError(f"unknown scheme {scheme!r}")
    return measure_traffic(adg, plan.alignments, dist, topology=topology)
