"""Operational communication measurement for an aligned program.

Walks every ADG edge over its iteration space and counts the actual
communication (elements moved, processor hops, broadcasts) that a
distributed-memory runtime would perform under a chosen distribution.
Under the identity distribution (one processor per template cell) the
hop count equals the paper's equation-1 cost exactly — the validation
experiment E11 asserts that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping

from ..adg.graph import ADG, ADGEdge
from ..align.cost import AlignmentMap
from ..align.pipeline import AlignmentPlan
from ..ir.symbols import LIV
from .comm import MoveCount, count_move
from .distribution import Distribution
from .template import ProcessorGrid, Template


@dataclass
class EdgeTraffic:
    edge: ADGEdge
    count: MoveCount


@dataclass
class TrafficReport:
    edges: list[EdgeTraffic] = field(default_factory=list)

    @property
    def elements_moved(self) -> int:
        return sum(t.count.elements_moved for t in self.edges)

    @property
    def hop_cost(self) -> int:
        return sum(t.count.hop_cost for t in self.edges)

    @property
    def broadcast_elements(self) -> int:
        return sum(t.count.broadcast_elements for t in self.edges)

    @property
    def general_edges(self) -> int:
        return sum(1 for t in self.edges if t.count.general)

    def nonzero(self) -> list[EdgeTraffic]:
        return [
            t
            for t in self.edges
            if t.count.elements_moved or t.count.broadcast_elements
        ]

    def summary(self) -> str:
        return (
            f"moved={self.elements_moved} hops={self.hop_cost} "
            f"broadcast={self.broadcast_elements} general_edges={self.general_edges}"
        )


def _shape_at(port, env: Mapping[LIV, int]) -> tuple[int, ...]:
    out = []
    for ext in port.shape:
        v = ext.evaluate(env)
        if v.denominator != 1 or v < 0:
            raise ValueError(f"extent {ext} evaluates to {v} at {env}")
        out.append(int(v))
    return tuple(out)


def measure_traffic(
    adg: ADG,
    alignments: AlignmentMap,
    dist: Distribution,
    control_weighted: bool = False,
) -> TrafficReport:
    """Count all residual communication of the aligned program.

    ``control_weighted=False`` counts every edge as executing (the
    worst-case trace); with True, counts are scaled by the edge's
    control weight (expected-cost mode for branches).
    """
    report = TrafficReport()
    for e in adg.edges:
        total = MoveCount()
        for env in e.space.points():
            shape = _shape_at(e.tail, env)
            mc = count_move(
                alignments[id(e.tail)],
                alignments[id(e.head)],
                shape,
                env,
                dist,
            )
            total = total + mc
        if control_weighted and e.control_weight != 1.0:
            f = e.control_weight
            total = MoveCount(
                total.elements,
                int(round(total.elements_moved * f)),
                int(round(total.hop_cost * f)),
                int(round(total.broadcast_elements * f)),
                total.general,
            )
        report.edges.append(EdgeTraffic(e, total))
    return report


def measure_plan(
    plan: AlignmentPlan,
    dist: Distribution | None = None,
    processors: tuple[int, ...] | None = None,
    scheme: str = "identity",
) -> TrafficReport:
    """Measure an :class:`AlignmentPlan` under a distribution scheme.

    ``scheme`` in {"identity", "block", "cyclic", "block-cyclic"}; for
    non-identity schemes a processor grid must be given.  The template
    window is sized from the largest offsets/extents in play — a small
    overapproximation is harmless (empty cells own no data).
    """
    adg = plan.adg
    if dist is None:
        if scheme == "identity":
            dist = Distribution.identity(adg.template_rank)
        else:
            if processors is None:
                raise ValueError("non-identity schemes need a processor grid")
            window = tuple(
                max(
                    (
                        max(d for d in decl.dims)
                        for decl in plan.program.decls
                    ),
                    default=64,
                )
                * 2
                for _ in range(adg.template_rank)
            )
            template = Template.for_window(window)
            grid = ProcessorGrid(processors)
            if scheme == "block":
                dist = Distribution.block(template, grid)
            elif scheme == "cyclic":
                dist = Distribution.cyclic(template, grid)
            elif scheme == "block-cyclic":
                dist = Distribution.block_cyclic(template, grid)
            else:
                raise ValueError(f"unknown scheme {scheme!r}")
    return measure_traffic(adg, plan.alignments, dist)
