"""Templates and processor grids.

The template is the paper's conceptually infinite Cartesian grid of
cells.  The machine simulator needs only a finite window of it — the
cells actually occupied by objects — mapped onto a processor grid by a
distribution (:mod:`repro.machine.distribution`).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Template:
    """A t-dimensional template; ``extents`` bound the occupied window.

    Cells outside the window are legal (the template is infinite);
    distributions wrap or clamp as their policy dictates.
    """

    rank: int
    extents: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.extents and len(self.extents) != self.rank:
            raise ValueError("extents must match template rank")

    @classmethod
    def for_window(cls, extents: tuple[int, ...]) -> "Template":
        return cls(len(extents), extents)


@dataclass(frozen=True)
class ProcessorGrid:
    """A Cartesian grid of processors, one axis per template axis."""

    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        if any(p <= 0 for p in self.shape):
            raise ValueError("processor counts must be positive")

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def num_processors(self) -> int:
        n = 1
        for p in self.shape:
            n *= p
        return n

    def linearize(self, coords: tuple[int, ...]) -> int:
        """Row-major linear processor id."""
        pid = 0
        for c, p in zip(coords, self.shape):
            pid = pid * p + (c % p)
        return pid
