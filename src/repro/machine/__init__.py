"""Distributed-memory machine simulator: distributions + traffic counting."""

from .template import ProcessorGrid, Template
from .distribution import (
    AxisDistribution,
    Block,
    BlockCyclic,
    Cyclic,
    Distribution,
    Identity,
    validate_cells,
)
from .comm import MoveCount, count_move
from .executor import (
    EdgeTraffic,
    TrafficReport,
    coordinate_bounds,
    measure_plan,
    measure_traffic,
)
from .interp import Interpreter, InterpreterError, run_program
from .report import format_table

__all__ = [
    "ProcessorGrid",
    "Template",
    "AxisDistribution",
    "Block",
    "BlockCyclic",
    "Cyclic",
    "Distribution",
    "Identity",
    "validate_cells",
    "MoveCount",
    "count_move",
    "EdgeTraffic",
    "TrafficReport",
    "coordinate_bounds",
    "measure_plan",
    "measure_traffic",
    "Interpreter",
    "InterpreterError",
    "run_program",
    "format_table",
]
