"""Communication counting for one object move.

Given an object (its symbolic shape evaluated at a LIV environment), the
alignments at the two ends of an edge, and a distribution, counts:

* ``elements_moved`` — elements whose owning processor changes (the
  message volume a runtime would ship);
* ``hop_cost`` — per-element processor distance summed over elements
  (the paper's grid metric made operational — equal to equation 1
  exactly under the identity distribution — or, given per-axis
  ``metrics`` from :mod:`repro.topology`, the machine interconnect's
  distance);
* ``broadcast_elements`` — elements broadcast along replicated axes.

General communication (axis or stride mismatch) has no routing
distance: the whole object moves, but which links it crosses is not a
function of any topology, so general moves carry ``hop_cost == 0`` and
are tallied in ``general_elements`` (the analytic discrete-metric
charge) as well as ``elements_moved``.  Under the identity distribution
this keeps the equation-1 identity exact even on programs with general
edges: ``hop_cost + broadcast_elements + general_elements`` equals the
paper's analytic cost.

All counting is vectorized: element positions are affine images of
index grids, so a d-dimensional object costs O(elements) numpy work.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Sequence

import numpy as np

from ..align.position import Alignment
from ..ir.affine import AffineForm
from ..ir.symbols import LIV
from ..topology import AxisMetric
from .distribution import Distribution


@dataclass
class MoveCount:
    elements: int = 0  # object size
    elements_moved: int = 0
    hop_cost: int = 0  # topological routing distance; 0 for general moves
    broadcast_elements: int = 0
    general: bool = False  # axis/stride mismatch: everything moved
    general_elements: int = 0  # elements moved by general communication

    def __add__(self, other: "MoveCount") -> "MoveCount":
        return MoveCount(
            self.elements + other.elements,
            self.elements_moved + other.elements_moved,
            self.hop_cost + other.hop_cost,
            self.broadcast_elements + other.broadcast_elements,
            self.general or other.general,
            self.general_elements + other.general_elements,
        )


def _axis_positions(
    align: Alignment,
    shape: tuple[int, ...],
    env: Mapping[LIV, int],
) -> list[np.ndarray]:
    """Template coordinates per axis for every element, as broadcastable
    index grids (Fortran 1-based indices)."""
    grids = np.indices(shape) + 1 if shape else None
    out: list[np.ndarray] = []
    for ax in align.axes:
        if ax.is_replicated:
            out.append(np.zeros(shape or (), dtype=np.int64))
            continue
        off = int(ax.offset.evaluate(env))
        if ax.is_body:
            assert ax.array_axis is not None and ax.stride is not None
            stride = int(ax.stride.evaluate(env))
            idx = grids[ax.array_axis] if grids is not None else np.array(1)
            out.append(off + stride * idx)
        else:
            base = np.zeros(shape or (), dtype=np.int64)
            out.append(base + off)
    return out


def count_move(
    src: Alignment,
    dst: Alignment,
    shape: tuple[int, ...],
    env: Mapping[LIV, int],
    dist: Distribution,
    metrics: Sequence[AxisMetric] | None = None,
) -> MoveCount:
    """Count the communication of moving one object from src to dst.

    ``metrics`` (one per template axis, typically from
    :func:`repro.topology.distribution_metrics`) prices hops with the
    machine's interconnect; ``None`` is the paper's L1 grid metric.
    """
    n = int(np.prod(shape)) if shape else 1
    mc = MoveCount(elements=n)
    # Axis/stride agreement (pointwise at this iteration).  General
    # communication moves everything but has no per-topology routing
    # distance, so hop_cost stays 0.
    if src.axis_signature() != dst.axis_signature():
        mc.general = True
        mc.elements_moved = n
        mc.general_elements = n
        return mc
    for a1, a2 in zip(src.axes, dst.axes):
        if a1.is_body:
            assert a1.stride is not None and a2.stride is not None
            if a1.stride.evaluate(env) != a2.stride.evaluate(env):
                mc.general = True
                mc.elements_moved = n
                mc.general_elements = n
                return mc
    # Broadcast axes.
    for a1, a2 in zip(src.axes, dst.axes):
        if a2.is_replicated and not a1.is_replicated:
            mc.broadcast_elements += n
    # Offset moves on non-replicated axes.
    src_pos = _axis_positions(src, shape, env)
    dst_pos = _axis_positions(dst, shape, env)
    active = [
        i
        for i, (a1, a2) in enumerate(zip(src.axes, dst.axes))
        if not (a1.is_replicated or a2.is_replicated)
    ]
    if active:
        s = [src_pos[i] for i in active]
        d = [dst_pos[i] for i in active]
        sub = Distribution(tuple(dist.axes[i] for i in active))
        sub_metrics = (
            None if metrics is None else tuple(metrics[i] for i in active)
        )
        moved = sub.moved_mask(s, d)
        hops = sub.hop_distance(s, d, sub_metrics)
        mc.elements_moved = int(np.sum(moved))
        mc.hop_cost = int(np.sum(hops))
    return mc
