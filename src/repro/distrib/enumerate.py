"""Candidate generation for the distribution planner.

The search space has two nested choices: the *shape* of the processor
grid (an ordered factorization of the machine size P over the template
axes) and, per axis, the *scheme* — block with the covering block size,
cyclic, or block-cyclic with a small block.  This module enumerates
both, and builds the three naive uniform baselines (all-block,
all-cyclic, identity) the planner is benchmarked against.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..machine.distribution import Distribution
from ..topology import Topology
from ..topology.models import factorizations, most_balanced
from .costmodel import CommProfile, CostVector, window_extents
from .plan import BLOCK, BLOCK_CYCLIC, CYCLIC, AxisPlan

DEFAULT_BLOCK_SIZES = (2, 4, 8)


def grid_factorizations(nprocs: int, rank: int) -> list[tuple[int, ...]]:
    """All ordered factorizations of ``nprocs`` into ``rank`` axis counts.

    ``grid_factorizations(4, 2) == [(1, 4), (2, 2), (4, 1)]``.  The
    order is deterministic (lexicographic) so search results are
    stable.  Delegates to the one enumerator shared with the topology
    defaults (:func:`repro.topology.models.factorizations`), so the
    planner's candidate space and the machines' own grid choices can
    never diverge.
    """
    return factorizations(nprocs, rank)


def balanced_factorization(nprocs: int, rank: int) -> tuple[int, ...]:
    """The most nearly-cubic grid shape (minimal max/min spread)."""
    return most_balanced(grid_factorizations(nprocs, rank))


def covering_block(extent: int, nprocs: int) -> int:
    """The block size whose blocks exactly cover the axis window."""
    return max(1, -(-extent // nprocs))  # ceil division


def axis_candidates(
    lo: int,
    extent: int,
    nprocs: int,
    block_sizes: Sequence[int] = DEFAULT_BLOCK_SIZES,
) -> list[AxisPlan]:
    """All axis schemes for one template axis on ``nprocs`` processors.

    * block, with the covering block size (smaller blocks would leave
      cells of the window un-owned — a contract violation);
    * cyclic (only meaningful for nprocs > 1);
    * block-cyclic for each configured block size strictly between 1
      (= cyclic) and the covering block (= block).

    On one processor every scheme is the same no-communication mapping,
    so a single covering block candidate is emitted.
    """
    cover = covering_block(extent, nprocs)
    out = [AxisPlan(BLOCK, nprocs, cover, lo)]
    if nprocs > 1:
        out.append(AxisPlan(CYCLIC, nprocs, 1, lo))
        for b in sorted(set(block_sizes)):
            if 1 < b < cover:
                out.append(AxisPlan(BLOCK_CYCLIC, nprocs, b, lo))
    return out


def candidate_spaces(
    profile: CommProfile,
    nprocs: int,
    block_sizes: Sequence[int] = DEFAULT_BLOCK_SIZES,
    topology: Topology | None = None,
) -> Iterator[tuple[tuple[int, ...], list[list[AxisPlan]]]]:
    """Yield ``(grid shape, per-axis candidate lists)`` per factorization.

    ``topology`` drops grid shapes the machine cannot realize (e.g. a
    hypercube only folds onto power-of-two axis counts); the default
    grid machine accepts every factorization.
    """
    extents = window_extents(profile)
    for grid in grid_factorizations(nprocs, profile.template_rank):
        if topology is not None and not topology.supports_grid(grid):
            continue
        cands = [
            axis_candidates(lo, ext, p, block_sizes)
            for (lo, _), ext, p in zip(profile.window, extents, grid)
        ]
        yield grid, cands


def space_size(
    profile: CommProfile,
    nprocs: int,
    block_sizes: Sequence[int] = DEFAULT_BLOCK_SIZES,
    topology: Topology | None = None,
) -> int:
    """Total number of candidate distributions across all grid shapes."""
    total = 0
    for _, cands in candidate_spaces(profile, nprocs, block_sizes, topology):
        prod = 1
        for c in cands:
            prod *= len(c)
        total += prod
    return total


def naive_distributions(
    profile: CommProfile, nprocs: int
) -> dict[str, Distribution]:
    """The three uniform baselines the planner must beat or match.

    ``all-block`` and ``all-cyclic`` live on the most balanced grid
    shape; ``identity`` is the paper's analytic one-processor-per-cell
    machine (an unbounded-resource lower bound for locality, but not
    for hops: blocks contract the grid metric).
    """
    rank = profile.template_rank
    grid = balanced_factorization(nprocs, rank)
    extents = window_extents(profile)
    block = Distribution(
        tuple(
            AxisPlan(BLOCK, p, covering_block(ext, p), lo).to_axis_distribution()
            for (lo, _), ext, p in zip(profile.window, extents, grid)
        )
    )
    cyclic = Distribution(
        tuple(
            AxisPlan(CYCLIC, p, 1, lo).to_axis_distribution()
            for (lo, _), p in zip(profile.window, grid)
        )
    )
    return {
        "all-block": block,
        "all-cyclic": cyclic,
        "identity": Distribution.identity(rank),
    }


def naive_costs(
    profile: CommProfile,
    nprocs: int,
    topology: Topology | None = None,
    vectorize: bool = True,
) -> dict[str, CostVector]:
    """Modeled cost of each naive baseline (priced on ``topology``).

    The baselines are priced as one vectorized front
    (:func:`~repro.distrib.vectorized.evaluate_front`);
    ``vectorize=False`` prices each through the scalar oracle instead.
    """
    naive = naive_distributions(profile, nprocs)
    if not vectorize:
        return {
            name: profile.evaluate(dist, topology)
            for name, dist in naive.items()
        }
    from .vectorized import front_costs

    costs = front_costs(profile, list(naive.values()), topology)
    return dict(zip(naive.keys(), costs))
