"""Communication-cost model for distribution planning.

The planner must compare hundreds of candidate distributions, so it
cannot afford to re-walk the ADG (re-evaluating affine offsets over
every iteration space) per candidate the way
:func:`repro.machine.executor.measure_traffic` does.  Instead,
:func:`build_profile` walks the aligned ADG **once** and compiles it
into a :class:`CommProfile` — a deduplicated list of move records, each
holding the template coordinates of one object move's elements per
active axis (exactly the arrays :func:`repro.machine.comm.count_move`
would build) plus a multiplicity.  Evaluating a candidate distribution
is then a handful of vectorized map/abs/sum passes over the records.

Because the records hold the *same coordinates* the executor maps, the
model is exact by construction: for any distribution,
``profile.evaluate(dist)`` equals the executor's measured counts, and
under the identity distribution the hop count equals the paper's
equation-1 cost.  The end-to-end tests assert both equalities.

Distribution-independent traffic is folded into the profile up front:

* *general* communication (axis or stride mismatch) moves the object
  regardless of where cells live; it has no routing distance on any
  interconnect, so it contributes moves but zero hops (matching
  :func:`repro.machine.comm.count_move`);
* *broadcasts* along replicated axes cost the object size once.

Hop pricing is topology-aware: ``evaluate`` and ``axis_hops`` accept
the interconnect metrics of :mod:`repro.topology`, defaulting to the
paper's L1 grid.  The per-axis memo keys include the metric, so one
profile serves any number of machine models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..adg.graph import ADG
from ..align.cost import AlignmentMap
from ..align.position import Alignment
from ..cachestats import MISS, BoundedCache, _cell
from ..machine.comm import _axis_positions
from ..machine.distribution import AxisDistribution, Distribution
from ..machine.executor import _shape_at
from ..topology import AxisMetric, Topology, distribution_metrics

# Move-record compilation re-builds the same per-axis coordinate arrays
# once per iteration point even when the evaluated strides/offsets are
# identical across points (every static-offset edge).  The arrays are
# pure functions of (shape, per-axis evaluated numbers), so they cache
# across points, edges and programs.  Cached arrays are shared and must
# be treated as read-only by all consumers.
_POSITIONS = BoundedCache("distrib.move_records", maxsize=2048)
_AXIS_HOPS_STATS = _cell("distrib.axis_hops")


def _axis_key(align: Alignment, env) -> tuple:
    parts = []
    for ax in align.axes:
        if ax.is_replicated:
            parts.append("R")
        elif ax.is_body:
            assert ax.stride is not None
            parts.append(
                (
                    ax.array_axis,
                    int(ax.stride.evaluate(env)),
                    int(ax.offset.evaluate(env)),
                )
            )
        else:
            parts.append((None, int(ax.offset.evaluate(env))))
    return tuple(parts)


def _cached_axis_positions(
    align: Alignment, shape: tuple[int, ...], env
) -> tuple[np.ndarray, ...]:
    """Memoized :func:`repro.machine.comm._axis_positions`.

    Keyed on the *evaluated* per-axis numbers (matching the ``int()``
    casts inside ``_axis_positions``), not on the LIV environment, so
    static offsets hit once per distinct geometry instead of once per
    iteration point.

    Entries are immutable by construction: a **tuple** of **read-only**
    arrays, frozen on the one store path — so no consumer can swap an
    element of a cached container or write through a cached array, and
    an entry re-stored after a :class:`BoundedCache` eviction goes
    through the same freeze and can never hand out writable aliases.
    The mutation-detection tests write through every returned array and
    expect numpy to refuse.
    """
    key = (shape, _axis_key(align, env))
    pos = _POSITIONS.lookup(key)
    if pos is MISS:
        arrays = tuple(_axis_positions(align, shape, env))
        for a in arrays:
            a.setflags(write=False)  # shared cache entries: enforce read-only
        pos = _POSITIONS.store(key, arrays)
    return pos  # type: ignore[return-value]


@dataclass(frozen=True, order=True)
class CostVector:
    """Modeled communication of one distribution choice.

    Ordering is lexicographic (hops, moved, broadcast): processor hops
    are the paper's grid metric made operational and the planner's
    primary objective; element moves break ties.
    """

    hops: int = 0
    moved: int = 0
    broadcast: int = 0

    def __add__(self, other: "CostVector") -> "CostVector":
        # NotImplemented (not an AttributeError mid-add) for foreign
        # operands, so mixed-type adds fail with a proper TypeError and
        # other types get a chance at their own __radd__.
        if not isinstance(other, CostVector):
            return NotImplemented
        return CostVector(
            self.hops + other.hops,
            self.moved + other.moved,
            self.broadcast + other.broadcast,
        )

    def __radd__(self, other) -> "CostVector":
        # sum(costs) starts from int 0; absorb that identity so cost
        # lists aggregate without a start-value dance.
        if other == 0:
            return self
        return NotImplemented


@dataclass
class MoveRecord:
    """One distinct object move: coordinates per active template axis.

    ``axes`` lists the template axes that participate (both endpoints
    non-replicated); ``src``/``dst`` hold, per listed axis, the template
    coordinate of every element (full-shape integer arrays).  ``count``
    is the number of identical moves folded into this record — static
    offsets repeat the same move every loop iteration, so deduplication
    routinely collapses an O(iterations) walk to O(1) records.
    """

    axes: tuple[int, ...]
    src: tuple[np.ndarray, ...]
    dst: tuple[np.ndarray, ...]
    count: int = 1

    @property
    def elements(self) -> int:
        return int(self.src[0].size) if self.src else 0


@dataclass
class CommProfile:
    """The compiled communication behaviour of one aligned program."""

    template_rank: int
    records: list[MoveRecord] = field(default_factory=list)
    window: tuple[tuple[int, int], ...] = ()  # per-axis (lo, hi) cells
    fixed: CostVector = CostVector()  # general comm: distribution-independent
    broadcast: int = 0
    elements: int = 0  # total elements flowing over all edges
    # General (axis/stride-mismatch) moves, counted per iteration point —
    # unlike TrafficReport.general_edges, which counts edges.
    general_moves: int = 0
    # Per-profile memo of axis_hops results: the search layer re-prices
    # the same (axis, candidate) pair once per grid factorization and
    # again per local-search restart.  Keyed on the candidate's scheme
    # parameters; excluded from equality/repr.
    _hops_cache: dict = field(default_factory=dict, repr=False, compare=False)
    # Padded coordinate tensors for the vectorized front-pricing path
    # (:mod:`repro.distrib.vectorized`), compiled lazily once per
    # profile; excluded from equality/repr like the hop memo.
    _front_tensors: object = field(default=None, repr=False, compare=False)

    # -- evaluation --------------------------------------------------------

    def evaluate(
        self, dist: Distribution, topology: Topology | None = None
    ) -> CostVector:
        """Exact modeled cost of ``dist``: matches the executor's counts.

        ``topology`` prices hops with the machine's interconnect
        metrics; ``None`` is the paper's L1 grid.
        """
        if dist.rank != self.template_rank:
            raise ValueError(
                f"distribution rank {dist.rank} != template rank "
                f"{self.template_rank}"
            )
        metrics = (
            None if topology is None else distribution_metrics(topology, dist)
        )
        hops = self.fixed.hops
        moved = self.fixed.moved
        for r in self.records:
            sub = Distribution(tuple(dist.axes[t] for t in r.axes))
            sub_metrics = (
                None
                if metrics is None
                else tuple(metrics[t] for t in r.axes)
            )
            moved += int(np.sum(sub.moved_mask(r.src, r.dst))) * r.count
            hops += (
                int(np.sum(sub.hop_distance(r.src, r.dst, sub_metrics)))
                * r.count
            )
        return CostVector(hops, moved, self.broadcast)

    def evaluate_front(
        self,
        dists: Sequence[Distribution],
        topology: Topology | None = None,
    ) -> np.ndarray:
        """Exact cost of a whole candidate front, as one matrix.

        Vectorized batch counterpart of :meth:`evaluate`: an int64
        ``(len(dists), 3)`` array with columns ``(hops, moved,
        broadcast)``, row ``i`` equal to ``self.evaluate(dists[i],
        topology)`` — priced in a handful of broadcasted array ops over
        the profile's padded coordinate tensors
        (:mod:`repro.distrib.vectorized`).
        """
        from .vectorized import evaluate_front

        return evaluate_front(self, dists, topology)

    def axis_hops(
        self,
        axis: int,
        axdist: AxisDistribution,
        metric: AxisMetric | None = None,
    ) -> int:
        """Hops contributed by one template axis under one axis scheme.

        Every topology in :mod:`repro.topology` is separable — its hop
        distance decomposes over axes — so per-axis hop costs can be
        optimized independently once the processor count per axis is
        fixed, for any interconnect, not just the L1 grid.  This is
        what makes the exhaustive search a per-axis dynamic program
        rather than a cross-product sweep.
        """
        # Axis distributions and metrics are frozen value objects, so
        # the instances themselves are the key: every scheme/metric
        # parameter participates, and a future class can never collide
        # with an existing one.
        key = (axis, axdist, metric)
        cached = self._hops_cache.get(key)
        if cached is not None:
            _AXIS_HOPS_STATS[0] += 1
            return cached
        _AXIS_HOPS_STATS[1] += 1
        total = 0
        for r in self.records:
            if axis not in r.axes:
                continue
            j = r.axes.index(axis)
            d = axdist.processor_coordinate_distance(
                r.src[j], r.dst[j], metric
            )
            total += int(np.sum(d)) * r.count
        if len(self._hops_cache) >= 4096:
            self._hops_cache.clear()
        self._hops_cache[key] = total
        return total

    # -- introspection -----------------------------------------------------

    @property
    def distinct_moves(self) -> int:
        return len(self.records)

    @property
    def total_moves(self) -> int:
        return sum(r.count for r in self.records)

    def describe(self) -> str:
        win = ", ".join(f"[{lo}, {hi}]" for lo, hi in self.window)
        return (
            f"profile: rank={self.template_rank} window=({win}) "
            f"records={self.distinct_moves} (of {self.total_moves} moves) "
            f"fixed_hops={self.fixed.hops} broadcast={self.broadcast}"
        )


def _stride_mismatch(src, dst, env) -> bool:
    for a1, a2 in zip(src.axes, dst.axes):
        if a1.is_body:
            assert a1.stride is not None and a2.stride is not None
            if a1.stride.evaluate(env) != a2.stride.evaluate(env):
                return True
    return False


def build_profile(adg: ADG, alignments: AlignmentMap) -> CommProfile:
    """Compile an aligned ADG into a :class:`CommProfile`.

    Mirrors the classification of :func:`repro.machine.comm.count_move`
    move for move; the only difference is that distribution-dependent
    moves are *recorded* (coordinates kept) instead of counted under one
    fixed distribution.
    """
    rank = adg.template_rank
    profile = CommProfile(template_rank=rank)
    lo: list[int | None] = [None] * rank
    hi: list[int | None] = [None] * rank
    dedup: dict[tuple, MoveRecord] = {}
    for e in adg.edges:
        src = alignments[e.tail.key]
        dst = alignments[e.head.key]
        for env in e.space.points():
            shape = _shape_at(e.tail, env)
            n = int(np.prod(shape)) if shape else 1
            profile.elements += n
            src_pos = _cached_axis_positions(src, shape, env)
            dst_pos = _cached_axis_positions(dst, shape, env)
            # Window bounds (same rule as executor.coordinate_bounds,
            # folded into this walk): min/max coordinate of either
            # endpoint on every non-replicated axis.
            for align, pos in ((src, src_pos), (dst, dst_pos)):
                for t, (ax, arr) in enumerate(zip(align.axes, pos)):
                    if ax.is_replicated or arr.size == 0:
                        continue
                    a_lo, a_hi = int(arr.min()), int(arr.max())
                    lo[t] = a_lo if lo[t] is None else min(lo[t], a_lo)
                    hi[t] = a_hi if hi[t] is None else max(hi[t], a_hi)
            general = src.axis_signature() != dst.axis_signature()
            if not general:
                general = _stride_mismatch(src, dst, env)
            if general:
                # General comm has no routing distance: moves, not hops
                # (mirrors count_move, keeping topology costs well-defined).
                profile.fixed = profile.fixed + CostVector(moved=n)
                profile.general_moves += 1
                continue
            for a1, a2 in zip(src.axes, dst.axes):
                if a2.is_replicated and not a1.is_replicated:
                    profile.broadcast += n
            active = tuple(
                t
                for t, (a1, a2) in enumerate(zip(src.axes, dst.axes))
                if not (a1.is_replicated or a2.is_replicated)
            )
            if not active:
                continue
            s = tuple(np.ascontiguousarray(src_pos[t]) for t in active)
            d = tuple(np.ascontiguousarray(dst_pos[t]) for t in active)
            if all(np.array_equal(a, b) for a, b in zip(s, d)):
                continue  # no axis shifts: free under every distribution
            key = (
                active,
                tuple(a.shape for a in s),
                tuple(a.tobytes() for a in s),
                tuple(a.tobytes() for a in d),
            )
            rec = dedup.get(key)
            if rec is None:
                rec = MoveRecord(active, s, d)
                dedup[key] = rec
                profile.records.append(rec)
            else:
                rec.count += 1
    profile.window = tuple(
        (0, 0) if l is None else (l, h)  # type: ignore[misc]
        for l, h in zip(lo, hi)
    )
    return profile


def window_extents(profile: CommProfile) -> tuple[int, ...]:
    """Occupied cells per axis (window size), at least 1 per axis."""
    return tuple(hi - lo + 1 for lo, hi in profile.window)
