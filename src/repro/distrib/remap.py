"""Redistribution planning across program phases.

A single distribution rarely suits a whole program: a phase that sweeps
rows wants the rows' axis kept local, the next phase may want the
opposite.  Changing distribution between phases costs a *remap* — every
occupied template cell whose owner changes must be shipped.  This module
prices those remap edges and solves the classic phase-chain problem:

    minimize  sum_i cost(phase_i, d_i) + sum_i remap(d_i, d_{i+1})

by dynamic programming over a small candidate set of distributions per
phase (the top-k of :func:`repro.distrib.search.rank_plans`).

Phases are taken to be the top-level statements of a program (each loop
nest is one phase); :func:`split_phases` builds one sub-program per
statement so that each phase is aligned and profiled independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..lang.ast import Program
from ..machine.distribution import Distribution
from ..topology import Topology
from .costmodel import CommProfile, CostVector
from .plan import DistributionPlan
from .search import rank_plans


def split_phases(program: Program) -> list[Program]:
    """One sub-program per top-level statement, sharing the declarations."""
    return [
        Program(program.decls, (stmt,), f"{program.name}[{i}]")
        for i, stmt in enumerate(program.body)
    ]


def union_window(
    profiles: Sequence[CommProfile],
) -> tuple[tuple[int, int], ...]:
    """Per-axis bounds covering every phase's occupied cells."""
    if not profiles:
        raise ValueError("need at least one phase profile")
    rank = profiles[0].template_rank
    if any(p.template_rank != rank for p in profiles):
        raise ValueError("phase profiles disagree on template rank")
    return tuple(
        (
            min(p.window[t][0] for p in profiles),
            max(p.window[t][1] for p in profiles),
        )
        for t in range(rank)
    )


def remap_cost(
    window: Sequence[tuple[int, int]],
    src: Distribution,
    dst: Distribution,
    topology: Topology | None = None,
) -> CostVector:
    """Cost of redistributing every cell of ``window`` from src to dst.

    Vectorized over the full cell window: an element moves when any
    axis changes its processor coordinate; hops are the interconnect
    distance (``topology=None``: the paper's L1 grid).  This
    over-approximates (empty cells own no data) exactly the way the
    executor's window does — consistently for all candidates, so
    comparisons are fair.
    """
    # Candidate distributions may sit on different logical grid shapes,
    # so remaps are priced on the machine's *physical* axis extents —
    # one metric set for every candidate pair, keeping the DP fair.
    metrics = (
        None
        if topology is None
        else topology.metrics((None,) * src.rank)
    )
    extents = tuple(hi - lo + 1 for lo, hi in window)
    grids = np.indices(extents)
    coords = [g + lo for g, (lo, _) in zip(grids, window)]
    src_procs = src.map_cells(coords)
    dst_procs = dst.map_cells(coords)
    moved = None
    hops = None
    for t, (sp, dp) in enumerate(zip(src_procs, dst_procs)):
        m = sp != dp
        h = np.abs(sp - dp) if metrics is None else metrics[t].hops(sp, dp)
        moved = m if moved is None else (moved | m)
        hops = h if hops is None else hops + h
    assert moved is not None and hops is not None
    return CostVector(hops=int(hops.sum()), moved=int(moved.sum()))


@dataclass
class PhaseChoice:
    """One phase's chosen distribution plus the remap that precedes it."""

    name: str
    plan: DistributionPlan
    remap_in: CostVector = CostVector()


@dataclass
class PhasedPlan:
    """A distribution per phase with costed remap edges between them."""

    phases: list[PhaseChoice] = field(default_factory=list)

    @property
    def phase_cost(self) -> int:
        return sum(c.plan.cost.hops for c in self.phases)

    @property
    def remap_cost(self) -> int:
        return sum(c.remap_in.hops for c in self.phases)

    @property
    def total_hops(self) -> int:
        return self.phase_cost + self.remap_cost

    def render(self) -> str:
        lines = [
            f"phased distribution plan: {len(self.phases)} phase(s), "
            f"total hops {self.total_hops} "
            f"(phases {self.phase_cost} + remaps {self.remap_cost})"
        ]
        for i, c in enumerate(self.phases):
            if i and (c.remap_in.hops or c.remap_in.moved):
                lines.append(
                    f"  -- remap: hops={c.remap_in.hops} "
                    f"moved={c.remap_in.moved}"
                )
            elif i:
                lines.append("  -- remap: none (distribution unchanged)")
            lines.append(f"  {c.name}: {c.plan.directive()} "
                         f"[hops={c.plan.cost.hops}]")
        return "\n".join(lines)


def plan_phase_sequence(
    profiles: Sequence[tuple[str, CommProfile]],
    nprocs: int,
    k: int = 4,
    topology: Topology | None = None,
    **rank_kw,
) -> PhasedPlan:
    """DP over the phase chain with costed remap edges.

    ``profiles`` is an ordered list of (phase name, profile).  Each
    phase contributes its ``k`` best candidate distributions; the DP
    picks one per phase minimizing phase hops plus remap hops, both
    priced on ``topology`` (default: the L1 grid machine).
    """
    if not profiles:
        raise ValueError("need at least one phase")
    window = union_window([p for _, p in profiles])
    # Candidates are sized over the union window so that a remap over
    # any cell is within every candidate distribution's covered range.
    cand: list[list[DistributionPlan]] = [
        rank_plans(p, nprocs, k=k, window=window, topology=topology, **rank_kw)
        for _, p in profiles
    ]
    dists = [[pl.to_distribution() for pl in plans] for plans in cand]
    n = len(profiles)
    # dp[i][c]: best total hops for phases[0..i] ending in candidate c.
    dp: list[list[int]] = [[pl.cost.hops for pl in cand[0]]]
    back: list[list[int]] = [[-1] * len(cand[0])]
    remaps: dict[tuple[int, int, int], CostVector] = {}
    for i in range(1, n):
        row: list[int] = []
        brow: list[int] = []
        for ci, pl in enumerate(cand[i]):
            best_val = None
            best_prev = -1
            for pi in range(len(cand[i - 1])):
                rc = remaps.get((i, pi, ci))
                if rc is None:
                    rc = remap_cost(
                        window, dists[i - 1][pi], dists[i][ci], topology
                    )
                    remaps[(i, pi, ci)] = rc
                val = dp[i - 1][pi] + rc.hops + pl.cost.hops
                if best_val is None or val < best_val:
                    best_val = val
                    best_prev = pi
            assert best_val is not None
            row.append(best_val)
            brow.append(best_prev)
        dp.append(row)
        back.append(brow)
    # backtrack
    last = min(range(len(cand[-1])), key=dp[-1].__getitem__)
    chosen = [0] * n
    chosen[-1] = last
    for i in range(n - 1, 0, -1):
        chosen[i - 1] = back[i][chosen[i]]
    out = PhasedPlan()
    for i, (name, _) in enumerate(profiles):
        remap_in = CostVector()
        if i:
            remap_in = remaps[(i, chosen[i - 1], chosen[i])]
        out.phases.append(PhaseChoice(name, cand[i][chosen[i]], remap_in))
    return out


def plan_program_phases(
    program: Program,
    nprocs: int,
    k: int = 4,
    align_kw: dict | None = None,
    topology: Topology | None = None,
    **rank_kw,
) -> PhasedPlan:
    """Convenience driver: split, align and profile each phase, then DP.

    Single-statement programs degenerate to one phase with no remaps —
    the same answer as :func:`repro.distrib.search.plan_distribution`.

    Thin wrapper over the staged pipeline (goal ``"phase_plan"``): the
    per-phase profiles are a machine-independent artifact, so sweeping
    machines over a forked context re-runs only the phase-chain DP.
    """
    from ..align.pipeline import plan_context
    from ..passes import MachineSpec, Pipeline

    ctx = plan_context(program, **(align_kw or {}))
    ctx.put("machine", MachineSpec.of(nprocs, topology=topology))
    ctx.put("phase_options", dict(k=k, **rank_kw))
    Pipeline().run(ctx, goal="phase_plan")
    return ctx.get("phase_plan")
