"""Automatic distribution planning: the paper's deferred second phase.

The SC'93 paper aligns arrays to a template and explicitly defers the
mapping of template cells onto processors.  This subsystem closes that
gap: given a solved alignment (an :class:`~repro.align.pipeline.AlignmentPlan`'s
ADG + alignment map) and a machine size P, it chooses per template axis
an HPF distribution (block / cyclic / block-cyclic with block size) and
a processor-grid shape minimizing modeled communication cost.

Modules:

* :mod:`repro.distrib.costmodel` — compiles the aligned ADG into a
  :class:`CommProfile` whose evaluation agrees exactly with the machine
  simulator's measured hop counts;
* :mod:`repro.distrib.enumerate` — grid factorizations, per-axis scheme
  candidates, naive uniform baselines;
* :mod:`repro.distrib.search` — exhaustive per-axis DP (reusing
  :mod:`repro.solvers.dp`) with a greedy/local-search fallback;
* :mod:`repro.distrib.vectorized` — NumPy batch pricing of whole
  candidate fronts (the fast path under the DP; the scalar evaluator
  stays as the differential oracle, ``vectorize=False``);
* :mod:`repro.distrib.remap` — redistribution planning between program
  phases with costed remap edges;
* :mod:`repro.distrib.plan` — the :class:`DistributionPlan` output
  representation and renderer.

Quickstart::

    from repro import align_program, parse
    from repro.distrib import build_profile, plan_distribution

    plan = align_program(parse(src))
    profile = build_profile(plan.adg, plan.alignments)
    dplan = plan_distribution(profile, nprocs=16)
    print(dplan.render())
"""

from .costmodel import CommProfile, CostVector, MoveRecord, build_profile
from .enumerate import (
    DEFAULT_BLOCK_SIZES,
    axis_candidates,
    balanced_factorization,
    covering_block,
    grid_factorizations,
    naive_costs,
    naive_distributions,
    space_size,
)
from .plan import BLOCK, BLOCK_CYCLIC, CYCLIC, SCHEMES, AxisPlan, DistributionPlan
from .remap import (
    PhaseChoice,
    PhasedPlan,
    plan_phase_sequence,
    plan_program_phases,
    remap_cost,
    split_phases,
    union_window,
)
from .search import EXHAUSTIVE_LIMIT, plan_distribution, rank_plans
from .vectorized import axis_front_hops, compile_front, evaluate_front, front_costs

__all__ = [
    "CommProfile",
    "CostVector",
    "MoveRecord",
    "build_profile",
    "DEFAULT_BLOCK_SIZES",
    "axis_candidates",
    "balanced_factorization",
    "covering_block",
    "grid_factorizations",
    "naive_costs",
    "naive_distributions",
    "space_size",
    "BLOCK",
    "BLOCK_CYCLIC",
    "CYCLIC",
    "SCHEMES",
    "AxisPlan",
    "DistributionPlan",
    "PhaseChoice",
    "PhasedPlan",
    "plan_phase_sequence",
    "plan_program_phases",
    "remap_cost",
    "split_phases",
    "union_window",
    "EXHAUSTIVE_LIMIT",
    "plan_distribution",
    "rank_plans",
    "axis_front_hops",
    "compile_front",
    "evaluate_front",
    "front_costs",
]
