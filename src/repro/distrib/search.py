"""Search over the distribution-candidate space.

Two regimes, chosen by the size of the candidate space:

* **Exhaustive** (small spaces): the L1 hop metric decomposes over
  template axes, so once a grid factorization fixes the processor count
  per axis, the best scheme per axis is an independent choice.  Each
  factorization is solved exactly as a discrete labeling problem on a
  star graph (one node per axis, an anchor carrying the per-candidate
  hop costs) reusing the compact dynamic programming of
  :mod:`repro.solvers.dp`; the winner over all factorizations is the
  hop-optimal distribution.

* **Greedy + local search** (large spaces): greedy per-axis choice on a
  sample of grid shapes, then hill-climbing over the factorization
  neighborhood (moving one prime factor between two axes), with random
  restarts — the GSAT recipe for discrete local search: cheap moves,
  steepest descent, restart when stuck.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..cachestats import _cell
from ..obs import spans as obs
from ..solvers.dp import DiscreteLabelingProblem
from ..topology import AxisMetric, Topology
from ..topology.models import most_balanced
from .costmodel import CommProfile, CostVector, window_extents
from .enumerate import (
    DEFAULT_BLOCK_SIZES,
    axis_candidates,
    balanced_factorization,
    candidate_spaces,
    grid_factorizations,
    space_size,
)
from .plan import AxisPlan, DistributionPlan

EXHAUSTIVE_LIMIT = 20_000
_ANCHOR = "$cost"
# Shared with repro.distrib.vectorized: [vectorized, scalar] candidate
# pricings — the counter's hit rate is the fraction that took the fast path.
_FRONT_STATS = _cell("distrib.front_price")


def _metrics_for_grid(
    topology: Topology | None, grid: Sequence[int]
) -> tuple[AxisMetric, ...] | None:
    return None if topology is None else topology.metrics(tuple(grid))


def _axis_hop_table(
    profile: CommProfile,
    cands: Sequence[Sequence[AxisPlan]],
    metrics: Sequence[AxisMetric] | None = None,
    vectorize: bool = True,
) -> list[list[int]]:
    """Per-axis candidate hop costs for one grid's whole front.

    The default path prices each axis's entire candidate list in one
    vectorized call (:func:`~repro.distrib.vectorized.axis_front_hops`);
    ``vectorize=False`` keeps the per-candidate pure-Python path — the
    differential oracle, and the ``--no-vectorize`` debugging fallback.
    """
    with obs.span(
        "distrib.front_price",
        candidates=sum(len(clist) for clist in cands),
        axes=len(cands),
        vectorized=vectorize,
    ):
        if vectorize:
            from .vectorized import axis_front_hops

            return [
                [
                    int(h)
                    for h in axis_front_hops(
                        profile,
                        t,
                        clist,
                        None if metrics is None else metrics[t],
                    )
                ]
                for t, clist in enumerate(cands)
            ]
        _FRONT_STATS[1] += sum(len(clist) for clist in cands)
        return [
            [
                profile.axis_hops(
                    t,
                    c.to_axis_distribution(),
                    None if metrics is None else metrics[t],
                )
                for c in clist
            ]
            for t, clist in enumerate(cands)
        ]


def _solve_axes_dp(
    profile: CommProfile,
    cands: Sequence[Sequence[AxisPlan]],
    metrics: Sequence[AxisMetric] | None = None,
    vectorize: bool = True,
) -> tuple[list[AxisPlan], int]:
    """Exact per-axis choice by DP on a star-shaped labeling problem.

    Candidate hop costs become edges to a pinned anchor node whose
    predicate charges the weight exactly when the axis picks that
    candidate; the star is a tree, so
    :meth:`~repro.solvers.dp.DiscreteLabelingProblem.solve_tree` is
    exact.  (The per-axis independence makes this equivalent to an
    argmin per axis — the DP formulation keeps the planner on the same
    machinery the alignment phases use, and stays correct if coupled
    inter-axis costs are ever added as real edges.)
    """
    with obs.span(
        "distrib.axis_dp",
        axes=len(cands),
        candidates=sum(len(clist) for clist in cands),
        vectorized=vectorize,
    ):
        prob = DiscreteLabelingProblem()
        hops = _axis_hop_table(profile, cands, metrics, vectorize)
        for t, clist in enumerate(cands):
            prob.add_node(t, list(range(len(clist))))
            for ci in range(len(clist)):
                w = hops[t][ci]
                if w:
                    # One anchor per (axis, candidate): parallel edges to a
                    # shared anchor would not be a forest.
                    anchor = (_ANCHOR, t, ci)
                    prob.fix_node(anchor, 0)
                    prob.add_edge(
                        t,
                        anchor,
                        w,
                        predicate=lambda lu, lv, ci=ci: lu != ci,
                    )
        res = prob.solve_tree()
        chosen = [clist[res.labels[t]] for t, clist in enumerate(cands)]
        return chosen, int(res.cost)


def _finish(
    profile: CommProfile,
    axes: Sequence[AxisPlan],
    exact: bool,
    searched: int,
    topology: Topology | None = None,
) -> DistributionPlan:
    from ..machine.distribution import Distribution

    dist = Distribution(tuple(a.to_axis_distribution() for a in axes))
    return DistributionPlan(
        tuple(axes),
        profile.evaluate(dist, topology),
        exact,
        searched,
        topology=None if topology is None else topology.spec(),
    )


def plan_distribution(
    profile: CommProfile,
    nprocs: int,
    block_sizes: Sequence[int] = DEFAULT_BLOCK_SIZES,
    exhaustive_limit: int = EXHAUSTIVE_LIMIT,
    seed: int = 0,
    restarts: int = 8,
    topology: Topology | None = None,
    vectorize: bool = True,
) -> DistributionPlan:
    """Choose the distribution minimizing modeled hops for ``nprocs``.

    Exhaustive (hop-optimal) when the work of solving every grid shape
    exactly is affordable; otherwise greedy + local search.  Because
    every hop metric decomposes over axes (all :mod:`repro.topology`
    models are separable), the exhaustive DP's work is the per-axis
    candidate *sum* per grid (not the cross-product), so
    ``exhaustive_limit`` bounds that sum over all grid shapes — the
    cross-product space actually covered (reported in ``searched``) is
    usually far larger.  ``topology`` prices hops on the machine's
    interconnect and rules out unrealizable grid shapes; the default is
    the paper's open L1 grid.  ``vectorize`` selects the batched NumPy
    front pricing (the default; plans are identical either way —
    ``False`` is the pure-Python differential oracle, exposed on the
    CLI as ``--no-vectorize``).
    """
    spaces = list(candidate_spaces(profile, nprocs, block_sizes, topology))
    if not spaces:
        raise ValueError(
            f"{topology.spec() if topology else 'machine'}: no realizable "
            f"processor grid for {nprocs} processors on a rank-"
            f"{profile.template_rank} template"
        )
    dp_work = sum(len(c) for _, cands in spaces for c in cands)
    with obs.span(
        "distrib.plan",
        nprocs=nprocs,
        grids=len(spaces),
        candidates=dp_work,
        exhaustive=dp_work <= exhaustive_limit,
        vectorized=vectorize,
    ):
        if dp_work <= exhaustive_limit:
            covered = space_size(profile, nprocs, block_sizes, topology)
            best: DistributionPlan | None = None
            for grid, cands in spaces:
                metrics = _metrics_for_grid(topology, grid)
                axes, _ = _solve_axes_dp(profile, cands, metrics, vectorize)
                plan = _finish(
                    profile, axes, exact=True, searched=covered, topology=topology
                )
                if best is None or (plan.cost, plan.grid) < (best.cost, best.grid):
                    best = plan
            assert best is not None
            return best
        return _local_search(
            profile, nprocs, block_sizes, seed, restarts, topology, vectorize
        )


def rank_plans(
    profile: CommProfile,
    nprocs: int,
    k: int = 4,
    block_sizes: Sequence[int] = DEFAULT_BLOCK_SIZES,
    max_grids: int = 64,
    seed: int = 0,
    window: Sequence[tuple[int, int]] | None = None,
    topology: Topology | None = None,
    vectorize: bool = True,
) -> list[DistributionPlan]:
    """The ``k`` best distributions, one per grid shape, best first.

    Used by the inter-phase remap planner, which needs *alternatives*:
    the best distribution for one phase may lose globally once
    redistribution edges are priced in.  ``window`` (default: the
    profile's own) lets that planner size candidates over the union of
    all phase windows so every candidate owns every remapped cell.
    """
    grids = grid_factorizations(nprocs, profile.template_rank)
    if topology is not None:
        grids = [g for g in grids if topology.supports_grid(g)]
        if not grids:
            raise ValueError(
                f"{topology.spec()}: no realizable processor grid for "
                f"{nprocs} processors on a rank-{profile.template_rank} "
                "template"
            )
    if len(grids) > max_grids:
        rng = random.Random(seed)
        keep = {most_balanced(grids)}
        keep.update(
            grids[i] for i in rng.sample(range(len(grids)), max_grids - 1)
        )
        grids = sorted(keep)
    win = tuple(window) if window is not None else profile.window
    extents = tuple(hi - lo + 1 for lo, hi in win)
    plans = []
    for grid in grids:
        cands = [
            axis_candidates(lo, ext, p, block_sizes)
            for (lo, _), ext, p in zip(win, extents, grid)
        ]
        metrics = _metrics_for_grid(topology, grid)
        axes, _ = _solve_axes_dp(profile, cands, metrics, vectorize)
        plans.append(
            _finish(
                profile,
                axes,
                exact=True,
                searched=len(grids),
                topology=topology,
            )
        )
    plans.sort(key=lambda pl: (pl.cost, pl.grid))
    return plans[: max(1, k)]


# -- greedy + local search ----------------------------------------------------


def _greedy_axes(
    profile: CommProfile,
    grid: tuple[int, ...],
    block_sizes: Sequence[int],
    topology: Topology | None = None,
    vectorize: bool = True,
) -> tuple[list[AxisPlan], int]:
    """Per-axis argmin of hop cost (the per-grid optimum)."""
    extents = window_extents(profile)
    metrics = _metrics_for_grid(topology, grid)
    cand_lists = [
        axis_candidates(lo, ext, p, block_sizes)
        for (lo, _), ext, p in zip(profile.window, extents, grid)
    ]
    hops = _axis_hop_table(profile, cand_lists, metrics, vectorize)
    axes: list[AxisPlan] = []
    total = profile.fixed.hops
    for cands, costs in zip(cand_lists, hops):
        best = min(range(len(cands)), key=costs.__getitem__)
        axes.append(cands[best])
        total += costs[best]
    return axes, total


def _prime_factors(n: int) -> list[int]:
    out, d = [], 2
    while d * d <= n:
        while n % d == 0:
            out.append(d)
            n //= d
        d += 1
    if n > 1:
        out.append(n)
    return out


def _neighbor_grids(grid: tuple[int, ...]) -> list[tuple[int, ...]]:
    """Grids reachable by moving one prime factor between two axes."""
    out = set()
    for i, pi in enumerate(grid):
        for f in set(_prime_factors(pi)):
            for j in range(len(grid)):
                if i == j:
                    continue
                g = list(grid)
                g[i] //= f
                g[j] *= f
                out.add(tuple(g))
    return sorted(out)


def _local_search(
    profile: CommProfile,
    nprocs: int,
    block_sizes: Sequence[int],
    seed: int,
    restarts: int,
    topology: Topology | None = None,
    vectorize: bool = True,
) -> DistributionPlan:
    def supported(g: tuple[int, ...]) -> bool:
        return topology is None or topology.supports_grid(g)

    rng = random.Random(seed)
    rank = profile.template_rank
    searched = 0
    best_axes: list[AxisPlan] | None = None
    best_hops = 0
    for r in range(max(1, restarts)):
        if r == 0:
            grid = balanced_factorization(nprocs, rank)
        else:
            # random restart: shuffle prime factors onto axes
            g = [1] * rank
            for f in _prime_factors(nprocs):
                g[rng.randrange(rank)] *= f
            grid = tuple(g)
        if not supported(grid):
            continue
        axes, hops = _greedy_axes(profile, grid, block_sizes, topology, vectorize)
        searched += 1
        improved = True
        while improved:
            improved = False
            for ng in _neighbor_grids(grid):
                if not supported(ng):
                    continue
                n_axes, n_hops = _greedy_axes(
                    profile, ng, block_sizes, topology, vectorize
                )
                searched += 1
                if n_hops < hops:
                    grid, axes, hops = ng, n_axes, n_hops
                    improved = True
                    break  # first-improvement, GSAT style
        if best_axes is None or hops < best_hops:
            best_axes, best_hops = axes, hops
    if best_axes is None:
        # Every restart grid was unrealizable: fall back to the first
        # supported factorization (plan_distribution guarantees one).
        for grid in grid_factorizations(nprocs, rank):
            if supported(grid):
                best_axes, _ = _greedy_axes(
                    profile, grid, block_sizes, topology, vectorize
                )
                searched += 1
                break
    assert best_axes is not None
    return _finish(
        profile, best_axes, exact=False, searched=searched, topology=topology
    )
