"""Distribution plans: the planner's output representation.

The paper's deferred second phase assigns each template axis an HPF-style
distribution onto one axis of a processor grid.  A
:class:`DistributionPlan` records that choice — per-axis scheme, block
size and base cell — together with the grid shape and the modeled
communication cost, and converts to a concrete
:class:`repro.machine.Distribution` for the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..machine.distribution import (
    AxisDistribution,
    Block,
    BlockCyclic,
    Cyclic,
    Distribution,
)
from .costmodel import CostVector

BLOCK = "block"
CYCLIC = "cyclic"
BLOCK_CYCLIC = "block-cyclic"
SCHEMES = (BLOCK, CYCLIC, BLOCK_CYCLIC)


@dataclass(frozen=True)
class AxisPlan:
    """Distribution choice for one template axis.

    ``scheme`` is one of :data:`SCHEMES`; ``block`` is the block size
    (meaningful for block and block-cyclic); ``base`` anchors the
    distribution at the lowest template cell the axis actually touches,
    which keeps mobile-offset traffic inside the distribution's covered
    range.
    """

    scheme: str
    nprocs: int
    block: int = 1
    base: int = 0

    def __post_init__(self) -> None:
        if self.scheme not in SCHEMES:
            raise ValueError(f"unknown distribution scheme {self.scheme!r}")
        if self.nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if self.block < 1:
            raise ValueError("block must be >= 1")

    def to_axis_distribution(self) -> AxisDistribution:
        if self.scheme == BLOCK:
            return Block(self.nprocs, self.block, self.base)
        if self.scheme == CYCLIC:
            return Cyclic(self.nprocs, self.base)
        return BlockCyclic(self.nprocs, self.block, self.base)

    def render(self) -> str:
        """HPF directive spelling of this axis."""
        if self.scheme == BLOCK:
            return f"BLOCK({self.block})"
        if self.scheme == CYCLIC:
            return "CYCLIC"
        return f"CYCLIC({self.block})"


@dataclass(frozen=True)
class DistributionPlan:
    """A complete template distribution chosen by the planner.

    ``exact`` records whether the choice came from exhaustive search
    (globally optimal over the candidate space) or from the greedy /
    local-search fallback.  ``searched`` counts candidate distributions
    the planner evaluated.  ``topology`` is the interconnect spec the
    plan was priced on (``None``: the paper's default L1 grid machine).
    """

    axes: tuple[AxisPlan, ...]
    cost: CostVector
    exact: bool = True
    searched: int = 0
    topology: Optional[str] = None

    @property
    def rank(self) -> int:
        return len(self.axes)

    @property
    def grid(self) -> tuple[int, ...]:
        return tuple(a.nprocs for a in self.axes)

    @property
    def num_processors(self) -> int:
        n = 1
        for p in self.grid:
            n *= p
        return n

    def to_distribution(self) -> Distribution:
        return Distribution(tuple(a.to_axis_distribution() for a in self.axes))

    def directive(self) -> str:
        """One-line HPF-style distribute directive."""
        axes = ", ".join(a.render() for a in self.axes)
        grid = ", ".join(str(p) for p in self.grid)
        return f"DISTRIBUTE T({axes}) ONTO P({grid})"

    def render(self) -> str:
        mode = "exact" if self.exact else "local-search"
        machine = f" on {self.topology}" if self.topology else ""
        lines = [
            f"distribution plan ({self.num_processors} processors{machine}, "
            f"{mode}, {self.searched} candidates searched)",
            f"  {self.directive()}",
        ]
        for t, a in enumerate(self.axes):
            lines.append(
                f"  axis {t}: {a.render():>12s} on {a.nprocs} proc(s), "
                f"base cell {a.base}"
            )
        lines.append(
            f"  modeled cost: hops={self.cost.hops} moved={self.cost.moved} "
            f"broadcast={self.cost.broadcast}"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<DistributionPlan {self.directive()} hops={self.cost.hops}>"
