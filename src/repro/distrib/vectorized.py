"""Vectorized batch pricing of whole candidate enumerations.

The scalar pricing path (:meth:`CommProfile.axis_hops`,
:meth:`CommProfile.evaluate`) walks the move records in Python once per
candidate — fine for a single plan, dominant in batch planning where the
per-axis DP prices hundreds of (scheme, grid) candidates per program.
This module prices an *entire enumeration front* in a handful of
broadcasted NumPy ops instead:

* :func:`compile_front` stacks each profile's ragged move-record
  coordinate arrays into padded 2-D tensors **once per profile** (rows =
  records, columns = elements, padded slots carry zero weight), cached
  on the profile and instrumented under the ``distrib.front_tensors``
  cachestats counter;
* :func:`axis_front_hops` maps one axis's template coordinates to
  processor coordinates for *all* candidate axis schemes at once —
  scheme parameters become broadcast arrays, the topology's vectorized
  metric kernels (:meth:`~repro.topology.AxisMetric.hops`) price the
  whole ``(candidates, records, elements)`` tensor in one call — and
  returns the per-candidate hop totals the per-axis DP consumes;
* :func:`evaluate_front` prices full candidate distributions the same
  way and returns an ``(n_candidates, 3)`` cost matrix with columns
  ``(hops, moved, broadcast)``.

The pure-Python path stays intact as the differential oracle: every
number produced here is an exact integer equal to the scalar path and to
the machine simulator (asserted per scenario and per topology family in
``tests/test_differential.py``).  Pass ``vectorize=False`` to
:func:`~repro.distrib.search.plan_distribution` (CLI:
``--no-vectorize``) to fall back for debugging; the
``distrib.front_price`` counter records how many candidate prices went
through each path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..cachestats import _cell
from ..machine.distribution import (
    Block,
    BlockCyclic,
    Cyclic,
    Distribution,
    Identity,
)
from ..topology import AxisMetric, Topology, distribution_metrics_batch

# [vectorized candidate prices, scalar-fallback candidate prices]: the
# "hit rate" of this counter is the fraction of candidate pricings that
# took the fast path.
_FRONT_STATS = _cell("distrib.front_price")
# [tensor-cache hits, tensor compilations] per profile.
_TENSOR_STATS = _cell("distrib.front_tensors")

# Candidates per broadcast chunk in evaluate_front: bounds peak memory
# at chunk * records * elements without changing any result.
_CHUNK = 64

# Scheme codes for the broadcast kernels.
_MODE_BLOCK = 0  # proc = (cell - base) // block
_MODE_WRAP = 1  # proc = ((cell - base) // block) % nprocs  (block=1: cyclic)
_MODE_IDENTITY = 2  # proc = cell


@dataclass(frozen=True)
class AxisFront:
    """Padded 2-D tensors of every record touching one template axis.

    ``src``/``dst`` are ``(records, max_len)`` int64 coordinate tensors;
    rows shorter than ``max_len`` are padded with the row's own first
    coordinate (always in-window, so padded slots stay inside every
    candidate's covered range) and ``weight`` zeroes them out: a valid
    slot carries the record's fold ``count``, a padded slot carries 0.
    ``lo``/``hi`` bound the valid coordinates for contract checks.
    """

    src: np.ndarray
    dst: np.ndarray
    weight: np.ndarray
    lo: int
    hi: int


@dataclass(frozen=True)
class GroupFront:
    """Padded tensors of all records sharing one active-axes signature.

    Full-distribution pricing needs the per-record element mask "moved
    on *any* active axis", so records are grouped by their ``axes``
    tuple; ``src[j]``/``dst[j]`` are the ``(records, max_len)`` tensors
    of active axis ``axes[j]``, sharing one ``weight``/padding layout.
    """

    axes: tuple[int, ...]
    src: tuple[np.ndarray, ...]
    dst: tuple[np.ndarray, ...]
    weight: np.ndarray
    lo: tuple[int, ...]
    hi: tuple[int, ...]


@dataclass(frozen=True)
class FrontTensors:
    """Everything :func:`axis_front_hops`/:func:`evaluate_front` need,
    compiled once per profile."""

    template_rank: int
    axes: tuple[Optional[AxisFront], ...]
    groups: tuple[GroupFront, ...]


def _pad_rows(rows: Sequence[np.ndarray], counts: Sequence[int]):
    """Stack ragged 1-D rows into (R, L) tensors plus the weight mask."""
    n = len(rows)
    length = max((r.size for r in rows), default=0)
    src = np.zeros((n, length), dtype=np.int64)
    weight = np.zeros((n, length), dtype=np.int64)
    for i, (row, count) in enumerate(zip(rows, counts)):
        if not row.size:
            continue  # an empty record prices to zero via its weights
        src[i, : row.size] = row
        src[i, row.size :] = row[0]  # pad in-window: the row's first cell
        weight[i, : row.size] = count
    return src, weight


def compile_front(profile) -> FrontTensors:
    """The profile's padded coordinate tensors, compiled once and cached.

    The cache lives on the profile instance (like its per-candidate hop
    memo) so it ships with the profile across process pools and dies
    with it; hits and compilations are counted under
    ``distrib.front_tensors``.
    """
    cached = getattr(profile, "_front_tensors", None)
    if cached is not None:
        _TENSOR_STATS[0] += 1
        return cached
    _TENSOR_STATS[1] += 1

    rank = profile.template_rank
    # -- per-axis stacks: every record touching axis t, ragged-padded.
    axes: list[Optional[AxisFront]] = []
    for t in range(rank):
        srcs, dsts, counts = [], [], []
        for r in profile.records:
            if t not in r.axes:
                continue
            j = r.axes.index(t)
            srcs.append(r.src[j].ravel())
            dsts.append(r.dst[j].ravel())
            counts.append(r.count)
        if not srcs:
            axes.append(None)
            continue
        src, weight = _pad_rows(srcs, counts)
        dst, _ = _pad_rows(dsts, counts)
        filled = [a for a in srcs + dsts if a.size]
        lo = min((int(a.min()) for a in filled), default=0)
        hi = max((int(a.max()) for a in filled), default=0)
        axes.append(AxisFront(src, dst, weight, lo, hi))

    # -- per-signature groups for full-distribution pricing.
    by_axes: dict[tuple[int, ...], list] = {}
    for r in profile.records:
        by_axes.setdefault(r.axes, []).append(r)
    groups = []
    for sig, recs in by_axes.items():
        counts = [r.count for r in recs]
        srcs = []
        dsts = []
        for j in range(len(sig)):
            s, weight = _pad_rows([r.src[j].ravel() for r in recs], counts)
            d, _ = _pad_rows([r.dst[j].ravel() for r in recs], counts)
            srcs.append(s)
            dsts.append(d)
        def _bound(j: int, fn) -> int:
            vals = [
                fn(arr)
                for r in recs
                for arr in (r.src[j], r.dst[j])
                if arr.size
            ]
            return int(fn(np.array(vals))) if vals else 0

        lo = tuple(_bound(j, np.min) for j in range(len(sig)))
        hi = tuple(_bound(j, np.max) for j in range(len(sig)))
        groups.append(GroupFront(sig, tuple(srcs), tuple(dsts), weight, lo, hi))

    tensors = FrontTensors(rank, tuple(axes), tuple(groups))
    profile._front_tensors = tensors
    return tensors


# -- scheme parameters as broadcast arrays ------------------------------------


def _axis_dist_params(ax) -> tuple[int, int, int, int]:
    """(mode, nprocs, block, base) of one AxisDistribution instance."""
    if isinstance(ax, Block):
        return (_MODE_BLOCK, ax.nprocs, ax.block, ax.base)
    if isinstance(ax, Cyclic):
        return (_MODE_WRAP, ax.nprocs, 1, ax.base)
    if isinstance(ax, BlockCyclic):
        return (_MODE_WRAP, ax.nprocs, ax.block, ax.base)
    if isinstance(ax, Identity):
        return (_MODE_IDENTITY, 1, 1, 0)
    raise TypeError(
        f"cannot vectorize axis distribution {type(ax).__name__}; "
        "use the scalar pricing path (vectorize=False)"
    )


def _check_contract(
    mode: np.ndarray,
    p: np.ndarray,
    block: np.ndarray,
    base: np.ndarray,
    lo: int,
    hi: int,
) -> None:
    """Mirror :func:`repro.machine.distribution.validate_cells` for the
    whole candidate batch: same violations, same ValueError."""
    owned = mode != _MODE_IDENTITY
    below = owned & (lo < base)
    if np.any(below):
        i = int(np.argmax(below))
        raise ValueError(
            f"candidate {i}: cell {lo} below distribution base {int(base[i])}"
        )
    blocked = mode == _MODE_BLOCK
    over = blocked & (hi >= base + p * block)
    if np.any(over):
        i = int(np.argmax(over))
        raise ValueError(
            f"candidate {i}: cell {hi} outside covered range "
            f"[{int(base[i])}, {int(base[i] + p[i] * block[i])})"
        )


def _proc_coords(
    cells: np.ndarray,
    mode: np.ndarray,
    p: np.ndarray,
    block: np.ndarray,
    base: np.ndarray,
) -> np.ndarray:
    """Processor coordinates of ``cells`` (R, L) under every candidate
    at once: (C, R, L) via broadcasting.

    Cyclic is block-cyclic with block 1, so the wrap modes share one
    kernel; identity rows pass coordinates through unchanged.
    """
    shape = (-1,) + (1,) * cells.ndim
    mode_b = mode.reshape(shape)
    q = (cells[None] - base.reshape(shape)) // block.reshape(shape)
    proc = np.where(mode_b == _MODE_BLOCK, q, np.mod(q, p.reshape(shape)))
    return np.where(mode_b == _MODE_IDENTITY, cells[None], proc)


def _metric_hops(
    metric: Optional[AxisMetric], a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    # None is the paper's open chain; every registered metric kernel is
    # elementwise-broadcasting, so (C, R, L) tensors go through in one call.
    if metric is None:
        return np.abs(a - b)
    return metric.hops(a, b)


# -- front pricing ------------------------------------------------------------


def axis_front_hops(
    profile,
    axis: int,
    cands: Sequence,
    metric: Optional[AxisMetric] = None,
) -> np.ndarray:
    """Hop totals of one template axis for a whole candidate front.

    ``cands`` is the per-axis candidate list of the enumeration
    (:class:`~repro.distrib.plan.AxisPlan` values, or anything exposing
    ``to_axis_distribution``); the result is an int64 ``(len(cands),)``
    array, entry ``i`` exactly equal to
    ``profile.axis_hops(axis, cands[i].to_axis_distribution(), metric)``.
    """
    front = compile_front(profile).axes[axis]
    _FRONT_STATS[0] += len(cands)
    if front is None or not len(cands):
        return np.zeros(len(cands), dtype=np.int64)
    params = [
        _axis_dist_params(
            c.to_axis_distribution() if hasattr(c, "to_axis_distribution") else c
        )
        for c in cands
    ]
    mode, p, block, base = (
        np.array([pr[k] for pr in params], dtype=np.int64) for k in range(4)
    )
    _check_contract(mode, p, block, base, front.lo, front.hi)
    ps = _proc_coords(front.src, mode, p, block, base)
    pd = _proc_coords(front.dst, mode, p, block, base)
    hops = _metric_hops(metric, ps, pd)
    return np.sum(front.weight[None] * hops, axis=(1, 2), dtype=np.int64)


def _front_metrics(
    topology: Optional[Topology], dists: Sequence[Distribution]
) -> list[tuple[Optional[AxisMetric], ...]]:
    if topology is None:
        return [(None,) * d.rank for d in dists]
    # One metric tuple per distinct grid, however many candidates share it.
    return distribution_metrics_batch(topology, dists)


def evaluate_front(
    profile,
    dists: Sequence[Distribution],
    topology: Optional[Topology] = None,
) -> np.ndarray:
    """Exact cost of every candidate distribution, as one cost matrix.

    Returns an int64 ``(len(dists), 3)`` array with columns
    ``(hops, moved, broadcast)``; row ``i`` equals
    ``profile.evaluate(dists[i], topology)`` entry for entry (asserted
    by the differential harness on every scenario × topology family).
    An empty front prices to a ``(0, 3)`` matrix.
    """
    n = len(dists)
    out = np.zeros((n, 3), dtype=np.int64)
    if not n:
        return out
    for dist in dists:
        if dist.rank != profile.template_rank:
            raise ValueError(
                f"distribution rank {dist.rank} != template rank "
                f"{profile.template_rank}"
            )
    out[:, 0] = profile.fixed.hops
    out[:, 1] = profile.fixed.moved
    out[:, 2] = profile.broadcast
    tensors = compile_front(profile)
    if not tensors.groups:
        _FRONT_STATS[0] += n
        return out
    metrics = _front_metrics(topology, dists)
    params = [[_axis_dist_params(ax) for ax in d.axes] for d in dists]
    for start in range(0, n, _CHUNK):
        stop = min(start + _CHUNK, n)
        idx = list(range(start, stop))
        for g in tensors.groups:
            hops = np.zeros(len(idx), dtype=np.int64)
            moved_any: Optional[np.ndarray] = None
            for j, t in enumerate(g.axes):
                mode, p, block, base = (
                    np.array([params[i][t][k] for i in idx], dtype=np.int64)
                    for k in range(4)
                )
                _check_contract(mode, p, block, base, g.lo[j], g.hi[j])
                ps = _proc_coords(g.src[j], mode, p, block, base)
                pd = _proc_coords(g.dst[j], mode, p, block, base)
                neq = ps != pd
                moved_any = neq if moved_any is None else (moved_any | neq)
                # Candidates in the chunk can price this axis with
                # different metrics (different grids / physical axes):
                # group rows by metric so each kernel runs once.
                rows_by_metric: dict = {}
                for row, i in enumerate(idx):
                    rows_by_metric.setdefault(metrics[i][t], []).append(row)
                for metric, rows in rows_by_metric.items():
                    h = _metric_hops(metric, ps[rows], pd[rows])
                    hops[rows] += np.sum(
                        g.weight[None] * h, axis=(1, 2), dtype=np.int64
                    )
            assert moved_any is not None
            out[start:stop, 0] += hops
            out[start:stop, 1] += np.sum(
                g.weight[None] * moved_any, axis=(1, 2), dtype=np.int64
            )
    _FRONT_STATS[0] += n
    return out


def front_costs(
    profile,
    dists: Sequence[Distribution],
    topology: Optional[Topology] = None,
) -> list:
    """:func:`evaluate_front` as :class:`~repro.distrib.CostVector`s."""
    from .costmodel import CostVector

    matrix = evaluate_front(profile, dists, topology)
    return [
        CostVector(int(h), int(m), int(b)) for h, m, b in matrix
    ]
