"""Batched planning engine: corpora of programs through the pipeline.

The paper plans one program at a time; production service means planning
many concurrently.  This subpackage provides:

* :func:`plan_many` — fan a corpus out over a process pool (with a
  deterministic serial fallback) and collect structured results;
* :func:`plan_sweep` — one corpus × many machines: aligned
  :class:`~repro.passes.PlanContext` prefixes are computed once per
  program, shipped across the pool, and re-priced per machine by the
  pipeline's machine-dependent suffix;
* :func:`plan_one` / :class:`PlanRequest` / :class:`PlanResult` — the
  per-program unit of work and its diagnostics record;
* :class:`BatchReport` — aggregate throughput, failures, per-pass
  pipeline timings, and the cache-hit counters of the memoized hot
  kernels (:mod:`repro.cachestats`).

Quickstart::

    from repro.batch import plan_many
    from repro.lang.generate import generate_corpus

    report = plan_many(generate_corpus(100, seed=0), nprocs=16)
    print(report.render())
"""

from .engine import (
    BatchReport,
    PlanRequest,
    PlanResult,
    machine_label,
    plan_many,
    plan_one,
    plan_sweep,
    prefix_context,
)

__all__ = [
    "BatchReport",
    "PlanRequest",
    "PlanResult",
    "machine_label",
    "plan_many",
    "plan_one",
    "plan_sweep",
    "prefix_context",
]
