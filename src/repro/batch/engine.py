"""Batched planning: many programs through the pipeline, concurrently.

:func:`plan_many` takes a corpus of programs (source text,
:class:`~repro.lang.ast.Program` values, or
:class:`~repro.lang.generate.Scenario` records), plans each one with the
full alignment + distribution pipeline, and returns a
:class:`BatchReport` of structured :class:`PlanResult` records — cost,
alignments, chosen distribution, wall time, failure diagnostics, and
per-task cache-hit counters from :mod:`repro.cachestats`.

Execution is a :class:`concurrent.futures.ProcessPoolExecutor` fan-out
with a deterministic serial fallback (``jobs=1``, ``serial=True``, or
any failure to spawn the pool): results are identical and arrive in
corpus order either way, because planning itself is deterministic and
``Executor.map`` preserves input order.  Work items cross the process
boundary as source text, so nothing in the pipeline needs to pickle —
the machine topology rides along the same way, as its
:func:`~repro.topology.parse_topology` spec string, re-hydrated inside
each worker.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Union

from .. import cachestats
from ..lang.ast import Program
from ..lang.generate import Scenario
from ..lang.parser import parse
from ..lang.pretty import pretty

Work = Union[str, Program, Scenario, "PlanRequest"]


@dataclass(frozen=True)
class PlanRequest:
    """One unit of batch work: a named program source."""

    name: str
    source: str

    @classmethod
    def of(cls, item: Work, index: int) -> "PlanRequest":
        if isinstance(item, PlanRequest):
            return item
        if isinstance(item, Scenario):
            return cls(item.name, item.source)
        if isinstance(item, Program):
            return cls(item.name, pretty(item))
        if isinstance(item, str):
            return cls(f"program_{index}", item)
        raise TypeError(f"cannot batch-plan {type(item).__name__}")


@dataclass(frozen=True)
class PlanResult:
    """Everything the engine decided about one program.

    ``total_cost`` is the paper's equation-1 realignment cost as an
    exact ``Fraction`` string; ``alignments`` maps each declared array
    to the rendered alignment of its source port; ``distribution`` is
    the HPF-style directive chosen by the planner (``None`` when the
    batch ran without distribution planning).  ``cache`` holds the
    cache-counter increments this task produced, and ``verified``
    records the outcome of the optional differential check.
    """

    name: str
    ok: bool
    seconds: float
    total_cost: Optional[str] = None
    alignments: Mapping[str, str] = field(default_factory=dict)
    distribution: Optional[str] = None
    dist_hops: Optional[int] = None
    dist_moved: Optional[int] = None
    dist_exact: Optional[bool] = None
    error: Optional[str] = None
    verified: Optional[bool] = None
    cache: Mapping[str, tuple[int, int]] = field(default_factory=dict)


def plan_one(
    request: PlanRequest,
    nprocs: int | None = 4,
    align_kw: Mapping | None = None,
    distrib_options: Mapping | None = None,
    verify: bool = False,
    topology: str | None = None,
) -> PlanResult:
    """Plan a single program; never raises — failures become diagnostics.

    ``topology`` is a machine spec string (``"torus:4x4"``, …): specs —
    not topology objects — cross the process-pool boundary, so each
    worker re-parses it here.  A bad spec is a per-task diagnostic like
    any other failure.
    """
    from ..align.pipeline import align_program
    from ..distrib import build_profile, plan_distribution
    from ..topology import parse_topology

    before = cachestats.snapshot()
    t0 = time.perf_counter()
    try:
        topo = None if topology is None else parse_topology(topology)
        program = parse(request.source, name=request.name)
        plan = align_program(program, **dict(align_kw or {}))
        alignments = {
            arr: repr(al) for arr, al in sorted(plan.source_alignments().items())
        }
        directive = hops = moved = exact = None
        profile = None
        if nprocs is not None:
            profile = build_profile(plan.adg, plan.alignments)
            dplan = plan_distribution(
                profile, nprocs, topology=topo, **dict(distrib_options or {})
            )
            plan.distribution = dplan
            directive = dplan.directive()
            hops, moved = dplan.cost.hops, dplan.cost.moved
            exact = dplan.exact
        verified = None
        if verify:
            verified = _verify(plan, profile, topo)
        return PlanResult(
            name=request.name,
            ok=True,
            seconds=time.perf_counter() - t0,
            total_cost=str(plan.total_cost),
            alignments=alignments,
            distribution=directive,
            dist_hops=hops,
            dist_moved=moved,
            dist_exact=exact,
            verified=verified,
            cache=cachestats.delta(before),
        )
    except Exception as exc:  # noqa: BLE001 - diagnostics, not control flow
        return PlanResult(
            name=request.name,
            ok=False,
            seconds=time.perf_counter() - t0,
            error=f"{type(exc).__name__}: {exc}",
            cache=cachestats.delta(before),
        )


def _verify(plan, profile, topo=None) -> bool:
    """The differential cross-check, inline: analytic cost == simulator.

    Two oracles, both under the identity distribution but priced on the
    task's topology:

    * on the default (grid) machine, measured hops + broadcasts +
      general elements must equal the equation-1 cost exactly (general
      moves carry the discrete-metric charge, never hops);
    * for every topology, the compiled profile must agree with the
      executor's counts exactly — general edges included.
    """
    from ..machine.distribution import Distribution
    from ..machine.executor import measure_traffic

    ident = Distribution.identity(plan.adg.template_rank)
    rep = measure_traffic(plan.adg, plan.alignments, ident, topology=topo)
    if topo is None or topo.kind == "grid":
        total = rep.hop_cost + rep.broadcast_elements + rep.general_elements
        if plan.total_cost != total:
            return False
    if profile is not None:
        cv = profile.evaluate(ident, topo)
        if (
            cv.hops != rep.hop_cost
            or cv.moved != rep.elements_moved
            or cv.broadcast != rep.broadcast_elements
        ):
            return False
    return True


def _worker(payload: tuple) -> PlanResult:
    request, nprocs, align_kw, distrib_options, verify, topology = payload
    return plan_one(request, nprocs, align_kw, distrib_options, verify, topology)


@dataclass
class BatchReport:
    """Aggregate outcome of one :func:`plan_many` run."""

    results: list[PlanResult]
    seconds: float
    jobs: int
    mode: str  # "process" or "serial"
    # Why a requested process run degraded to serial (pool spawn failure,
    # broken pool mid-run, ...); None for a clean run.
    fallback_reason: Optional[str] = None
    # The machine spec every task was planned on (None: the default
    # L1 grid machine).
    topology: Optional[str] = None

    @property
    def ok(self) -> list[PlanResult]:
        return [r for r in self.results if r.ok]

    @property
    def failures(self) -> list[PlanResult]:
        return [r for r in self.results if not r.ok]

    @property
    def throughput(self) -> float:
        """Programs planned per wall-clock second."""
        return len(self.results) / self.seconds if self.seconds else 0.0

    def cache_totals(self) -> dict[str, tuple[int, int]]:
        totals: dict[str, tuple[int, int]] = {}
        for r in self.results:
            cachestats.merge(totals, r.cache)
        return totals

    def cache_hit_rates(self) -> dict[str, float]:
        return cachestats.hit_rate(self.cache_totals())

    def to_json(self) -> dict:
        return {
            "seconds": self.seconds,
            "jobs": self.jobs,
            "mode": self.mode,
            "fallback_reason": self.fallback_reason,
            "topology": self.topology,
            "programs": len(self.results),
            "ok": len(self.ok),
            "failed": len(self.failures),
            "throughput": self.throughput,
            "cache": {
                name: {"hits": h, "misses": m}
                for name, (h, m) in sorted(self.cache_totals().items())
            },
            "results": [
                {
                    "name": r.name,
                    "ok": r.ok,
                    "seconds": r.seconds,
                    "total_cost": r.total_cost,
                    "distribution": r.distribution,
                    "dist_hops": r.dist_hops,
                    "dist_moved": r.dist_moved,
                    "dist_exact": r.dist_exact,
                    "verified": r.verified,
                    "error": r.error,
                }
                for r in self.results
            ],
        }

    def render(self) -> str:
        machine = f", topology={self.topology}" if self.topology else ""
        lines = [
            f"batch: {len(self.results)} programs in {self.seconds:.2f}s "
            f"({self.throughput:.1f}/s, {self.mode}, jobs={self.jobs}"
            f"{machine}); "
            f"{len(self.ok)} ok, {len(self.failures)} failed",
        ]
        if self.fallback_reason:
            lines.append(
                f"  WARNING: process pool unavailable, fell back to "
                f"serial ({self.fallback_reason})"
            )
        totals = self.cache_totals()
        rates = cachestats.hit_rate(totals)
        for name, (h, m) in sorted(totals.items()):
            lines.append(
                f"  cache {name:22s} hits={h:8d} misses={m:8d} "
                f"rate={rates[name]:.1%}"
            )
        for r in self.failures:
            lines.append(f"  FAILED {r.name}: {r.error}")
        unverified = [r for r in self.ok if r.verified is False]
        for r in unverified:
            lines.append(f"  UNVERIFIED {r.name}: model/simulator mismatch")
        return "\n".join(lines)


def plan_many(
    corpus: Iterable[Work],
    nprocs: int | None = 4,
    jobs: int | None = None,
    serial: bool = False,
    align_kw: Mapping | None = None,
    distrib_options: Mapping | None = None,
    verify: bool = False,
    topology: str | None = None,
) -> BatchReport:
    """Plan every program in ``corpus``; results in corpus order.

    ``jobs`` defaults to the machine's CPU count.  ``serial=True`` (or
    ``jobs=1``) runs the same work inline — the deterministic fallback —
    and any failure to spawn the pool degrades to it silently, so
    ``plan_many`` works in restricted environments.  ``topology`` is a
    machine spec string applied to every task (validated up front so a
    typo fails fast, then shipped to workers as text).
    """
    if topology is not None:
        from ..topology import parse_topology

        parse_topology(topology)  # fail fast on a bad spec
    requests = [PlanRequest.of(item, i) for i, item in enumerate(corpus)]
    payloads = [
        (
            req,
            nprocs,
            dict(align_kw or {}),
            dict(distrib_options or {}),
            verify,
            topology,
        )
        for req in requests
    ]
    jobs = jobs if jobs is not None else (os.cpu_count() or 1)
    jobs = max(1, min(jobs, len(requests) or 1))
    t0 = time.perf_counter()
    if serial or jobs == 1:
        results = [_worker(p) for p in payloads]
        return BatchReport(
            results, time.perf_counter() - t0, 1, "serial", topology=topology
        )
    try:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            chunk = max(1, len(payloads) // (4 * jobs))
            results = list(pool.map(_worker, payloads, chunksize=chunk))
    except (OSError, ValueError, RuntimeError) as exc:
        # No usable pool (sandboxed environment, worker killed mid-run,
        # interpreter teardown…): fall back to the serial path — same
        # results, same order — but say so in the report.
        reason = f"{type(exc).__name__}: {exc}"
        t0 = time.perf_counter()
        results = [_worker(p) for p in payloads]
        return BatchReport(
            results,
            time.perf_counter() - t0,
            1,
            "serial",
            fallback_reason=reason,
            topology=topology,
        )
    return BatchReport(
        results, time.perf_counter() - t0, jobs, "process", topology=topology
    )
