"""Batched planning: many programs through the pipeline, concurrently.

:func:`plan_many` takes a corpus of programs (source text,
:class:`~repro.lang.ast.Program` values, or
:class:`~repro.lang.generate.Scenario` records), plans each one with the
full alignment + distribution pipeline, and returns a
:class:`BatchReport` of structured :class:`PlanResult` records — cost,
alignments, chosen distribution, wall time, failure diagnostics, and
per-task cache-hit counters from :mod:`repro.cachestats`.

Execution is a :class:`concurrent.futures.ProcessPoolExecutor` fan-out
with a deterministic serial fallback (``jobs=1``, ``serial=True``, or
any failure to spawn the pool): results are identical and arrive in
corpus order either way, because planning itself is deterministic and
``Executor.map`` preserves input order.  Work items cross the process
boundary as source text; the machine topology rides along the same
way, as its :func:`~repro.topology.parse_topology` spec string,
re-hydrated inside each worker.

Every task runs the staged pass pipeline (:mod:`repro.passes`); the
per-pass wall times travel back inside each :class:`PlanResult` and are
folded into the :class:`BatchReport`.  :func:`plan_sweep` plans one
corpus against *many* machines in two pool stages: stage one computes
each program's machine-independent :class:`~repro.passes.PlanContext`
prefix (alignments keyed by stable port uids, so the context pickles),
stage two ships those prefixes back across the pool and runs only the
machine-dependent suffix per (program, machine) pair.
"""

from __future__ import annotations

import dataclasses
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Union

from .. import cachestats
from ..obs import spans as obs
from ..obs.metrics import latency_summary
from ..obs.recorder import TraceRecorder
from ..lang.ast import Program
from ..lang.generate import Scenario
from ..lang.parser import parse
from ..lang.pretty import pretty

Work = Union[str, Program, Scenario, "PlanRequest"]


@dataclass(frozen=True)
class PlanRequest:
    """One unit of batch work: a named program source."""

    name: str
    source: str

    @classmethod
    def of(cls, item: Work, index: int) -> "PlanRequest":
        if isinstance(item, PlanRequest):
            return item
        if isinstance(item, Scenario):
            return cls(item.name, item.source)
        if isinstance(item, Program):
            return cls(item.name, pretty(item))
        if isinstance(item, str):
            return cls(f"program_{index}", item)
        raise TypeError(f"cannot batch-plan {type(item).__name__}")


@dataclass(frozen=True)
class PlanResult:
    """Everything the engine decided about one program.

    ``total_cost`` is the paper's equation-1 realignment cost as an
    exact ``Fraction`` string; ``alignments`` maps each declared array
    to the rendered alignment of its source port; ``distribution`` is
    the HPF-style directive chosen by the planner (``None`` when the
    batch ran without distribution planning).  ``cache`` holds the
    cache-counter increments this task produced, and ``verified``
    records the outcome of the optional differential check.
    """

    name: str
    ok: bool
    seconds: float
    total_cost: Optional[str] = None
    alignments: Mapping[str, str] = field(default_factory=dict)
    distribution: Optional[str] = None
    dist_hops: Optional[int] = None
    dist_moved: Optional[int] = None
    dist_exact: Optional[bool] = None
    error: Optional[str] = None
    verified: Optional[bool] = None
    cache: Mapping[str, tuple[int, int]] = field(default_factory=dict)
    # Wall seconds per executed pipeline pass for this task (reused
    # passes contribute nothing); the machine spec the task planned for.
    passes: Mapping[str, float] = field(default_factory=dict)
    machine: Optional[str] = None
    # Counter names that went backwards during the task (cachestats.reset
    # fired mid-measurement): their cache entries are clamped to the
    # post-reset counts, and the report surfaces the names explicitly —
    # plus the magnitude floor each reset wiped (the pre-reset counts).
    cache_resets: tuple[str, ...] = ()
    cache_reset_lost: Mapping[str, tuple[int, int]] = field(
        default_factory=dict
    )
    # The task's span tree when the batch ran with tracing (``trace=True``):
    # a picklable recorder shipped back across the process pool, merged by
    # :meth:`BatchReport.merged_trace`.
    trace: Optional[TraceRecorder] = None


def plan_one(
    request: PlanRequest,
    nprocs: int | None = 4,
    align_kw: Mapping | None = None,
    distrib_options: Mapping | None = None,
    verify: bool = False,
    topology: str | None = None,
    trace: bool = False,
) -> PlanResult:
    """Plan a single program; never raises — failures become diagnostics.

    ``topology`` is a machine spec string (``"torus:4x4"``, …): specs —
    not topology objects — cross the process-pool boundary, so each
    worker re-parses it here.  A bad spec is a per-task diagnostic like
    any other failure.  ``trace=True`` records the task's span tree
    (pipeline passes, DP, front pricing, simulation) into a picklable
    recorder on :attr:`PlanResult.trace`; tracing never changes the
    plan, only observes it.
    """
    if not trace:
        return _plan_one_impl(
            request, nprocs, align_kw, distrib_options, verify, topology
        )
    with obs.recording(label=request.name) as rec:
        result = _plan_one_impl(
            request, nprocs, align_kw, distrib_options, verify, topology
        )
    return dataclasses.replace(result, trace=rec)


def _plan_one_impl(
    request: PlanRequest,
    nprocs: int | None,
    align_kw: Mapping | None,
    distrib_options: Mapping | None,
    verify: bool,
    topology: str | None,
) -> PlanResult:
    from ..align.pipeline import plan_context
    from ..passes import MachineSpec, Pipeline
    from ..topology import parse_topology

    before = cachestats.snapshot()
    t0 = time.perf_counter()
    # Same label scheme as plan_sweep ("torus:4x4", "P8", ...), so the
    # machine field of a BatchReport has one schema across both engines.
    label = (
        None
        if nprocs is None and topology is None
        else _machine_label(nprocs, topology)
    )
    with obs.span(
        f"plan:{request.name}", program=request.name, machine=label
    ):
        try:
            topo = None if topology is None else parse_topology(topology)
            program = parse(request.source, name=request.name)
            ctx = plan_context(program, **dict(align_kw or {}))
            goals = ["plan"]
            if nprocs is not None:
                ctx.put(
                    "machine",
                    MachineSpec.of(
                        nprocs, topology=topology, **dict(distrib_options or {})
                    ),
                )
                goals.append("distribution")
            Pipeline().run(ctx, goal=tuple(goals))
            plan = ctx.get("plan")
            alignments = {
                arr: repr(al)
                for arr, al in sorted(plan.source_alignments().items())
            }
            directive = hops = moved = exact = None
            profile = None
            if nprocs is not None:
                profile = ctx.get("profile")
                dplan = ctx.get("distribution")
                plan.distribution = dplan
                directive = dplan.directive()
                hops, moved = dplan.cost.hops, dplan.cost.moved
                exact = dplan.exact
            verified = None
            if verify:
                with obs.span("batch.verify"):
                    verified = _verify(plan, profile, topo)
            resets: set[str] = set()
            lost: dict[str, tuple[int, int]] = {}
            cache = cachestats.delta(before, resets=resets, lost=lost)
            return PlanResult(
                name=request.name,
                ok=True,
                seconds=time.perf_counter() - t0,
                total_cost=str(plan.total_cost),
                alignments=alignments,
                distribution=directive,
                dist_hops=hops,
                dist_moved=moved,
                dist_exact=exact,
                verified=verified,
                cache=cache,
                passes=_pass_seconds(ctx.trace),
                machine=label,
                cache_resets=tuple(sorted(resets)),
                cache_reset_lost=lost,
            )
        except Exception as exc:  # noqa: BLE001 - diagnostics, not control flow
            resets = set()
            lost = {}
            cache = cachestats.delta(before, resets=resets, lost=lost)
            return PlanResult(
                name=request.name,
                ok=False,
                seconds=time.perf_counter() - t0,
                error=f"{type(exc).__name__}: {exc}",
                cache=cache,
                machine=label,
                cache_resets=tuple(sorted(resets)),
                cache_reset_lost=lost,
            )


def _pass_seconds(trace) -> dict[str, float]:
    """Executed-pass wall seconds from a context trace (reuses excluded)."""
    out: dict[str, float] = {}
    for ev in trace:
        if ev.get("event") == "run":
            out[ev["pass"]] = out.get(ev["pass"], 0.0) + ev.get("seconds", 0.0)
    return out


def _verify(plan, profile, topo=None) -> bool:
    """The differential cross-check, inline: analytic cost == simulator.

    Two oracles, both under the identity distribution but priced on the
    task's topology:

    * on the default (grid) machine, measured hops + broadcasts +
      general elements must equal the equation-1 cost exactly (general
      moves carry the discrete-metric charge, never hops);
    * for every topology, the compiled profile must agree with the
      executor's counts exactly — general edges included.
    """
    from ..machine.distribution import Distribution
    from ..machine.executor import measure_traffic

    ident = Distribution.identity(plan.adg.template_rank)
    rep = measure_traffic(plan.adg, plan.alignments, ident, topology=topo)
    if topo is None or topo.kind == "grid":
        total = rep.hop_cost + rep.broadcast_elements + rep.general_elements
        if plan.total_cost != total:
            return False
    if profile is not None:
        cv = profile.evaluate(ident, topo)
        if (
            cv.hops != rep.hop_cost
            or cv.moved != rep.elements_moved
            or cv.broadcast != rep.broadcast_elements
        ):
            return False
    return True


def _worker(payload: tuple) -> PlanResult:
    request, nprocs, align_kw, distrib_options, verify, topology, trace = payload
    return plan_one(
        request, nprocs, align_kw, distrib_options, verify, topology, trace
    )


def _family(name: str) -> str:
    """The program family of a result name, for latency grouping.

    Generated scenarios are named ``family_seed`` and sweep results
    ``name@machine``; strip the machine suffix, then a trailing numeric
    seed.  A name with neither is its own family.
    """
    base = name.split("@", 1)[0]
    stem, _, tail = base.rpartition("_")
    return stem if stem and tail.isdigit() else base


@dataclass
class BatchReport:
    """Aggregate outcome of one :func:`plan_many` run."""

    results: list[PlanResult]
    seconds: float
    jobs: int
    mode: str  # "process" or "serial"
    # Why a requested process run degraded to serial (pool spawn failure,
    # broken pool mid-run, ...); None for a clean run.
    fallback_reason: Optional[str] = None
    # The machine spec every task was planned on (None: the default
    # L1 grid machine).
    topology: Optional[str] = None

    @property
    def ok(self) -> list[PlanResult]:
        return [r for r in self.results if r.ok]

    @property
    def failures(self) -> list[PlanResult]:
        return [r for r in self.results if not r.ok]

    @property
    def throughput(self) -> float:
        """Programs planned per wall-clock second."""
        return len(self.results) / self.seconds if self.seconds else 0.0

    def cache_totals(self) -> dict[str, tuple[int, int]]:
        totals: dict[str, tuple[int, int]] = {}
        for r in self.results:
            cachestats.merge(totals, r.cache)
        return totals

    def cache_hit_rates(self) -> dict[str, float]:
        return cachestats.hit_rate(self.cache_totals())

    def cache_reset_names(self) -> tuple[str, ...]:
        """Counters observed going backwards in any task (clamped deltas)."""
        names: set[str] = set()
        for r in self.results:
            names.update(r.cache_resets)
        return tuple(sorted(names))

    def cache_reset_lost(self) -> dict[str, tuple[int, int]]:
        """Summed magnitude floor each reset counter lost across tasks
        (the pre-reset ``(hits, misses)`` wiped by each observed reset)."""
        out: dict[str, tuple[int, int]] = {}
        for r in self.results:
            cachestats.merge(out, r.cache_reset_lost)
        return out

    def latency_summaries(self, unit: float = 1e3) -> dict[str, dict]:
        """Histogram-backed per-task latency (p50/p90/p99) per program
        family, plus an ``"*"`` row for the whole batch; milliseconds by
        default (``unit`` rescales seconds)."""
        groups: dict[str, list] = {"*": []}
        for r in self.results:
            groups["*"].append(r.seconds)
            groups.setdefault(_family(r.name), []).append(r.seconds)
        return latency_summary(groups, unit=unit)

    def merged_trace(self) -> Optional[TraceRecorder]:
        """All per-worker recorders folded into one multi-process trace
        with per-program attribution; None when the batch ran untraced."""
        recorders = [r.trace for r in self.results if r.trace is not None]
        if not recorders:
            return None
        merged = TraceRecorder.merged(recorders, label="batch")
        return merged

    def pass_totals(self) -> dict[str, tuple[int, float]]:
        """Per-pass ``(executions, wall seconds)`` across every task."""
        totals: dict[str, tuple[int, float]] = {}
        for r in self.results:
            for name, secs in r.passes.items():
                n, s = totals.get(name, (0, 0.0))
                totals[name] = (n + 1, s + secs)
        return totals

    def to_json(self) -> dict:
        return {
            "seconds": self.seconds,
            "jobs": self.jobs,
            "mode": self.mode,
            "fallback_reason": self.fallback_reason,
            "topology": self.topology,
            "programs": len(self.results),
            "ok": len(self.ok),
            "failed": len(self.failures),
            "throughput": self.throughput,
            "cache": {
                name: {"hits": h, "misses": m}
                for name, (h, m) in sorted(self.cache_totals().items())
            },
            "cache_resets": list(self.cache_reset_names()),
            "cache_reset_lost": {
                name: {"hits": h, "misses": m}
                for name, (h, m) in sorted(self.cache_reset_lost().items())
            },
            "latency": self.latency_summaries(),
            "passes": {
                name: {"executions": n, "seconds": s}
                for name, (n, s) in sorted(self.pass_totals().items())
            },
            "results": [
                {
                    "name": r.name,
                    "ok": r.ok,
                    "seconds": r.seconds,
                    "total_cost": r.total_cost,
                    "distribution": r.distribution,
                    "dist_hops": r.dist_hops,
                    "dist_moved": r.dist_moved,
                    "dist_exact": r.dist_exact,
                    "verified": r.verified,
                    "error": r.error,
                    "machine": r.machine,
                    "passes": dict(r.passes),
                }
                for r in self.results
            ],
        }

    def render(self) -> str:
        machine = f", topology={self.topology}" if self.topology else ""
        lines = [
            f"batch: {len(self.results)} programs in {self.seconds:.2f}s "
            f"({self.throughput:.1f}/s, {self.mode}, jobs={self.jobs}"
            f"{machine}); "
            f"{len(self.ok)} ok, {len(self.failures)} failed",
        ]
        if self.fallback_reason:
            lines.append(
                f"  WARNING: process pool unavailable, fell back to "
                f"serial ({self.fallback_reason})"
            )
        totals = self.cache_totals()
        rates = cachestats.hit_rate(totals)
        for name, (h, m) in sorted(totals.items()):
            lines.append(
                f"  cache {name:22s} hits={h:8d} misses={m:8d} "
                f"rate={rates[name]:.1%}"
            )
        resets = self.cache_reset_names()
        if resets:
            lost = self.cache_reset_lost()
            detail = ", ".join(
                f"{name} (lost >= {lost.get(name, (0, 0))[0]}h/"
                f"{lost.get(name, (0, 0))[1]}m)"
                for name in resets
            )
            lines.append(
                "  WARNING: counters reset mid-task (deltas clamped): "
                + detail
            )
        for fam, s in self.latency_summaries().items():
            if s.get("count"):
                lines.append(
                    f"  latency {fam:20s} n={s['count']:6d} "
                    f"p50={s['p50']:8.2f}ms p90={s['p90']:8.2f}ms "
                    f"p99={s['p99']:8.2f}ms max={s['max']:8.2f}ms"
                )
        for name, (n, s) in sorted(self.pass_totals().items()):
            lines.append(
                f"  pass  {name:22s} runs={n:8d} seconds={s:9.3f}"
            )
        for r in self.failures:
            lines.append(f"  FAILED {r.name}: {r.error}")
        unverified = [r for r in self.ok if r.verified is False]
        for r in unverified:
            lines.append(f"  UNVERIFIED {r.name}: model/simulator mismatch")
        return "\n".join(lines)


def plan_many(
    corpus: Iterable[Work],
    nprocs: int | None = 4,
    jobs: int | None = None,
    serial: bool = False,
    align_kw: Mapping | None = None,
    distrib_options: Mapping | None = None,
    verify: bool = False,
    topology: str | None = None,
    trace: bool = False,
) -> BatchReport:
    """Plan every program in ``corpus``; results in corpus order.

    ``jobs`` defaults to the machine's CPU count.  ``serial=True`` (or
    ``jobs=1``) runs the same work inline — the deterministic fallback —
    and any failure to spawn the pool degrades to it silently, so
    ``plan_many`` works in restricted environments.  ``topology`` is a
    machine spec string applied to every task (validated up front so a
    typo fails fast, then shipped to workers as text).  ``trace=True``
    records every task's span tree in its worker and ships the
    recorders back for :meth:`BatchReport.merged_trace`.
    """
    if topology is not None:
        from ..topology import parse_topology

        parse_topology(topology)  # fail fast on a bad spec
    requests = [PlanRequest.of(item, i) for i, item in enumerate(corpus)]
    payloads = [
        (
            req,
            nprocs,
            dict(align_kw or {}),
            dict(distrib_options or {}),
            verify,
            topology,
            trace,
        )
        for req in requests
    ]
    jobs = jobs if jobs is not None else (os.cpu_count() or 1)
    jobs = max(1, min(jobs, len(requests) or 1))
    t0 = time.perf_counter()
    if serial or jobs == 1:
        results = [_worker(p) for p in payloads]
        return BatchReport(
            results, time.perf_counter() - t0, 1, "serial", topology=topology
        )
    try:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            chunk = max(1, len(payloads) // (4 * jobs))
            results = list(pool.map(_worker, payloads, chunksize=chunk))
    except (OSError, ValueError, RuntimeError) as exc:
        # No usable pool (sandboxed environment, worker killed mid-run,
        # interpreter teardown…): fall back to the serial path — same
        # results, same order — but say so in the report.
        reason = f"{type(exc).__name__}: {exc}"
        t0 = time.perf_counter()
        results = [_worker(p) for p in payloads]
        return BatchReport(
            results,
            time.perf_counter() - t0,
            1,
            "serial",
            fallback_reason=reason,
            topology=topology,
        )
    return BatchReport(
        results, time.perf_counter() - t0, jobs, "process", topology=topology
    )


# -- machine sweeps: prefix contexts shipped across the pool ------------------

# One target machine: an nprocs count, a topology spec string, or both.
Machine = Union[int, str, tuple]


def _normalize_machine(m: Machine) -> tuple[Optional[int], Optional[str]]:
    if isinstance(m, bool):  # bool is an int subclass; reject explicitly
        raise TypeError(f"cannot interpret {m!r} as a machine")
    if isinstance(m, int):
        return (m, None)
    if isinstance(m, str):
        return (None, m)
    if isinstance(m, tuple) and len(m) == 2:
        return m
    raise TypeError(
        f"machine {m!r} is neither an nprocs int, a topology spec string, "
        "nor an (nprocs, spec) pair"
    )


def machine_label(nprocs: Optional[int], spec: Optional[str]) -> str:
    """The one-line machine tag used across batch and serve reports
    (``"torus:4x4/P16"``, ``"P8"``, ``"ring:8"``)."""
    if spec is not None and nprocs is not None:
        return f"{spec}/P{nprocs}"
    return spec if spec is not None else f"P{nprocs}"


_machine_label = machine_label


def prefix_context(request: PlanRequest, align_kw: Mapping | None = None):
    """Parse one request and run the machine-independent pipeline prefix.

    The shared cold-path kernel: :func:`plan_sweep` stage 1 runs it in
    pool workers, and the :mod:`repro.serve` daemon shards cache misses
    through it — the returned :class:`~repro.passes.PlanContext` is
    exactly what the persistent prefix cache pickles.
    """
    from ..align.pipeline import plan_context
    from ..passes import Pipeline

    program = parse(request.source, name=request.name)
    ctx = plan_context(program, **dict(align_kw or {}))
    Pipeline().run(ctx, goal="profile")
    return ctx


def replan_context(base_ctx, request: PlanRequest, align_kw: Mapping | None = None):
    """Incremental counterpart of :func:`prefix_context`.

    Parses the (edited) request and re-plans the machine-independent
    prefix against an already-solved base context, carrying over every
    alignment artifact the edit left valid
    (:func:`repro.passes.delta.replan`).  ``align_kw`` must match the
    base's — differing options change the ``align_options`` artifact,
    so the delta engine would refuse the carry anyway; the base context
    is never mutated.  Returns ``(ctx, DeltaReport)``.
    """
    from ..passes.delta import replan

    program = parse(request.source, name=request.name)
    if align_kw:
        from ..passes import AlignOptions, content_fingerprint

        opts = AlignOptions.of(**dict(align_kw))
        if content_fingerprint(opts) != base_ctx.artifact(
            "align_options"
        ).fingerprint:
            raise ValueError(
                "replan_context: align_kw differs from the base context's "
                "align_options; plan cold with prefix_context instead"
            )
    return replan(base_ctx, program=program, goal=("plan", "profile"))


def _prefix_worker(payload: tuple):
    """Stage 1: run the machine-independent pipeline prefix for one
    program; the returned PlanContext crosses the pool boundary (so
    does the prefix's trace recorder, when the sweep is traced)."""
    request, align_kw, trace = payload

    def run():
        return prefix_context(request, align_kw)

    try:
        if trace:
            with obs.recording(label=request.name) as rec:
                with obs.span(f"prefix:{request.name}", program=request.name):
                    ctx = run()
            return (request.name, ctx, None, rec)
        return (request.name, run(), None, None)
    except Exception as exc:  # noqa: BLE001 - diagnostics, not control flow
        return (request.name, None, f"{type(exc).__name__}: {exc}", None)


def _suffix_worker(payload: tuple) -> list[PlanResult]:
    """Stage 2: fork a shipped prefix context once per machine of the
    chunk and run only the machine-dependent suffix.

    Machines arrive *chunked* so the (heavy) context crosses the pool
    once per chunk, not once per machine — the suffix itself is a few
    milliseconds of DP, so serialization would otherwise dominate.
    """
    from ..passes import MachineSpec, Pipeline
    from ..topology import parse_topology

    (
        name,
        ctx,
        chunk,
        distrib_options,
        verify,
        include_prefix,
        trace,
        prefix_rec,
    ) = payload
    # The prefix trace traveled with the context; charge its pass
    # timings to the chunk's first result — success or failure — so
    # BatchReport.pass_totals() counts the stage-1 executions exactly
    # once per program.  The same policy covers the prefix's *span*
    # recorder: merged into the first result's recorder below.
    prefix_passes = _pass_seconds(ctx.trace) if include_prefix else {}
    if not include_prefix:
        prefix_rec = None
    results: list[PlanResult] = []
    for nprocs, spec in chunk:
        label = _machine_label(nprocs, spec)
        task_name = f"{name}@{label}"
        rec = recording_cm = None
        if trace:
            rec = TraceRecorder(label=task_name)
            if prefix_rec is not None:
                rec.merge(prefix_rec, program=task_name)
                prefix_rec = None
            recording_cm = obs.recording(into=rec)
            recording_cm.__enter__()
        before = cachestats.snapshot()
        t0 = time.perf_counter()
        try:
            with obs.span(
                f"plan:{task_name}", program=task_name, machine=label
            ):
                sub = ctx.fork()
                sub.put(
                    "machine",
                    MachineSpec.of(nprocs, topology=spec, **distrib_options),
                )
                Pipeline().run(sub, goal=("plan", "distribution"))
                plan = sub.get("plan")
                dplan = sub.get("distribution")
                verified = None
                if verify:
                    topo = None if spec is None else parse_topology(spec)
                    with obs.span("batch.verify"):
                        verified = _verify(plan, sub.get("profile"), topo)
            passes = _pass_seconds(sub.trace)
            for p, s in prefix_passes.items():
                passes[p] = passes.get(p, 0.0) + s
            prefix_passes = {}
            resets: set[str] = set()
            lost: dict[str, tuple[int, int]] = {}
            cache = cachestats.delta(before, resets=resets, lost=lost)
            results.append(
                PlanResult(
                    name=task_name,
                    ok=True,
                    seconds=time.perf_counter() - t0,
                    total_cost=str(sub.get("total_cost")),
                    alignments={
                        arr: repr(al)
                        for arr, al in sorted(plan.source_alignments().items())
                    },
                    distribution=dplan.directive(),
                    dist_hops=dplan.cost.hops,
                    dist_moved=dplan.cost.moved,
                    dist_exact=dplan.exact,
                    verified=verified,
                    cache=cache,
                    passes=passes,
                    machine=label,
                    cache_resets=tuple(sorted(resets)),
                    cache_reset_lost=lost,
                    trace=rec,
                )
            )
        except Exception as exc:  # noqa: BLE001 - diagnostics, not control flow
            passes = dict(prefix_passes)
            prefix_passes = {}
            resets = set()
            lost = {}
            cache = cachestats.delta(before, resets=resets, lost=lost)
            results.append(
                PlanResult(
                    name=task_name,
                    ok=False,
                    seconds=time.perf_counter() - t0,
                    error=f"{type(exc).__name__}: {exc}",
                    cache=cache,
                    passes=passes,
                    machine=label,
                    cache_resets=tuple(sorted(resets)),
                    cache_reset_lost=lost,
                    trace=rec,
                )
            )
        finally:
            if recording_cm is not None:
                recording_cm.__exit__(None, None, None)
    return results


def plan_sweep(
    corpus: Iterable[Work],
    machines: Iterable[Machine],
    jobs: int | None = None,
    serial: bool = False,
    align_kw: Mapping | None = None,
    distrib_options: Mapping | None = None,
    verify: bool = False,
    trace: bool = False,
) -> BatchReport:
    """Plan every program against every machine, reusing aligned prefixes.

    Two pool stages.  Stage one aligns and profiles each program once —
    the machine-independent pipeline prefix — and ships the resulting
    :class:`~repro.passes.PlanContext` back across the pool (possible
    because every artifact is keyed by stable port uids, not object
    identity).  Stage two fans each prefix out over the machine list;
    every (program, machine) task forks the shipped context and runs
    only the distribution suffix.  Results are program-major, machine
    order preserved, named ``program@machine``.
    """
    requests = [PlanRequest.of(item, i) for i, item in enumerate(corpus)]
    specs = [_normalize_machine(m) for m in machines]
    if not specs:
        raise ValueError("plan_sweep needs at least one machine")
    dopts = dict(distrib_options or {})
    prefix_payloads = [
        (req, dict(align_kw or {}), trace) for req in requests
    ]

    jobs = jobs if jobs is not None else (os.cpu_count() or 1)
    jobs = max(1, min(jobs, len(requests) * len(specs) or 1))

    def machine_chunks() -> list[list]:
        # One chunk per program when programs alone fill the pool; more
        # (down to per-machine) when they don't — chunking bounds how
        # often each heavy context is re-pickled across the pool while
        # keeping every worker busy.
        n = max(1, min(len(specs), jobs // max(1, len(requests))))
        size = -(-len(specs) // n)  # ceil
        return [specs[i : i + size] for i in range(0, len(specs), size)]

    def stage2_payloads(prefixes):
        out = []
        for name, ctx, err, rec in prefixes:
            if err is not None:
                out.append((name, err))
                continue
            for i, chunk in enumerate(machine_chunks()):
                out.append(
                    (name, ctx, chunk, dopts, verify, i == 0, trace, rec)
                )
        return out

    def failed(name: str, err: str) -> list[PlanResult]:
        return [
            PlanResult(
                name=f"{name}@{_machine_label(*machine)}",
                ok=False,
                seconds=0.0,
                error=err,
                machine=_machine_label(*machine),
            )
            for machine in specs
        ]

    def run_serial(reason: Optional[str] = None) -> BatchReport:
        t0 = time.perf_counter()
        prefixes = [_prefix_worker(p) for p in prefix_payloads]
        results = [
            r
            for p in stage2_payloads(prefixes)
            for r in (failed(*p) if len(p) == 2 else _suffix_worker(p))
        ]
        return BatchReport(
            results,
            time.perf_counter() - t0,
            1,
            "serial",
            fallback_reason=reason,
        )

    t0 = time.perf_counter()
    if serial or jobs == 1:
        return run_serial()
    try:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            prefixes = list(pool.map(_prefix_worker, prefix_payloads))
            payloads = stage2_payloads(prefixes)
            ready = [p for p in payloads if len(p) != 2]
            mapped = iter(pool.map(_suffix_worker, ready))
            results = [
                r
                for p in payloads
                for r in (failed(*p) if len(p) == 2 else next(mapped))
            ]
    except (OSError, ValueError, RuntimeError) as exc:
        return run_serial(reason=f"{type(exc).__name__}: {exc}")
    return BatchReport(results, time.perf_counter() - t0, jobs, "process")
