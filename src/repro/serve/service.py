"""The planning service: admission → cache probe → plan → respond.

:class:`PlanService` is the in-process engine behind the
``python -m repro.serve`` daemon and the unit the tests drive directly.
One request is one program source plus a target machine; the response
is the planned distribution payload, annotated with how it was
produced:

* ``cached="plan"`` — answered entirely from the persistent plan cache
  (key: program, align-options and machine content fingerprints);
* ``cached="prefix"`` — the machine-independent pipeline prefix came
  from the cache and only the distribution suffix ran;
* ``cached="delta"`` — the exact probes missed, but the request named a
  ``base_fingerprint`` whose prefix is cached: the program diff engine
  (:mod:`repro.passes.delta`) carried the base's unchanged alignment
  artifacts into an incremental re-plan, and only the invalidated
  suffix recomputed (counted as ``serve.hits.delta``, timed by
  ``serve.delta_ms``; a stale base ticks ``serve.delta_stale`` and
  degrades to cold);
* ``cached=None`` — a cold miss: the full pipeline ran, sharded to the
  worker-process pool when the service has one (``jobs > 1``, reusing
  the :mod:`repro.batch` cold-path kernel), and both cache namespaces
  were populated for the next request.

Admission applies bounded backpressure: past ``max_pending``
concurrently admitted requests the service answers
``status="rejected"`` with a ``retry_after`` hint instead of queueing
without bound.  Every stage is wrapped in :mod:`repro.obs` spans
(``serve.request`` → ``serve.admit`` / ``serve.cache`` / ``serve.plan``
/ ``serve.respond``) and feeds the typed metric registry
(``serve.requests``, ``serve.hits.plan``, ``serve.hits.prefix``,
``serve.misses``, ``serve.rejected``; latency histograms
``serve.warm_ms`` / ``serve.cold_ms`` and the unified ``serve.ms``).
The request counters and latency histograms are **windowed**
(:mod:`repro.obs.live`): alongside their lifetime totals they carry a
rolling last-``window``-seconds view, which :meth:`PlanService.stats`
surfaces under ``window`` and the declarative SLO objectives
(``slos=``, default :func:`repro.obs.live.default_serve_slos`) burn
against.  ``serve.inflight`` gauges the requests currently admitted.

When ``access_log`` is set, every request — served, errored, or
rejected — appends exactly one structured JSON line
(:class:`repro.serve.accesslog.AccessLog`): name, fingerprint chain,
cache outcome, latency, status, and (at a deterministic
``trace_sample`` rate) a per-span time breakdown of that request.

Cache-correctness discipline: payloads are keyed only by *content*
fingerprints.  If any fingerprint in the chain degrades to an identity
fingerprint (opaque or over-budget value), the request is planned
normally but never persisted — :class:`~repro.serve.cache.PlanCache`
would refuse the store, and the service counts it as
``serve.uncacheable`` instead of risking a cross-context collision.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from .. import cachestats
from ..obs import spans as obs
from ..obs.live import SLOTracker, default_serve_slos
from ..obs.metrics import registry
from .accesslog import AccessLog
from .cache import MISS, PlanCache

#: Default target machine when a request names neither nprocs nor topology.
DEFAULT_NPROCS = 4

#: Default rolling-window width for the serve metrics (seconds).
DEFAULT_WINDOW = 60.0

#: The serve counters that carry a rolling-window view.
WINDOWED_COUNTERS = (
    "serve.requests",
    "serve.hits.plan",
    "serve.hits.prefix",
    "serve.hits.delta",
    "serve.misses",
    "serve.rejected",
    "serve.errors",
)

#: The serve latency histograms that carry a rolling-window view.
WINDOWED_HISTOGRAMS = ("serve.warm_ms", "serve.cold_ms", "serve.delta_ms", "serve.ms")


@dataclass(frozen=True)
class ServeRequest:
    """One plan query: a named program source and a target machine.

    ``base_fingerprint`` opts into the incremental path: the program
    fingerprint of a previously planned request this one is an edit of.
    When the exact plan and prefix probes miss but the *base* prefix is
    still cached, the service diffs the two programs and re-plans
    incrementally (:func:`repro.passes.delta.replan`) instead of
    running the pipeline cold.  A stale or unknown base degrades to the
    cold path (counted under ``serve.delta_stale``) — never an error.
    """

    name: str
    source: str
    nprocs: Optional[int] = None
    topology: Optional[str] = None
    base_fingerprint: Optional[str] = None


@dataclass(frozen=True)
class ServeResponse:
    """The service's answer; ``status`` is ``ok``/``rejected``/``error``."""

    name: str
    status: str
    cached: Optional[str] = None  # "plan" | "prefix" | "delta" | None (cold)
    seconds: float = 0.0
    plan: Optional[Mapping[str, Any]] = None
    error: Optional[str] = None
    retry_after: Optional[float] = None
    #: The content-fingerprint chain the cache was probed with
    #: (program/options/machine, truncated).  Exposed on the wire so an
    #: editing client can quote ``fingerprints["program"]`` back as the
    #: next request's ``base_fingerprint``.
    fingerprints: Optional[Mapping[str, str]] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_json(self) -> dict:
        out: dict = {
            "name": self.name,
            "status": self.status,
            "cached": self.cached,
            "seconds": self.seconds,
        }
        if self.plan is not None:
            out["plan"] = dict(self.plan)
        if self.fingerprints is not None:
            out["fingerprints"] = dict(self.fingerprints)
        if self.error is not None:
            out["error"] = self.error
        if self.retry_after is not None:
            out["retry_after"] = self.retry_after
        return out


def _trace_totals(rec, program: str) -> dict:
    """Collapse one request's recorded spans to per-name totals.

    The registry-backed recorder is process-global, so filter to the
    roots tagged with *this* request's program before summing — a
    concurrent untraced request contributes no spans (tracing is
    guarded by ``_trace_lock``), but a stale root from a prior sample
    must not leak into this record.
    """
    totals: dict[str, dict] = {}
    for root in rec.roots:
        if root.tags.get("program") not in (None, program):
            continue
        for span in root.walk():
            entry = totals.setdefault(span.name, {"count": 0, "ms": 0.0})
            entry["count"] += 1
            entry["ms"] += span.seconds * 1e3
    for entry in totals.values():
        entry["ms"] = round(entry["ms"], 4)
    return totals


def _payload(name: str, label: str, sub) -> dict:
    """The canonical plan payload for one solved context.

    Built identically on every path (inline cold, pooled cold, prefix
    hit), with deterministic field and alignment ordering — a cache-hit
    payload must be *byte-identical* (pickled) to the cold payload it
    was stored from, and the serve benchmark asserts exactly that.
    """
    plan = sub.get("plan")
    dplan = sub.get("distribution")
    return {
        "name": name,
        "machine": label,
        "total_cost": str(sub.get("total_cost")),
        "alignments": {
            arr: repr(al)
            for arr, al in sorted(plan.source_alignments().items())
        },
        "distribution": dplan.directive(),
        "hops": dplan.cost.hops,
        "moved": dplan.cost.moved,
        "exact": dplan.exact,
    }


def _run_suffix(ctx, machine, name: str, label: str) -> dict:
    """Fork a machine-independent prefix and run the distribution suffix."""
    from ..passes import Pipeline

    sub = ctx.fork()
    sub.put("machine", machine)
    Pipeline().run(sub, goal=("plan", "distribution"))
    return _payload(name, label, sub)


def _cold_worker(payload: tuple):
    """The sharded cold path: full pipeline for one (program, machine).

    Module-level so it pickles into the worker-process pool; reuses the
    :func:`repro.batch.prefix_context` kernel, then prices the machine
    suffix on a fork.  Returns the prefix context (for the prefix
    cache) alongside the plan payload.
    """
    from ..batch.engine import PlanRequest, prefix_context

    name, source, align_kw, machine, label = payload
    ctx = prefix_context(PlanRequest(name, source), align_kw)
    return ctx, _run_suffix(ctx, machine, name, label)


class PlanService:
    """In-process planning service with a persistent fingerprint cache.

    Thread-safe: the daemon drives :meth:`handle` from a thread pool;
    admission, cache, and metrics updates are internally locked.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        max_entries: int = 1024,
        jobs: int = 1,
        max_pending: int = 64,
        retry_after: float = 0.05,
        align_kw: Mapping | None = None,
        distrib_options: Mapping | None = None,
        default_nprocs: Optional[int] = None,
        default_topology: Optional[str] = None,
        access_log: Optional[AccessLog | str] = None,
        trace_sample: float = 0.0,
        window: float = DEFAULT_WINDOW,
        slos: Optional[list] = None,
        clock=None,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.cache = PlanCache(cache_dir, max_entries=max_entries)
        self.jobs = max(1, jobs)
        self.max_pending = max_pending
        self.retry_after = retry_after
        self.align_kw = dict(align_kw or {})
        self.distrib_options = dict(distrib_options or {})
        # Service-wide machine defaults for requests naming neither
        # nprocs nor topology; per-request fields always win.
        self.default_nprocs = default_nprocs
        self.default_topology = default_topology
        self.window = float(window)
        if isinstance(access_log, str):
            access_log = AccessLog(access_log, trace_sample=trace_sample)
        self.access_log = access_log
        # Widen the serve metrics to their rolling-window variants;
        # lifetime totals carry over, so a restart on the same process
        # (tests, benchmarks) keeps its cumulative view.  ``clock`` is
        # injectable for sleep-free expiry tests.
        reg = registry()
        for name in WINDOWED_COUNTERS:
            reg.windowed_counter(name, window=self.window, clock=clock)
        for name in WINDOWED_HISTOGRAMS:
            reg.windowed_histogram(name, window=self.window, clock=clock)
        self.slo = SLOTracker(
            slos if slos is not None else default_serve_slos()
        )
        self._lock = threading.Lock()
        self._trace_lock = threading.Lock()
        self._pending = 0
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_broken = False
        self._threads: Optional[ThreadPoolExecutor] = None
        self._closed = False

    # -- admission / backpressure ------------------------------------------

    def try_admit(self) -> bool:
        """Admit one request unless the high-water mark is reached.

        Callers that admit must :meth:`release` — the daemon does this
        around the executor dispatch so queue depth is bounded *before*
        work is enqueued, which is the whole point of backpressure.
        """
        with self._lock:
            if self._pending >= self.max_pending:
                registry().counter("serve.rejected").inc()
                return False
            self._pending += 1
        registry().gauge("serve.inflight").inc()
        return True

    def release(self) -> None:
        with self._lock:
            if self._pending == 0:
                return
            self._pending -= 1
        registry().gauge("serve.inflight").dec()

    @property
    def pending(self) -> int:
        with self._lock:
            return self._pending

    def _rejected(self, request: ServeRequest) -> ServeResponse:
        response = ServeResponse(
            name=request.name,
            status="rejected",
            retry_after=self.retry_after,
        )
        self._log_access(response)
        return response

    # -- the request path --------------------------------------------------

    def handle(self, request: ServeRequest) -> ServeResponse:
        """Admission-checked synchronous entry point; never raises."""
        if not self.try_admit():
            return self._rejected(request)
        try:
            return self.handle_admitted(request)
        finally:
            self.release()

    def handle_admitted(self, request: ServeRequest) -> ServeResponse:
        """Post-admission entry: plan, then log exactly one access record.

        Trace sampling wraps the whole request in an
        :func:`repro.obs.spans.recording` at the access log's
        deterministic rate — one sampled request at a time, and never
        while an outer recording is active (a caller's trace must not
        be hijacked); a skipped sample is just an unsampled record.
        """
        log = self.access_log
        trace = None
        sampled = (
            log is not None
            and log.should_trace()
            and not obs.enabled()
            and self._trace_lock.acquire(blocking=False)
        )
        if sampled:
            try:
                with obs.recording(label=request.name) as rec:
                    response = self._handle_impl(request)
                trace = _trace_totals(rec, request.name)
            finally:
                self._trace_lock.release()
        else:
            response = self._handle_impl(request)
        self._log_access(response, trace)
        return response

    def _log_access(
        self, response: ServeResponse, trace: Optional[dict] = None
    ) -> None:
        if self.access_log is None:
            return
        self.access_log.access(
            name=response.name,
            status=response.status,
            cached=response.cached,
            ms=response.seconds * 1e3,
            fingerprints=response.fingerprints,
            error=response.error,
            trace=trace,
        )

    def _handle_impl(self, request: ServeRequest) -> ServeResponse:
        """The post-admission pipeline: cache probe → plan → respond."""
        from ..batch.engine import machine_label
        from ..passes import MachineSpec, content_fingerprint

        reg = registry()
        reg.counter("serve.requests").inc()
        t0 = time.perf_counter()
        with obs.span("serve.request", program=request.name):
            try:
                with obs.span("serve.admit", kind="serve"):
                    nprocs, topology = request.nprocs, request.topology
                    if nprocs is None and topology is None:
                        nprocs = self.default_nprocs
                        topology = self.default_topology
                    if nprocs is None and topology is None:
                        nprocs = DEFAULT_NPROCS
                    machine = MachineSpec.of(
                        nprocs,
                        topology=topology,
                        **self.distrib_options,
                    )
                    # Fail fast on an unplannable machine (bad spec, no
                    # processor count) before any planning work.
                    machine.resolved_nprocs()
                    label = machine_label(nprocs, topology)
                    from ..align.pipeline import plan_context
                    from ..lang.parser import parse

                    program = parse(request.source, name=request.name)
                    ctx = plan_context(program, **self.align_kw)
                    pfp = ctx.artifact("program").fingerprint
                    afp = ctx.artifact("align_options").fingerprint
                    mfp = content_fingerprint(machine)

                fingerprints = {
                    "program": pfp[:12],
                    "options": afp[:12],
                    "machine": mfp[:12] if mfp else None,
                }
                cacheable = (
                    mfp is not None
                    and not pfp.startswith("v")
                    and not afp.startswith("v")
                )
                if not cacheable:
                    reg.counter("serve.uncacheable").inc()

                cached: Optional[str] = None
                payload: Optional[dict] = None
                with obs.span("serve.cache", kind="serve"):
                    if cacheable:
                        hit = self.cache.get("plan", (pfp, afp, mfp))
                        if hit is not MISS:
                            cached, payload = "plan", hit

                if payload is None:
                    prefix = MISS
                    if cacheable:
                        prefix = self.cache.get("prefix", (pfp, afp))
                    # Near-miss probe: the exact prefix is absent but the
                    # request names a base program it was edited from.  A
                    # cached base prefix turns the cold plan into an
                    # incremental replan; a stale base is just a cold
                    # plan plus one counter tick.
                    base_ctx = MISS
                    if (
                        prefix is MISS
                        and cacheable
                        and request.base_fingerprint
                        and request.base_fingerprint != pfp
                    ):
                        base_ctx = self.cache.get(
                            "prefix", (request.base_fingerprint, afp)
                        )
                        if base_ctx is MISS:
                            reg.counter("serve.delta_stale").inc()
                    with obs.span("serve.plan", kind="serve"):
                        if prefix is not MISS:
                            cached = "prefix"
                            payload = _run_suffix(
                                prefix, machine, request.name, label
                            )
                        elif base_ctx is not MISS:
                            cached = "delta"
                            prefix, payload = self._plan_delta(
                                base_ctx, ctx, machine, request.name, label
                            )
                        else:
                            prefix, payload = self._plan_cold(
                                request, ctx, machine, label
                            )
                    if cacheable:
                        if cached is None or cached == "delta":
                            # The delta path solves a fresh prefix too —
                            # store it so the *next* edit can chain off
                            # this program's fingerprint.
                            self.cache.put("prefix", (pfp, afp), prefix)
                        self.cache.put("plan", (pfp, afp, mfp), payload)

                with obs.span("serve.respond", kind="serve"):
                    seconds = time.perf_counter() - t0
                    if cached == "plan":
                        reg.counter("serve.hits.plan").inc()
                        reg.histogram("serve.warm_ms").observe(seconds * 1e3)
                    elif cached == "delta":
                        reg.counter("serve.hits.delta").inc()
                        reg.histogram("serve.delta_ms").observe(seconds * 1e3)
                    else:
                        if cached == "prefix":
                            reg.counter("serve.hits.prefix").inc()
                        else:
                            reg.counter("serve.misses").inc()
                        reg.histogram("serve.cold_ms").observe(seconds * 1e3)
                    # The unified latency histogram every request lands
                    # in, warm or cold — what the rolling window and the
                    # dashboard's headline p50/p99 track.
                    reg.histogram("serve.ms").observe(seconds * 1e3)
                    return ServeResponse(
                        name=request.name,
                        status="ok",
                        cached=cached,
                        seconds=seconds,
                        plan=payload,
                        fingerprints=fingerprints,
                    )
            except Exception as exc:  # noqa: BLE001 - responses, not crashes
                reg.counter("serve.errors").inc()
                return ServeResponse(
                    name=request.name,
                    status="error",
                    seconds=time.perf_counter() - t0,
                    error=f"{type(exc).__name__}: {exc}",
                )

    def _plan_delta(self, base_ctx, ctx, machine, name: str, label: str):
        """Incremental plan against a cached base prefix.

        Diffs the edited program against the base context's and
        re-enters the pipeline with unchanged artifacts carried over
        (:func:`repro.passes.delta.replan`), then prices the machine
        suffix through the same :func:`_run_suffix` every other path
        uses — so the payload is built byte-identically to a cold one.
        Returns ``(new_prefix_context, payload)``.
        """
        from ..passes.delta import replan

        new_ctx, report = replan(
            base_ctx, program=ctx.get("program"), goal=("plan", "profile")
        )
        obs.instant(
            "serve.delta",
            strategy=report.strategy,
            dirty_ports=report.dirty_ports,
            reused=report.reused_entries,
        )
        return new_ctx, _run_suffix(new_ctx, machine, name, label)

    def _plan_cold(self, request: ServeRequest, ctx, machine, label: str):
        """Full-pipeline cold path, sharded to the worker pool if any.

        Returns ``(prefix_context, payload)``.  A broken pool degrades
        to inline planning permanently (same results, no concurrency),
        mirroring :func:`repro.batch.plan_many`'s serial fallback.
        """
        from ..passes import Pipeline

        payload_tuple = (
            request.name,
            request.source,
            self.align_kw,
            machine,
            label,
        )
        pool = self._worker_pool()
        if pool is not None:
            try:
                return pool.submit(_cold_worker, payload_tuple).result()
            except (OSError, RuntimeError) as exc:
                with self._lock:
                    self._pool_broken = True
                registry().counter("serve.pool_fallbacks").inc()
                obs.instant("serve.pool_fallback", error=type(exc).__name__)
        # Inline: reuse the already-parsed context for the prefix.
        Pipeline().run(ctx, goal="profile")
        return ctx, _run_suffix(ctx, machine, request.name, label)

    def _worker_pool(self) -> Optional[ProcessPoolExecutor]:
        if self.jobs <= 1:
            return None
        with self._lock:
            if self._pool_broken:
                return None
            if self._pool is None:
                try:
                    self._pool = ProcessPoolExecutor(max_workers=self.jobs)
                except (OSError, ValueError, RuntimeError):
                    self._pool_broken = True
                    return None
            return self._pool

    # -- async front -------------------------------------------------------

    async def handle_async(self, request: ServeRequest) -> ServeResponse:
        """Asyncio entry point: admission in the event loop (bounded
        *before* enqueueing), planning in the service's thread pool."""
        if not self.try_admit():
            return self._rejected(request)
        try:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                self._thread_pool(), self.handle_admitted, request
            )
        finally:
            self.release()

    def _thread_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._threads is None:
                self._threads = ThreadPoolExecutor(
                    max_workers=max(2, self.jobs),
                    thread_name_prefix="repro-serve",
                )
            return self._threads

    # -- introspection / lifecycle -----------------------------------------

    def stats(self) -> dict:
        """Service + cache counters, JSON-ready (the daemon's ``stats`` op)."""
        reg = registry()
        counters = {
            name: reg.counter(name).value
            for name in (
                "serve.requests",
                "serve.hits.plan",
                "serve.hits.prefix",
                "serve.hits.delta",
                "serve.delta_stale",
                "serve.misses",
                "serve.rejected",
                "serve.errors",
                "serve.uncacheable",
                "serve.pool_fallbacks",
            )
        }
        windows = reg.snapshot(include_cachestats=False).get("windows", {})
        reuse_h, reuse_m = cachestats.snapshot().get(
            "passes.artifact_reuse", (0, 0)
        )
        return {
            "pending": self.pending,
            "max_pending": self.max_pending,
            "jobs": self.jobs,
            "cache_dir": self.cache.root,
            "cache_entries": len(self.cache),
            "cache": self.cache.stats.as_dict(),
            "counters": counters,
            # Artifact-level reuse from the delta replans this process
            # ran (entries carried over vs recomputed), alongside the
            # request-level cache counters above.
            "artifact_reuse": {"reused": reuse_h, "recomputed": reuse_m},
            "inflight": reg.gauge("serve.inflight").value or 0,
            "latency": {
                "warm_ms": reg.histogram("serve.warm_ms").summary(),
                "cold_ms": reg.histogram("serve.cold_ms").summary(),
                "delta_ms": reg.histogram("serve.delta_ms").summary(),
            },
            "window": {
                name: view
                for name, view in windows.items()
                if name.startswith("serve.")
            },
            "slo": self.slo.report(),
        }

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
            threads, self._threads = self._threads, None
            self._closed = True
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        if threads is not None:
            threads.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "PlanService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
