"""``python -m repro.serve`` — start the planning daemon.

Usage::

    python -m repro.serve [--host H] [--port P] [--cache-dir DIR]
                          [--max-entries N] [--jobs J] [--max-pending N]
                          [--retry-after S] [--distribute P]
                          [--topology SPEC] [--access-log FILE]
                          [--trace-sample R] [--window S]

``--cache-dir`` enables the persistent plan cache (omit it for a
memory-only cache that dies with the process); restarting the daemon on
the same directory warm-starts from the persisted entries.
``--distribute`` / ``--topology`` set the *default* machine for
requests that don't name one; per-request ``nprocs`` / ``topology``
fields always win.

``--access-log FILE`` appends one structured JSON line per request
(:mod:`repro.serve.accesslog`); ``--trace-sample R`` makes every
``round(1/R)``-th of those records carry a per-span time breakdown.
``--window S`` sets the rolling-window width the ``stats``/``metrics``
ops and the watch dashboard report over (default 60s).  Lifecycle
events (the ``listening`` line, malformed requests) go to stdout as
JSON records either way.
"""

from __future__ import annotations

import argparse
import asyncio

from .daemon import run_daemon
from .service import DEFAULT_NPROCS, DEFAULT_WINDOW, PlanService


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Long-running planning daemon (JSON lines over TCP)",
    )
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument(
        "--port", type=int, default=8723, help="0 picks an ephemeral port"
    )
    ap.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persistent plan-cache directory (default: memory-only)",
    )
    ap.add_argument(
        "--max-entries",
        type=int,
        default=1024,
        help="LRU bound per cache (default 1024)",
    )
    ap.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for cold misses (default 1: inline)",
    )
    ap.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="admission high-water mark; beyond it requests are "
        "rejected with a retry_after hint (default 64)",
    )
    ap.add_argument(
        "--retry-after",
        type=float,
        default=0.05,
        help="retry hint (seconds) sent with rejections (default 0.05)",
    )
    ap.add_argument(
        "--distribute",
        type=int,
        metavar="P",
        default=None,
        help=f"default processor count (default {DEFAULT_NPROCS})",
    )
    ap.add_argument(
        "--topology",
        metavar="SPEC",
        help="default machine topology spec (e.g. torus:4x4)",
    )
    ap.add_argument(
        "--access-log",
        metavar="FILE",
        help="append one JSON line per request to FILE",
    )
    ap.add_argument(
        "--trace-sample",
        type=float,
        default=0.0,
        metavar="R",
        help="fraction of access records carrying a span breakdown "
        "(deterministic: every round(1/R)-th request; default 0: off)",
    )
    ap.add_argument(
        "--window",
        type=float,
        default=DEFAULT_WINDOW,
        metavar="S",
        help="rolling-window width in seconds for windowed metrics "
        f"and SLO burn rates (default {DEFAULT_WINDOW:g})",
    )
    args = ap.parse_args(argv)
    if not 0.0 <= args.trace_sample <= 1.0:
        ap.error(f"--trace-sample outside [0, 1]: {args.trace_sample}")
    if args.window <= 0:
        ap.error(f"--window must be positive: {args.window}")
    if args.trace_sample and not args.access_log:
        ap.error("--trace-sample needs --access-log")
    if args.topology is not None:
        from ..topology import parse_topology

        try:
            parse_topology(args.topology)
        except ValueError as exc:
            ap.error(f"--topology: {exc}")

    service = PlanService(
        cache_dir=args.cache_dir,
        max_entries=args.max_entries,
        jobs=args.jobs,
        max_pending=args.max_pending,
        retry_after=args.retry_after,
        default_nprocs=args.distribute,
        default_topology=args.topology,
        access_log=args.access_log,
        trace_sample=args.trace_sample,
        window=args.window,
    )
    try:
        asyncio.run(run_daemon(service, host=args.host, port=args.port))
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
