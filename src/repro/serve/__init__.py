"""Planning as a service: daemon, service core, and persistent cache.

Everything below :mod:`repro.batch` is one-shot; this package is the
long-running front end the north star asks for.  Three layers:

* :mod:`repro.serve.cache` — :class:`PlanCache`: a persistent,
  fingerprint-keyed, schema-versioned, LRU-bounded on-disk cache with
  atomic writes and warm start;
* :mod:`repro.serve.service` — :class:`PlanService`: admission with
  bounded backpressure, cache probe, cold-miss sharding over a
  worker-process pool, :mod:`repro.obs` spans and metrics throughout;
* :mod:`repro.serve.daemon` — :class:`PlanDaemon`: the asyncio
  JSON-lines TCP front end (``python -m repro.serve``), with a
  Prometheus ``/metrics`` scrape mode and structured lifecycle events;
* :mod:`repro.serve.accesslog` — :class:`AccessLog`: the JSON-lines
  per-request access log (and daemon event log), with deterministic
  trace sampling.

Quickstart (in-process)::

    from repro.serve import PlanService, ServeRequest

    with PlanService(cache_dir="/tmp/repro-cache") as svc:
        r1 = svc.handle(ServeRequest("q", SOURCE, nprocs=4))   # cold
        r2 = svc.handle(ServeRequest("q", SOURCE, nprocs=4))   # cached="plan"
        assert r1.plan == r2.plan
"""

from .accesslog import AccessLog, read_access_log
from .cache import (
    MISS,
    SCHEMA_VERSION,
    CacheStats,
    NonContentAddressedKeyError,
    PlanCache,
)
from .daemon import PlanDaemon, run_daemon
from .service import (
    DEFAULT_NPROCS,
    DEFAULT_WINDOW,
    PlanService,
    ServeRequest,
    ServeResponse,
)

__all__ = [
    "AccessLog",
    "CacheStats",
    "DEFAULT_NPROCS",
    "DEFAULT_WINDOW",
    "MISS",
    "NonContentAddressedKeyError",
    "PlanCache",
    "PlanDaemon",
    "PlanService",
    "SCHEMA_VERSION",
    "ServeRequest",
    "ServeResponse",
    "read_access_log",
    "run_daemon",
]
