"""The asyncio front end: a JSON-lines planning daemon over TCP.

Protocol — one JSON object per line, one response line per request::

    → {"op": "plan", "name": "q1", "source": "real A(8)\\n...", "nprocs": 4,
       "topology": "torus:2x2"}
    ← {"name": "q1", "status": "ok", "cached": "plan", "seconds": 0.0007,
       "plan": {"total_cost": "12", "distribution": "...", ...}}

    → {"op": "stats"}
    ← {"status": "ok", "stats": {...}}          # cache + counters + latency

    → {"op": "ping"}
    ← {"status": "ok", "pong": true}

``op`` defaults to ``"plan"``.  Malformed JSON or a missing ``source``
yields ``{"status": "error", ...}`` on that line; the connection stays
open.  Past the admission high-water mark the daemon answers
``{"status": "rejected", "retry_after": ...}`` immediately — clients
should back off and retry — rather than queueing without bound.

Admission runs in the event loop (cheap, bounded); planning runs in the
service's thread pool, and cold misses are sharded from there to the
worker-process pool (``--jobs``).  Repeat queries are answered from the
persistent fingerprint-keyed cache (``--cache-dir``), which survives
daemon restarts by construction: warm-start re-indexes the directory.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from .service import PlanService, ServeRequest


class PlanDaemon:
    """Wraps a :class:`PlanService` in an asyncio stream server."""

    def __init__(
        self,
        service: PlanService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — useful with ``port=0`` (ephemeral)."""
        assert self._server is not None, "daemon not started"
        sock = self._server.sockets[0]
        return sock.getsockname()[:2]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )

    async def serve_forever(self) -> None:
        """Run until :meth:`shutdown` (or an ``{"op": "shutdown"}`` line)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._shutdown.wait()
        self.service.close()

    def shutdown(self) -> None:
        self._shutdown.set()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = await self._dispatch(line)
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
                if response.get("op") == "shutdown":
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _dispatch(self, line: bytes) -> dict:
        try:
            msg = json.loads(line)
            if not isinstance(msg, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            return {"status": "error", "error": f"bad request: {exc}"}
        op = msg.get("op", "plan")
        if op == "ping":
            return {"status": "ok", "pong": True}
        if op == "stats":
            return {"status": "ok", "stats": self.service.stats()}
        if op == "shutdown":
            self.shutdown()
            return {"status": "ok", "op": "shutdown"}
        if op != "plan":
            return {"status": "error", "error": f"unknown op {op!r}"}
        source = msg.get("source")
        if not isinstance(source, str) or not source.strip():
            return {"status": "error", "error": "plan request needs 'source'"}
        request = ServeRequest(
            name=str(msg.get("name", "request")),
            source=source,
            nprocs=msg.get("nprocs"),
            topology=msg.get("topology"),
        )
        response = await self.service.handle_async(request)
        out = response.to_json()
        if "id" in msg:
            out["id"] = msg["id"]
        return out


async def run_daemon(
    service: PlanService, host: str = "127.0.0.1", port: int = 8723
) -> None:
    daemon = PlanDaemon(service, host=host, port=port)
    await daemon.start()
    bound_host, bound_port = daemon.address
    print(f"repro.serve listening on {bound_host}:{bound_port}", flush=True)
    await daemon.serve_forever()
