"""The asyncio front end: a JSON-lines planning daemon over TCP.

Protocol — one JSON object per line, one response line per request::

    → {"op": "plan", "name": "q1", "source": "real A(8)\\n...", "nprocs": 4,
       "topology": "torus:2x2"}
    ← {"name": "q1", "status": "ok", "cached": "plan", "seconds": 0.0007,
       "plan": {"total_cost": "12", "distribution": "...", ...},
       "fingerprints": {"program": "...", ...}}

    → {"op": "plan", "name": "q1b", "source": "...edited...",
       "base_fingerprint": "<fingerprints.program of a prior response>"}
    ← {"name": "q1b", "status": "ok", "cached": "delta", ...}
                                                # incremental re-plan off the
                                                # base program's cached prefix;
                                                # stale/unknown base → cold plan

    → {"op": "stats"}
    ← {"status": "ok", "stats": {...}}          # cache + counters + latency
                                                # + window + slo + inflight

    → {"op": "metrics"}
    ← {"status": "ok", "metrics": {...}}        # full registry snapshot:
                                                # counters/gauges/histograms
                                                # + rolling "windows" views

    → {"op": "metrics", "format": "prom"}
    ← {"status": "ok", "format": "prom",
       "metrics": "# TYPE serve_requests_total counter\\n..."}

    → {"op": "ping"}
    ← {"status": "ok", "pong": true}

``op`` defaults to ``"plan"``.  Malformed JSON or a missing ``source``
yields ``{"status": "error", ...}`` on that line; the connection stays
open.  Past the admission high-water mark the daemon answers
``{"status": "rejected", "retry_after": ...}`` immediately — clients
should back off and retry — rather than queueing without bound.

Scrape mode: a raw ``/metrics`` line (no JSON) answers with the
Prometheus text exposition and closes the connection, so
``python -m repro.obs.prom --scrape HOST:PORT`` needs no JSON client;
a ``GET /metrics`` line gets the same body wrapped in a minimal
HTTP/1.0 response, which is enough for ``curl`` and a Prometheus
scrape target pointed straight at the daemon port.

Operational events (listening, malformed requests, connection resets)
are JSON-lines records through the daemon's event log — same schema as
the service's access log (:mod:`repro.serve.accesslog`), so one ``jq``
vocabulary covers both.

Admission runs in the event loop (cheap, bounded); planning runs in the
service's thread pool, and cold misses are sharded from there to the
worker-process pool (``--jobs``).  Repeat queries are answered from the
persistent fingerprint-keyed cache (``--cache-dir``), which survives
daemon restarts by construction: warm-start re-indexes the directory.
"""

from __future__ import annotations

import asyncio
import json
import sys
from typing import Callable, Optional

from ..obs.metrics import registry
from ..obs.prom import render_prometheus
from .accesslog import AccessLog
from .service import PlanService, ServeRequest


class PlanDaemon:
    """Wraps a :class:`PlanService` in an asyncio stream server.

    ``log`` (an event-capable :class:`AccessLog`, typically
    stream-backed to stdout) receives the daemon's operational records;
    ``None`` keeps the daemon silent, as the in-process tests want.
    """

    def __init__(
        self,
        service: PlanService,
        host: str = "127.0.0.1",
        port: int = 0,
        log: Optional[AccessLog] = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.log = log
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — useful with ``port=0`` (ephemeral)."""
        assert self._server is not None, "daemon not started"
        sock = self._server.sockets[0]
        return sock.getsockname()[:2]

    def _event(self, event: str, **fields) -> None:
        if self.log is not None:
            self.log.event(event, **fields)

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )

    async def serve_forever(self) -> None:
        """Run until :meth:`shutdown` (or an ``{"op": "shutdown"}`` line)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._shutdown.wait()
        self.service.close()

    def shutdown(self) -> None:
        self._shutdown.set()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                stripped = line.strip()
                if stripped == b"/metrics" or stripped.startswith(
                    b"GET /metrics"
                ):
                    await self._scrape(writer, http=stripped != b"/metrics")
                    break
                response = await self._dispatch(line)
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
                if response.get("op") == "shutdown":
                    break
        except (ConnectionResetError, BrokenPipeError):
            self._event("connection_reset")
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _scrape(
        self, writer: asyncio.StreamWriter, http: bool
    ) -> None:
        """Answer a raw (non-JSON) ``/metrics`` line and close.

        One exposition per connection: plain for the text client, a
        minimal ``HTTP/1.0 200`` envelope for curl/Prometheus.
        """
        body = render_prometheus().encode()
        if http:
            writer.write(
                b"HTTP/1.0 200 OK\r\n"
                b"Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
            )
        writer.write(body)
        await writer.drain()

    async def _dispatch(self, line: bytes) -> dict:
        try:
            msg = json.loads(line)
            if not isinstance(msg, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            self._event("malformed_request", error=str(exc))
            return {"status": "error", "error": f"bad request: {exc}"}
        op = msg.get("op", "plan")
        if op == "ping":
            return {"status": "ok", "pong": True}
        if op == "stats":
            return {"status": "ok", "stats": self.service.stats()}
        if op == "metrics":
            if msg.get("format") == "prom":
                return {
                    "status": "ok",
                    "format": "prom",
                    "metrics": render_prometheus(),
                }
            return {"status": "ok", "metrics": registry().snapshot()}
        if op == "shutdown":
            self.shutdown()
            return {"status": "ok", "op": "shutdown"}
        if op != "plan":
            self._event("malformed_request", error=f"unknown op {op!r}")
            return {"status": "error", "error": f"unknown op {op!r}"}
        source = msg.get("source")
        if not isinstance(source, str) or not source.strip():
            self._event("malformed_request", error="plan request needs 'source'")
            return {"status": "error", "error": "plan request needs 'source'"}
        base = msg.get("base_fingerprint")
        request = ServeRequest(
            name=str(msg.get("name", "request")),
            source=source,
            nprocs=msg.get("nprocs"),
            topology=msg.get("topology"),
            base_fingerprint=str(base) if base is not None else None,
        )
        response = await self.service.handle_async(request)
        out = response.to_json()
        if "id" in msg:
            out["id"] = msg["id"]
        return out


async def run_daemon(
    service: PlanService,
    host: str = "127.0.0.1",
    port: int = 8723,
    log: Optional[AccessLog] = None,
    ready: Optional[Callable[[str, int], None]] = None,
) -> None:
    """Start a daemon and serve until shutdown.

    The bound address is announced as a structured ``listening`` event
    (stdout by default — machine-parseable, which is how the CI watch
    step discovers an ephemeral ``--port 0``); ``ready`` additionally
    receives ``(host, port)`` in-process.
    """
    if log is None:
        log = AccessLog(stream=sys.stdout)
    daemon = PlanDaemon(service, host=host, port=port, log=log)
    await daemon.start()
    bound_host, bound_port = daemon.address
    log.event("listening", host=bound_host, port=bound_port)
    if ready is not None:
        ready(bound_host, bound_port)
    await daemon.serve_forever()
