"""Structured JSON-lines logging for the serving layer.

One :class:`AccessLog` instance is both the per-request **access log**
(exactly one record per serve request — hit, miss, error, or
rejection) and the **event log** for daemon lifecycle records
(listening, malformed requests, connection resets).  Every record is a
single compact JSON object on its own line, so the file greps, tails,
and loads with one ``json.loads`` per line:

* access records::

    {"ts": 1722540000.12, "kind": "access", "name": "q1", "status": "ok",
     "cached": "plan", "ms": 0.61,
     "fingerprints": {"program": "4fca93d21b08", "options": "…",
                      "machine": "…"},
     "trace": {"serve.request": {"count": 1, "ms": 0.59}, …}}   # sampled

* event records::

    {"ts": 1722540000.0, "kind": "event", "event": "listening",
     "host": "127.0.0.1", "port": 8723}

File-backed logs append through :func:`repro._io.append_jsonl` — one
``O_APPEND`` write per record, so the daemon's thread pool never
interleaves two records, and a killed daemon leaves at worst a
complete prefix of the log, never a torn line.  Stream-backed logs
(``stream=sys.stdout``) serve the daemon's operator-facing lifecycle
lines.

Trace sampling is **deterministic**, not random: with
``trace_sample=r`` every ``round(1/r)``-th access record carries a
per-span time breakdown of its request (the first request is always
sampled, so ``--trace-sample`` takes effect immediately).  Determinism
keeps the serve benchmark and tests reproducible.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, IO, Mapping, Optional

from .._io import append_jsonl


class AccessLog:
    """Thread-safe JSON-lines sink for access and event records."""

    def __init__(
        self,
        path: Optional[str] = None,
        stream: Optional[IO[str]] = None,
        trace_sample: float = 0.0,
        clock=time.time,
    ) -> None:
        if (path is None) == (stream is None):
            raise ValueError("AccessLog needs exactly one of path/stream")
        if not 0.0 <= trace_sample <= 1.0:
            raise ValueError(f"trace_sample outside [0, 1]: {trace_sample}")
        self.path = path
        self._stream = stream
        self._clock = clock
        self.trace_sample = trace_sample
        self._every = round(1.0 / trace_sample) if trace_sample else 0
        self._lock = threading.Lock()
        self._accesses = 0

    # -- sampling ----------------------------------------------------------

    def should_trace(self) -> bool:
        """Decide-and-count: True for the next access record iff it is
        this log's turn to carry a span breakdown."""
        if not self._every:
            return False
        with self._lock:
            sampled = self._accesses % self._every == 0
            self._accesses += 1
            return sampled

    # -- record constructors -----------------------------------------------

    def access(
        self,
        *,
        name: str,
        status: str,
        cached: Optional[str],
        ms: float,
        fingerprints: Optional[Mapping[str, str]] = None,
        error: Optional[str] = None,
        trace: Optional[Mapping[str, Any]] = None,
    ) -> dict:
        """Emit one per-request record; returns the record written."""
        record: dict[str, Any] = {
            "ts": self._clock(),
            "kind": "access",
            "name": name,
            "status": status,
            "cached": cached,
            "ms": round(ms, 4),
        }
        if fingerprints:
            record["fingerprints"] = dict(fingerprints)
        if error is not None:
            record["error"] = error
        if trace is not None:
            record["trace"] = trace
        self._emit(record)
        return record

    def event(self, event: str, **fields: Any) -> dict:
        """Emit one lifecycle/event record; returns the record written."""
        record: dict[str, Any] = {
            "ts": self._clock(),
            "kind": "event",
            "event": event,
        }
        record.update(fields)
        self._emit(record)
        return record

    def _emit(self, record: dict) -> None:
        if self.path is not None:
            # append_jsonl is a single O_APPEND write: record-atomic
            # across threads and processes without holding our lock
            # through the syscall.
            append_jsonl(self.path, record)
        else:
            line = json.dumps(record, separators=(",", ":"))
            with self._lock:
                self._stream.write(line + "\n")
                try:
                    self._stream.flush()
                except (OSError, ValueError):
                    pass


def read_access_log(path: str) -> list[dict]:
    """Parse a JSON-lines log back into records (tests, benchmarks)."""
    records = []
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
