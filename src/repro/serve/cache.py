"""Persistent, fingerprint-keyed plan cache for the serving daemon.

The cache maps *content-fingerprint key chains* — the short digests
:class:`~repro.passes.PlanContext` computes for structurally
transparent artifacts — to pickled planning payloads, under two
namespaces:

* ``prefix``: ``(program fp, align-options fp)`` → the pickled
  machine-independent :class:`~repro.passes.PlanContext` prefix;
* ``plan``: ``(program fp, align-options fp, machine fp)`` → the full
  serve payload (plan report fields, directive, cost).

Correctness properties, each load-bearing for a cache that outlives its
process:

**Content-addressed keys only.**  Identity fingerprints (``"v3.ab12…"``)
are unique only within the context lineage that minted them; two
different artifacts from two contexts may share one.  Persisting under
such a key would serve artifact A to a requester of artifact B, so
:meth:`PlanCache.put` and :meth:`PlanCache.get` *refuse* any key chain
containing a non-content-addressed part
(:class:`NonContentAddressedKeyError`).

**Schema versioning.**  Every entry is stamped with
:data:`SCHEMA_VERSION` (and echoes its own namespace + key chain).  A
load that finds a different schema, a foreign key (filename-hash
collision), or an unreadable pickle deletes the file and reports a
miss — never a wrong payload.

**Atomic writes.**  Entries are written via temp-file +
:func:`os.replace` (:mod:`repro._io`), so a daemon killed mid-store
leaves either no entry or a complete one, never a truncated pickle.
Stray temp files from killed writers are swept at warm start.

**Bounded LRU.**  At most ``max_entries`` entries per cache; stores past
the bound evict the least-recently-used entry (file and all).  Warm
start recovers the recency order from file mtimes, which the eviction
order only needs approximately.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from .. import cachestats
from .._io import atomic_write_bytes

#: Bump when the pickled payload layout changes incompatibly; every
#: persisted entry is stamped with it and mismatches are invalidated at
#: load time (deleted, reported as misses).  2: prefix contexts carry
#: statement-provenance-stamped ADGs (``ADGNode.stmt``), which the
#: delta replan path reads.
SCHEMA_VERSION = 2

#: Sentinel distinguishing "no entry" from a stored ``None`` payload.
MISS = object()

_NAMESPACES = ("prefix", "plan")


class NonContentAddressedKeyError(ValueError):
    """A cache key chain contains an identity (non-content) fingerprint.

    Identity fingerprints (``v<clock>.<nonce>``) never spuriously match
    — but they also never *correctly* match across processes, and
    before they were nonce-namespaced two context lineages could mint
    colliding ones.  Either way they must not become persistent keys.
    """

    def __init__(self, namespace: str, key: Sequence[str], part: str) -> None:
        self.namespace = namespace
        self.key = tuple(key)
        self.part = part
        super().__init__(
            f"cache key {tuple(key)!r} (namespace {namespace!r}) contains "
            f"non-content-addressed fingerprint {part!r}; identity "
            "fingerprints are only unique within one context lineage and "
            "must never be persisted"
        )


@dataclass
class CacheStats:
    """Counters for one :class:`PlanCache` instance (process-local)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    invalidated: int = 0  # schema/pickle/key-mismatch entries deleted

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "invalidated": self.invalidated,
        }


def _validate_key(namespace: str, key: Sequence[str]) -> tuple[str, ...]:
    if namespace not in _NAMESPACES:
        raise ValueError(
            f"unknown cache namespace {namespace!r}; expected one of "
            f"{_NAMESPACES}"
        )
    parts = tuple(key)
    if not parts:
        raise ValueError("cache key chain must not be empty")
    for part in parts:
        if not isinstance(part, str) or not part:
            raise ValueError(f"cache key part {part!r} is not a fingerprint")
        # Content fingerprints are hex digests; identity fingerprints
        # carry the "v<clock>" prefix (optionally nonce-suffixed).
        if part.startswith("v"):
            raise NonContentAddressedKeyError(namespace, parts, part)
    return parts


class PlanCache:
    """On-disk (or in-memory) LRU cache of pickled planning payloads.

    ``root=None`` keeps everything in memory — same API, same key
    discipline, no persistence; the serve tests and the in-process
    :class:`~repro.serve.service.PlanService` default use it.  With a
    ``root`` directory, entries live under ``root/<namespace>/<digest>.pkl``
    and a fresh instance warm-starts from whatever a previous process
    left behind.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        max_entries: int = 1024,
        name: str = "serve.cache",
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.root = os.path.abspath(root) if root is not None else None
        self.max_entries = max_entries
        self.name = name
        self.stats = CacheStats()
        self._lock = threading.Lock()
        # digest -> path (disk mode) or digest -> entry dict (memory mode),
        # in least-recently-used-first order.
        self._index: OrderedDict[str, Any] = OrderedDict()
        if self.root is not None:
            self._warm_start()

    # -- layout ------------------------------------------------------------

    @staticmethod
    def _digest(namespace: str, key: tuple[str, ...]) -> str:
        blob = "|".join((namespace,) + key).encode()
        return hashlib.sha256(blob).hexdigest()[:32]

    def _path(self, namespace: str, digest: str) -> str:
        assert self.root is not None
        return os.path.join(self.root, namespace, f"{digest}.pkl")

    def _warm_start(self) -> None:
        """Index whatever entries a previous process persisted.

        Files are indexed lazily (validated on first ``get``), ordered
        oldest-mtime-first so eviction approximates the prior LRU order.
        Temp files abandoned by killed writers are removed.
        """
        found: list[tuple[float, str, str]] = []
        for ns in _NAMESPACES:
            d = os.path.join(self.root, ns)
            os.makedirs(d, exist_ok=True)
            for fname in os.listdir(d):
                path = os.path.join(d, fname)
                if fname.startswith(".tmp-"):
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
                    continue
                if not fname.endswith(".pkl"):
                    continue
                try:
                    mtime = os.path.getmtime(path)
                except OSError:
                    continue
                found.append((mtime, fname[: -len(".pkl")], path))
        found.sort()
        for _, digest, path in found:
            self._index[digest] = path
        # Respect the bound even across restarts with a shrunk config.
        while len(self._index) > self.max_entries:
            self._evict_one()

    # -- core API ----------------------------------------------------------

    def get(self, namespace: str, key: Iterable[str]) -> Any:
        """The stored payload, or :data:`MISS`.

        Raises :class:`NonContentAddressedKeyError` for identity
        fingerprints in the chain — a key that can't be stored can't be
        probed either.
        """
        parts = _validate_key(namespace, tuple(key))
        digest = self._digest(namespace, parts)
        with self._lock:
            if digest not in self._index:
                return self._miss(namespace)
            if self.root is None:
                entry = self._index[digest]
            else:
                entry = self._load(self._index[digest])
                if entry is None or not self._entry_matches(
                    entry, namespace, parts
                ):
                    # Corrupt, foreign-schema, or hash-collided file:
                    # drop it so the next probe is a clean miss too.
                    self._invalidate(digest)
                    return self._miss(namespace)
            self._index.move_to_end(digest)
            self.stats.hits += 1
            cachestats.record_hit(f"{self.name}.{namespace}")
            return entry["payload"]

    def put(self, namespace: str, key: Iterable[str], payload: Any) -> None:
        """Store ``payload`` under the fingerprint chain, atomically.

        Refuses non-content-addressed key chains
        (:class:`NonContentAddressedKeyError`); evicts LRU entries past
        ``max_entries``.
        """
        parts = _validate_key(namespace, tuple(key))
        digest = self._digest(namespace, parts)
        entry = {
            "schema": SCHEMA_VERSION,
            "namespace": namespace,
            "key": parts,
            "payload": payload,
        }
        with self._lock:
            if self.root is None:
                self._index[digest] = entry
            else:
                path = self._path(namespace, digest)
                atomic_write_bytes(
                    path, pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
                )
                self._index[digest] = path
            self._index.move_to_end(digest)
            self.stats.stores += 1
            while len(self._index) > self.max_entries:
                self._evict_one()

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def __contains__(self, namespace_key: tuple[str, Iterable[str]]) -> bool:
        namespace, key = namespace_key
        parts = _validate_key(namespace, tuple(key))
        with self._lock:
            return self._digest(namespace, parts) in self._index

    def clear(self) -> None:
        """Drop every entry (files included in disk mode)."""
        with self._lock:
            if self.root is not None:
                for target in self._index.values():
                    try:
                        os.unlink(target)
                    except OSError:
                        pass
            self._index.clear()

    # -- internals ---------------------------------------------------------

    def _miss(self, namespace: str) -> Any:
        self.stats.misses += 1
        cachestats.record_miss(f"{self.name}.{namespace}")
        return MISS

    @staticmethod
    def _entry_matches(
        entry: dict, namespace: str, parts: tuple[str, ...]
    ) -> bool:
        return (
            entry.get("schema") == SCHEMA_VERSION
            and entry.get("namespace") == namespace
            and tuple(entry.get("key", ())) == parts
            and "payload" in entry
        )

    @staticmethod
    def _load(path: str) -> Optional[dict]:
        try:
            with open(path, "rb") as f:
                entry = pickle.load(f)
        except Exception:  # noqa: BLE001 - any unreadable entry is a miss
            return None
        return entry if isinstance(entry, dict) else None

    def _invalidate(self, digest: str) -> None:
        target = self._index.pop(digest, None)
        if self.root is not None and isinstance(target, str):
            try:
                os.unlink(target)
            except OSError:
                pass
        self.stats.invalidated += 1

    def _evict_one(self) -> None:
        digest, target = self._index.popitem(last=False)
        if self.root is not None and isinstance(target, str):
            try:
                os.unlink(target)
            except OSError:
                pass
        self.stats.evictions += 1
