"""Abstract syntax for the mini data-parallel language.

The surface language is the Fortran-90 subset the paper's fragments are
written in: array declarations, whole-array and section assignment,
elementwise arithmetic, ``transpose``, ``spread``, reductions, ``do``
loops and ``if`` blocks.  Scalar index expressions are *affine in the
enclosing LIVs* with integer constants — exactly the class the paper's
analysis covers (Section 2.4).

Design notes
------------
* Every AST node is a frozen dataclass; programs are immutable values.
* Subscripts distinguish a scalar :class:`Index` (rank-reducing) from a
  :class:`Slice` triplet (rank-preserving), mirroring Fortran semantics.
* Loop bounds are integer constants; *section bounds* may be affine in
  LIVs, which is what produces the variable-size objects of Section 4.3
  (e.g. ``A(1:20*k:k)`` in Example 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..ir.affine import AffineForm


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for array-valued (or scalar-valued) expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Const(Expr):
    """A scalar literal, broadcast elementwise where needed."""

    value: float


@dataclass(frozen=True)
class ScalarRef(Expr):
    """A reference to a scalar variable (opaque to alignment analysis)."""

    name: str


@dataclass(frozen=True)
class Index:
    """A scalar subscript: selects one coordinate, reducing rank by one."""

    value: AffineForm


@dataclass(frozen=True)
class Slice:
    """A triplet subscript ``lo:hi:step``.

    All three components are affine in the LIVs; a LIV-dependent step
    (e.g. ``A(1:20*k:k)`` from Example 5) is what gives rise to *mobile
    stride* alignment.  A full-axis reference ``:`` is represented by
    :class:`FullSlice` since the bounds come from the declaration, not
    the reference.  The element count of a slice generally involves a
    floor; :func:`repro.lang.typecheck.section_extent` reduces it to an
    affine form using the enclosing loop ranges.
    """

    lo: AffineForm
    hi: AffineForm
    step: AffineForm = field(default_factory=lambda: AffineForm(1))

    def __post_init__(self) -> None:
        if not isinstance(self.step, AffineForm):
            object.__setattr__(self, "step", AffineForm(int(self.step)))
        if self.step.is_constant and self.step.const == 0:
            raise ValueError("slice step must be nonzero")


@dataclass(frozen=True)
class FullSlice:
    """A bare ``:`` subscript — the whole declared axis."""


Subscript = Union[Index, Slice, FullSlice]


@dataclass(frozen=True)
class Ref(Expr):
    """An array reference, optionally subscripted.

    ``A`` (no subscripts) and ``A(1:n, k)`` are both Refs; the former has
    ``subscripts == ()`` and denotes the whole array.
    """

    name: str
    subscripts: tuple[Subscript, ...] = ()


@dataclass(frozen=True)
class BinOp(Expr):
    """Elementwise binary operation; operands must be conformable."""

    op: str  # '+', '-', '*', '/'
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # '-'
    operand: Expr


@dataclass(frozen=True)
class Intrinsic(Expr):
    """An elementwise intrinsic (``cos``, ``sin``, ``exp``, ``sqrt``...)."""

    name: str
    operand: Expr


@dataclass(frozen=True)
class Transpose(Expr):
    """``transpose(X)`` for two-dimensional ``X``."""

    operand: Expr


@dataclass(frozen=True)
class Spread(Expr):
    """``spread(X, dim=d, ncopies=n)``: replicate along a new axis ``d``.

    ``dim`` is 1-based, following Fortran.  ``ncopies`` is a positive
    integer constant.  Spread is the program-level source of replication
    (Section 5).
    """

    operand: Expr
    dim: int
    ncopies: int


@dataclass(frozen=True)
class Reduce(Expr):
    """A reduction intrinsic (``sum``, ``maxval``, ``minval``, ``product``).

    ``dim`` is the 1-based reduced axis, or ``None`` for full reduction to
    a scalar.  Reductions are *intrinsic* communication in the paper's
    terminology — they move data as part of the operation — so the
    alignment phase does not charge their edges with residual cost beyond
    operand alignment.
    """

    op: str
    operand: Expr
    dim: Optional[int] = None


@dataclass(frozen=True)
class Gather(Expr):
    """A vector-valued-subscript read ``table(idx)`` (lookup table use).

    Section 5 lists replicated lookup tables as a replication source;
    ``Gather`` is how they appear in programs.  ``table`` must be a
    rank-1 Ref, ``index`` an arbitrary rank-1 expression.
    """

    table: Ref
    index: Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    __slots__ = ()


@dataclass(frozen=True)
class Decl(Stmt):
    """``real A(d1, d2, ...)`` — extents are positive integer constants."""

    name: str
    dims: tuple[int, ...]
    kind: str = "real"
    readonly: bool = False
    replicate_hint: bool = False  # programmer permission to replicate (lookup tables)

    def __post_init__(self) -> None:
        if any(d <= 0 for d in self.dims):
            raise ValueError(f"array {self.name} has nonpositive extent")

    @property
    def rank(self) -> int:
        return len(self.dims)


@dataclass(frozen=True)
class Assign(Stmt):
    """``lhs = rhs``; lhs is a Ref (whole array or section)."""

    lhs: Ref
    rhs: Expr


@dataclass(frozen=True)
class Do(Stmt):
    """``do liv = lo, hi [, step] ... enddo`` with integer constant bounds."""

    liv: str
    lo: int
    hi: int
    step: int
    body: tuple[Stmt, ...]

    def __post_init__(self) -> None:
        if self.step == 0:
            raise ValueError("do-loop step must be nonzero")


@dataclass(frozen=True)
class If(Stmt):
    """``if (cond) then ... [else ...] endif``.

    ``cond`` is opaque to alignment analysis; its only effect is the
    branch/merge structure of the ADG.  ``prob`` is the control weight
    (probability of the then-branch) used in expected-cost mode.
    """

    cond: str
    then_body: tuple[Stmt, ...]
    else_body: tuple[Stmt, ...] = ()
    prob: float = 0.5


@dataclass(frozen=True)
class Program:
    """A whole procedure: declarations followed by executable statements."""

    decls: tuple[Decl, ...]
    body: tuple[Stmt, ...]
    name: str = "main"

    def decl(self, name: str) -> Decl:
        for d in self.decls:
            if d.name == name:
                return d
        raise KeyError(f"undeclared array {name!r}")

    def array_names(self) -> tuple[str, ...]:
        return tuple(d.name for d in self.decls)


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def walk_exprs(e: Expr):
    """Yield ``e`` and all sub-expressions, preorder."""
    yield e
    if isinstance(e, BinOp):
        yield from walk_exprs(e.left)
        yield from walk_exprs(e.right)
    elif isinstance(e, (UnaryOp, Intrinsic)):
        yield from walk_exprs(e.operand)
    elif isinstance(e, (Transpose, Spread, Reduce)):
        yield from walk_exprs(e.operand)
    elif isinstance(e, Gather):
        yield from walk_exprs(e.table)
        yield from walk_exprs(e.index)


def walk_stmts(stmts):
    """Yield every statement, preorder, descending into loops/branches."""
    for s in stmts:
        yield s
        if isinstance(s, Do):
            yield from walk_stmts(s.body)
        elif isinstance(s, If):
            yield from walk_stmts(s.then_body)
            yield from walk_stmts(s.else_body)


def referenced_arrays(p: Program) -> set[str]:
    """Names of arrays that appear in any executable statement."""
    names: set[str] = set()
    declared = set(p.array_names())
    for s in walk_stmts(p.body):
        if isinstance(s, Assign):
            for e in list(walk_exprs(s.rhs)) + list(walk_exprs(s.lhs)):
                if isinstance(e, Ref) and e.name in declared:
                    names.add(e.name)
    return names
