"""Tokenizer for the Fortran-90-like surface syntax.

Line-oriented like Fortran: statements end at newline; ``!`` starts a
comment; keywords are case-insensitive.  Produces a flat token stream
with positions for error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

KEYWORDS = {
    "real",
    "integer",
    "do",
    "enddo",
    "end",
    "if",
    "then",
    "else",
    "endif",
    "readonly",
    "replicated",
}

# Multi-character operators first so maximal munch works.
OPERATORS = ["**", "==", "/=", "<=", ">=", "=", "+", "-", "*", "/", "(", ")", ",", ":", "<", ">"]


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident', 'int', 'float', 'op', 'kw', 'newline', 'eof'
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        if self.kind in ("newline", "eof"):
            return f"<{self.kind}@{self.line}>"
        return f"<{self.kind} {self.text!r}@{self.line}:{self.col}>"


class LexError(SyntaxError):
    pass


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; always ends with exactly one ``eof`` token."""
    tokens: list[Token] = []
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("!", 1)[0]
        col = 0
        n = len(line)
        emitted_any = False
        while col < n:
            ch = line[col]
            if ch in " \t":
                col += 1
                continue
            start = col
            if ch.isdigit() or (
                ch == "." and col + 1 < n and line[col + 1].isdigit()
            ):
                col += 1
                isfloat = ch == "."
                while col < n and (line[col].isdigit() or line[col] == "."):
                    if line[col] == ".":
                        # Don't swallow '.' of a trailing operator-like token;
                        # the language has no ranges with '.', so any '.' here
                        # belongs to the number.
                        if isfloat:
                            raise LexError(
                                f"line {lineno}: malformed number near col {start+1}"
                            )
                        isfloat = True
                    col += 1
                # exponent part
                if col < n and line[col] in "eEdD":
                    mark = col
                    col += 1
                    if col < n and line[col] in "+-":
                        col += 1
                    if col < n and line[col].isdigit():
                        isfloat = True
                        while col < n and line[col].isdigit():
                            col += 1
                    else:
                        col = mark
                text = line[start:col].replace("d", "e").replace("D", "e")
                tokens.append(
                    Token("float" if isfloat else "int", text, lineno, start + 1)
                )
                emitted_any = True
                continue
            if ch.isalpha() or ch == "_":
                col += 1
                while col < n and (line[col].isalnum() or line[col] == "_"):
                    col += 1
                text = line[start:col]
                kind = "kw" if text.lower() in KEYWORDS else "ident"
                tokens.append(Token(kind, text.lower() if kind == "kw" else text, lineno, start + 1))
                emitted_any = True
                continue
            for op in OPERATORS:
                if line.startswith(op, col):
                    tokens.append(Token("op", op, lineno, col + 1))
                    col += len(op)
                    emitted_any = True
                    break
            else:
                raise LexError(f"line {lineno}: unexpected character {ch!r} at col {col+1}")
        if emitted_any:
            tokens.append(Token("newline", "\n", lineno, n + 1))
    tokens.append(Token("eof", "", len(source.splitlines()) + 1, 1))
    return tokens
