"""Python DSL for constructing programs without parsing.

The textual parser covers programs stored as source; this builder is the
programmatic front end, convenient for tests and generated workloads::

    b = ProgramBuilder("fig1")
    A = b.real("A", 100, 100)
    V = b.real("V", 200)
    with b.do("k", 1, 100) as k:
        b.assign(A[k, 1:100], A[k, 1:100] + V[k : k + 99])
    program = b.build()

Subscript conventions follow *Fortran*, not Python: ``A[1:100]`` is the
inclusive section ``A(1:100)`` (100 elements), ``A[k]`` is a scalar
subscript, ``A[:, j]`` a full first axis.  Both endpoints of a slice are
mandatory except in the bare ``:`` form.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Union

from ..ir.affine import AffineForm
from ..ir.symbols import LIV
from . import ast as A

ScalarLike = Union[int, AffineForm, "LivHandle"]


def _affine(x: ScalarLike) -> AffineForm:
    if isinstance(x, AffineForm):
        return x
    if isinstance(x, LivHandle):
        return AffineForm.variable(x.liv)
    if isinstance(x, int):
        return AffineForm(x)
    raise TypeError(f"cannot use {x!r} as a scalar index")


class LivHandle:
    """A loop induction variable inside a ``with b.do(...)`` block.

    Supports affine arithmetic so subscripts read like the paper:
    ``V[k : k + 99]``.
    """

    def __init__(self, liv: LIV) -> None:
        self.liv = liv

    def __add__(self, other: ScalarLike) -> AffineForm:
        return _affine(self) + _affine(other)

    __radd__ = __add__

    def __sub__(self, other: ScalarLike) -> AffineForm:
        return _affine(self) - _affine(other)

    def __rsub__(self, other: ScalarLike) -> AffineForm:
        return _affine(other) - _affine(self)

    def __mul__(self, k: int) -> AffineForm:
        return _affine(self) * k

    __rmul__ = __mul__

    def __neg__(self) -> AffineForm:
        return -_affine(self)

    def __repr__(self) -> str:
        return f"LivHandle({self.liv.name})"


class ExprHandle:
    """Wraps an AST expression with operator overloading."""

    def __init__(self, node: A.Expr) -> None:
        self.node = node

    @staticmethod
    def of(x: "ExprHandle | A.Expr | int | float") -> "ExprHandle":
        if isinstance(x, ExprHandle):
            return x
        if isinstance(x, A.Expr):
            return ExprHandle(x)
        if isinstance(x, (int, float)):
            return ExprHandle(A.Const(float(x)))
        raise TypeError(f"cannot use {x!r} as an array expression")

    def _bin(self, op: str, other, swapped: bool = False) -> "ExprHandle":
        o = ExprHandle.of(other)
        l, r = (o, self) if swapped else (self, o)
        return ExprHandle(A.BinOp(op, l.node, r.node))

    def __add__(self, other):
        return self._bin("+", other)

    def __radd__(self, other):
        return self._bin("+", other, swapped=True)

    def __sub__(self, other):
        return self._bin("-", other)

    def __rsub__(self, other):
        return self._bin("-", other, swapped=True)

    def __mul__(self, other):
        return self._bin("*", other)

    def __rmul__(self, other):
        return self._bin("*", other, swapped=True)

    def __truediv__(self, other):
        return self._bin("/", other)

    def __rtruediv__(self, other):
        return self._bin("/", other, swapped=True)

    def __neg__(self):
        return ExprHandle(A.UnaryOp("-", self.node))

    def __repr__(self) -> str:
        return f"ExprHandle({self.node!r})"


class ArrayHandle(ExprHandle):
    """A declared array; indexing produces section references."""

    def __init__(self, decl: A.Decl) -> None:
        super().__init__(A.Ref(decl.name))
        self.decl = decl

    def __getitem__(self, subs) -> ExprHandle:
        if not isinstance(subs, tuple):
            subs = (subs,)
        converted: list[A.Subscript] = []
        for s in subs:
            if isinstance(s, slice):
                if s.start is None and s.stop is None and s.step is None:
                    converted.append(A.FullSlice())
                else:
                    if s.start is None or s.stop is None:
                        raise ValueError(
                            "sections need explicit lo and hi (Fortran triplets)"
                        )
                    step = _affine(1 if s.step is None else s.step)
                    converted.append(
                        A.Slice(_affine(s.start), _affine(s.stop), step)
                    )
            else:
                converted.append(A.Index(_affine(s)))
        return ExprHandle(A.Ref(self.decl.name, tuple(converted)))

    @property
    def ref(self) -> A.Ref:
        return A.Ref(self.decl.name)


# Free functions mirroring the intrinsics -----------------------------------


def transpose(x) -> ExprHandle:
    return ExprHandle(A.Transpose(ExprHandle.of(x).node))


def spread(x, dim: int, ncopies: int) -> ExprHandle:
    return ExprHandle(A.Spread(ExprHandle.of(x).node, dim, ncopies))


def reduce_(op: str, x, dim: int | None = None) -> ExprHandle:
    return ExprHandle(A.Reduce(op, ExprHandle.of(x).node, dim))


def sum_(x, dim: int | None = None) -> ExprHandle:
    return reduce_("sum", x, dim)


def intrinsic(name: str, x) -> ExprHandle:
    return ExprHandle(A.Intrinsic(name, ExprHandle.of(x).node))


def cos(x) -> ExprHandle:
    return intrinsic("cos", x)


def sin(x) -> ExprHandle:
    return intrinsic("sin", x)


def sqrt(x) -> ExprHandle:
    return intrinsic("sqrt", x)


def gather(table, index) -> ExprHandle:
    t = ExprHandle.of(table).node
    if not isinstance(t, A.Ref):
        raise TypeError("gather table must be an array reference")
    return ExprHandle(A.Gather(t, ExprHandle.of(index).node))


class ProgramBuilder:
    """Accumulates declarations and statements; see module docstring."""

    def __init__(self, name: str = "main") -> None:
        self.name = name
        self._decls: list[A.Decl] = []
        self._stack: list[list[A.Stmt]] = [[]]
        self._livs: list[str] = []

    # -- declarations -------------------------------------------------------

    def real(
        self,
        name: str,
        *dims: int,
        readonly: bool = False,
        replicate_hint: bool = False,
    ) -> ArrayHandle:
        d = A.Decl(
            name, tuple(dims), "real", readonly=readonly, replicate_hint=replicate_hint
        )
        self._decls.append(d)
        return ArrayHandle(d)

    def integer(self, name: str, *dims: int, **kw) -> ArrayHandle:
        d = A.Decl(name, tuple(dims), "integer", **kw)
        self._decls.append(d)
        return ArrayHandle(d)

    # -- statements -----------------------------------------------------------

    def assign(self, lhs, rhs) -> None:
        ln = ExprHandle.of(lhs).node
        if not isinstance(ln, A.Ref):
            raise TypeError("assignment target must be an array reference")
        self._stack[-1].append(A.Assign(ln, ExprHandle.of(rhs).node))

    @contextmanager
    def do(self, liv: str, lo: int, hi: int, step: int = 1) -> Iterator[LivHandle]:
        if liv in self._livs:
            raise ValueError(f"loop variable {liv!r} shadows an enclosing loop")
        self._livs.append(liv)
        self._stack.append([])
        try:
            yield LivHandle(LIV(liv, 0))
        finally:
            body = self._stack.pop()
            self._livs.pop()
            self._stack[-1].append(A.Do(liv, lo, hi, step, tuple(body)))

    @contextmanager
    def if_(self, cond: str, prob: float = 0.5):
        """Open an if block; yields an object with an ``otherwise`` context."""
        self._stack.append([])
        holder = _IfHolder(self)
        try:
            yield holder
        finally:
            then_body = self._stack.pop()
            self._stack[-1].append(
                A.If(cond, tuple(then_body), tuple(holder.else_body), prob)
            )

    def build(self) -> A.Program:
        if len(self._stack) != 1:
            raise RuntimeError("unclosed loop or branch in builder")
        return A.Program(tuple(self._decls), tuple(self._stack[0]), name=self.name)


class _IfHolder:
    def __init__(self, builder: ProgramBuilder) -> None:
        self._builder = builder
        self.else_body: tuple[A.Stmt, ...] = ()

    @contextmanager
    def otherwise(self):
        self._builder._stack.append([])
        try:
            yield
        finally:
            self.else_body = tuple(self._builder._stack.pop())
