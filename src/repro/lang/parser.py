"""Recursive-descent parser for the mini data-parallel language.

Grammar (statements are newline-terminated, Fortran style)::

    program   : { decl | stmt }
    decl      : attrs ('real'|'integer') item {',' item}
    attrs     : { 'readonly' | 'replicated' }
    item      : IDENT '(' INT {',' INT} ')'
    stmt      : assign | do | if
    do        : 'do' IDENT '=' INT ',' INT [',' INT] NL {stmt} 'enddo'
    if        : 'if' '(' cond ')' 'then' NL {stmt} ['else' NL {stmt}] 'endif'
    assign    : ref '=' expr
    expr      : term {('+'|'-') term}
    term      : factor {('*'|'/') factor}
    factor    : ['-'] primary
    primary   : NUMBER | call | ref | '(' expr ')'
    call      : INTRINSIC '(' ... ')'
    ref       : IDENT ['(' subscript {',' subscript} ')']
    subscript : ':' | sexpr [':' sexpr [':' INT]]

Scalar index expressions (``sexpr``) are affine: sums/differences of
integer literals and identifiers, products only with an integer constant
on one side.  Anything else is a parse error — this is precisely the
restriction of Section 2.4.
"""

from __future__ import annotations

from fractions import Fraction

from ..ir.affine import AffineForm
from ..ir.symbols import LIV
from . import ast as A
from .lexer import Token, tokenize

ELEMENTWISE_INTRINSICS = {"cos", "sin", "exp", "sqrt", "abs", "log", "tanh"}
REDUCTIONS = {"sum", "product", "maxval", "minval"}


class ParseError(SyntaxError):
    pass


class Parser:
    def __init__(self, tokens: list[Token], source_name: str = "<string>") -> None:
        self.tokens = tokens
        self.pos = 0
        self.source_name = source_name
        self.declared: dict[str, A.Decl] = {}

    # -- token helpers ------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        t = self.tokens[self.pos]
        if t.kind != "eof":
            self.pos += 1
        return t

    def at(self, kind: str, text: str | None = None) -> bool:
        t = self.peek()
        return t.kind == kind and (text is None or t.text == text)

    def expect(self, kind: str, text: str | None = None) -> Token:
        t = self.peek()
        if not self.at(kind, text):
            want = text or kind
            raise ParseError(
                f"{self.source_name}:{t.line}: expected {want!r}, found {t.text!r}"
            )
        return self.next()

    def skip_newlines(self) -> None:
        while self.at("newline"):
            self.next()

    def end_of_statement(self) -> None:
        t = self.peek()
        if t.kind == "eof":
            return
        self.expect("newline")
        self.skip_newlines()

    # -- program -----------------------------------------------------------------

    def parse_program(self, name: str = "main") -> A.Program:
        decls: list[A.Decl] = []
        body: list[A.Stmt] = []
        self.skip_newlines()
        while not self.at("eof"):
            if self.at("kw", "real") or self.at("kw", "integer") or (
                self.at("kw", "readonly") or self.at("kw", "replicated")
            ):
                decls.extend(self.parse_decl())
            else:
                body.append(self.parse_stmt())
        return A.Program(tuple(decls), tuple(body), name=name)

    def parse_decl(self) -> list[A.Decl]:
        readonly = False
        replicate = False
        while self.at("kw", "readonly") or self.at("kw", "replicated"):
            t = self.next()
            if t.text == "readonly":
                readonly = True
            else:
                replicate = True
        kind_tok = self.peek()
        if not (self.at("kw", "real") or self.at("kw", "integer")):
            raise ParseError(
                f"{self.source_name}:{kind_tok.line}: expected type keyword"
            )
        kind = self.next().text
        items: list[A.Decl] = []
        while True:
            name = self.expect("ident").text
            self.expect("op", "(")
            dims = [int(self.expect("int").text)]
            while self.at("op", ","):
                self.next()
                dims.append(int(self.expect("int").text))
            self.expect("op", ")")
            d = A.Decl(
                name,
                tuple(dims),
                kind=kind,
                readonly=readonly,
                replicate_hint=replicate,
            )
            if name in self.declared:
                raise ParseError(f"{self.source_name}: duplicate declaration of {name!r}")
            self.declared[name] = d
            items.append(d)
            if self.at("op", ","):
                self.next()
                continue
            break
        self.end_of_statement()
        return items

    # -- statements ----------------------------------------------------------------

    def parse_stmt(self) -> A.Stmt:
        if self.at("kw", "do"):
            return self.parse_do()
        if self.at("kw", "if"):
            return self.parse_if()
        return self.parse_assign()

    def parse_do(self) -> A.Do:
        self.expect("kw", "do")
        liv = self.expect("ident").text
        self.expect("op", "=")
        lo = self.parse_signed_int()
        self.expect("op", ",")
        hi = self.parse_signed_int()
        step = 1
        if self.at("op", ","):
            self.next()
            step = self.parse_signed_int()
        self.end_of_statement()
        body: list[A.Stmt] = []
        while not self.at("kw", "enddo"):
            if self.at("eof"):
                raise ParseError(f"{self.source_name}: unterminated do loop ({liv})")
            body.append(self.parse_stmt())
        self.expect("kw", "enddo")
        self.end_of_statement()
        return A.Do(liv, lo, hi, step, tuple(body))

    def parse_if(self) -> A.If:
        self.expect("kw", "if")
        self.expect("op", "(")
        # The condition is opaque: capture raw tokens to matching ')'.
        depth = 1
        parts: list[str] = []
        while depth > 0:
            t = self.next()
            if t.kind == "eof":
                raise ParseError(f"{self.source_name}: unterminated if condition")
            if t.kind == "op" and t.text == "(":
                depth += 1
            elif t.kind == "op" and t.text == ")":
                depth -= 1
                if depth == 0:
                    break
            parts.append(t.text)
        cond = " ".join(parts)
        self.expect("kw", "then")
        self.end_of_statement()
        then_body: list[A.Stmt] = []
        else_body: list[A.Stmt] = []
        while not (self.at("kw", "else") or self.at("kw", "endif")):
            if self.at("eof"):
                raise ParseError(f"{self.source_name}: unterminated if block")
            then_body.append(self.parse_stmt())
        if self.at("kw", "else"):
            self.next()
            self.end_of_statement()
            while not self.at("kw", "endif"):
                if self.at("eof"):
                    raise ParseError(f"{self.source_name}: unterminated else block")
                else_body.append(self.parse_stmt())
        self.expect("kw", "endif")
        self.end_of_statement()
        return A.If(cond, tuple(then_body), tuple(else_body))

    def parse_assign(self) -> A.Assign:
        lhs = self.parse_ref()
        self.expect("op", "=")
        rhs = self.parse_expr()
        self.end_of_statement()
        return A.Assign(lhs, rhs)

    # -- expressions ------------------------------------------------------------------

    def parse_expr(self) -> A.Expr:
        left = self.parse_term()
        while self.at("op", "+") or self.at("op", "-"):
            op = self.next().text
            right = self.parse_term()
            left = A.BinOp(op, left, right)
        return left

    def parse_term(self) -> A.Expr:
        left = self.parse_factor()
        while self.at("op", "*") or self.at("op", "/"):
            op = self.next().text
            right = self.parse_factor()
            left = A.BinOp(op, left, right)
        return left

    def parse_factor(self) -> A.Expr:
        if self.at("op", "-"):
            self.next()
            return A.UnaryOp("-", self.parse_factor())
        return self.parse_primary()

    def parse_primary(self) -> A.Expr:
        t = self.peek()
        if t.kind in ("int", "float"):
            self.next()
            return A.Const(float(t.text))
        if t.kind == "op" and t.text == "(":
            self.next()
            e = self.parse_expr()
            self.expect("op", ")")
            return e
        if t.kind == "ident":
            name = t.text
            lname = name.lower()
            if lname == "transpose" and self.peek(1).text == "(":
                self.next()
                self.expect("op", "(")
                inner = self.parse_expr()
                self.expect("op", ")")
                return A.Transpose(inner)
            if lname == "spread" and self.peek(1).text == "(":
                return self.parse_spread()
            if lname == "gather" and self.peek(1).text == "(":
                self.next()
                self.expect("op", "(")
                table = self.parse_ref()
                self.expect("op", ",")
                index = self.parse_expr()
                self.expect("op", ")")
                return A.Gather(table, index)
            if lname in REDUCTIONS and self.peek(1).text == "(":
                return self.parse_reduction(lname)
            if lname in ELEMENTWISE_INTRINSICS and self.peek(1).text == "(":
                self.next()
                self.expect("op", "(")
                inner = self.parse_expr()
                self.expect("op", ")")
                return A.Intrinsic(lname, inner)
            return self.parse_ref()
        raise ParseError(
            f"{self.source_name}:{t.line}: unexpected token {t.text!r} in expression"
        )

    def parse_spread(self) -> A.Spread:
        self.expect("ident")  # 'spread'
        self.expect("op", "(")
        operand = self.parse_expr()
        self.expect("op", ",")
        dim = None
        ncopies = None
        for _ in range(2):
            key = self.expect("ident").text.lower()
            self.expect("op", "=")
            val = self.parse_signed_int()
            if key == "dim":
                dim = val
            elif key == "ncopies":
                ncopies = val
            else:
                raise ParseError(f"{self.source_name}: unknown spread argument {key!r}")
            if self.at("op", ","):
                self.next()
        self.expect("op", ")")
        if dim is None or ncopies is None:
            raise ParseError(f"{self.source_name}: spread needs dim= and ncopies=")
        return A.Spread(operand, dim, ncopies)

    def parse_reduction(self, op: str) -> A.Reduce:
        self.expect("ident")
        self.expect("op", "(")
        operand = self.parse_expr()
        dim = None
        if self.at("op", ","):
            self.next()
            key = self.expect("ident").text.lower()
            self.expect("op", "=")
            if key != "dim":
                raise ParseError(f"{self.source_name}: unknown reduction argument {key!r}")
            dim = self.parse_signed_int()
        self.expect("op", ")")
        return A.Reduce(op, operand, dim)

    # -- references and subscripts --------------------------------------------------------

    def parse_ref(self) -> A.Ref:
        name = self.expect("ident").text
        if not self.at("op", "("):
            return A.Ref(name)
        self.next()
        subs: list[A.Subscript] = [self.parse_subscript()]
        while self.at("op", ","):
            self.next()
            subs.append(self.parse_subscript())
        self.expect("op", ")")
        return A.Ref(name, tuple(subs))

    def parse_subscript(self) -> A.Subscript:
        if self.at("op", ":"):
            self.next()
            return A.FullSlice()
        lo = self.parse_affine()
        if not self.at("op", ":"):
            return A.Index(lo)
        self.next()
        hi = self.parse_affine()
        step = AffineForm(1)
        if self.at("op", ":"):
            self.next()
            step = self.parse_affine()
        return A.Slice(lo, hi, step)

    # -- scalar affine expressions ------------------------------------------------------------

    def parse_signed_int(self) -> int:
        neg = False
        while self.at("op", "-") or self.at("op", "+"):
            if self.next().text == "-":
                neg = not neg
        v = int(self.expect("int").text)
        return -v if neg else v

    def parse_affine(self) -> AffineForm:
        """Parse an affine scalar expression (index arithmetic)."""
        left = self.parse_affine_term()
        while self.at("op", "+") or self.at("op", "-"):
            op = self.next().text
            right = self.parse_affine_term()
            left = left + right if op == "+" else left - right
        return left

    def parse_affine_term(self) -> AffineForm:
        left = self.parse_affine_atom()
        while self.at("op", "*") or self.at("op", "/"):
            op = self.next().text
            right = self.parse_affine_atom()
            if op == "*":
                if left.is_constant:
                    left = right * left.const
                elif right.is_constant:
                    left = left * right.const
                else:
                    t = self.peek()
                    raise ParseError(
                        f"{self.source_name}:{t.line}: non-affine index expression "
                        "(product of two variables)"
                    )
            else:
                if not right.is_constant or right.const == 0:
                    t = self.peek()
                    raise ParseError(
                        f"{self.source_name}:{t.line}: division by non-constant in index"
                    )
                left = left / right.const
        return left

    def parse_affine_atom(self) -> AffineForm:
        if self.at("op", "-"):
            self.next()
            return -self.parse_affine_atom()
        if self.at("op", "+"):
            self.next()
            return self.parse_affine_atom()
        if self.at("op", "("):
            self.next()
            e = self.parse_affine()
            self.expect("op", ")")
            return e
        t = self.peek()
        if t.kind == "int":
            self.next()
            return AffineForm(int(t.text))
        if t.kind == "ident":
            self.next()
            if t.text in self.declared:
                raise ParseError(
                    f"{self.source_name}:{t.line}: array {t.text!r} used in scalar "
                    "index position (vector subscripts use gather(...))"
                )
            return AffineForm.variable(LIV(t.text, 0))
        raise ParseError(
            f"{self.source_name}:{t.line}: unexpected token {t.text!r} in index"
        )


def parse(source: str, name: str = "main") -> A.Program:
    """Parse source text into a :class:`~repro.lang.ast.Program`."""
    return Parser(tokenize(source), source_name=name).parse_program(name)
