"""The paper's program fragments, ready to analyze.

Each function returns a fresh :class:`~repro.lang.ast.Program` for one of
the fragments in the paper — the two figures with code (1 and 4) and the
five worked examples of Section 2.1 — plus parameterized generators used
by the benchmark harness.
"""

from __future__ import annotations

from .ast import Program
from .builder import ProgramBuilder, cos, spread, transpose
from .parser import parse


def figure1(n: int = 100) -> Program:
    """Figure 1(a): the motivating mobile-alignment fragment.

    ::

        real A(100,100), V(200)
        do k = 1, 100
          A(k,1:100) = A(k,1:100) + V(k:k+99)
        enddo

    The optimal alignment is mobile: ``V(i) at [k, i-k+1]`` (Example 4).
    """
    return parse(
        f"""
real A({n},{n}), V({2 * n})
do k = 1, {n}
  A(k,1:{n}) = A(k,1:{n}) + V(k:k+{n - 1})
enddo
""",
        name="figure1",
    )


def figure4(nt: int = 100, nk: int = 200) -> Program:
    """Figure 4: replication of the array ``t`` feeding a spread.

    ::

        real t(100), B(100,200)
        do K = 1, 200
          t = cos(t)
          B = B + spread(t, dim=2, ncopies=200)
        enddo

    With ``t`` replicated along template axis 2, one broadcast happens at
    loop entry; non-replicated, one broadcast per iteration.
    """
    return parse(
        f"""
real t({nt}), B({nt},{nk})
do K = 1, {nk}
  t = cos(t)
  B = B + spread(t, dim=2, ncopies={nk})
enddo
""",
        name="figure4",
    )


def example1(n: int = 100) -> Program:
    """Example 1 (offset): ``A(1:N-1) = A(1:N-1) + B(2:N)``."""
    return parse(
        f"""
real A({n}), B({n})
A(1:{n - 1}) = A(1:{n - 1}) + B(2:{n})
""",
        name="example1",
    )


def example2(n: int = 100) -> Program:
    """Example 2 (stride): ``A(1:N) = A(1:N) + B(2:2*N:2)``."""
    return parse(
        f"""
real A({n}), B({2 * n})
A(1:{n}) = A(1:{n}) + B(2:{2 * n}:2)
""",
        name="example2",
    )


def example3(n: int = 64) -> Program:
    """Example 3 (axis): ``B = B + transpose(C)``."""
    return parse(
        f"""
real B({n},{n}), C({n},{n})
B = B + transpose(C)
""",
        name="example3",
    )


def example5(iters: int = 50, m: int = 20) -> Program:
    """Example 5 (mobile stride)::

        real A(1000), B(1000), V(20)
        do k = 1, 50
          V = V + A(1:20*k:k)
          B(1:20*k:k) = V
        enddo

    Static stride for V costs two general communications per iteration;
    the mobile stride ``V(i) at [k*i]`` costs one.
    """
    n = iters * m
    return parse(
        f"""
real A({n}), B({n}), V({m})
do k = 1, {iters}
  V = V + A(1:{m}*k:k)
  B(1:{m}*k:k) = V
enddo
""",
        name="example5",
    )


def lookup_table(n: int = 256, m: int = 1000) -> Program:
    """A vector-valued-subscript workload: replicated lookup table.

    Section 5 lists lookup tables indexed by vector-valued subscripts as a
    replication source (replicated "with the programmer's permission" —
    the ``replicated`` attribute here).
    """
    b = ProgramBuilder("lookup_table")
    table = b.real("tab", n, readonly=True, replicate_hint=True)
    idx = b.integer("idx", m)
    out = b.real("y", m)
    from .builder import gather

    b.assign(out[1:m], gather(table, idx[1:m]))
    return b.build()


def stencil_sweep(n: int = 128, iters: int = 10) -> Program:
    """A 1-D three-point stencil sweep: classic static offset workload."""
    return parse(
        f"""
real U({n}), W({n})
do t = 1, {iters}
  W(2:{n - 1}) = U(1:{n - 2}) + U(2:{n - 1}) + U(3:{n})
  U(2:{n - 1}) = W(2:{n - 1})
enddo
""",
        name="stencil_sweep",
    )


def skewed_wavefront(n: int = 64) -> Program:
    """A wavefront access pattern needing mobile offsets (like Figure 1).

    Each iteration reads a diagonal band of ``V`` against a row of ``A``,
    so the best offset for ``V`` moves with ``k``.
    """
    return parse(
        f"""
real A({n},{n}), V({2 * n})
do k = 1, {n}
  A(k,1:{n}) = A(k,1:{n}) * V(k:k+{n - 1}) + V(k+1:k+{n})
enddo
""",
        name="skewed_wavefront",
    )


def triangular_sections(iters: int = 40, m: int = 8) -> Program:
    """Variable-size objects (Section 4.3): section extent grows with k."""
    n = iters * m
    return parse(
        f"""
real A({n}), B({n}), C({n})
do k = 1, {iters}
  B(1:{m}*k) = A(1:{m}*k) + C(1:{m}*k)
enddo
""",
        name="triangular_sections",
    )


def doubly_nested(n: int = 16) -> Program:
    """A 2-deep loop nest exercising Section 4.4 (3^k subranges)."""
    return parse(
        f"""
real A({2 * n},{2 * n}), V({4 * n})
do i = 1, {n}
  do j = 1, {n}
    A(i,j:j+{n - 1}) = A(i,j:j+{n - 1}) + V(i+j:i+j+{n - 1})
  enddo
enddo
""",
        name="doubly_nested",
    )


def conditional_update(n: int = 100) -> Program:
    """Branch/merge structure for branch-node tests."""
    return parse(
        f"""
real A({n}), B({n})
do k = 1, 10
  if (converged) then
    A(1:{n}) = A(1:{n}) + B(1:{n})
  else
    A(1:{n - 1}) = B(2:{n})
  endif
enddo
""",
        name="conditional_update",
    )


ALL_PAPER_FRAGMENTS = {
    "figure1": figure1,
    "figure4": figure4,
    "example1": example1,
    "example2": example2,
    "example3": example3,
    "example5": example5,
}
