"""Shape and binding analysis for the mini language.

Infers the *symbolic shape* of every expression — a tuple of affine
extents, one per axis — and validates:

* every array referenced is declared, with the right subscript count;
* every LIV used in index arithmetic is bound by an enclosing ``do``
  (and LIV names are not shadowed, keeping alignment functions well
  defined);
* elementwise operands are conformable (equal symbolic extents, or
  scalar);
* ``transpose`` is rank-2; ``spread`` dims are in range; reductions
  reduce an existing axis;
* sections with constant bounds fall inside declared extents.

The inferred shapes drive the ADG's data weights: the element count of
an object is the product of its extents, a polynomial in the LIVs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from fractions import Fraction
from math import floor

from ..ir.affine import AffineForm
from ..ir.itspace import Triplet
from ..ir.polynomial import Polynomial
from ..ir.symbols import LIV
from . import ast as A


class TypeError_(Exception):
    """Shape/binding violation (named to avoid the builtin)."""


def section_extent(
    lo: AffineForm,
    hi: AffineForm,
    step: AffineForm,
    ranges: dict[str, Triplet],
) -> AffineForm:
    """Element count of the section ``lo:hi:step`` as an affine form.

    The true count is ``floor((hi - lo)/step) + 1``, which involves a
    floor; the paper's analysis requires extents affine in the LIVs
    (Section 2.4).  We reduce the floor using the (constant, known) loop
    ranges:

    * constant step ``s``: if ``(hi - lo)/s`` has integral coefficients
      the count is exact; otherwise the fractional part must be constant
      over the loop ranges (verified by enumeration) so that the floor is
      an affine shift.
    * LIV-dependent step (Example 5's ``1:20*k:k``): polynomial-divide
      ``hi - lo`` by ``step``; the quotient must be an integer constant
      and the floor of the remainder ratio constant over the LIV range.

    Sections whose count genuinely is not affine are a
    :class:`TypeError_` — they are outside the language the paper
    analyzes.
    """
    diff = hi - lo

    def env_points(livs):
        """All value combinations of the given LIVs (ranges are small)."""
        from itertools import product as iproduct

        names = [v for v in livs]
        axes = []
        for v in names:
            if v.name not in ranges:
                raise TypeError_(f"LIV {v.name} has no known range")
            axes.append(list(ranges[v.name]))
        for combo in iproduct(*axes):
            yield dict(zip(names, combo))

    if step.is_constant:
        s = step.const
        cand = diff / s
        if cand.is_integral():
            return cand + 1
        # Floor correction must be a constant over the iteration ranges.
        corrections = set()
        for env in env_points(diff.livs()):
            val = diff.evaluate(env) / s
            corrections.add(floor(val) - val)
        vals = {c for c in corrections}
        if len(vals) == 1:
            return cand + next(iter(vals)) + 1
        raise TypeError_(
            f"section extent floor(({diff})/{s}) + 1 is not affine over the loop ranges"
        )
    livs = step.livs()
    if len(livs) != 1:
        raise TypeError_(f"section step {step} depends on more than one LIV")
    k = next(iter(livs))
    if diff.livs() - {k}:
        raise TypeError_(
            f"section bounds {diff} mix LIVs with LIV-dependent step {step}"
        )
    counts = set()
    if k.name not in ranges:
        raise TypeError_(f"LIV {k.name} has no known range")
    for kv in ranges[k.name]:
        sv = step.evaluate({k: kv})
        if sv == 0:
            raise TypeError_(f"section step {step} vanishes at {k.name}={kv}")
        dv = diff.evaluate({k: kv})
        counts.add(floor(dv / sv) + 1)
    if len(counts) == 1:
        return AffineForm(next(iter(counts)))
    raise TypeError_(
        f"section extent with step {step} is not constant over the range of {k.name}"
    )


Shape = tuple[AffineForm, ...]


@dataclass
class TypeInfo:
    """Result of checking a program: shapes keyed by expression identity."""

    program: A.Program
    shapes: dict[int, Shape] = field(default_factory=dict)
    _keepalive: list[A.Expr] = field(default_factory=list)

    def shape_of(self, e: A.Expr) -> Shape:
        try:
            return self.shapes[id(e)]
        except KeyError:
            raise TypeError_(f"expression {e!r} was not typechecked") from None

    def __getstate__(self) -> dict:
        # ``id(expr)`` keys are meaningless in another process.  Ship the
        # expression objects themselves — pickle preserves their sharing
        # with the program AST serialized in the same blob — and re-key
        # against the re-hydrated objects on the other side.
        return {
            "program": self.program,
            "pairs": [(e, self.shapes[id(e)]) for e in self._keepalive],
        }

    def __setstate__(self, state: dict) -> None:
        self.program = state["program"]
        self._keepalive = [e for e, _ in state["pairs"]]
        self.shapes = {id(e): shape for e, shape in state["pairs"]}

    def rank_of(self, e: A.Expr) -> int:
        return len(self.shape_of(e))

    def size_of(self, e: A.Expr) -> Polynomial:
        """Element count as a polynomial in the LIVs."""
        total = Polynomial.constant(1)
        for ext in self.shape_of(e):
            total = total * Polynomial.from_affine(ext)
        return total


def _extents_equal(a: Shape, b: Shape) -> bool:
    return len(a) == len(b) and all(x == y for x, y in zip(a, b))


class TypeChecker:
    def __init__(self, program: A.Program) -> None:
        self.program = program
        self.info = TypeInfo(program)
        self.bound: dict[str, LIV] = {}
        self.ranges: dict[str, Triplet] = {}

    # -- entry point ----------------------------------------------------------

    def check(self) -> TypeInfo:
        names = [d.name for d in self.program.decls]
        if len(names) != len(set(names)):
            raise TypeError_("duplicate array declaration")
        self._check_block(self.program.body)
        return self.info

    # -- statements --------------------------------------------------------------

    def _check_block(self, stmts: tuple[A.Stmt, ...]) -> None:
        for s in stmts:
            if isinstance(s, A.Assign):
                self._check_assign(s)
            elif isinstance(s, A.Do):
                self._check_do(s)
            elif isinstance(s, A.If):
                self._check_block(s.then_body)
                self._check_block(s.else_body)
            else:
                raise TypeError_(f"unknown statement {s!r}")

    def _check_do(self, s: A.Do) -> None:
        if s.liv in self.bound:
            raise TypeError_(f"loop variable {s.liv!r} shadows an enclosing loop")
        if s.liv in {d.name for d in self.program.decls}:
            raise TypeError_(f"loop variable {s.liv!r} collides with an array name")
        liv = LIV(s.liv, 0)
        self.bound[s.liv] = liv
        self.ranges[s.liv] = Triplet(s.lo, s.hi, s.step)
        try:
            self._check_block(s.body)
        finally:
            del self.bound[s.liv]
            del self.ranges[s.liv]

    def _check_assign(self, s: A.Assign) -> None:
        lshape = self._shape_ref(s.lhs, is_lhs=True)
        rshape = self._shape(s.rhs)
        if len(rshape) != 0 and not _extents_equal(lshape, rshape):
            raise TypeError_(
                f"assignment shape mismatch: lhs {s.lhs.name} has shape "
                f"{[str(x) for x in lshape]}, rhs has {[str(x) for x in rshape]}"
            )

    # -- expressions ----------------------------------------------------------------

    def _remember(self, e: A.Expr, shape: Shape) -> Shape:
        self.info.shapes[id(e)] = shape
        self.info._keepalive.append(e)
        return shape

    def _shape(self, e: A.Expr) -> Shape:
        if isinstance(e, A.Const):
            return self._remember(e, ())
        if isinstance(e, A.ScalarRef):
            return self._remember(e, ())
        if isinstance(e, A.Ref):
            return self._shape_ref(e)
        if isinstance(e, A.BinOp):
            ls = self._shape(e.left)
            rs = self._shape(e.right)
            if len(ls) == 0:
                return self._remember(e, rs)
            if len(rs) == 0:
                return self._remember(e, ls)
            if not _extents_equal(ls, rs):
                raise TypeError_(
                    f"nonconformable operands to {e.op!r}: "
                    f"{[str(x) for x in ls]} vs {[str(x) for x in rs]}"
                )
            return self._remember(e, ls)
        if isinstance(e, A.UnaryOp):
            return self._remember(e, self._shape(e.operand))
        if isinstance(e, A.Intrinsic):
            return self._remember(e, self._shape(e.operand))
        if isinstance(e, A.Transpose):
            s = self._shape(e.operand)
            if len(s) != 2:
                raise TypeError_("transpose requires a rank-2 operand")
            return self._remember(e, (s[1], s[0]))
        if isinstance(e, A.Spread):
            s = self._shape(e.operand)
            if not 1 <= e.dim <= len(s) + 1:
                raise TypeError_(
                    f"spread dim={e.dim} out of range for rank-{len(s)} operand"
                )
            if e.ncopies <= 0:
                raise TypeError_("spread ncopies must be positive")
            new = s[: e.dim - 1] + (AffineForm(e.ncopies),) + s[e.dim - 1 :]
            return self._remember(e, new)
        if isinstance(e, A.Reduce):
            s = self._shape(e.operand)
            if e.dim is None:
                return self._remember(e, ())
            if not 1 <= e.dim <= len(s):
                raise TypeError_(
                    f"reduction dim={e.dim} out of range for rank-{len(s)} operand"
                )
            return self._remember(e, s[: e.dim - 1] + s[e.dim :])
        if isinstance(e, A.Gather):
            ts = self._shape_ref(e.table)
            if len(ts) != 1:
                raise TypeError_("gather table must be rank-1")
            idx_shape = self._shape(e.index)
            if len(idx_shape) != 1:
                raise TypeError_("gather index must be rank-1")
            return self._remember(e, idx_shape)
        raise TypeError_(f"unknown expression {e!r}")

    def _shape_ref(self, e: A.Ref, is_lhs: bool = False) -> Shape:
        try:
            decl = self.program.decl(e.name)
        except KeyError:
            if not e.subscripts and e.name in self.bound and not is_lhs:
                # A LIV used as a scalar value (e.g. ``A(k) = 2*k``).
                return self._remember(e, ())
            raise TypeError_(f"undeclared array {e.name!r}") from None
        if e.subscripts and len(e.subscripts) != decl.rank:
            raise TypeError_(
                f"{e.name} has rank {decl.rank} but {len(e.subscripts)} subscripts"
            )
        if is_lhs and decl.readonly:
            raise TypeError_(f"assignment to readonly array {e.name!r}")
        if not e.subscripts:
            shape = tuple(AffineForm(d) for d in decl.dims)
            return self._remember(e, shape)
        out: list[AffineForm] = []
        for axis, (sub, extent) in enumerate(zip(e.subscripts, decl.dims), start=1):
            if isinstance(sub, A.FullSlice):
                out.append(AffineForm(extent))
            elif isinstance(sub, A.Index):
                self._check_bound_livs(sub.value, e.name)
                self._check_range(sub.value, extent, e.name, axis)
            elif isinstance(sub, A.Slice):
                self._check_bound_livs(sub.lo, e.name)
                self._check_bound_livs(sub.hi, e.name)
                self._check_bound_livs(sub.step, e.name)
                self._check_range(sub.lo, extent, e.name, axis)
                self._check_range(sub.hi, extent, e.name, axis)
                out.append(section_extent(sub.lo, sub.hi, sub.step, self.ranges))
            else:
                raise TypeError_(f"unknown subscript {sub!r}")
        return self._remember(e, tuple(out))

    # -- helpers -----------------------------------------------------------------------

    def _check_bound_livs(self, form: AffineForm, arr: str) -> None:
        for liv in form.livs():
            if liv.name not in self.bound:
                raise TypeError_(
                    f"index of {arr} uses unbound variable {liv.name!r}"
                )

    def _check_range(
        self, form: AffineForm, extent: int, arr: str, axis: int
    ) -> None:
        """Static bounds check, only when the index is a constant."""
        if form.is_constant:
            v = form.const
            if not (1 <= v <= extent):
                raise TypeError_(
                    f"{arr} axis {axis}: constant index {v} outside 1..{extent}"
                )


def typecheck(program: A.Program) -> TypeInfo:
    """Check ``program``; returns shapes for every expression."""
    return TypeChecker(program).check()
