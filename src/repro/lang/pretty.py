"""Pretty-printer: AST back to surface syntax.

``parse(pretty(p))`` round-trips for every program the parser accepts —
tested property-style in the suite.
"""

from __future__ import annotations

from ..ir.affine import AffineForm
from . import ast as A


def _affine_str(f: AffineForm) -> str:
    """Render an affine form in surface syntax (e.g. ``2*k + 3``)."""
    parts: list[str] = []
    for liv in sorted(f.coeffs, key=lambda v: v.name):
        c = f.coeff(liv)
        if c == 1:
            term = liv.name
        elif c == -1:
            term = f"-{liv.name}"
        elif c.denominator == 1:
            term = f"{c.numerator}*{liv.name}"
        else:
            term = f"{c.numerator}*{liv.name}/{c.denominator}"
        parts.append(term)
    if f.const != 0 or not parts:
        c = f.const
        parts.append(str(c.numerator) if c.denominator == 1 else f"{c.numerator}/{c.denominator}")
    out = parts[0]
    for p in parts[1:]:
        out += f" - {p[1:]}" if p.startswith("-") else f" + {p}"
    return out


def _subscript_str(s: A.Subscript) -> str:
    if isinstance(s, A.FullSlice):
        return ":"
    if isinstance(s, A.Index):
        return _affine_str(s.value)
    assert isinstance(s, A.Slice)
    base = f"{_affine_str(s.lo)}:{_affine_str(s.hi)}"
    if s.step == AffineForm(1):
        return base
    return f"{base}:{_affine_str(s.step)}"


_PRECEDENCE = {"+": 1, "-": 1, "*": 2, "/": 2}


def expr_str(e: A.Expr, parent_prec: int = 0) -> str:
    if isinstance(e, A.Const):
        v = e.value
        return str(int(v)) if v == int(v) else repr(v)
    if isinstance(e, A.ScalarRef):
        return e.name
    if isinstance(e, A.Ref):
        if not e.subscripts:
            return e.name
        inner = ",".join(_subscript_str(s) for s in e.subscripts)
        return f"{e.name}({inner})"
    if isinstance(e, A.BinOp):
        prec = _PRECEDENCE[e.op]
        left = expr_str(e.left, prec)
        # Right operand of - and / needs parens at equal precedence.
        right = expr_str(e.right, prec + (1 if e.op in ("-", "/") else 0))
        text = f"{left} {e.op} {right}"
        return f"({text})" if prec < parent_prec else text
    if isinstance(e, A.UnaryOp):
        inner = expr_str(e.operand, 3)
        return f"-{inner}"
    if isinstance(e, A.Intrinsic):
        return f"{e.name}({expr_str(e.operand)})"
    if isinstance(e, A.Transpose):
        return f"transpose({expr_str(e.operand)})"
    if isinstance(e, A.Spread):
        return f"spread({expr_str(e.operand)}, dim={e.dim}, ncopies={e.ncopies})"
    if isinstance(e, A.Reduce):
        if e.dim is None:
            return f"{e.op}({expr_str(e.operand)})"
        return f"{e.op}({expr_str(e.operand)}, dim={e.dim})"
    if isinstance(e, A.Gather):
        return f"gather({expr_str(e.table)}, {expr_str(e.index)})"
    raise TypeError(f"unknown expression {e!r}")


def _stmt_lines(s: A.Stmt, indent: int) -> list[str]:
    pad = "  " * indent
    if isinstance(s, A.Assign):
        return [f"{pad}{expr_str(s.lhs)} = {expr_str(s.rhs)}"]
    if isinstance(s, A.Do):
        head = f"{pad}do {s.liv} = {s.lo}, {s.hi}"
        if s.step != 1:
            head += f", {s.step}"
        lines = [head]
        for inner in s.body:
            lines.extend(_stmt_lines(inner, indent + 1))
        lines.append(f"{pad}enddo")
        return lines
    if isinstance(s, A.If):
        lines = [f"{pad}if ({s.cond}) then"]
        for inner in s.then_body:
            lines.extend(_stmt_lines(inner, indent + 1))
        if s.else_body:
            lines.append(f"{pad}else")
            for inner in s.else_body:
                lines.extend(_stmt_lines(inner, indent + 1))
        lines.append(f"{pad}endif")
        return lines
    raise TypeError(f"unknown statement {s!r}")


def pretty(p: A.Program) -> str:
    """Render a whole program as parseable surface text."""
    lines: list[str] = []
    for d in p.decls:
        attrs = ""
        if d.readonly:
            attrs += "readonly "
        if d.replicate_hint:
            attrs += "replicated "
        dims = ",".join(str(x) for x in d.dims)
        lines.append(f"{attrs}{d.kind} {d.name}({dims})")
    for s in p.body:
        lines.extend(_stmt_lines(s, 0))
    return "\n".join(lines) + "\n"
