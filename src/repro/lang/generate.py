"""Parameterized scenario generation for batch planning and fuzzing.

The end-to-end fuzzer used to carry a private generator limited to 1-D
arrays and a single loop; the batched planning engine needs corpora that
exercise the whole pipeline — 2-D arrays, multi-statement loop bodies,
multi-phase programs, reductions, spreads and wavefronts.  This module
is the shared, deterministic source of such programs: every scenario is
a named family drawn with an explicit seed, so corpora are reproducible
across runs, machines and worker processes.

Scenarios are carried as *source text* (the Fortran-90-like surface
syntax), which keeps them trivially picklable for the process pool and
round-trippable through the parser/pretty-printer.

Quickstart::

    from repro.lang.generate import generate_corpus

    for sc in generate_corpus(100, seed=0):
        program = sc.parse()
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from .ast import Program
from .parser import parse


@dataclass(frozen=True)
class Scenario:
    """One generated program: family, seed, and its source text."""

    name: str
    family: str
    seed: int
    source: str

    def parse(self) -> Program:
        return parse(self.source, name=self.name)


@dataclass(frozen=True)
class GeneratorConfig:
    """Size knobs for the generator.

    Defaults keep individual programs small enough that a 100-program
    corpus plans in seconds while still covering every pipeline feature;
    the differential harness walks iteration spaces point by point, so
    extents and trip counts multiply.
    """

    min_extent: int = 8
    max_extent: int = 24
    min_iters: int = 2
    max_iters: int = 6
    max_stmts: int = 3
    families: tuple[str, ...] = ()  # empty = all

    def pick_extent(self, rng: random.Random) -> int:
        return rng.randint(self.min_extent, self.max_extent)

    def pick_iters(self, rng: random.Random) -> int:
        return rng.randint(self.min_iters, self.max_iters)


# ---------------------------------------------------------------------------
# Families.  Each takes (rng, cfg) and returns source text.  All emitted
# programs must typecheck, run under the interpreter, and admit the full
# alignment + distribution pipeline; test_differential asserts exactly
# that for every family over many seeds.
# ---------------------------------------------------------------------------


def _shift1d(rng: random.Random, cfg: GeneratorConfig) -> str:
    """1-D shifted sections, multi-statement loop body (the classic fuzz)."""
    n = cfg.pick_extent(rng)
    iters = cfg.pick_iters(rng)
    width = rng.randint(3, max(4, n // 2))
    names = ["A", "B", "C"]
    size = n + iters + width
    lines = ["real " + ", ".join(f"{x}({size})" for x in names)]

    def section(name: str) -> str:
        mode = rng.randrange(3)
        if mode == 0:
            lo = rng.randint(1, max(1, n - width))
            return f"{name}({lo}:{lo + width - 1})"
        if mode == 1:
            off = rng.randint(0, 2)
            return f"{name}(k+{off}:k+{off + width - 1})"
        lo = rng.randint(1, 4)
        return f"{name}({lo}:{lo + width - 1})"

    lines.append(f"do k = 1, {iters}")
    for _ in range(rng.randint(1, cfg.max_stmts)):
        dst, a, b = rng.choice(names), rng.choice(names), rng.choice(names)
        op = rng.choice("+-*")
        lines.append(f"  {section(dst)} = {section(a)} {op} {section(b)}")
    lines.append("enddo")
    return "\n".join(lines)


def _twod(rng: random.Random, cfg: GeneratorConfig) -> str:
    """2-D sections with per-axis shifts; optional transpose statement."""
    n = max(6, cfg.pick_extent(rng) // 2)
    names = ["A", "B", "C"]
    lines = ["real " + ", ".join(f"{x}({n},{n})" for x in names)]
    w = rng.randint(3, n - 2)

    def section(name: str) -> str:
        lo1 = rng.randint(1, n - w)
        lo2 = rng.randint(1, n - w)
        return f"{name}({lo1}:{lo1 + w - 1},{lo2}:{lo2 + w - 1})"

    for _ in range(rng.randint(1, cfg.max_stmts)):
        dst, a, b = rng.choice(names), rng.choice(names), rng.choice(names)
        lines.append(f"{section(dst)} = {section(a)} + {section(b)}")
    if rng.random() < 0.5:
        dst, src = rng.sample(names, 2)
        lines.append(f"{dst} = {dst} + transpose({src})")
    return "\n".join(lines)


def _wavefront(rng: random.Random, cfg: GeneratorConfig) -> str:
    """Figure-1-style mobile-offset workload: diagonal bands of V."""
    n = max(6, cfg.pick_extent(rng) // 2)
    shift = rng.randint(0, 1)
    op = rng.choice(["+", "*"])
    extra = (
        f" + V(k+{shift + 1}:k+{shift + n})" if rng.random() < 0.5 else ""
    )
    return (
        f"real A({n},{n}), V({2 * n + shift + 1})\n"
        f"do k = 1, {n}\n"
        f"  A(k,1:{n}) = A(k,1:{n}) {op} V(k+{shift}:k+{shift + n - 1}){extra}\n"
        "enddo"
    )


def _strided(rng: random.Random, cfg: GeneratorConfig) -> str:
    """Constant-stride sections (Example 2) or mobile stride (Example 5)."""
    if rng.random() < 0.5:
        n = cfg.pick_extent(rng)
        s = rng.choice([2, 3])
        return (
            f"real A({s * n}), B({n})\n"
            f"B(1:{n}) = B(1:{n}) + A({s}:{s * n}:{s})"
        )
    iters = cfg.pick_iters(rng)
    m = rng.randint(4, 8)
    n = iters * m
    return (
        f"real A({n}), B({n}), V({m})\n"
        f"do k = 1, {iters}\n"
        f"  V = V + A(1:{m}*k:k)\n"
        f"  B(1:{m}*k:k) = V\n"
        "enddo"
    )


def _reduction(rng: random.Random, cfg: GeneratorConfig) -> str:
    """Axis reductions of a 2-D array into 1-D accumulators."""
    n = max(6, cfg.pick_extent(rng) // 2)
    m = max(6, cfg.pick_extent(rng) // 2)
    op = rng.choice(["sum", "maxval", "minval"])
    lines = [f"real M({n},{m}), s({n}), t({m})"]
    lines.append(f"s(1:{n}) = s(1:{n}) + {op}(M, dim=2)")
    if rng.random() < 0.5:
        lines.append(f"t(1:{m}) = {op}(M, dim=1)")
    return "\n".join(lines)


def _spread_rep(rng: random.Random, cfg: GeneratorConfig) -> str:
    """Figure-4-style replication source: spread of a vector in a loop."""
    n = max(6, cfg.pick_extent(rng) // 2)
    m = max(6, cfg.pick_extent(rng) // 2)
    iters = cfg.pick_iters(rng)
    fn = rng.choice(["cos", "sin", "sqrt"])
    return (
        f"real t({n}), B({n},{m})\n"
        f"do K = 1, {iters}\n"
        f"  t = {fn}(t)\n"
        f"  B = B + spread(t, dim=2, ncopies={m})\n"
        "enddo"
    )


def _multiphase(rng: random.Random, cfg: GeneratorConfig) -> str:
    """Two sequential loop phases with different access patterns."""
    n = cfg.pick_extent(rng) + 4
    iters = cfg.pick_iters(rng)
    w = rng.randint(3, n // 2)
    lines = [f"real U({n + iters}), W({n + iters}), Z({n + iters})"]
    # Phase 1: static three-point stencil.
    lines.append(f"do t = 1, {iters}")
    lines.append(f"  W(2:{n - 1}) = U(1:{n - 2}) + U(2:{n - 1}) + U(3:{n})")
    lines.append(f"  U(2:{n - 1}) = W(2:{n - 1})")
    lines.append("enddo")
    # Phase 2: LIV-shifted copies with a different loop variable.
    lines.append(f"do k = 1, {iters}")
    lines.append(f"  Z(k:k+{w - 1}) = U(k+1:k+{w}) + W(k:k+{w - 1})")
    lines.append("enddo")
    return "\n".join(lines)


FAMILIES: dict[str, Callable[[random.Random, GeneratorConfig], str]] = {
    "shift1d": _shift1d,
    "twod": _twod,
    "wavefront": _wavefront,
    "strided": _strided,
    "reduction": _reduction,
    "spread": _spread_rep,
    "multiphase": _multiphase,
}


def generate_scenario(
    seed: int,
    family: str | None = None,
    config: GeneratorConfig | None = None,
) -> Scenario:
    """One deterministic scenario.  ``family=None`` picks by seed."""
    cfg = config or GeneratorConfig()
    names = list(cfg.families) if cfg.families else sorted(FAMILIES)
    rng = random.Random(seed)
    fam = family or names[seed % len(names)]
    if fam not in FAMILIES:
        raise KeyError(f"unknown scenario family {fam!r}")
    source = FAMILIES[fam](rng, cfg)
    return Scenario(f"{fam}_{seed}", fam, seed, source)


def generate_corpus(
    count: int,
    seed: int = 0,
    config: GeneratorConfig | None = None,
) -> list[Scenario]:
    """``count`` scenarios cycling round-robin over the families.

    The i-th scenario of a corpus depends only on ``(seed, i)`` and the
    config, never on ``count``, so growing a corpus keeps its prefix.
    """
    cfg = config or GeneratorConfig()
    names = list(cfg.families) if cfg.families else sorted(FAMILIES)
    out = []
    for i in range(count):
        fam = names[i % len(names)]
        out.append(generate_scenario(seed * 100_003 + i, family=fam, config=cfg))
    return out


def random_program(seed: int, config: GeneratorConfig | None = None) -> str:
    """Source text of one scenario — drop-in for the old fuzzer hook."""
    return generate_scenario(seed, config=config).source


# ---------------------------------------------------------------------------
# Topology sampling.  The differential harness and the batch engine pair
# generated programs with generated machines, so the analytic-vs-simulator
# cross-check sweeps the cost landscape, not just the L1 grid.  Samples
# are spec strings (repro.topology.parse_topology), the same form the
# batch engine ships across its process pool.
# ---------------------------------------------------------------------------

TOPOLOGY_KINDS = ("grid", "torus", "ring", "hypercube", "hier")


def _factor_pairs(n: int) -> list[tuple[int, int]]:
    return [(p, n // p) for p in range(1, n + 1) if n % p == 0]


def sample_topology(
    seed: int, nprocs: int = 4, kind: str | None = None
) -> str:
    """One deterministic machine spec with ``nprocs`` processors.

    ``kind=None`` cycles over :data:`TOPOLOGY_KINDS` by seed.  The
    hypercube kind rounds ``nprocs`` down to a power of two (its only
    legal sizes); every other kind honors ``nprocs`` exactly.
    """
    if nprocs < 1:
        raise ValueError("sample_topology needs nprocs >= 1")
    rng = random.Random(seed * 99_991 + nprocs)
    k = kind or TOPOLOGY_KINDS[seed % len(TOPOLOGY_KINDS)]
    if k not in TOPOLOGY_KINDS:
        raise KeyError(f"unknown topology kind {k!r}")
    if k == "ring":
        return f"ring:{nprocs}"
    if k == "hypercube":
        pow2 = 1
        while pow2 * 2 <= nprocs:
            pow2 *= 2
        return f"hypercube:{pow2}"
    if k in ("grid", "torus"):
        a, b = rng.choice(_factor_pairs(nprocs))
        shape = str(nprocs) if 1 in (a, b) else f"{a}x{b}"
        return f"{k}:{shape}"
    # hier: nodes x cores per axis, a sampled inter-node cost
    a, b = rng.choice(_factor_pairs(nprocs))
    cost = rng.choice((2, 4, 8, 16))
    return f"hier:(grid:{a})/(grid:{b})@{cost}"


def topology_corpus(count: int, seed: int = 0, nprocs: int = 4) -> list[str]:
    """``count`` machine specs cycling round-robin over the kinds.

    Mirrors :func:`generate_corpus`: the i-th spec depends only on
    ``(seed, i, nprocs)``, so growing a corpus keeps its prefix.
    """
    return [
        sample_topology(
            seed * 100_003 + i,
            nprocs,
            kind=TOPOLOGY_KINDS[i % len(TOPOLOGY_KINDS)],
        )
        for i in range(count)
    ]
