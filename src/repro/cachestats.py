"""Process-wide cache instrumentation for the memoized hot kernels.

The batched planning engine (:mod:`repro.batch`) hammers a handful of
kernels — affine evaluation, edge-cost moment sums, move-record
compilation, per-axis hop costs — hard enough that memoization pays.
Every cache in the package registers here under a dotted name so the
batch report can surface hit rates, and so tests can assert the caches
stay bounded.

The registry is per-process: worker processes of a
:class:`~concurrent.futures.ProcessPoolExecutor` each accumulate their
own counters, which the batch engine snapshots around each planning
task and merges back into the aggregate report.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

# name -> [hits, misses]; the lists are shared with the caches so the
# hot path is a bare integer increment, not a registry lookup.
_STATS: dict[str, list[int]] = {}
_CACHES: list["BoundedCache"] = []

_MISS = object()


def _cell(name: str) -> list[int]:
    return _STATS.setdefault(name, [0, 0])


def record_hit(name: str, n: int = 1) -> None:
    _cell(name)[0] += n


def record_miss(name: str, n: int = 1) -> None:
    _cell(name)[1] += n


def snapshot() -> dict[str, tuple[int, int]]:
    """Current ``{name: (hits, misses)}`` for every registered counter."""
    return {name: (c[0], c[1]) for name, c in _STATS.items()}


def delta(
    before: Mapping[str, tuple[int, int]],
    after: Mapping[str, tuple[int, int]] | None = None,
    resets: set[str] | None = None,
    lost: dict[str, tuple[int, int]] | None = None,
) -> dict[str, tuple[int, int]]:
    """Counter increments between two snapshots (``after`` defaults to now).

    Iterates the *union* of the two snapshots' names, so a counter that
    was alive in ``before`` but absent from ``after`` (a registry wiped
    by :func:`reset` in another thread, or a stale snapshot from a
    worker process) still shows up rather than vanishing silently.

    A counter that went *backwards* — ``after`` below ``before`` on
    either field — means :func:`reset` fired between the snapshots.  The
    honest increment is unknowable, so the contribution is clamped to
    the counts accumulated *since* the reset (the raw ``after`` values,
    never negative), and the name is added to ``resets`` when the caller
    passes a set to collect them.  ``lost`` (when passed) additionally
    records the reset's *magnitude*: the ``before`` counts are a floor
    on what the reset wiped (the counter held at least that much when it
    was zeroed), so ``lost[name] = (hits, misses)`` from ``before``.
    """
    after = snapshot() if after is None else after
    out: dict[str, tuple[int, int]] = {}
    for name in before.keys() | after.keys():
        h, m = after.get(name, (0, 0))
        h0, m0 = before.get(name, (0, 0))
        if h < h0 or m < m0:
            # Counter went backwards: a reset happened in between.
            if resets is not None:
                resets.add(name)
            if lost is not None:
                lost[name] = (h0, m0)
            if h or m:
                out[name] = (h, m)
        elif h != h0 or m != m0:
            out[name] = (h - h0, m - m0)
    return out


def merge(
    into: dict[str, tuple[int, int]], other: Mapping[str, tuple[int, int]]
) -> dict[str, tuple[int, int]]:
    for name, (h, m) in other.items():
        h0, m0 = into.get(name, (0, 0))
        into[name] = (h0 + h, m0 + m)
    return into


def reset() -> None:
    """Zero every counter (cache contents are left alone)."""
    for c in _STATS.values():
        c[0] = c[1] = 0


def clear_caches() -> None:
    """Empty every registered :class:`BoundedCache` (counters kept)."""
    for cache in _CACHES:
        cache.clear()


def cache_sizes() -> dict[str, int]:
    return {c.name: len(c) for c in _CACHES}


class BoundedCache:
    """A small memo table with shared hit/miss counters and a size bound.

    Eviction is oldest-first (dict insertion order), which is enough to
    keep the working set of a batch run resident while guaranteeing the
    cache cannot grow without bound across runs — the leak-audit test
    checks exactly that.
    """

    __slots__ = ("name", "maxsize", "_data", "_stats")

    def __init__(self, name: str, maxsize: int = 4096) -> None:
        self.name = name
        self.maxsize = maxsize
        self._data: dict[Hashable, object] = {}
        self._stats = _cell(name)
        _CACHES.append(self)

    def lookup(self, key: Hashable) -> object:
        """Return the cached value or the module :data:`_MISS` sentinel."""
        val = self._data.get(key, _MISS)
        if val is _MISS:
            self._stats[1] += 1
        else:
            self._stats[0] += 1
        return val

    def store(self, key: Hashable, value: object) -> object:
        data = self._data
        if len(data) >= self.maxsize:
            # Drop the oldest ~25% in one pass; cheaper than per-insert
            # LRU bookkeeping and the kernels re-memoize quickly.
            for old in list(data.keys())[: max(1, self.maxsize // 4)]:
                del data[old]
        data[key] = value
        return value

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


MISS = _MISS


def hit_rate(counters: Mapping[str, tuple[int, int]]) -> dict[str, float]:
    """Hit fraction per counter name (0.0 when a counter never fired)."""
    out = {}
    for name, (h, m) in counters.items():
        total = h + m
        out[name] = h / total if total else 0.0
    return out
