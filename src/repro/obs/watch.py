"""``python -m repro.obs.watch HOST:PORT`` — live serve-daemon dashboard.

Polls a running :mod:`repro.serve` daemon over its JSON-lines protocol
(the ``stats`` and ``metrics`` ops) and renders a refreshing ASCII
table: lifetime vs rolling-window request counts and hit ratios, the
windowed p50/p99 of the warm/cold latency histograms, the in-flight
gauge, cache occupancy, and per-SLO burn rates.

No curses, no third-party TUI — plain ANSI clear-and-redraw, so it
works in any terminal and degrades to sequential snapshots when piped.

::

    python -m repro.obs.watch 127.0.0.1:8723              # refresh loop
    python -m repro.obs.watch 127.0.0.1:8723 --interval 5
    python -m repro.obs.watch 127.0.0.1:8723 --once       # one snapshot (CI)
"""

from __future__ import annotations

import json
import socket
import sys
import time
from typing import Optional


def fetch(host: str, port: int, ops: list[str], timeout: float = 5.0) -> dict:
    """One connection, one line per op; returns ``{op: response}``."""
    out: dict[str, dict] = {}
    with socket.create_connection((host, port), timeout=timeout) as sock:
        f = sock.makefile("rwb")
        for op in ops:
            f.write(json.dumps({"op": op}).encode() + b"\n")
            f.flush()
            line = f.readline()
            if not line:
                raise ConnectionError(f"daemon closed mid-{op}")
            out[op] = json.loads(line)
    return out


def _ratio(part: float, whole: float) -> str:
    return f"{100.0 * part / whole:5.1f}%" if whole else "    --"


def _ms(summary: dict) -> str:
    if not summary or not summary.get("count"):
        return "--/--"
    return f"{summary['p50']:.2f}/{summary['p99']:.2f}ms"


def render_dashboard(stats: dict, metrics: dict, address: str) -> str:
    """The one-screen ASCII dashboard for one stats/metrics poll."""
    counters = stats.get("counters", {})
    windows = metrics.get("windows", {})
    hists = metrics.get("histograms", {})
    label = next(
        (w["label"] for w in windows.values() if "label" in w), "window"
    )

    def wval(name: str) -> float:
        return windows.get(name, {}).get("value", 0)

    def wsum(name: str) -> dict:
        return windows.get(name, {}).get("summary", {})

    requests = counters.get("serve.requests", 0)
    hits = counters.get("serve.hits.plan", 0) + counters.get(
        "serve.hits.prefix", 0
    )
    w_requests = wval("serve.requests")
    w_hits = wval("serve.hits.plan") + wval("serve.hits.prefix")

    width = 64
    lines = [
        f"repro.serve {address} — {time.strftime('%H:%M:%S')}",
        "=" * width,
        f"{'':<18s} {'lifetime':>14s} {label:>14s}",
        "-" * width,
    ]
    rows = [
        ("requests", f"{requests}", f"{w_requests:g}"),
        ("hit ratio", _ratio(hits, requests), _ratio(w_hits, w_requests)),
        (
            "plan hits",
            f"{counters.get('serve.hits.plan', 0)}",
            f"{wval('serve.hits.plan'):g}",
        ),
        (
            "prefix hits",
            f"{counters.get('serve.hits.prefix', 0)}",
            f"{wval('serve.hits.prefix'):g}",
        ),
        (
            "misses",
            f"{counters.get('serve.misses', 0)}",
            f"{wval('serve.misses'):g}",
        ),
        (
            "errors",
            f"{counters.get('serve.errors', 0)}",
            f"{wval('serve.errors'):g}",
        ),
        (
            "rejected",
            f"{counters.get('serve.rejected', 0)}",
            f"{wval('serve.rejected'):g}",
        ),
        (
            "latency p50/p99",
            _ms(hists.get("serve.ms", {})),
            _ms(wsum("serve.ms")),
        ),
        (
            "warm p50/p99",
            _ms(hists.get("serve.warm_ms", {})),
            _ms(wsum("serve.warm_ms")),
        ),
        (
            "cold p50/p99",
            _ms(hists.get("serve.cold_ms", {})),
            _ms(wsum("serve.cold_ms")),
        ),
    ]
    for name, life, win in rows:
        lines.append(f"{name:<18s} {life:>14s} {win:>14s}")
    lines.append("-" * width)
    lines.append(
        f"{'in-flight':<18s} {stats.get('inflight', 0):>14} "
        f"{'pending ' + str(stats.get('pending', 0)):>14s}"
    )
    lines.append(
        f"{'cache entries':<18s} {stats.get('cache_entries', 0):>14}"
    )
    slo = stats.get("slo", {})
    if slo:
        lines.append("-" * width)
        lines.append(
            f"{'SLO':<18s} {'target':>8s} {'compliance':>11s} "
            f"{'burn':>7s}  status"
        )
        for name in sorted(slo):
            entry = slo[name]
            w = entry["window"]
            status = "OK" if entry.get("healthy", True) else "BURNING"
            lines.append(
                f"{name:<18s} {entry['target'] * 100:>7.1f}% "
                f"{w['compliance'] * 100:>10.2f}% "
                f"{w['burn_rate']:>7.2f}  {status}"
            )
    lines.append("=" * width)
    return "\n".join(lines)


def snapshot(host: str, port: int, timeout: float = 5.0) -> str:
    """One rendered dashboard frame for a running daemon."""
    replies = fetch(host, port, ["stats", "metrics"], timeout=timeout)
    for op, reply in replies.items():
        if reply.get("status") != "ok":
            raise ConnectionError(f"{op} op failed: {reply}")
    return render_dashboard(
        replies["stats"]["stats"],
        replies["metrics"]["metrics"],
        f"{host}:{port}",
    )


def main(argv: Optional[list[str]] = None) -> int:
    import argparse

    ap = argparse.ArgumentParser(
        prog="python -m repro.obs.watch",
        description="Live ASCII dashboard for a repro.serve daemon",
    )
    ap.add_argument("address", metavar="HOST:PORT")
    ap.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="refresh period in seconds (default 2)",
    )
    ap.add_argument(
        "--once",
        action="store_true",
        help="print a single snapshot and exit (for scripts/CI)",
    )
    ap.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        help="per-poll connection timeout (default 5s)",
    )
    args = ap.parse_args(argv)
    host, _, port_text = args.address.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        ap.error(f"bad address {args.address!r}: expected HOST:PORT")
    host = host or "127.0.0.1"

    if args.once:
        try:
            print(snapshot(host, port, timeout=args.timeout))
        except (OSError, ValueError, ConnectionError) as exc:
            print(f"watch: {exc}", file=sys.stderr)
            return 1
        return 0

    clear = "\x1b[2J\x1b[H" if sys.stdout.isatty() else ""
    try:
        while True:
            try:
                frame = snapshot(host, port, timeout=args.timeout)
            except (OSError, ValueError, ConnectionError) as exc:
                frame = f"watch: {exc} (retrying in {args.interval:g}s)"
            print(f"{clear}{frame}", flush=True)
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
