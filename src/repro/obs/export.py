"""Trace serialization: structured JSON, Chrome trace-event, ASCII flame.

Chrome trace-event output follows the documented JSON object format —
``{"traceEvents": [...], "displayTimeUnit": "ms"}`` with complete
(``"ph": "X"``) duration events plus ``"M"`` metadata naming each
process lane — and loads directly into Perfetto / ``chrome://tracing``.
Timestamps are microseconds, rebased per pid to that process's earliest
span (perf_counter epochs are not comparable across processes).

``python -m repro.obs.check trace.json`` validates an emitted file
against this schema; CI runs it on the benchmark job's artifact.
"""

from __future__ import annotations

import json
from typing import Optional

from .recorder import SpanRecord, TraceRecorder

_JSON_SAFE = (str, int, float, bool, type(None))


def _safe_args(rec: SpanRecord) -> dict:
    args = {
        k: (v if isinstance(v, _JSON_SAFE) else repr(v))
        for k, v in rec.tags.items()
    }
    if rec.cache:
        args["cache"] = {
            name: {"hits": h, "misses": m}
            for name, (h, m) in sorted(rec.cache.items())
        }
    if rec.cpu_seconds:
        args["cpu_seconds"] = rec.cpu_seconds
    return args


def to_chrome(recorder: TraceRecorder) -> dict:
    """The recorder as a Chrome trace-event JSON object."""
    events: list[dict] = []
    bases: dict[int, float] = {}
    for root in recorder.roots:
        base = bases.get(root.pid)
        if base is None or root.start < base:
            bases[root.pid] = root.start
    for pid in sorted(bases):
        label = recorder.process_labels.get(pid) or (
            recorder.label if pid == recorder.pid and recorder.label else None
        )
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": label or f"repro worker {pid}"},
            }
        )
    for root in recorder.roots:
        base = bases[root.pid]
        for rec in root.walk():
            events.append(
                {
                    "ph": "X",
                    "name": rec.name,
                    "cat": "repro",
                    "ts": (rec.start - base) * 1e6,
                    "dur": rec.seconds * 1e6,
                    "pid": rec.pid,
                    "tid": rec.tid,
                    "args": _safe_args(rec),
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, recorder: TraceRecorder) -> None:
    # Atomic: a run killed mid-export must not leave a truncated trace
    # where Perfetto (or repro.obs.check in CI) expects valid JSON.
    from .._io import atomic_write_json

    atomic_write_json(path, to_chrome(recorder), indent=1)


def to_json(recorder: TraceRecorder) -> dict:
    """Structured (non-Chrome) trace JSON: the full span tree plus
    per-name aggregates — the machine-readable companion report."""
    return {
        "label": recorder.label,
        "total_seconds": recorder.total_seconds(),
        "totals": {
            name: {"count": n, "seconds": s}
            for name, (n, s) in sorted(recorder.totals().items())
        },
        "roots": [r.to_dict() for r in recorder.roots],
    }


def flame(recorder: TraceRecorder, width: int = 34) -> str:
    """ASCII flame summary: the span tree with times, shares, and bars."""
    lines = [
        f"{'span':<{width}s} {'wall':>9s} {'%root':>6s}  profile"
    ]
    for root in recorder.roots:
        total = root.seconds or 1e-12
        for rec, depth in _walk_depth(root):
            share = rec.seconds / total
            bar = "#" * max(1, round(share * 24)) if rec.seconds else ""
            label = ("  " * depth + rec.name)[:width]
            lines.append(
                f"{label:<{width}s} {rec.seconds * 1e3:8.2f}ms "
                f"{share:6.1%}  {bar}"
            )
    return "\n".join(lines)


def _walk_depth(rec: SpanRecord, depth: int = 0):
    yield rec, depth
    for child in rec.children:
        yield from _walk_depth(child, depth + 1)


def root_coverage(recorder: TraceRecorder, name: Optional[str] = None) -> float:
    """Fraction of the named root span's wall time covered by its
    children (the acceptance gate asks >= 0.9 for the CLI root)."""
    roots = [
        r for r in recorder.roots if name is None or r.name == name
    ]
    if not roots:
        return 0.0
    covered = sum(r.seconds * r.child_coverage() for r in roots)
    total = sum(r.seconds for r in roots)
    return covered / total if total else 1.0
