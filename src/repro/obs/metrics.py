"""Typed metric registry: counters, gauges, log-scaled histograms.

Three metric kinds, all cheap enough for hot paths:

* :class:`Counter` — a monotonically increasing integer.
* :class:`Gauge` — a last-write-wins float.
* :class:`Histogram` — log-scaled buckets (base ``2**0.25``, ~19%
  resolution) with exact count/sum/min/max; percentiles are read off
  the bucket boundaries by geometric interpolation, so p50/p90/p99 are
  within one bucket width of exact at constant memory.

The process-global :func:`registry` is the front door.  It *absorbs*
:mod:`repro.cachestats` as a compatibility facade: cache hit/miss
counters registered there surface through :meth:`Registry.snapshot`
under ``cache.<name>.hits`` / ``cache.<name>.misses`` without touching
any cachestats call site — the batch engine, the memo kernels, and
their tests keep the API they always had.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Union

from .. import cachestats

_LOG_BASE = 2.0 ** 0.25
_LN_BASE = math.log(_LOG_BASE)


class Counter:
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Log-scaled histogram over non-negative observations.

    Bucket ``i`` covers ``(base**(i-1), base**i]``; zero lands in a
    dedicated bucket.  Memory is one dict entry per occupied bucket.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets", "zeros")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: dict[int, int] = {}
        self.zeros = 0

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram {self.name}: negative value {value}")
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value == 0:
            self.zeros += 1
            return
        i = math.ceil(math.log(value) / _LN_BASE - 1e-12)
        self.buckets[i] = self.buckets.get(i, 0) + 1

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self.zeros += other.zeros
        for i, n in other.buckets.items():
            self.buckets[i] = self.buckets.get(i, 0) + n

    def percentile(self, q: float) -> float:
        """The value at quantile ``q`` in [0, 1], bucket-resolution.

        Edge cases are defined, not accidental — serve-side p50/p99
        reporting reads these without guards:

        * an **empty** histogram returns ``0.0`` for every ``q``;
        * an **all-zeros** histogram (zeros live outside ``buckets``)
          returns ``0.0`` for every ``q`` — the zeros mass is counted,
          never skipped;
        * ``q == 0`` returns the observed minimum (``0.0`` only when a
          zero was actually observed), instead of inventing a zero.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return 0.0 if self.zeros else self.min
        target = q * self.count
        seen = self.zeros
        if seen >= target:
            return 0.0
        for i in sorted(self.buckets):
            seen += self.buckets[i]
            if seen >= target:
                lo = _LOG_BASE ** (i - 1)
                hi = _LOG_BASE ** i
                # Geometric bucket midpoint, clamped to observed range.
                mid = math.sqrt(lo * hi)
                return min(max(mid, self.min), self.max)
        return self.max

    def summary(self) -> dict:
        """JSON-ready summary; always the full schema, so consumers can
        read ``p50``/``p99`` off an empty histogram without KeyErrors
        (all-zero values, ``count`` 0 — still falsy for render guards)."""
        if self.count == 0:
            return {
                "count": 0,
                "sum": 0.0,
                "mean": 0.0,
                "min": 0.0,
                "max": 0.0,
                "p50": 0.0,
                "p90": 0.0,
                "p99": 0.0,
            }
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.total / self.count,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
        }


Metric = Union[Counter, Gauge, Histogram]


class Registry:
    """Name-keyed store of typed metrics; accessors create on first use."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _get(self, name: str, kind: type) -> Metric:
        m = self._metrics.get(name)
        if m is None:
            m = kind(name)
            self._metrics[name] = m
        elif not isinstance(m, kind):
            raise TypeError(
                f"metric {name!r} is a {type(m).__name__}, "
                f"not a {kind.__name__}"
            )
        return m

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)  # type: ignore[return-value]

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def clear(self) -> None:
        self._metrics.clear()

    def snapshot(self, include_cachestats: bool = True) -> dict:
        """Everything, JSON-ready — cachestats counters included via the
        compatibility facade (``cache.<name>.hits`` / ``.misses``)."""
        counters: dict[str, int] = {}
        gauges: dict[str, Optional[float]] = {}
        histograms: dict[str, dict] = {}
        for name in sorted(self._metrics):
            m = self._metrics[name]
            if isinstance(m, Counter):
                counters[name] = m.value
            elif isinstance(m, Gauge):
                gauges[name] = m.value
            else:
                histograms[name] = m.summary()
        if include_cachestats:
            for name, (hits, misses) in sorted(cachestats.snapshot().items()):
                counters[f"cache.{name}.hits"] = hits
                counters[f"cache.{name}.misses"] = misses
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def render(self, include_cachestats: bool = True) -> str:
        snap = self.snapshot(include_cachestats)
        lines = ["metrics:"]
        for name, v in snap["counters"].items():
            lines.append(f"  counter   {name:<36s} {v}")
        for name, v in snap["gauges"].items():
            lines.append(f"  gauge     {name:<36s} {v}")
        for name, s in snap["histograms"].items():
            if s.get("count"):
                lines.append(
                    f"  histogram {name:<36s} n={s['count']} "
                    f"p50={s['p50']:.4g} p90={s['p90']:.4g} "
                    f"p99={s['p99']:.4g} max={s['max']:.4g}"
                )
            else:
                lines.append(f"  histogram {name:<36s} n=0")
        return "\n".join(lines)


_REGISTRY = Registry()


def registry() -> Registry:
    """The process-global default registry."""
    return _REGISTRY


def latency_summary(
    seconds_by_key: Mapping[str, list], unit: float = 1.0
) -> dict[str, dict]:
    """Histogram-backed p50/p90/p99 summaries for grouped samples.

    The batch engine feeds this per program family; ``unit`` rescales
    (e.g. ``1e3`` for milliseconds in reports).
    """
    out: dict[str, dict] = {}
    for key in sorted(seconds_by_key):
        h = Histogram(key)
        for s in seconds_by_key[key]:
            h.observe(s * unit)
        out[key] = h.summary()
    return out
