"""Typed metric registry: counters, gauges, log-scaled histograms.

Three metric kinds, all cheap enough for hot paths:

* :class:`Counter` — a monotonically increasing integer.
* :class:`Gauge` — a last-write-wins float with ``inc``/``dec`` for
  level tracking (in-flight requests, queue depths).
* :class:`Histogram` — log-scaled buckets (base ``2**0.25``, ~19%
  resolution) with exact count/sum/min/max; percentiles are read off
  the bucket boundaries by geometric interpolation, so p50/p90/p99 are
  within one bucket width of exact at constant memory.

All three are **thread-safe**: the serve daemon plans in a thread pool,
so ``inc``/``set``/``observe`` take a per-metric lock (an uncontended
``threading.Lock`` costs well under a microsecond — the overhead-guard
test in ``tests/test_obs_live.py`` holds that line, and the hammer test
there asserts exact counts under concurrent increments).

:mod:`repro.obs.live` adds windowed variants (:class:`WindowedCounter`,
:class:`WindowedHistogram`) that subclass these, so they register and
snapshot through the same :class:`Registry` — the lifetime view stays
where it always was and a rolling ``last_<W>s`` view appears alongside
under ``snapshot()["windows"]``.

The process-global :func:`registry` is the front door.  It *absorbs*
:mod:`repro.cachestats` as a compatibility facade: cache hit/miss
counters registered there surface through :meth:`Registry.snapshot`
under ``cache.<name>.hits`` / ``cache.<name>.misses`` without touching
any cachestats call site — the batch engine, the memo kernels, and
their tests keep the API they always had.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Mapping, Optional, Union

from .. import cachestats

_LOG_BASE = 2.0 ** 0.25
_LN_BASE = math.log(_LOG_BASE)


class Counter:
    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n


class Gauge:
    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, n: float = 1) -> None:
        """Add ``n`` to the level; an unset gauge counts as 0."""
        with self._lock:
            self.value = (self.value or 0) + n

    def dec(self, n: float = 1) -> None:
        self.inc(-n)


class Histogram:
    """Log-scaled histogram over non-negative observations.

    Bucket ``i`` covers ``(base**(i-1), base**i]``; zero lands in a
    dedicated bucket.  Memory is one dict entry per occupied bucket.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets",
                 "zeros", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: dict[int, int] = {}
        self.zeros = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram {self.name}: negative value {value}")
        with self._lock:
            self._observe(value)

    def _observe(self, value: float) -> None:
        """The unlocked update body (callers hold ``self._lock``)."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value == 0:
            self.zeros += 1
            return
        i = math.ceil(math.log(value) / _LN_BASE - 1e-12)
        self.buckets[i] = self.buckets.get(i, 0) + 1

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram — an *exact* merge: the
        merged counts, sum, extrema, and per-bucket tallies equal what
        one histogram observing both streams would hold.

        ``other`` is read without taking its lock; callers merge either
        quiescent histograms (window shards guarded by their parent's
        lock, :func:`latency_summary` locals) or accept the race.
        """
        with self._lock:
            self.count += other.count
            self.total += other.total
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
            self.zeros += other.zeros
            for i, n in other.buckets.items():
                self.buckets[i] = self.buckets.get(i, 0) + n

    def to_dict(self) -> dict:
        """A JSON-ready exact encoding; :meth:`from_dict` round-trips it.

        Bucket keys are stringified indices (JSON objects cannot key on
        ints); ``min``/``max`` of an empty histogram encode as ``None``
        so the infinities never leak into a JSON document.
        """
        with self._lock:
            return {
                "count": self.count,
                "sum": self.total,
                "min": None if self.count == 0 else self.min,
                "max": None if self.count == 0 else self.max,
                "zeros": self.zeros,
                "buckets": {str(i): n for i, n in sorted(self.buckets.items())},
            }

    @classmethod
    def from_dict(cls, name: str, data: Mapping) -> "Histogram":
        h = cls(name)
        h.count = int(data["count"])
        h.total = float(data["sum"])
        h.min = math.inf if data["min"] is None else float(data["min"])
        h.max = -math.inf if data["max"] is None else float(data["max"])
        h.zeros = int(data["zeros"])
        h.buckets = {int(i): int(n) for i, n in data["buckets"].items()}
        return h

    def count_le(self, value: float) -> int:
        """Observations known to be ``<= value``, at bucket resolution.

        Counts the zeros bucket plus every bucket whose *upper* edge is
        at or below ``value`` — conservative for a threshold inside a
        bucket (the partial bucket is excluded), which is the right
        direction for SLO compliance: never over-credit.
        """
        if value < 0:
            return 0
        with self._lock:
            n = self.zeros
            if value > 0:
                edge = math.floor(math.log(value) / _LN_BASE + 1e-12)
                for i, c in self.buckets.items():
                    if i <= edge:
                        n += c
            return n

    def percentile(self, q: float) -> float:
        """The value at quantile ``q`` in [0, 1], bucket-resolution.

        Edge cases are defined, not accidental — serve-side p50/p99
        reporting reads these without guards:

        * an **empty** histogram returns ``0.0`` for every ``q``;
        * an **all-zeros** histogram (zeros live outside ``buckets``)
          returns ``0.0`` for every ``q`` — the zeros mass is counted,
          never skipped;
        * ``q == 0`` returns the observed minimum (``0.0`` only when a
          zero was actually observed), instead of inventing a zero.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return 0.0 if self.zeros else self.min
        target = q * self.count
        seen = self.zeros
        if seen >= target:
            return 0.0
        for i in sorted(self.buckets):
            seen += self.buckets[i]
            if seen >= target:
                lo = _LOG_BASE ** (i - 1)
                hi = _LOG_BASE ** i
                # Geometric bucket midpoint, clamped to observed range.
                mid = math.sqrt(lo * hi)
                return min(max(mid, self.min), self.max)
        return self.max

    def summary(self) -> dict:
        """JSON-ready summary; always the full schema, so consumers can
        read ``p50``/``p99`` off an empty histogram without KeyErrors
        (all-zero values, ``count`` 0 — still falsy for render guards)."""
        if self.count == 0:
            return {
                "count": 0,
                "sum": 0.0,
                "mean": 0.0,
                "min": 0.0,
                "max": 0.0,
                "p50": 0.0,
                "p90": 0.0,
                "p99": 0.0,
            }
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.total / self.count,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
        }


Metric = Union[Counter, Gauge, Histogram]


def _window_label(seconds: float) -> str:
    n = int(seconds)
    return f"last_{n}s" if n == seconds else f"last_{seconds:g}s"


class Registry:
    """Name-keyed store of typed metrics; accessors create on first use.

    Thread-safe: creation and snapshots lock the name table (individual
    metric updates lock per metric, so hot paths never contend here).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind: type) -> Metric:
        with self._lock:
            m = self._metrics.get(name)
            if m is None:
                m = kind(name)
                self._metrics[name] = m
            elif not isinstance(m, kind):
                raise TypeError(
                    f"metric {name!r} is a {type(m).__name__}, "
                    f"not a {kind.__name__}"
                )
            return m

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)  # type: ignore[return-value]

    # -- windowed variants (repro.obs.live) --------------------------------

    def _get_windowed(
        self,
        name: str,
        kind: type,
        base_kind: type,
        window: float,
        slices: int,
        clock: Optional[Callable[[], float]],
    ):
        """Fetch-or-create a windowed metric, *upgrading* an existing
        cumulative metric of the base kind in place (its lifetime state
        carries over) — so a service can widen ``serve.requests`` to a
        windowed counter without breaking earlier ``counter()`` users.

        An existing windowed metric is reconfigured (window state reset,
        lifetime kept) only when the requested window or clock actually
        differs; repeat registrations are idempotent.
        """
        with self._lock:
            m = self._metrics.get(name)
            if isinstance(m, kind):
                if m.window_seconds == window and (
                    clock is None or clock is m.clock
                ):
                    return m
            elif m is not None and not isinstance(m, base_kind):
                raise TypeError(
                    f"metric {name!r} is a {type(m).__name__}, "
                    f"not a {base_kind.__name__}"
                )
            fresh = kind(name, window=window, slices=slices, clock=clock)
            if m is not None:
                fresh.absorb_lifetime(m)
            self._metrics[name] = fresh
            return fresh

    def windowed_counter(
        self,
        name: str,
        window: float = 60.0,
        slices: int = 12,
        clock: Optional[Callable[[], float]] = None,
    ):
        from .live import WindowedCounter

        return self._get_windowed(
            name, WindowedCounter, Counter, window, slices, clock
        )

    def windowed_histogram(
        self,
        name: str,
        window: float = 60.0,
        slices: int = 12,
        clock: Optional[Callable[[], float]] = None,
    ):
        from .live import WindowedHistogram

        return self._get_windowed(
            name, WindowedHistogram, Histogram, window, slices, clock
        )

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()

    def collect(self, include_cachestats: bool = True) -> list[dict]:
        """Every metric as a typed record — the exporter feed.

        Unlike :meth:`snapshot` (summaries for humans and JSON stats),
        ``collect`` carries *raw* histogram buckets, which the
        Prometheus renderer needs to derive cumulative ``le`` bounds.
        Windowed metrics attach their rolling view under ``window``.
        """
        from .live import WindowedCounter, WindowedHistogram

        with self._lock:
            metrics = [self._metrics[k] for k in sorted(self._metrics)]
        out: list[dict] = []
        for m in metrics:
            if isinstance(m, Counter):
                rec = {"kind": "counter", "name": m.name, "value": m.value}
                if isinstance(m, WindowedCounter):
                    rec["window"] = {
                        "seconds": m.window_seconds,
                        "label": _window_label(m.window_seconds),
                        "value": m.window_value(),
                    }
            elif isinstance(m, Gauge):
                rec = {"kind": "gauge", "name": m.name, "value": m.value}
            else:
                rec = {
                    "kind": "histogram",
                    "name": m.name,
                    "data": m.to_dict(),
                }
                if isinstance(m, WindowedHistogram):
                    rec["window"] = {
                        "seconds": m.window_seconds,
                        "label": _window_label(m.window_seconds),
                        "data": m.window().to_dict(),
                    }
            out.append(rec)
        if include_cachestats:
            for name, (hits, misses) in sorted(cachestats.snapshot().items()):
                out.append(
                    {
                        "kind": "counter",
                        "name": f"cache.{name}.hits",
                        "value": hits,
                    }
                )
                out.append(
                    {
                        "kind": "counter",
                        "name": f"cache.{name}.misses",
                        "value": misses,
                    }
                )
        return out

    def snapshot(self, include_cachestats: bool = True) -> dict:
        """Everything, JSON-ready — cachestats counters included via the
        compatibility facade (``cache.<name>.hits`` / ``.misses``).

        Windowed metrics report twice: their lifetime totals live under
        ``counters``/``histograms`` exactly like cumulative metrics, and
        their rolling view lands under ``windows`` keyed by metric name
        (``{"window_seconds", "label", "value" | "summary"}``).
        """
        from .live import WindowedCounter, WindowedHistogram

        counters: dict[str, int] = {}
        gauges: dict[str, Optional[float]] = {}
        histograms: dict[str, dict] = {}
        windows: dict[str, dict] = {}
        with self._lock:
            metrics = [self._metrics[k] for k in sorted(self._metrics)]
        for m in metrics:
            if isinstance(m, Counter):
                counters[m.name] = m.value
                if isinstance(m, WindowedCounter):
                    windows[m.name] = {
                        "window_seconds": m.window_seconds,
                        "label": _window_label(m.window_seconds),
                        "value": m.window_value(),
                    }
            elif isinstance(m, Gauge):
                gauges[m.name] = m.value
            else:
                histograms[m.name] = m.summary()
                if isinstance(m, WindowedHistogram):
                    windows[m.name] = {
                        "window_seconds": m.window_seconds,
                        "label": _window_label(m.window_seconds),
                        "summary": m.window().summary(),
                    }
        if include_cachestats:
            for name, (hits, misses) in sorted(cachestats.snapshot().items()):
                counters[f"cache.{name}.hits"] = hits
                counters[f"cache.{name}.misses"] = misses
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "windows": windows,
        }

    def render(self, include_cachestats: bool = True) -> str:
        snap = self.snapshot(include_cachestats)
        lines = ["metrics:"]
        for name, v in snap["counters"].items():
            lines.append(f"  counter   {name:<36s} {v}")
        for name, v in snap["gauges"].items():
            lines.append(f"  gauge     {name:<36s} {v}")
        for name, s in snap["histograms"].items():
            if s.get("count"):
                lines.append(
                    f"  histogram {name:<36s} n={s['count']} "
                    f"p50={s['p50']:.4g} p90={s['p90']:.4g} "
                    f"p99={s['p99']:.4g} max={s['max']:.4g}"
                )
            else:
                lines.append(f"  histogram {name:<36s} n=0")
        for name, w in snap["windows"].items():
            if "value" in w:
                lines.append(
                    f"  window    {name:<36s} {w['label']}={w['value']}"
                )
            else:
                s = w["summary"]
                lines.append(
                    f"  window    {name:<36s} {w['label']}: n={s['count']} "
                    f"p50={s['p50']:.4g} p99={s['p99']:.4g}"
                )
        return "\n".join(lines)


_REGISTRY = Registry()


def registry() -> Registry:
    """The process-global default registry."""
    return _REGISTRY


def latency_summary(
    seconds_by_key: Mapping[str, list], unit: float = 1.0
) -> dict[str, dict]:
    """Histogram-backed p50/p90/p99 summaries for grouped samples.

    The batch engine feeds this per program family; ``unit`` rescales
    (e.g. ``1e3`` for milliseconds in reports).
    """
    out: dict[str, dict] = {}
    for key in sorted(seconds_by_key):
        h = Histogram(key)
        for s in seconds_by_key[key]:
            h.observe(s * unit)
        out[key] = h.summary()
    return out
