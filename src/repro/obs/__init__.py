"""Unified observability: hierarchical tracing spans + typed metrics.

The telemetry substrate under every instrumented layer of the planner
(ROADMAP item 1's prerequisite).  Four pieces:

* :mod:`repro.obs.spans` — hierarchical :class:`Span` contexts with a
  thread-local active stack, ``@traced``, and a near-zero disabled
  path; tracing is off unless a recorder is installed.
* :mod:`repro.obs.metrics` — a typed registry of counters, gauges, and
  log-scaled histograms (p50/p90/p99), absorbing
  :mod:`repro.cachestats` as a compatibility facade.
* :mod:`repro.obs.recorder` — picklable :class:`TraceRecorder` /
  :class:`SpanRecord` trees; what batch workers ship back across the
  process pool, mergeable into one multi-process trace.
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto-loadable,
  CLI ``--trace-out``), structured JSON, and an ASCII flame summary;
  :mod:`repro.obs.check` validates emitted files.
* :mod:`repro.obs.live` — rolling-window telemetry:
  :class:`WindowedCounter` / :class:`WindowedHistogram` (time-sliced
  ring shards alongside the lifetime view) and :class:`SLOTracker`
  burn-rate evaluation over declarative latency/error objectives.
* :mod:`repro.obs.prom` — Prometheus text-format exposition of the
  registry plus a pure-python format checker
  (``python -m repro.obs.prom --check``).
* :mod:`repro.obs.watch` — a live ASCII dashboard polling a running
  serve daemon (``python -m repro.obs.watch HOST:PORT``).
"""

from .export import (
    flame,
    root_coverage,
    to_chrome,
    to_json,
    write_chrome_trace,
)
from .live import (
    ErrorRateSLO,
    LatencySLO,
    SLOTracker,
    WindowedCounter,
    WindowedHistogram,
    default_serve_slos,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    latency_summary,
    registry,
)
from .prom import check_exposition, render_prometheus
from .recorder import SpanRecord, TraceRecorder
from .spans import (
    Span,
    annotate,
    current,
    disable,
    enable,
    enabled,
    instant,
    recording,
    span,
    traced,
)

__all__ = [
    "Counter",
    "ErrorRateSLO",
    "Gauge",
    "Histogram",
    "LatencySLO",
    "Registry",
    "SLOTracker",
    "Span",
    "SpanRecord",
    "TraceRecorder",
    "WindowedCounter",
    "WindowedHistogram",
    "annotate",
    "check_exposition",
    "current",
    "default_serve_slos",
    "disable",
    "enable",
    "enabled",
    "flame",
    "instant",
    "latency_summary",
    "recording",
    "registry",
    "render_prometheus",
    "root_coverage",
    "span",
    "to_chrome",
    "to_json",
    "traced",
    "write_chrome_trace",
]
