"""Chrome trace-event schema checker for emitted trace files.

Validates the subset of the trace-event format this package emits (and
that Perfetto requires to load a file): a ``traceEvents`` list whose
entries carry ``name``/``ph``/``pid``/``tid``, with numeric
non-negative ``ts``/``dur`` on complete (``"X"``) events and an
``args`` object where present.  Runnable as a script — CI points it at
the benchmark job's trace artifact::

    python -m repro.obs.check trace.json
"""

from __future__ import annotations

import json
import sys

_KNOWN_PHASES = {"X", "B", "E", "I", "i", "M", "C"}


def validate_chrome_trace(obj: object) -> list[str]:
    """Every schema violation found in a parsed trace; empty = valid."""
    errors: list[str] = []
    if isinstance(obj, list):
        events = obj  # the array form is legal Chrome trace JSON too
    elif isinstance(obj, dict):
        events = obj.get("traceEvents")
        if not isinstance(events, list):
            return ["top-level object lacks a 'traceEvents' list"]
    else:
        return [f"trace must be an object or array, not {type(obj).__name__}"]
    if not events:
        errors.append("traceEvents is empty")
        return errors
    saw_complete = False
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or ph not in _KNOWN_PHASES:
            errors.append(f"{where}: bad phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            errors.append(f"{where}: missing/empty 'name'")
        for field in ("pid", "tid"):
            if not isinstance(ev.get(field), int):
                errors.append(f"{where}: '{field}' must be an int")
        if "args" in ev and not isinstance(ev["args"], dict):
            errors.append(f"{where}: 'args' must be an object")
        if ph == "M":
            continue  # metadata events carry no timestamps
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            errors.append(f"{where}: 'ts' must be a non-negative number")
        if ph == "X":
            saw_complete = True
            dur = ev.get("dur")
            if (
                not isinstance(dur, (int, float))
                or isinstance(dur, bool)
                or dur < 0
            ):
                errors.append(f"{where}: 'dur' must be a non-negative number")
    if not saw_complete:
        errors.append("no complete ('X') duration events in trace")
    return errors


def check_file(path: str) -> list[str]:
    try:
        with open(path) as f:
            obj = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: {exc}"]
    return validate_chrome_trace(obj)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: python -m repro.obs.check TRACE.json...", file=sys.stderr)
        return 2
    status = 0
    for path in argv:
        errors = check_file(path)
        if errors:
            status = 1
            for e in errors:
                print(f"{path}: {e}", file=sys.stderr)
        else:
            with open(path) as f:
                n = len(json.load(f).get("traceEvents", []))
            print(f"{path}: valid Chrome trace ({n} events)")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
