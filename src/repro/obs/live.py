"""Rolling-window telemetry: time-sliced metrics and SLO tracking.

Lifetime-cumulative metrics answer "what happened since the process
started"; a service under live traffic needs "what is happening *now*".
This module adds the windowed layer:

* :class:`WindowedCounter` / :class:`WindowedHistogram` — subclasses of
  the cumulative types that additionally maintain a ring of time
  slices.  The lifetime view is unchanged (they register and snapshot
  through :class:`~repro.obs.metrics.Registry` like any other metric);
  the rolling view covers the last ``window`` seconds, sliced into
  ``slices`` shards so expiry is incremental, not all-or-nothing.
  Window merges are *exact*: shards are folded through
  :meth:`Histogram.merge`, and :meth:`Histogram.to_dict` /
  :meth:`~Histogram.from_dict` round-trip every shard losslessly.
* :class:`SLOTracker` — declarative latency/error objectives
  (:class:`LatencySLO`, :class:`ErrorRateSLO`) evaluated against both
  the windowed and lifetime views, with the classic burn-rate signal:
  ``burn = bad_fraction / error_budget`` (> 1 means the objective is
  being consumed faster than its budget; sustained > 1 means it will
  be violated).

Clocks are injectable everywhere (``clock=`` defaults to
``time.monotonic``), so tests drive expiry with a fake clock and zero
sleeps, and the serve benchmark can age out a cold burst before the
warm phase.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional, Union

from .metrics import Counter, Histogram, Registry, registry as _registry


class _SliceRing:
    """Bookkeeping for a ring of time slices (mixin-style helper).

    A slice is identified by ``floor(now / slice_seconds)``; the ring
    keeps the ``slices`` most recent identifiers, so the effective
    window spans between ``window - slice`` and ``window`` seconds —
    the standard rolling-window approximation at constant memory.
    Callers hold the owning metric's lock around every method.
    """

    __slots__ = ("window_seconds", "slice_seconds", "n_slices", "clock",
                 "_ring")

    def __init__(
        self,
        window: float,
        slices: int,
        clock: Optional[Callable[[], float]],
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if slices < 1:
            raise ValueError(f"need at least 1 slice, got {slices}")
        self.window_seconds = float(window)
        self.n_slices = int(slices)
        self.slice_seconds = self.window_seconds / self.n_slices
        self.clock = clock if clock is not None else time.monotonic
        self._ring: deque = deque()  # (slice_id, payload), oldest first

    def current(self, make_payload) -> object:
        """The live slice's payload, rotating/expiring as time moves."""
        sid = int(self.clock() // self.slice_seconds)
        self._expire(sid)
        if not self._ring or self._ring[-1][0] != sid:
            self._ring.append((sid, make_payload()))
        return self._ring[-1][1]

    def live_payloads(self) -> list:
        """Payloads still inside the window, oldest first."""
        sid = int(self.clock() // self.slice_seconds)
        self._expire(sid)
        return [payload for _, payload in self._ring]

    def _expire(self, current_sid: int) -> None:
        floor = current_sid - self.n_slices + 1
        while self._ring and self._ring[0][0] < floor:
            self._ring.popleft()


class WindowedCounter(Counter):
    """A counter whose lifetime total is accompanied by a rolling sum.

    ``value`` stays the monotone lifetime count; :meth:`window_value`
    is the number of increments inside the last ``window`` seconds.
    """

    __slots__ = ("_slices",)

    def __init__(
        self,
        name: str,
        window: float = 60.0,
        slices: int = 12,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        super().__init__(name)
        self._slices = _SliceRing(window, slices, clock)

    @property
    def window_seconds(self) -> float:
        return self._slices.window_seconds

    @property
    def clock(self) -> Callable[[], float]:
        return self._slices.clock

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n
            shard = self._slices.current(lambda: [0])
            shard[0] += n

    def window_value(self) -> int:
        with self._lock:
            return sum(s[0] for s in self._slices.live_payloads())

    def absorb_lifetime(self, other: Counter) -> None:
        """Carry a plain counter's lifetime total into this one (the
        registry upgrade path); the window starts empty."""
        self.value = other.value


class WindowedHistogram(Histogram):
    """A histogram that also maintains per-slice shard histograms.

    The inherited state is the lifetime view (``summary()``,
    ``percentile()`` behave exactly like a cumulative histogram);
    :meth:`window` merges the live shards — exactly, via
    :meth:`Histogram.merge` — into a plain :class:`Histogram` covering
    the last ``window`` seconds.
    """

    __slots__ = ("_slices",)

    def __init__(
        self,
        name: str,
        window: float = 60.0,
        slices: int = 12,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        super().__init__(name)
        self._slices = _SliceRing(window, slices, clock)

    @property
    def window_seconds(self) -> float:
        return self._slices.window_seconds

    @property
    def clock(self) -> Callable[[], float]:
        return self._slices.clock

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram {self.name}: negative value {value}")
        with self._lock:
            self._observe(value)
            shard = self._slices.current(lambda: Histogram(self.name))
            shard._observe(value)  # under our lock; shards are private

    def window(self) -> Histogram:
        """The last ``window`` seconds as one exactly-merged histogram."""
        with self._lock:
            merged = Histogram(self.name)
            for shard in self._slices.live_payloads():
                merged.merge(shard)
            return merged

    def absorb_lifetime(self, other: Histogram) -> None:
        """Carry a plain histogram's lifetime state into this one (the
        registry upgrade path); the window starts empty."""
        self.count = other.count
        self.total = other.total
        self.min = other.min
        self.max = other.max
        self.zeros = other.zeros
        self.buckets = dict(other.buckets)


# -- SLOs ---------------------------------------------------------------------


@dataclass(frozen=True)
class LatencySLO:
    """``target`` fraction of requests must complete within
    ``threshold_ms`` — evaluated against a (windowed) histogram of
    millisecond latencies at bucket resolution (conservative: a
    threshold inside a bucket excludes that bucket)."""

    name: str
    histogram: str
    threshold_ms: float
    target: float

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"SLO target must be in (0, 1): {self.target}")


@dataclass(frozen=True)
class ErrorRateSLO:
    """``target`` fraction of requests (counter ``total``) must not be
    errors (counter ``errors``)."""

    name: str
    total: str
    errors: str
    target: float

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"SLO target must be in (0, 1): {self.target}")


Objective = Union[LatencySLO, ErrorRateSLO]


def _burn(bad: int, total: int, target: float) -> dict:
    """One compliance evaluation: fraction in-objective + burn rate.

    ``burn_rate`` is the bad fraction over the error budget
    (``1 - target``): 1.0 means spending the budget exactly as fast as
    allowed, above it the objective degrades.  No traffic is perfect
    compliance (burn 0) — an idle service violates nothing.
    """
    if total <= 0:
        return {"total": 0, "bad": 0, "compliance": 1.0, "burn_rate": 0.0}
    bad = min(bad, total)
    frac_bad = bad / total
    budget = 1.0 - target
    return {
        "total": total,
        "bad": bad,
        "compliance": 1.0 - frac_bad,
        "burn_rate": frac_bad / budget,
    }


class SLOTracker:
    """Evaluate declarative objectives against a metric registry.

    Point a tracker at objectives whose metric names resolve to
    windowed metrics and :meth:`report` yields, per objective, the
    lifetime and rolling-window compliance plus burn rates — the signal
    the serve daemon surfaces through ``stats`` and the watch
    dashboard renders.  Plain cumulative metrics degrade gracefully:
    the ``window`` section then mirrors the lifetime view.
    """

    def __init__(
        self,
        objectives: list,
        registry: Optional[Registry] = None,
    ) -> None:
        seen = set()
        for obj in objectives:
            if obj.name in seen:
                raise ValueError(f"duplicate SLO name {obj.name!r}")
            seen.add(obj.name)
        self.objectives = list(objectives)
        self._registry = registry

    @property
    def registry(self) -> Registry:
        return self._registry if self._registry is not None else _registry()

    def _eval_latency(self, slo: LatencySLO) -> dict:
        h = self.registry.histogram(slo.histogram)
        lifetime = _burn(
            h.count - h.count_le(slo.threshold_ms), h.count, slo.target
        )
        if isinstance(h, WindowedHistogram):
            w = h.window()
            window = _burn(
                w.count - w.count_le(slo.threshold_ms), w.count, slo.target
            )
        else:
            window = lifetime
        return {
            "kind": "latency",
            "threshold_ms": slo.threshold_ms,
            "lifetime": lifetime,
            "window": window,
        }

    def _eval_error_rate(self, slo: ErrorRateSLO) -> dict:
        total = self.registry.counter(slo.total)
        errors = self.registry.counter(slo.errors)
        lifetime = _burn(errors.value, total.value, slo.target)
        if isinstance(total, WindowedCounter) and isinstance(
            errors, WindowedCounter
        ):
            window = _burn(
                errors.window_value(), total.window_value(), slo.target
            )
        else:
            window = lifetime
        return {
            "kind": "error_rate",
            "lifetime": lifetime,
            "window": window,
        }

    def report(self) -> dict:
        """Every objective, JSON-ready, keyed by SLO name."""
        out: dict[str, dict] = {}
        for slo in self.objectives:
            if isinstance(slo, LatencySLO):
                entry = self._eval_latency(slo)
            else:
                entry = self._eval_error_rate(slo)
            entry["target"] = slo.target
            entry["healthy"] = entry["window"]["burn_rate"] <= 1.0
            out[slo.name] = entry
        return out


def default_serve_slos() -> list:
    """The serve daemon's out-of-the-box objectives: warm cache hits
    answer within 25ms for 99% of requests, and 99% of requests do not
    error.  Override via ``PlanService(slos=[...])``."""
    return [
        LatencySLO(
            "warm_latency",
            histogram="serve.warm_ms",
            threshold_ms=25.0,
            target=0.99,
        ),
        ErrorRateSLO(
            "availability",
            total="serve.requests",
            errors="serve.errors",
            target=0.99,
        ),
    ]
