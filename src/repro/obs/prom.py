"""Prometheus text-format exposition: renderer + pure-python checker.

The renderer turns the metric registry into the Prometheus text format
(version 0.0.4), so standard scrape tooling can consume the serve
daemon's telemetry:

* counters  → ``<name>_total`` with ``# TYPE ... counter``;
* gauges    → ``<name>`` with ``# TYPE ... gauge`` (unset gauges are
  omitted — Prometheus has no null);
* histograms → the full cumulative-bucket family: ``<name>_bucket``
  samples with ``le`` upper bounds derived from the log-scale buckets
  (each occupied bucket's upper edge ``base**i``, zeros counted below
  every bound), a ``le="+Inf"`` bucket equal to ``_count``, plus
  ``_sum`` and ``_count``;
* windowed metrics additionally expose their rolling view as a small
  gauge family ``<name>_<label>{stat="count|p50|p90|p99|max"}`` —
  rolling views shrink, so they must not masquerade as counters.

Metric names are sanitized to the Prometheus grammar (dots and other
illegal characters become underscores).

:func:`check_exposition` is the from-scratch validator CI runs on the
scraped payload (no prometheus client library in the image, by
design): line grammar, name/label syntax, float parsing, one ``TYPE``
per family declared before its samples, counter non-negativity, and
histogram-family invariants (monotone cumulative buckets, mandatory
``+Inf``/``_sum``/``_count``, ``+Inf == _count``).  Script entry::

    python -m repro.obs.prom --check metrics.prom   # validate a file
    python -m repro.obs.prom --scrape HOST:PORT     # fetch from daemon
"""

from __future__ import annotations

import math
import re
import sys
from typing import Iterable, Optional

from .metrics import _LOG_BASE, Registry, registry as _registry

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")
_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def sanitize(name: str) -> str:
    """A registry metric name as a legal Prometheus metric name."""
    out = _SANITIZE_RE.sub("_", name)
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, int) or value == int(value):
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _histogram_lines(name: str, data: dict, lines: list[str]) -> None:
    """One histogram family from a raw :meth:`Histogram.to_dict` dict.

    The log-scale bucket index ``i`` covers ``(base**(i-1), base**i]``,
    so ``base**i`` is an exact cumulative upper bound; zeros sit below
    every finite bound.  Only occupied buckets emit a sample (plus
    ``+Inf``) — Prometheus cumulative semantics don't need the empty
    ones.
    """
    lines.append(f"# TYPE {name} histogram")
    cumulative = data["zeros"]
    if data["zeros"]:
        # An explicit zero bound keeps the zeros mass visible even when
        # no positive observation exists.
        lines.append(f'{name}_bucket{{le="0"}} {cumulative}')
    for i in sorted(int(k) for k in data["buckets"]):
        cumulative += data["buckets"][str(i)]
        le = _LOG_BASE ** i
        lines.append(f'{name}_bucket{{le="{_fmt(le)}"}} {cumulative}')
    lines.append(f'{name}_bucket{{le="+Inf"}} {data["count"]}')
    lines.append(f"{name}_sum {_fmt(data['sum'])}")
    lines.append(f"{name}_count {data['count']}")


def _window_gauge_lines(
    name: str, label: str, summary: dict, lines: list[str]
) -> None:
    family = f"{name}_{label}"
    lines.append(f"# TYPE {family} gauge")
    for stat in ("count", "p50", "p90", "p99", "max"):
        lines.append(
            f'{family}{{stat="{stat}"}} {_fmt(summary[stat])}'
        )


def render_prometheus(
    registry: Optional[Registry] = None, include_cachestats: bool = True
) -> str:
    """The whole registry in Prometheus text format (trailing newline
    included — the format requires the final line be terminated)."""
    from .metrics import Histogram

    reg = registry if registry is not None else _registry()
    lines: list[str] = []
    for rec in reg.collect(include_cachestats=include_cachestats):
        name = sanitize(rec["name"])
        if rec["kind"] == "counter":
            lines.append(f"# TYPE {name}_total counter")
            lines.append(f"{name}_total {rec['value']}")
            window = rec.get("window")
            if window is not None:
                family = f"{name}_{window['label']}"
                lines.append(f"# TYPE {family} gauge")
                lines.append(f"{family} {window['value']}")
        elif rec["kind"] == "gauge":
            if rec["value"] is not None:
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {_fmt(rec['value'])}")
        else:
            _histogram_lines(name, rec["data"], lines)
            window = rec.get("window")
            if window is not None:
                summary = Histogram.from_dict(
                    rec["name"], window["data"]
                ).summary()
                _window_gauge_lines(
                    name, window["label"], summary, lines
                )
    return "\n".join(lines) + "\n"


# -- the checker --------------------------------------------------------------


def _parse_value(text: str) -> Optional[float]:
    if text in ("+Inf", "Inf"):
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        return None


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<ts>-?\d+))?\s*$"
)
_LABEL_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*'
    r'"(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def _family(sample_name: str) -> str:
    """The metric family a sample belongs to (histogram samples carry
    ``_bucket``/``_sum``/``_count`` suffixes on the family name)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def _parse_labels(text: str) -> Optional[dict]:
    labels: dict[str, str] = {}
    pos = 0
    while pos < len(text):
        m = _LABEL_RE.match(text, pos)
        if m is None:
            return None
        labels[m.group("name")] = m.group("value")
        pos = m.end()
    return labels


def check_exposition(text: str) -> list[str]:
    """Every format violation found; empty list = valid exposition."""
    errors: list[str] = []
    if not text:
        return ["empty exposition"]
    if not text.endswith("\n"):
        errors.append("exposition must end with a newline")
    types: dict[str, str] = {}
    sampled_families: set[str] = set()
    # histogram family accounting: family -> list of (le, value), sums, counts
    hist_buckets: dict[str, list[tuple[float, float]]] = {}
    hist_sum: dict[str, float] = {}
    hist_count: dict[str, float] = {}
    counter_samples: dict[str, float] = {}
    for lineno, line in enumerate(text.split("\n"), start=1):
        if not line:
            continue
        where = f"line {lineno}"
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 2 or parts[1] not in ("TYPE", "HELP"):
                continue  # free-form comment: legal
            if parts[1] == "HELP":
                if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                    errors.append(f"{where}: malformed HELP line")
                continue
            if len(parts) != 4:
                errors.append(f"{where}: malformed TYPE line")
                continue
            _, _, fam, kind = parts
            if not _NAME_RE.match(fam):
                errors.append(f"{where}: bad metric name {fam!r} in TYPE")
                continue
            if kind not in _TYPES:
                errors.append(f"{where}: unknown metric type {kind!r}")
                continue
            if fam in types:
                errors.append(f"{where}: duplicate TYPE for {fam}")
                continue
            if fam in sampled_families:
                errors.append(
                    f"{where}: TYPE for {fam} after its samples"
                )
            types[fam] = kind
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            errors.append(f"{where}: unparseable sample line {line!r}")
            continue
        name = m.group("name")
        labels_text = m.group("labels")
        labels: dict[str, str] = {}
        if labels_text is not None:
            parsed = _parse_labels(labels_text)
            if parsed is None:
                errors.append(f"{where}: malformed labels {{{labels_text}}}")
                continue
            labels = parsed
            for ln in labels:
                if not _LABEL_NAME_RE.match(ln):
                    errors.append(f"{where}: bad label name {ln!r}")
        value = _parse_value(m.group("value"))
        if value is None:
            errors.append(f"{where}: bad sample value {m.group('value')!r}")
            continue
        fam = _family(name)
        declared = types.get(fam) or types.get(name)
        sampled_families.add(fam)
        sampled_families.add(name)
        if declared == "counter":
            if value < 0:
                errors.append(f"{where}: counter {name} is negative")
            counter_samples[name] = value
        if declared == "histogram":
            if name.endswith("_bucket"):
                le = labels.get("le")
                if le is None:
                    errors.append(f"{where}: {name} sample lacks an le label")
                    continue
                bound = _parse_value(le)
                if bound is None:
                    errors.append(f"{where}: bad le bound {le!r}")
                    continue
                hist_buckets.setdefault(fam, []).append((bound, value))
            elif name.endswith("_sum"):
                hist_sum[fam] = value
            elif name.endswith("_count"):
                hist_count[fam] = value
            else:
                errors.append(
                    f"{where}: histogram family {fam} has a bare sample"
                )
    # Histogram family invariants.
    for fam, kind in types.items():
        if kind != "histogram":
            continue
        buckets = hist_buckets.get(fam)
        if fam not in sampled_families and not buckets:
            continue  # declared but never sampled: tolerated
        if not buckets:
            errors.append(f"{fam}: histogram without _bucket samples")
            continue
        bounds = [b for b, _ in buckets]
        if bounds != sorted(bounds):
            errors.append(f"{fam}: bucket le bounds not sorted")
        counts = [v for _, v in buckets]
        if any(b > a for a, b in zip(counts[1:], counts)):
            errors.append(f"{fam}: bucket counts not cumulative")
        if not any(b == math.inf for b in bounds):
            errors.append(f"{fam}: missing le=\"+Inf\" bucket")
        if fam not in hist_sum:
            errors.append(f"{fam}: missing _sum sample")
        if fam not in hist_count:
            errors.append(f"{fam}: missing _count sample")
        if fam in hist_count and any(b == math.inf for b in bounds):
            inf_count = [v for b, v in buckets if b == math.inf][-1]
            if inf_count != hist_count[fam]:
                errors.append(
                    f"{fam}: le=\"+Inf\" bucket ({inf_count:g}) != _count "
                    f"({hist_count[fam]:g})"
                )
    return errors


def scrape(host: str, port: int, timeout: float = 5.0) -> str:
    """Fetch one exposition from a serve daemon's ``/metrics`` line mode."""
    import socket

    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(b"/metrics\n")
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks).decode("utf-8")


def _check_paths(paths: Iterable[str]) -> int:
    status = 0
    for path in paths:
        try:
            text = (
                sys.stdin.read()
                if path == "-"
                else open(path, encoding="utf-8").read()
            )
        except OSError as exc:
            print(f"{path}: {exc}", file=sys.stderr)
            status = 1
            continue
        errors = check_exposition(text)
        if errors:
            status = 1
            for e in errors:
                print(f"{path}: {e}", file=sys.stderr)
        else:
            samples = sum(
                1
                for line in text.split("\n")
                if line and not line.startswith("#")
            )
            print(f"{path}: valid Prometheus exposition ({samples} samples)")
    return status


def main(argv: Optional[list[str]] = None) -> int:
    import argparse

    ap = argparse.ArgumentParser(
        prog="python -m repro.obs.prom",
        description="Prometheus text-format tools: validate or scrape",
    )
    ap.add_argument(
        "paths",
        nargs="*",
        metavar="FILE",
        help="exposition files to validate ('-' reads stdin)",
    )
    ap.add_argument(
        "--check",
        action="store_true",
        help="validate the given files (or the scraped payload)",
    )
    ap.add_argument(
        "--scrape",
        metavar="HOST:PORT",
        help="fetch an exposition from a running serve daemon and print "
        "it (with --check: validate instead of printing)",
    )
    args = ap.parse_args(argv)
    if args.scrape:
        host, _, port = args.scrape.rpartition(":")
        try:
            text = scrape(host or "127.0.0.1", int(port))
        except (OSError, ValueError) as exc:
            print(f"--scrape {args.scrape}: {exc}", file=sys.stderr)
            return 1
        if not args.check:
            sys.stdout.write(text)
            return 0
        errors = check_exposition(text)
        for e in errors:
            print(f"{args.scrape}: {e}", file=sys.stderr)
        if not errors:
            print(f"{args.scrape}: valid Prometheus exposition")
        return 1 if errors else 0
    if not args.paths:
        ap.error("nothing to do: give FILEs to check, or --scrape")
    return _check_paths(args.paths)


if __name__ == "__main__":
    raise SystemExit(main())
