"""Picklable trace records: the data that crosses process boundaries.

A live :class:`~repro.obs.spans.Span` holds thread-local bookkeeping
that must never travel; when a root span finishes it is frozen into a
:class:`SpanRecord` tree — plain dataclasses of primitives — and handed
to the installed :class:`TraceRecorder`.  Recorders are what the batch
workers ship back across the :class:`~concurrent.futures.\
ProcessPoolExecutor`: each worker records under its own pid, and
:meth:`TraceRecorder.merge` folds many worker recorders into one
coherent multi-process trace with per-program attribution, ready for
:mod:`repro.obs.export`.

Timestamps are ``time.perf_counter`` seconds, whose epoch is arbitrary
*per process* — comparable within a pid, meaningless across pids.  The
exporters rebase each pid's lane to its own earliest span, so merged
traces line up at zero without pretending cross-process clocks agree.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Optional


@dataclass
class SpanRecord:
    """One finished span, frozen for transport.

    ``start`` is process-local ``perf_counter`` seconds; ``cache`` holds
    the :mod:`repro.cachestats` counter increments observed while the
    span was open (children's increments included — the registry is
    process-global, not scoped).
    """

    name: str
    start: float
    seconds: float
    cpu_seconds: float
    tags: dict = field(default_factory=dict)
    cache: dict = field(default_factory=dict)
    children: list["SpanRecord"] = field(default_factory=list)
    pid: int = 0
    tid: int = 0

    def walk(self) -> Iterator["SpanRecord"]:
        """This record and every descendant, depth-first, parents first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["SpanRecord"]:
        return [r for r in self.walk() if r.name == name]

    def self_seconds(self) -> float:
        """Wall time not attributed to any child span."""
        return max(0.0, self.seconds - sum(c.seconds for c in self.children))

    def child_coverage(self) -> float:
        """Fraction of this span's wall time covered by its children
        (1.0 for a leaf: a leaf fully accounts for itself)."""
        if not self.children:
            return 1.0
        if self.seconds <= 0.0:
            return 1.0
        return min(1.0, sum(c.seconds for c in self.children) / self.seconds)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "seconds": self.seconds,
            "cpu_seconds": self.cpu_seconds,
            "tags": dict(self.tags),
            "cache": {k: list(v) for k, v in self.cache.items()},
            "children": [c.to_dict() for c in self.children],
            "pid": self.pid,
            "tid": self.tid,
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "SpanRecord":
        return cls(
            name=d["name"],
            start=d["start"],
            seconds=d["seconds"],
            cpu_seconds=d.get("cpu_seconds", 0.0),
            tags=dict(d.get("tags", {})),
            cache={k: tuple(v) for k, v in d.get("cache", {}).items()},
            children=[cls.from_dict(c) for c in d.get("children", ())],
            pid=d.get("pid", 0),
            tid=d.get("tid", 0),
        )


def _stamp(rec: SpanRecord, pid: int, tid: int) -> None:
    for r in rec.walk():
        if not r.pid:
            r.pid = pid
        if not r.tid:
            r.tid = tid


class TraceRecorder:
    """Collects finished root spans; picklable; mergeable across processes.

    One recorder per traced unit of work (a CLI invocation, one batch
    task inside a worker).  ``label`` names the unit — the batch engine
    uses the program name, so merged traces attribute every span to its
    program.
    """

    def __init__(self, label: Optional[str] = None) -> None:
        self.label = label
        self.pid = os.getpid()
        self.roots: list[SpanRecord] = []
        # pid -> human label, for exporter process lanes; grows on merge.
        self.process_labels: dict[int, str] = {}
        if label is not None:
            self.process_labels[self.pid] = label

    # -- collection --------------------------------------------------------

    def add_root(self, rec: SpanRecord) -> None:
        _stamp(rec, self.pid, threading.get_ident())
        if self.label is not None:
            rec.tags.setdefault("program", self.label)
        self.roots.append(rec)

    # -- aggregation -------------------------------------------------------

    def merge(self, other: "TraceRecorder", program: Optional[str] = None) -> None:
        """Fold another recorder's roots into this one.

        The incoming roots keep their own pid (their lane in the merged
        trace); ``program`` (default: the other recorder's label) is
        stamped as per-program attribution on each incoming root.
        """
        attribution = program if program is not None else other.label
        for root in other.roots:
            if attribution is not None:
                root.tags.setdefault("program", attribution)
            self.roots.append(root)
        self.process_labels.update(other.process_labels)
        if attribution is not None:
            self.process_labels.setdefault(other.pid, attribution)

    @classmethod
    def merged(
        cls,
        recorders: Iterable[Optional["TraceRecorder"]],
        label: Optional[str] = None,
    ) -> "TraceRecorder":
        out = cls(label=label)
        out.process_labels.pop(out.pid, None)  # aggregate owns no lane
        for rec in recorders:
            if rec is not None:
                out.merge(rec)
        return out

    # -- introspection -----------------------------------------------------

    def walk(self) -> Iterator[SpanRecord]:
        for root in self.roots:
            yield from root.walk()

    def span_names(self) -> set[str]:
        return {r.name for r in self.walk()}

    def find(self, name: str) -> list[SpanRecord]:
        return [r for r in self.walk() if r.name == name]

    def by_program(self) -> dict[str, list[SpanRecord]]:
        """Root spans grouped by their ``program`` tag (merged traces)."""
        out: dict[str, list[SpanRecord]] = {}
        for root in self.roots:
            out.setdefault(str(root.tags.get("program", "")), []).append(root)
        return out

    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.roots)

    def totals(self) -> dict[str, tuple[int, float]]:
        """Per span name: ``(count, wall seconds)`` over the whole trace."""
        out: dict[str, tuple[int, float]] = {}
        for r in self.walk():
            n, s = out.get(r.name, (0, 0.0))
            out[r.name] = (n + 1, s + r.seconds)
        return out

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "pid": self.pid,
            "process_labels": {str(k): v for k, v in self.process_labels.items()},
            "roots": [r.to_dict() for r in self.roots],
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "TraceRecorder":
        out = cls(label=d.get("label"))
        out.pid = d.get("pid", out.pid)
        out.process_labels = {
            int(k): v for k, v in d.get("process_labels", {}).items()
        }
        out.roots = [SpanRecord.from_dict(r) for r in d.get("roots", ())]
        return out

    def __repr__(self) -> str:
        label = f" {self.label!r}" if self.label else ""
        return (
            f"<TraceRecorder{label}: {len(self.roots)} roots, "
            f"{len(self.span_names())} span names>"
        )
