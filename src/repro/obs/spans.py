"""Hierarchical tracing spans with a thread-local active stack.

A :class:`Span` measures one named region: wall time, CPU time, and the
:mod:`repro.cachestats` counter increments observed while it was open.
Spans nest — each thread keeps its own active-span stack, so a span
opened inside another becomes its child — and a finished *root* span is
frozen into a picklable :class:`~repro.obs.recorder.SpanRecord` tree
and handed to the installed :class:`~repro.obs.recorder.TraceRecorder`.

Tracing is **off by default** and the disabled path is near-free:
:func:`span` checks one module global and returns a shared no-op
context manager, so instrumented hot paths (every pipeline pass, every
front-pricing call) cost one function call when nobody is tracing.  The
overhead-guard test in ``tests/test_obs.py`` holds that line.

Usage::

    from repro.obs import spans as obs

    with obs.recording(label="figure1") as rec:
        with obs.span("plan", program="figure1"):
            with obs.span("distrib.axis_dp", axes=2):
                ...
    rec.roots[0].children[0].name   # "distrib.axis_dp"
"""

from __future__ import annotations

import functools
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional

from .. import cachestats
from .recorder import SpanRecord, TraceRecorder

_enabled = False
_recorder: Optional[TraceRecorder] = None
_local = threading.local()


def _stack() -> list:
    try:
        return _local.stack
    except AttributeError:
        _local.stack = []
        return _local.stack


class _NullSpan:
    """The shared disabled-path span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def tag(self, **tags: Any) -> "_NullSpan":
        return self


_NULL = _NullSpan()


class Span:
    """A live, in-flight span.  Use via :func:`span`, not directly."""

    __slots__ = (
        "name",
        "tags",
        "start",
        "seconds",
        "cpu_seconds",
        "cache",
        "children",
        "_cpu0",
        "_cache_before",
    )

    def __init__(self, name: str, tags: dict) -> None:
        self.name = name
        self.tags = tags
        self.children: list[SpanRecord] = []
        self.seconds = 0.0
        self.cpu_seconds = 0.0
        self.cache: dict = {}

    def tag(self, **tags: Any) -> "Span":
        self.tags.update(tags)
        return self

    def __enter__(self) -> "Span":
        _stack().append(self)
        self._cache_before = cachestats.snapshot()
        self._cpu0 = time.process_time()
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.seconds = time.perf_counter() - self.start
        self.cpu_seconds = time.process_time() - self._cpu0
        self.cache = cachestats.delta(self._cache_before)
        if exc_type is not None:
            self.tags.setdefault("error", exc_type.__name__)
        stack = _stack()
        # Defensive pop: a mismatched exit (a span closed out of order)
        # drops the orphans rather than corrupting the ancestry.
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        record = self._freeze()
        if stack:
            stack[-1].children.append(record)
        else:
            rec = _recorder
            if rec is not None:
                rec.add_root(record)
        return False

    def _freeze(self) -> SpanRecord:
        return SpanRecord(
            name=self.name,
            start=self.start,
            seconds=self.seconds,
            cpu_seconds=self.cpu_seconds,
            tags=self.tags,
            cache=self.cache,
            children=self.children,
        )


# -- public surface ----------------------------------------------------------


def enabled() -> bool:
    return _enabled


def enable(recorder: Optional[TraceRecorder] = None) -> TraceRecorder:
    """Turn tracing on, installing ``recorder`` (or a fresh one)."""
    global _enabled, _recorder
    _recorder = recorder if recorder is not None else TraceRecorder()
    _enabled = True
    return _recorder


def disable() -> Optional[TraceRecorder]:
    """Turn tracing off; returns the recorder that was collecting."""
    global _enabled, _recorder
    rec, _recorder = _recorder, None
    _enabled = False
    return rec


def recorder() -> Optional[TraceRecorder]:
    return _recorder


@contextmanager
def recording(
    label: Optional[str] = None, into: Optional[TraceRecorder] = None
) -> Iterator[TraceRecorder]:
    """Trace a region into a fresh recorder (or ``into``), restoring
    prior state after.

    Re-entrant: a worker that traces one task inside an already-traced
    process restores the outer recorder on exit.
    """
    global _enabled, _recorder
    prev = (_enabled, _recorder)
    rec = into if into is not None else TraceRecorder(label=label)
    _recorder = rec
    _enabled = True
    try:
        yield rec
    finally:
        _enabled, _recorder = prev


def span(name: str, **tags: Any):
    """Open a span (context manager); a shared no-op when disabled."""
    if not _enabled:
        return _NULL
    return Span(name, tags)


def current() -> Optional[Span]:
    """The innermost live span of this thread, or None."""
    if not _enabled:
        return None
    stack = _stack()
    return stack[-1] if stack else None


def annotate(**tags: Any) -> None:
    """Attach tags to the current span; no-op when disabled/outside."""
    if not _enabled:
        return
    stack = _stack()
    if stack:
        stack[-1].tags.update(tags)


def instant(name: str, **tags: Any) -> None:
    """Record a zero-duration marker under the current span (or root)."""
    if not _enabled:
        return
    record = SpanRecord(
        name=name,
        start=time.perf_counter(),
        seconds=0.0,
        cpu_seconds=0.0,
        tags=tags,
    )
    stack = _stack()
    if stack:
        stack[-1].children.append(record)
    else:
        rec = _recorder
        if rec is not None:
            rec.add_root(record)


def traced(
    fn: Optional[Callable] = None,
    *,
    name: Optional[str] = None,
    **tags: Any,
) -> Callable:
    """Decorator tracing every call of ``fn`` as a span.

    Works bare (``@traced``) or parameterized
    (``@traced(name="distrib.plan", stage="search")``).  The span name
    defaults to the function's qualified name.
    """

    def wrap(f: Callable) -> Callable:
        label = name if name is not None else f.__qualname__

        @functools.wraps(f)
        def inner(*args: Any, **kwargs: Any):
            if not _enabled:
                return f(*args, **kwargs)
            with Span(label, dict(tags)):
                return f(*args, **kwargs)

        return inner

    return wrap if fn is None else wrap(fn)
