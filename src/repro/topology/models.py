"""Pluggable interconnect models: how far apart are two processors?

The paper prices every data movement with the L1 grid metric — the
machine is implicitly an infinite mesh.  Real targets differ: rings and
tori wrap, hypercubes route by Hamming distance, clustered machines pay
far more for inter-node links than for intra-node ones.  This module
makes the machine shape a first-class, pluggable value:

* an :class:`AxisMetric` is a vectorized distance kernel on the
  processor coordinates of **one** logical grid axis;
* a :class:`Topology` describes a whole machine — it manufactures the
  per-axis metrics for any logical processor-grid factorization, plus
  machine-level metadata (shape, bisection bandwidth, a parseable spec).

Every concrete topology here is *separable*: its distance decomposes
into a sum of per-axis metrics (a product of rings is a torus, a
product of hypercubes is a hypercube, …).  Separability is what lets
the distribution planner keep pricing axes independently — the per-axis
dynamic program in :mod:`repro.distrib.search` stays exact for every
topology, not just the grid.

All metrics satisfy the metric axioms (identity, symmetry, triangle
inequality) on processor coordinates; the property tests in
``tests/test_topology.py`` check them on random cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Sequence

import numpy as np


def _popcount(x: np.ndarray) -> np.ndarray:
    """Per-element population count of a nonnegative int64 array.

    Portable across numpy versions (``np.bitwise_count`` is 2.x-only):
    peel one bit per round; coordinates are already reduced mod the
    axis size, so the loop runs log2(p) times.
    """
    x = np.asarray(x, dtype=np.int64).copy()
    out = np.zeros_like(x)
    while np.any(x):
        out += x & 1
        x >>= 1
    return out


def _gray(x: np.ndarray) -> np.ndarray:
    """Reflected binary Gray code of nonnegative integers."""
    return x ^ (x >> 1)


# ---------------------------------------------------------------------------
# Per-axis metrics
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AxisMetric:
    """Distance kernel on the processor coordinates of one grid axis.

    Frozen and hashable: metrics participate in the planner's memo keys
    (:meth:`repro.distrib.costmodel.CommProfile.axis_hops`), so every
    parameter that changes the distance must be a dataclass field.
    """

    def hops(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        raise NotImplementedError  # pragma: no cover - abstract

    def distance(self, a: int, b: int) -> int:
        """Scalar convenience wrapper around :meth:`hops`."""
        return int(self.hops(np.asarray([a]), np.asarray([b]))[0])


@dataclass(frozen=True)
class LinearAxis(AxisMetric):
    """An open chain of processors: ``|a - b|`` — the paper's metric."""

    def hops(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.abs(np.asarray(a) - np.asarray(b))

    def distance(self, a, b):
        # Overridden to stay exact on Fractions (the alignment phase
        # measures template cells, whose offsets can be rational).
        return abs(a - b)


@dataclass(frozen=True)
class RingAxis(AxisMetric):
    """``p`` processors in a cycle: hop the short way around.

    Coordinates are folded onto the ring mod ``p``, so the metric is
    total on the identity machine's unbounded cells as well.
    """

    p: int

    def __post_init__(self) -> None:
        if self.p < 1:
            raise ValueError(f"RingAxis needs p >= 1, got {self.p}")

    def hops(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        d = np.mod(np.asarray(a) - np.asarray(b), self.p)
        return np.minimum(d, self.p - d)


@dataclass(frozen=True)
class HammingAxis(AxisMetric):
    """A ``p = 2**k`` hypercube axis: Hamming distance on Gray-coded
    coordinates.

    Gray coding makes consecutive coordinates adjacent (1 hop), so
    nearest-neighbour shift traffic costs exactly what it does on a
    chain, while long jumps can be dramatically cheaper.
    """

    p: int

    def __post_init__(self) -> None:
        if self.p < 1 or self.p & (self.p - 1):
            raise ValueError(
                f"HammingAxis needs a power-of-two processor count, got {self.p}"
            )

    def hops(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ga = _gray(np.mod(np.asarray(a), self.p))
        gb = _gray(np.mod(np.asarray(b), self.p))
        return _popcount(ga ^ gb)


@dataclass(frozen=True)
class TwoLevelAxis(AxisMetric):
    """Hierarchical axis: nodes of ``node`` processors, cheap inside,
    ``inter_cost``-weighted ``outer`` metric between nodes.

    ``d(a, b) = inter_cost * outer(a // node, b // node)
              + inner(a mod node, b mod node)``

    Both summands are pullbacks of metrics along total functions, so the
    sum is again a metric (the inner term separates coordinates that
    share a node).
    """

    node: int
    inter_cost: int
    outer: AxisMetric
    inner: AxisMetric

    def __post_init__(self) -> None:
        if self.node < 1:
            raise ValueError(f"TwoLevelAxis needs node >= 1, got {self.node}")
        if self.inter_cost < 1:
            raise ValueError(
                f"TwoLevelAxis needs inter_cost >= 1, got {self.inter_cost}"
            )

    def hops(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a)
        b = np.asarray(b)
        between = self.outer.hops(a // self.node, b // self.node)
        within = self.inner.hops(np.mod(a, self.node), np.mod(b, self.node))
        return self.inter_cost * between + within


# ---------------------------------------------------------------------------
# Whole-machine topologies
# ---------------------------------------------------------------------------


def _parse_dims(text: str, what: str) -> tuple[int, ...]:
    parts = text.split("x") if text else []
    if not parts:
        raise ValueError(f"{what}: missing shape (expected e.g. '4x4')")
    dims = []
    for part in parts:
        try:
            n = int(part)
        except ValueError:
            raise ValueError(
                f"{what}: bad axis extent {part!r} in {text!r}"
            ) from None
        if n < 1:
            raise ValueError(f"{what}: axis extents must be >= 1, got {n}")
        dims.append(n)
    return tuple(dims)


def factorizations(n: int, rank: int) -> list[tuple[int, ...]]:
    """All ordered factorizations of ``n`` into ``rank`` axis counts,
    in deterministic (lexicographic) order.

    The one grid enumerator in the package: the distribution planner's
    candidate generation (:mod:`repro.distrib.enumerate`) and the
    topology defaults below share it, so the planner's candidate space
    and the machines' own grid choices can never diverge.
    """
    if n < 1:
        raise ValueError("nprocs must be >= 1")
    if rank < 1:
        raise ValueError("rank must be >= 1")
    if rank == 1:
        return [(n,)]
    out = []
    for p in range(1, n + 1):
        if n % p:
            continue
        for rest in factorizations(n // p, rank - 1):
            out.append((p, *rest))
    return out


def most_balanced(grids: Sequence[tuple[int, ...]]) -> tuple[int, ...]:
    """The most nearly-cubic grid shape (minimal max/min spread)."""
    if not grids:
        raise ValueError("need at least one grid shape")
    return min(grids, key=lambda g: (max(g) - min(g), g))


@dataclass(frozen=True)
class Topology:
    """A machine interconnect: shape plus per-axis distance pricing.

    ``shape`` is the physical per-axis processor extents; the empty
    shape is the paper's conceptually unbounded identity machine (only
    :class:`GridTopology` admits it).  Logical processor grids chosen by
    the distribution planner need not equal ``shape`` — a topology
    prices *any* logical axis of ``p`` processors via
    :meth:`axis_metric`, with logical axis ``t`` folded onto physical
    axis ``min(t, rank - 1)``.
    """

    shape: tuple[int, ...]

    kind: ClassVar[str] = "abstract"

    def __post_init__(self) -> None:
        if any(p < 1 for p in self.shape):
            raise ValueError(f"{self.kind}: axis extents must be >= 1")

    # -- per-axis pricing --------------------------------------------------

    def axis_metric(self, p: int | None = None, axis: int = 0) -> AxisMetric:
        """The metric for a logical axis of ``p`` processors.

        ``p=None`` means the physical extent of ``axis`` (the identity
        machine's one-processor-per-cell regime prices hops on the full
        physical axis).
        """
        raise NotImplementedError  # pragma: no cover - abstract

    def supports_axis(self, p: int, axis: int = 0) -> bool:
        """Whether ``p`` logical processors fold onto physical ``axis``.

        Takes the same axis index as :meth:`axis_metric`, so the two
        can never disagree about which grids are realizable.
        """
        return p >= 1

    def supports_grid(self, grid: Sequence[int]) -> bool:
        return all(
            self.supports_axis(p, self._physical_axis(t, len(grid)))
            for t, p in enumerate(grid)
        )

    def metrics(self, grid: Sequence[int | None]) -> tuple[AxisMetric, ...]:
        """One metric per logical grid axis (``None`` = physical extent)."""
        return tuple(
            self.axis_metric(p, self._physical_axis(t, len(grid)))
            for t, p in enumerate(grid)
        )

    def metrics_batch(
        self, grids: Sequence[Sequence[int | None]]
    ) -> list[tuple[AxisMetric, ...]]:
        """:meth:`metrics` for a whole batch of logical grids at once.

        The batched entry point the vectorized front pricing uses when
        one enumeration spans many grid factorizations: duplicate grids
        share one metric tuple (metrics are frozen value objects), so a
        candidate front over G grids builds at most G metric tuples no
        matter how many candidates it prices.
        """
        memo: dict[tuple[int | None, ...], tuple[AxisMetric, ...]] = {}
        out = []
        for grid in grids:
            key = tuple(grid)
            got = memo.get(key)
            if got is None:
                got = memo[key] = self.metrics(key)
            out.append(got)
        return out

    def _physical_axis(self, t: int, rank: int) -> int:
        if not self.shape:
            return t
        return min(t, len(self.shape) - 1)

    def _grid_for_rank(self, rank: int) -> tuple[int | None, ...]:
        """A default logical grid of the given rank.

        The physical shape when ranks agree; otherwise the most
        balanced supported factorization of the machine size.
        """
        if not self.shape:
            return (None,) * rank
        if rank == len(self.shape):
            return self.shape
        candidates = [
            f
            for f in factorizations(self.nprocs, rank)
            if self.supports_grid(f)
        ]
        if not candidates:
            raise ValueError(
                f"{self.spec()}: no rank-{rank} processor grid is realizable"
            )
        return most_balanced(candidates)

    # -- whole-machine interface -------------------------------------------

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def nprocs(self) -> int:
        n = 1
        for p in self.shape:
            n *= p
        return n

    def distance(self, cell_a: Sequence, cell_b: Sequence):
        """Hop distance between two cells of the machine's own grid."""
        if len(cell_a) != len(cell_b):
            raise ValueError(
                f"{self.kind} distance needs equal-rank points: "
                f"got rank {len(cell_a)} vs rank {len(cell_b)}"
            )
        ms = self.metrics(self._grid_for_rank(len(cell_a)))
        total = 0
        for m, a, b in zip(ms, cell_a, cell_b):
            total = total + m.distance(a, b)
        return total

    def pairwise_hops(
        self,
        positions_a: Sequence[np.ndarray],
        positions_b: Sequence[np.ndarray],
    ) -> np.ndarray:
        """Vectorized :meth:`distance` over per-axis coordinate arrays."""
        if len(positions_a) != len(positions_b):
            raise ValueError(
                f"{self.kind} pairwise_hops needs equal-rank positions: "
                f"got rank {len(positions_a)} vs rank {len(positions_b)}"
            )
        ms = self.metrics(self._grid_for_rank(len(positions_a)))
        total: np.ndarray | None = None
        for m, a, b in zip(ms, positions_a, positions_b):
            h = m.hops(np.asarray(a), np.asarray(b))
            total = h if total is None else total + h
        assert total is not None
        return total

    def bisection_bandwidth(self) -> int:
        """Links cut by the worst-case even bisection (0 if unbounded)."""
        raise NotImplementedError  # pragma: no cover - abstract

    def spec(self) -> str:
        """The parseable spec string; ``parse_topology(spec())`` round-trips."""
        raise NotImplementedError  # pragma: no cover - abstract

    def describe(self) -> str:
        if not self.shape:
            return f"{self.kind} topology, unbounded (the identity machine)"
        shape = "x".join(str(p) for p in self.shape)
        return (
            f"{self.kind} topology, shape {shape} "
            f"({self.nprocs} processors, bisection "
            f"{self.bisection_bandwidth()})"
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.spec()}>"


@dataclass(frozen=True)
class GridTopology(Topology):
    """An open mesh — the paper's L1 machine, and the default.

    The empty shape is the conceptually infinite template grid (the
    identity machine of the alignment phases); every per-axis metric is
    plain ``|a - b|``, bit-for-bit the pre-topology behaviour.
    """

    kind: ClassVar[str] = "grid"

    def axis_metric(self, p: int | None = None, axis: int = 0) -> AxisMetric:
        return LinearAxis()

    def bisection_bandwidth(self) -> int:
        if not self.shape:
            return 0
        longest = max(self.shape)
        return self.nprocs // longest if longest > 1 else 0

    def spec(self) -> str:
        if not self.shape:
            return "grid"
        return "grid:" + "x".join(str(p) for p in self.shape)


@dataclass(frozen=True)
class TorusTopology(Topology):
    """A mesh with wraparound links: every axis is a ring."""

    kind: ClassVar[str] = "torus"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.shape:
            raise ValueError("torus needs a finite shape")

    def axis_metric(self, p: int | None = None, axis: int = 0) -> AxisMetric:
        if p is None:
            p = self.shape[axis]
        return RingAxis(p) if p > 1 else LinearAxis()

    def bisection_bandwidth(self) -> int:
        longest = max(self.shape)
        return 2 * self.nprocs // longest if longest > 1 else 0

    def spec(self) -> str:
        return "torus:" + "x".join(str(p) for p in self.shape)


@dataclass(frozen=True)
class RingTopology(TorusTopology):
    """A single cycle of processors — the rank-1 torus."""

    kind: ClassVar[str] = "ring"

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.shape) != 1:
            raise ValueError(
                f"ring is one-dimensional, got shape "
                f"{'x'.join(str(p) for p in self.shape)}"
            )

    def spec(self) -> str:
        return f"ring:{self.shape[0]}"


@dataclass(frozen=True)
class HypercubeTopology(Topology):
    """A ``2**k``-processor hypercube, Hamming distance on Gray-coded
    coordinates.

    A product of sub-hypercubes is a hypercube, so any power-of-two
    factorization of the machine is realizable — the planner may carve
    ``hypercube:16`` into logical grids (16,), (2, 8), (4, 4), …
    """

    kind: ClassVar[str] = "hypercube"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.shape:
            raise ValueError("hypercube needs a processor count")
        n = self.nprocs
        if n & (n - 1):
            raise ValueError(
                f"hypercube needs a power-of-two processor count, got {n}"
            )

    def axis_metric(self, p: int | None = None, axis: int = 0) -> AxisMetric:
        if p is None:
            p = self.shape[axis]
        return HammingAxis(p) if p > 1 else LinearAxis()

    def supports_axis(self, p: int, axis: int = 0) -> bool:
        return p >= 1 and not (p & (p - 1))

    def bisection_bandwidth(self) -> int:
        return self.nprocs // 2 if self.nprocs > 1 else 0

    def spec(self) -> str:
        return "hypercube:" + "x".join(str(p) for p in self.shape)


@dataclass(frozen=True)
class HierarchicalTopology(Topology):
    """Clustered machine: an ``outer`` fabric of nodes, each node an
    ``inner`` fabric of processors, inter-node hops ``inter_cost`` times
    dearer than intra-node ones.

    ``outer`` and ``inner`` must agree on rank; the composite shape is
    their elementwise product.  Either level may itself be hierarchical,
    so cluster → node → core machines compose naturally (the tests
    exercise two levels deep).
    """

    outer: Topology
    inner: Topology
    inter_cost: int = 4

    kind: ClassVar[str] = "hier"

    def __post_init__(self) -> None:
        if self.outer.rank != self.inner.rank or not self.outer.rank:
            raise ValueError(
                f"hier needs same-rank finite levels, got outer rank "
                f"{self.outer.rank} vs inner rank {self.inner.rank}"
            )
        want = tuple(
            o * i for o, i in zip(self.outer.shape, self.inner.shape)
        )
        if self.shape != want:
            raise ValueError("hier shape must be outer*inner per axis")
        if self.inter_cost < 1:
            raise ValueError(
                f"hier inter-node cost must be >= 1, got {self.inter_cost}"
            )
        super().__post_init__()

    @classmethod
    def of(
        cls, outer: Topology, inner: Topology, inter_cost: int = 4
    ) -> "HierarchicalTopology":
        shape = tuple(o * i for o, i in zip(outer.shape, inner.shape))
        return cls(shape, outer, inner, inter_cost)

    def axis_metric(self, p: int | None = None, axis: int = 0) -> AxisMetric:
        if p is None:
            p = self.shape[axis]
        node = self.inner.shape[axis]
        outer_p = -(-p // node)  # nodes spanned by p logical processors
        return TwoLevelAxis(
            node=node,
            inter_cost=self.inter_cost,
            outer=self.outer.axis_metric(outer_p, axis),
            inner=self.inner.axis_metric(node, axis),
        )

    def supports_axis(self, p: int, axis: int = 0) -> bool:
        # Mirrors axis_metric: the inner level always prices its own
        # full node extent (realizable by construction), so only the
        # node count this axis spans constrains the outer fabric.
        return p >= 1 and self.outer.supports_axis(
            -(-p // self.inner.shape[axis]), axis
        )

    def bisection_bandwidth(self) -> int:
        # The inter-node fabric is the bottleneck: the worst even cut
        # severs outer links only (inter_cost weights latency, not the
        # number of links cut).
        return self.outer.bisection_bandwidth()

    def spec(self) -> str:
        return (
            f"hier:({self.outer.spec()})/({self.inner.spec()})"
            f"@{self.inter_cost}"
        )


def distribution_metrics(topology: Topology, dist) -> tuple[AxisMetric, ...]:
    """Per-axis metrics matching a :class:`~repro.machine.Distribution`.

    Axis schemes that own a processor count (block, cyclic, …) are
    priced on that many processors; schemes without one (the identity
    machine's one-processor-per-cell axes) fall back to the physical
    axis extent.  Duck-typed on ``dist.axes`` so this module stays a
    leaf — :mod:`repro.machine` imports us, never the reverse.
    """
    return topology.metrics(
        tuple(getattr(ax, "nprocs", None) for ax in dist.axes)
    )


def distribution_metrics_batch(
    topology: Topology, dists: Sequence
) -> list[tuple[AxisMetric, ...]]:
    """:func:`distribution_metrics` over a whole candidate front.

    Funnels through :meth:`Topology.metrics_batch`, so a front of
    hundreds of candidates spanning a handful of grid factorizations
    builds one metric tuple per distinct grid, not per candidate.
    """
    return topology.metrics_batch(
        [tuple(getattr(ax, "nprocs", None) for ax in d.axes) for d in dists]
    )
