"""Topology registry and the ``parse_topology`` spec parser.

Specs are compact machine descriptions for CLIs, batch payloads and
JSON reports::

    grid                    the unbounded identity machine (default)
    grid:4x4                4x4 open mesh
    torus:4x4               4x4 mesh with wraparound links
    ring:8                  8-processor cycle
    hypercube:16            16-processor hypercube (Gray-coded)
    hier:2x2/4x4            2x2 nodes of 4x4 cores (grid levels, cost 4)
    hier:(torus:2x2)/(grid:4x4)@8   explicit levels and inter-node cost

Every concrete :class:`~repro.topology.models.Topology` round-trips:
``parse_topology(t.spec()) == t``.  New machine models register under a
kind name with :func:`register_topology`; the planner, CLI and batch
engine all resolve specs through this one registry.
"""

from __future__ import annotations

import re
from typing import Callable

from .models import (
    GridTopology,
    HierarchicalTopology,
    HypercubeTopology,
    RingTopology,
    Topology,
    TorusTopology,
    _parse_dims,
)

_REGISTRY: dict[str, Callable[[str], Topology]] = {}

DEFAULT_HIER_COST = 4

_DIMS = re.compile(r"^\d+(x\d+)*$")


def register_topology(kind: str, parser: Callable[[str], Topology]) -> None:
    """Register a topology kind; ``parser`` gets the text after ``kind:``."""
    if not kind or ":" in kind:
        raise ValueError(f"bad topology kind {kind!r}")
    if kind in _REGISTRY:
        raise ValueError(f"topology kind {kind!r} already registered")
    _REGISTRY[kind] = parser


def topology_kinds() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def parse_topology(spec: str) -> Topology:
    """Parse a topology spec string into a :class:`Topology`."""
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError("empty topology spec")
    spec = spec.strip()
    kind, sep, rest = spec.partition(":")
    if sep and not rest:
        raise ValueError(f"{kind}: missing shape after ':' in {spec!r}")
    parser = _REGISTRY.get(kind)
    if parser is None:
        raise ValueError(
            f"unknown topology kind {kind!r} in spec {spec!r}; "
            f"known kinds: {', '.join(topology_kinds())}"
        )
    return parser(rest)


_DEFAULT = GridTopology(())


def default_topology() -> GridTopology:
    """The unbounded grid — the paper's identity machine."""
    return _DEFAULT


# -- kind parsers -----------------------------------------------------------


def _parse_grid(rest: str) -> Topology:
    if not rest:
        return _DEFAULT
    return GridTopology(_parse_dims(rest, "grid"))


def _parse_torus(rest: str) -> Topology:
    return TorusTopology(_parse_dims(rest, "torus"))


def _parse_ring(rest: str) -> Topology:
    dims = _parse_dims(rest, "ring")
    if len(dims) != 1:
        raise ValueError(f"ring is one-dimensional, got shape {rest!r}")
    return RingTopology(dims)


def _parse_hypercube(rest: str) -> Topology:
    return HypercubeTopology(_parse_dims(rest, "hypercube"))


def _split_levels(rest: str) -> tuple[str, str, int]:
    """Split ``<outer>/<inner>[@cost]`` at the top parenthesis level."""
    cost = DEFAULT_HIER_COST
    depth = 0
    at = -1
    slash = -1
    for i, ch in enumerate(rest):
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise ValueError(f"hier: unbalanced parentheses in {rest!r}")
        elif depth == 0 and ch == "/":
            if slash >= 0:
                raise ValueError(
                    f"hier composes exactly two levels, got {rest!r} "
                    "(nest deeper levels in parentheses)"
                )
            slash = i
        elif depth == 0 and ch == "@":
            at = i
            break
    if depth:
        raise ValueError(f"hier: unbalanced parentheses in {rest!r}")
    if at >= 0:
        try:
            cost = int(rest[at + 1 :])
        except ValueError:
            raise ValueError(
                f"hier: bad inter-node cost {rest[at + 1:]!r}"
            ) from None
        rest = rest[:at]
    if slash < 0:
        raise ValueError(
            f"hier needs '<outer>/<inner>' levels, got {rest!r}"
        )
    return rest[:slash], rest[slash + 1 :], cost


def _parse_level(text: str) -> Topology:
    text = text.strip()
    if text.startswith("(") and text.endswith(")"):
        return parse_topology(text[1:-1])
    if _DIMS.match(text):
        return GridTopology(_parse_dims(text, "hier level"))
    raise ValueError(
        f"hier level {text!r} must be dims like '4x4' or a "
        "parenthesized spec like '(torus:4x4)'"
    )


def _parse_hier(rest: str) -> Topology:
    if not rest:
        raise ValueError("hier needs '<outer>/<inner>[@cost]'")
    outer_text, inner_text, cost = _split_levels(rest)
    return HierarchicalTopology.of(
        _parse_level(outer_text), _parse_level(inner_text), cost
    )


register_topology("grid", _parse_grid)
register_topology("torus", _parse_torus)
register_topology("ring", _parse_ring)
register_topology("hypercube", _parse_hypercube)
register_topology("hier", _parse_hier)
