"""Topology-aware machine models: pluggable interconnects.

The paper prices every data movement with the L1 grid metric; this
subsystem turns that one hardwired machine into a family of them.  A
:class:`Topology` supplies vectorized per-axis hop metrics for any
logical processor grid, so the same planner, cost model and simulator
price communication on meshes, tori, rings, hypercubes and hierarchical
node/cluster fabrics without forking any planning code.

Quickstart::

    from repro import align_program, parse
    from repro.topology import parse_topology
    from repro.distrib import build_profile, plan_distribution

    plan = align_program(parse(src))
    profile = build_profile(plan.adg, plan.alignments)
    machine = parse_topology("hypercube:16")
    dplan = plan_distribution(profile, machine.nprocs, topology=machine)
"""

from .models import (
    AxisMetric,
    GridTopology,
    HammingAxis,
    HierarchicalTopology,
    HypercubeTopology,
    LinearAxis,
    RingAxis,
    RingTopology,
    Topology,
    TorusTopology,
    TwoLevelAxis,
    distribution_metrics,
    distribution_metrics_batch,
)
from .registry import (
    DEFAULT_HIER_COST,
    default_topology,
    parse_topology,
    register_topology,
    topology_kinds,
)

__all__ = [
    "AxisMetric",
    "LinearAxis",
    "RingAxis",
    "HammingAxis",
    "TwoLevelAxis",
    "Topology",
    "GridTopology",
    "TorusTopology",
    "RingTopology",
    "HypercubeTopology",
    "HierarchicalTopology",
    "distribution_metrics",
    "distribution_metrics_batch",
    "DEFAULT_HIER_COST",
    "default_topology",
    "parse_topology",
    "register_topology",
    "topology_kinds",
]
