"""ADG node kinds and their constraint payloads.

Each node kind carries a typed payload describing how the node relates
the alignments of its ports (Section 2.2.2).  The payloads are purely
syntactic — the alignment phase (:mod:`repro.align.constraints` users)
interprets them into axis/stride/offset relations.

Kinds and their constraints:

========== =================================================================
ELEMENTWISE / MERGE / FANOUT / BRANCH
           all ports identically aligned
SOURCE / SINK
           no constraint (anchors for initial/final values)
SECTION    output = section-transform(input): body axes of the output map
           through ``stride_out = step * stride_in``,
           ``offset_out = offset_in + (lo - step) * stride_in``; axes
           removed by scalar subscripts become *space* positions
           ``offset_in + stride_in * index``
SECTION_ASSIGN
           (array_in, value_in) -> array_out: array_out = array_in;
           value_in aligned like the section of array_in
TRANSPOSE  output body axes are the swap of input's
SPREAD     input is the output minus the spread axis; along that template
           axis the input port is replicated (R), the output not (N)
REDUCE     surviving axes align; the reduced axis is released
GATHER     output aligned with the index operand; table unconstrained
TRANSFORMER
           entry:     f_out(liv = first) = f_in
           loop_back: f_out(liv) = f_in(liv - step)
           exit:      f_out = f_in(liv = last)
========== =================================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Optional, Union

from ..ir.affine import AffineForm
from ..ir.symbols import LIV


class NodeKind(Enum):
    SOURCE = auto()
    SINK = auto()
    ELEMENTWISE = auto()
    SECTION = auto()
    SECTION_ASSIGN = auto()
    TRANSPOSE = auto()
    SPREAD = auto()
    REDUCE = auto()
    GATHER = auto()
    MERGE = auto()
    FANOUT = auto()
    BRANCH = auto()
    TRANSFORMER = auto()


@dataclass(frozen=True)
class SubscriptSpec:
    """One subscript of a section, normalized for constraint generation.

    ``kind`` is "index" (payload ``index``), "slice" (payload ``lo``,
    ``step``) or "full" (equivalent to slice with lo=1, step=1).
    """

    kind: str
    index: Optional[AffineForm] = None
    lo: Optional[AffineForm] = None
    step: Optional[AffineForm] = None


@dataclass(frozen=True)
class SectionPayload:
    """Section or SectionAssign: the normalized subscript list."""

    array: str
    subscripts: tuple[SubscriptSpec, ...]


@dataclass(frozen=True)
class SpreadPayload:
    dim: int  # 1-based position of the new axis in the OUTPUT
    ncopies: int


@dataclass(frozen=True)
class ReducePayload:
    op: str
    dim: Optional[int]  # 1-based reduced axis of the INPUT; None = full


@dataclass(frozen=True)
class TransformerPayload:
    """Iteration-space boundary (Section 2.2.3).

    ``kind`` in {"entry", "loop_back", "exit"}; ``liv`` the loop variable;
    ``value``: entry -> first iteration value; exit -> last iteration
    value; loop_back -> the step.
    """

    kind: str
    liv: LIV
    value: int


@dataclass(frozen=True)
class SourcePayload:
    array: str
    readonly: bool = False
    replicate_hint: bool = False


@dataclass(frozen=True)
class SinkPayload:
    array: str


@dataclass(frozen=True)
class EmptyPayload:
    pass


NodePayload = Union[
    SectionPayload,
    SpreadPayload,
    ReducePayload,
    TransformerPayload,
    SourcePayload,
    SinkPayload,
    EmptyPayload,
]

EMPTY = EmptyPayload()
